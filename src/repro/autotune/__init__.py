"""Adaptive query planning: cost model, calibration, decision cache.

``repro.autotune`` turns the library's caller-chosen performance knobs
— contraction ordering, per-level output formats, search strategy,
opt level, shard executor and count — into planner decisions:

* :mod:`~repro.autotune.costmodel` predicts abstract work units per
  candidate plan from per-level tensor statistics;
* :mod:`~repro.autotune.calibrate` measures (once per machine, then
  persists) the constants that turn units into seconds and price
  shard dispatch honestly;
* :mod:`~repro.autotune.decisions` caches decisions by workload
  signature with the kernel cache's crash-safety machinery and folds
  observed runtimes back in (stale decisions are re-searched);
* :mod:`~repro.autotune.tuner` enumerates the legal candidates —
  bounded by the stream-property certificates — and picks.

Routing: ``compile_kernel(..., tune="auto")`` /
``KernelBuilder(tune=...)`` / the ``REPRO_TUNE`` environment knob for
the library, ``ServeConfig.tune`` (default on) for the server.  With
tuning off, none of this package's code runs.
"""

from repro.autotune.calibrate import (
    CalibrationProfile,
    calibrate,
    get_profile,
    reset_profile_cache,
    tune_cache_dir,
)
from repro.autotune.costmodel import CostEstimate, OperandStats, estimate
from repro.autotune.decisions import (
    Decision,
    DecisionCache,
    DecisionRecord,
    decision_cache,
)
from repro.autotune.tuner import TuneResult, tune_build, tune_einsum

__all__ = [
    "CalibrationProfile",
    "CostEstimate",
    "Decision",
    "DecisionCache",
    "DecisionRecord",
    "OperandStats",
    "TuneResult",
    "calibrate",
    "decision_cache",
    "estimate",
    "get_profile",
    "reset_profile_cache",
    "tune_build",
    "tune_einsum",
    "tune_cache_dir",
]
