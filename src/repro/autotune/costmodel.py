"""Analytic cost model over candidate contraction plans.

The model predicts *abstract work units* for one fused loop nest from
the same per-level statistics the shard planner already reads off a
:class:`~repro.data.tensor.Tensor` (slot counts per level, hence
average fanout and density per level).  Units are converted to seconds
by the measured per-unit throughput in
:mod:`repro.autotune.calibrate` — the model only has to rank plans,
not predict wall time in isolation.

The estimator walks a candidate attribute ordering outermost-in and
propagates two quantities:

* ``n_ctx`` — how many times the loop at this depth is entered (the
  product of the expected intersection sizes of the enclosing loops);
* ``isect`` — the expected number of coordinates surviving the
  intersection at this depth: ``dim · ∏_T (m_T / dim)`` over the
  participating operands (independent-support approximation), clamped
  to the smallest participant.

Each participating operand is charged its scan cost per entry into the
level: a dense level is *located* (cost ∝ intersection size), a sparse
level under linear search streams its whole run (cost ∝ ``m_T``), and
a sparse level under galloping binary search costs
``min(m_T, (min_other+1) · C_BINARY · log2 m_T)`` where ``min_other``
is the smallest co-stream at the level — galloping pays off only on
skewed merges, matching the measured crossover in ``BENCH`` fig17.

This reproduces the §8.1 ordering asymmetry analytically: for C = A·B
with sparse matrices, the ``(i, k, j)`` nest costs ≈ nnz(A)·k while
``(i, j, k)`` costs ≈ n²·k scans — orders of magnitude apart on skewed
sparsity, which is exactly what the enumerator needs to see.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.data.tensor import Tensor

#: galloping search constant: per-probe cost relative to one linear step
C_BINARY = 3.0
#: per-entry cost of a repack() materialization (Python dict round-trip)
C_REPACK = 60.0
#: per-cell cost of allocating/zeroing a dense output level
C_DENSE_OUT = 0.25
#: per-entry cost of appending through a sparse output destination
C_SPARSE_OUT = 2.0

#: multiplicative slowdown of lower opt levels, per backend (measured
#: once against BENCH_PR3's opt ablation; only the *ratio* matters)
OPT_PENALTY: Dict[str, Dict[int, float]] = {
    "c": {0: 1.3, 1: 1.1, 2: 1.0},
    "python": {0: 8.0, 1: 2.0, 2: 1.0},
    "interp": {0: 1.0, 1: 1.0, 2: 1.0},
}


def opt_penalty(backend: str, opt_level: int) -> float:
    table = OPT_PENALTY.get(backend, OPT_PENALTY["c"])
    return table.get(int(opt_level), 1.0)


@dataclass(frozen=True)
class OperandStats:
    """Per-level structure statistics of one operand tensor."""

    name: str
    attrs: Tuple[str, ...]
    formats: Tuple[str, ...]
    dims: Tuple[int, ...]
    #: stored slots per level (dense level: parent · dim; sparse: |crd|)
    level_slots: Tuple[int, ...]

    @property
    def nnz(self) -> int:
        return self.level_slots[-1] if self.level_slots else 1

    @classmethod
    def from_tensor(cls, name: str, t: Tensor) -> "OperandStats":
        slots: List[int] = []
        parent = 1
        for k, fmt in enumerate(t.formats):
            parent = parent * t.dims[k] if fmt == "dense" else len(t.crd[k])
            slots.append(int(parent))
        return cls(name, t.attrs, t.formats, t.dims, tuple(slots))

    def fanout(self, level: int) -> float:
        """Average branching factor of ``level`` (children per parent)."""
        parent = self.level_slots[level - 1] if level > 0 else 1
        if parent <= 0:
            return 0.0
        return self.level_slots[level] / parent

    def density(self, level: int) -> float:
        d = self.dims[level]
        return self.fanout(level) / d if d > 0 else 1.0

    def signature(self) -> Tuple:
        """Bucketed shape/sparsity signature (log2 dims + densities)."""
        return (
            self.attrs,
            self.formats,
            tuple(_log2_bucket(d) for d in self.dims),
            tuple(_density_bucket(self.density(k)) for k in range(len(self.attrs))),
        )


def _log2_bucket(n: int) -> int:
    return int(math.log2(n)) if n > 0 else -1


def _density_bucket(d: float) -> int:
    """Half-decade density buckets; exact 1.0 (dense) is its own bucket."""
    if d >= 1.0:
        return 0
    if d <= 0.0:
        return -99
    return int(math.floor(2.0 * math.log10(d)))


def expected_distinct(entries: float, space: float) -> float:
    """E[#occupied bins] after throwing ``entries`` balls into ``space``
    bins uniformly — the standard estimate for distinct coordinate
    prefixes of a repacked operand."""
    if space <= 1.0:
        return 1.0
    if entries <= 0:
        return 0.0
    # space * (1 - (1 - 1/space)^entries), computed stably
    return space * -math.expm1(entries * math.log1p(-1.0 / space))


def permuted_fanouts(
    stats: OperandStats, attrs: Sequence[str]
) -> List[float]:
    """Expected per-level fanouts of ``stats`` repacked to ``attrs``.

    The exact level statistics describe the *stored* order only; for a
    candidate ordering that transposes the operand we estimate each
    level's expected distinct-prefix count with the uniform-support
    formula and derive fanouts from consecutive ratios.
    """
    entries = float(stats.nnz)
    fanouts: List[float] = []
    prefixes = 1.0
    space = 1.0
    for a in attrs:
        space *= stats.dims[stats.attrs.index(a)]
        nxt = min(expected_distinct(entries, space), entries if entries else 1.0)
        nxt = max(nxt, 1e-9)
        fanouts.append(nxt / prefixes)
        prefixes = nxt
    return fanouts


@dataclass(frozen=True)
class CostEstimate:
    """The model's verdict on one candidate loop nest."""

    units: float
    loop_counts: Tuple[float, ...]
    out_nnz: float
    repack_units: float = 0.0
    output_units: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "units": round(self.units, 1),
            "out_nnz": round(self.out_nnz, 1),
            "repack_units": round(self.repack_units, 1),
            "output_units": round(self.output_units, 1),
        }


@dataclass
class _Walker:
    """One operand's position while the estimator walks an ordering."""

    stats: OperandStats
    attrs: Tuple[str, ...]        # operand levels in the candidate order
    formats: Tuple[str, ...]
    fanouts: List[float]
    repacked: bool
    level: int = 0


def _conformed(stats: OperandStats, order: Sequence[str]) -> _Walker:
    """The operand's level view under ``order`` (repacked if needed)."""
    want = tuple(a for a in order if a in stats.attrs)
    if want == stats.attrs:
        fanouts = [stats.fanout(k) for k in range(len(stats.attrs))]
        return _Walker(stats, stats.attrs, stats.formats, fanouts, False)
    perm_formats = tuple(
        stats.formats[stats.attrs.index(a)] for a in want
    )
    return _Walker(stats, want, perm_formats,
                   permuted_fanouts(stats, want), True)


def estimate(
    order: Sequence[str],
    operands: Sequence[OperandStats],
    output_attrs: Sequence[str],
    dims: Mapping[str, int],
    *,
    search: str = "linear",
) -> CostEstimate:
    """Predicted work units for the loop nest induced by ``order``."""
    walkers = [_conformed(s, order) for s in operands]
    repack_units = sum(
        C_REPACK * w.stats.nnz * len(w.stats.attrs)
        for w in walkers if w.repacked
    )

    out_set = set(output_attrs)
    n_ctx = 1.0
    out_ctx = 1.0
    units = repack_units
    loop_counts: List[float] = []
    for attr in order:
        dim = float(dims.get(attr, 1) or 1)
        parts = [w for w in walkers if w.level < len(w.attrs)
                 and w.attrs[w.level] == attr]
        if not parts:
            loop_counts.append(1.0)
            continue
        streams: List[Tuple[float, str]] = []
        for w in parts:
            m = min(max(w.fanouts[w.level], 0.0), dim)
            streams.append((m, w.formats[w.level]))
            w.level += 1
        isect = dim
        for m, _ in streams:
            isect *= m / dim if dim > 0 else 0.0
        isect = min(isect, min(m for m, _ in streams))
        isect = max(isect, 0.0)

        scan = 0.0
        for idx, (m, fmt) in enumerate(streams):
            if fmt == "dense":
                scan += isect          # located: probe only at hits
                continue
            if search == "binary":
                # each element of the smallest co-stream triggers at
                # most one gallop into this one — on balanced merges
                # that degenerates to ≥ linear and linear wins the tie
                others = [om for k, (om, _) in enumerate(streams) if k != idx]
                drivers = min(others) if others else isect
                gallop = (drivers + 1.0) * C_BINARY * math.log2(m + 2.0)
                scan += min(m, gallop)
            else:
                scan += m              # linear merge walks the run
        units += n_ctx * (scan + isect)
        loop_counts.append(isect)
        n_ctx *= max(isect, 1e-9)
        if attr in out_set:
            out_ctx *= max(isect, 1e-9)

    if output_attrs:
        # distinct output coordinates come from *all* leaf visits: a
        # contracted loop nested between output attrs re-runs the inner
        # output loops, so the naive per-loop product (out_ctx) can be
        # an order of magnitude low for e.g. mat-mul.  Balls-in-bins
        # over the total visit count corrects that; when nothing is
        # contracted every visit is a distinct coordinate and out_ctx
        # itself is exact (and larger).
        space = 1.0
        for a in output_attrs:
            space *= float(dims.get(a, 1) or 1)
        out_nnz = min(max(out_ctx, expected_distinct(n_ctx, space)), space)
    else:
        out_nnz = 1.0
    return CostEstimate(units, tuple(loop_counts), out_nnz,
                        repack_units=repack_units)


def supported_output_stacks(rank: int) -> List[Tuple[str, ...]]:
    """Output format stacks the destination builder can emit."""
    if rank == 0:
        return [()]
    if rank == 1:
        return [("dense",), ("sparse",)]
    if rank == 2:
        return [("dense", "dense"), ("dense", "sparse"),
                ("sparse", "sparse")]
    return [("dense",) * rank]


def output_order_ok(
    order: Sequence[str],
    output_attrs: Sequence[str],
    formats: Sequence[str],
) -> bool:
    """Mirror of the kernel layer's workspace legality rule: a sparse
    output stack is buildable under ``order`` only when no contracted
    attribute separates two consecutive output attributes *above* the
    innermost output level (``_workspace_needed`` raises otherwise).
    """
    if not output_attrs or all(f == "dense" for f in formats):
        return True
    out_set = set(output_attrs)
    positions = [list(order).index(a) for a in output_attrs]
    prev = -1
    revisited = []
    for p in positions:
        revisited.append(
            any(order[k] not in out_set for k in range(prev + 1, p))
        )
        prev = p
    return not any(revisited[:-1])


def footprint_bytes(
    order: Sequence[str],
    operands: Sequence[OperandStats],
    output_attrs: Sequence[str],
    output_formats: Sequence[str],
    dims: Mapping[str, int],
    *,
    itemsize: int = 8,
    search: str = "linear",
) -> float:
    """Predicted resident bytes of one materialized result.

    The memory governor and the serve layer's memory-aware admission
    size a query by its *output*, the quantity that actually
    accumulates across shard partials: a dense output costs its full
    cell count, a sparse output ``out_nnz`` values plus coordinate
    bookkeeping (one int64 crd plus amortized pos per entry).  Operand
    footprints are deliberately excluded — operands are already
    resident in the caller, admission cannot un-spend them.
    """
    if not output_attrs:
        return float(itemsize)
    if all(f == "dense" for f in output_formats):
        size = 1.0
        for a in output_attrs:
            size *= float(dims.get(a, 1) or 1)
        return size * itemsize
    est = estimate(order, operands, output_attrs, dims, search=search)
    # value + crd (8 bytes) + amortized pos (8 bytes) per stored entry
    return est.out_nnz * (itemsize + 16.0)


def output_units(
    formats: Sequence[str],
    output_attrs: Sequence[str],
    dims: Mapping[str, int],
    out_nnz: float,
) -> float:
    """Allocation + append cost of materializing the result."""
    if not output_attrs:
        return 0.0
    if all(f == "dense" for f in formats):
        size = 1.0
        for a in output_attrs:
            size *= float(dims.get(a, 1) or 1)
        return C_DENSE_OUT * size
    return C_SPARSE_OUT * out_nnz


__all__ = [
    "C_BINARY",
    "C_REPACK",
    "OPT_PENALTY",
    "opt_penalty",
    "OperandStats",
    "CostEstimate",
    "estimate",
    "expected_distinct",
    "footprint_bytes",
    "permuted_fanouts",
    "supported_output_stacks",
    "output_order_ok",
    "output_units",
]
