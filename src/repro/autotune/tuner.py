"""The plan enumerator and search — ``repro.autotune``'s front door.

:func:`tune_einsum` takes the *workload* (an einsum spec plus concrete
operand tensors) and searches the space the caller left open:
contraction ordering (every permutation that keeps the requested
output order, when the attribute count is small), output format stack,
search strategy (linear vs galloping), opt level, and — priced by the
measured calibration profile — shard executor and shard count.  The
candidate set is bounded by the same static legality rules the
compiler enforces: only orderings whose output stack the destination
builder accepts (:func:`~repro.autotune.costmodel.output_order_ok`)
and only shard splits carrying a stream-property certificate
(:func:`~repro.runtime.planner.probe_splits`).

:func:`tune_build` is the narrower builder-path variant for general ℒ
expressions: the attribute ordering is fixed by the caller's
:class:`~repro.lang.TypeContext`, so only search / opt level /
executor / shards are searched.

Both return a :class:`TuneResult` whose :meth:`~TuneResult.explain`
reports the chosen plan, the rejected candidates with their cost
estimates, and the decision-cache disposition — the data the serving
layer surfaces under ``explain=true``.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.autotune import costmodel
from repro.autotune.calibrate import CalibrationProfile, get_profile
from repro.autotune.costmodel import OperandStats
from repro.autotune.decisions import (
    Decision,
    DecisionCache,
    decision_cache,
)
from repro.compiler.resilience import logger
from repro.data.tensor import Tensor

#: orderings are enumerated exhaustively up to this many attributes
#: (5! = 120 candidate orders; beyond that only the caller's order)
MAX_ENUM_ATTRS = 5
#: shard counts the executor search prices
SHARD_CANDIDATES = (2, 4)
#: sharding must be predicted to save at least this fraction
SHARD_MIN_GAIN = 0.05
#: and the serial work must be at least this long to bother
SHARD_MIN_WORK_S = 5e-3


@dataclass
class TuneResult:
    """One tuning verdict: the decision plus everything behind it."""

    decision: Decision
    signature: str
    cache: str                      # "hit" | "miss" | "stale"
    predicted_s: float
    considered: int = 0
    candidates: List[Dict[str, Any]] = field(default_factory=list)
    profile_measured: bool = False
    # einsum-path payload for .plan()
    spec: Optional[str] = None
    tensors: Tuple[Tensor, ...] = ()
    semiring: Any = None
    backend: str = "c"
    kernel_name: Optional[str] = None

    def plan(self):
        """Materialize the decision as an :class:`EinsumPlan`
        (repacking any operand the chosen ordering transposes)."""
        if self.spec is None:
            raise ValueError("plan() is only available for einsum tuning")
        from repro.tensor.einsum import parse_spec, plan_einsum, repack

        operands, output = parse_spec(self.spec)
        order = self.decision.order
        tensors = list(self.tensors)
        spec = self.spec
        if order is not None:
            # an ordering that transposes an operand changes both the
            # tensor layout AND its subscripts in the spec — rewrite
            # the spec so plan_einsum sees a conformant request
            new_ops = []
            for k, (letters, t) in enumerate(zip(operands, tensors)):
                want = tuple(a for a in order if a in letters)
                new_ops.append(want)
                if tuple(t.attrs) != want:
                    fmts = tuple(
                        t.formats[t.attrs.index(a)] for a in want
                    )
                    tensors[k] = repack(t, want, fmts)
            spec = (",".join("".join(o) for o in new_ops)
                    + "->" + "".join(output))
        return plan_einsum(
            spec,
            *tensors,
            output_formats=self.decision.output_formats,
            order=order,
            semiring=self.semiring,
            backend=self.backend,
            search=self.decision.search,
            opt_level=(
                self.decision.opt_level
                if self.decision.opt_level is not None else 2
            ),
            kernel_name=self.kernel_name,
        )

    def explain(self) -> Dict[str, Any]:
        return {
            "signature": self.signature,
            "cache": self.cache,
            "decision": self.decision.as_dict(),
            "predicted_s": self.predicted_s,
            "considered": self.considered,
            "candidates": self.candidates[:6],
            "profile_measured": self.profile_measured,
        }


# ----------------------------------------------------------------------
# workload signatures
# ----------------------------------------------------------------------
def _digest(parts: Tuple) -> str:
    return hashlib.sha256(repr(parts).encode()).hexdigest()


def einsum_signature(
    spec: str, stats: Sequence[OperandStats], semiring, backend: str
) -> str:
    return _digest((
        "einsum", spec.replace(" ", ""), semiring.name, backend,
        tuple(s.signature() for s in stats),
    ))


def build_signature(
    expr, order: Sequence[str], stats: Sequence[OperandStats],
    output, semiring, backend: str,
) -> str:
    return _digest((
        "build", repr(expr), tuple(order), semiring.name, backend,
        repr(output), tuple(s.signature() for s in stats),
    ))


# ----------------------------------------------------------------------
# candidate enumeration (einsum path)
# ----------------------------------------------------------------------
def _candidate_orders(
    operands: Sequence[Tuple[str, ...]], output: Tuple[str, ...]
) -> List[Tuple[str, ...]]:
    from repro.tensor.einsum import _appearance_order

    appearance = _appearance_order(operands)
    if len(appearance) > MAX_ENUM_ATTRS:
        return [appearance]
    orders = []
    for perm in itertools.permutations(appearance):
        pos = [perm.index(a) for a in output]
        if pos == sorted(pos):       # requested output order preserved
            orders.append(perm)
    return orders


def _executor_choice(
    work_s: float,
    specs: Dict[str, Any],
    out_spec,
    ops,
    profile: CalibrationProfile,
    name: str,
) -> Tuple[Optional[str], Optional[int], float]:
    """Pick (executor, shards) for ``work_s`` of serial work, or keep
    serial.  Only certificate-legal splits are candidates, and only
    executors whose *measured* 2-shard speedup beats 1 — the unmeasured
    default profile therefore never shards."""
    best = (None, None, work_s)
    if work_s < SHARD_MIN_WORK_S or not profile.speedup2:
        return best
    try:
        from repro.runtime.planner import probe_splits

        if not probe_splits(specs, out_spec, ops, name=name):
            return best
    except Exception as exc:
        logger.warning("autotune: split probe failed (%s); staying serial",
                       exc)
        return best
    for executor, gain in profile.speedup2.items():
        if gain <= 1.02:
            continue
        for shards in SHARD_CANDIDATES:
            t = profile.executor_time(work_s, executor, shards)
            if t < best[2] * (1.0 - SHARD_MIN_GAIN):
                best = (executor, shards, t)
    return best


def tune_einsum(
    spec: str,
    *tensors: Tensor,
    semiring=None,
    backend: str = "c",
    cache: Optional[DecisionCache] = None,
    profile: Optional[CalibrationProfile] = None,
    kernel_name: Optional[str] = None,
) -> TuneResult:
    """Search the open plan space of one einsum workload.

    Returns the cached decision when the workload signature is warm
    and not stale; otherwise enumerates, scores, stores, and returns
    the winner.
    """
    from repro.compiler.kernel import OutputSpec
    from repro.compiler.scalars import scalar_ops_for
    from repro.tensor.einsum import parse_spec

    operands, output = parse_spec(spec)
    if len(operands) != len(tensors):
        raise ValueError(
            f"spec has {len(operands)} operands, got {len(tensors)} tensors"
        )
    if semiring is None:
        semiring = tensors[0].semiring
    cache = cache if cache is not None else decision_cache
    profile = profile if profile is not None else get_profile()
    ops = scalar_ops_for(semiring)

    stats = [
        OperandStats.from_tensor(f"t{k}", t) for k, t in enumerate(tensors)
    ]
    dims: Dict[str, int] = {}
    for letters, t in zip(operands, tensors):
        for a, d in zip(letters, t.dims):
            dims.setdefault(a, int(d))

    signature = einsum_signature(spec, stats, semiring, backend)
    record = cache.lookup(signature)
    if record is not None and not record.stale:
        return TuneResult(
            decision=record.decision, signature=signature, cache="hit",
            predicted_s=record.decision.predicted_s,
            considered=int(record.explain.get("considered", 0)),
            candidates=list(record.explain.get("candidates", [])),
            profile_measured=profile.measured,
            spec=spec, tensors=tensors, semiring=semiring,
            backend=backend, kernel_name=kernel_name,
        )
    correction = record.correction if record is not None else 1.0

    per_unit = profile.per_unit(backend)
    scored: List[Dict[str, Any]] = []
    for order in _candidate_orders(operands, output):
        est = costmodel.estimate(order, stats, output, dims, search="linear")
        est_bin = costmodel.estimate(order, stats, output, dims,
                                     search="binary")
        for stack in costmodel.supported_output_stacks(len(output)):
            if not costmodel.output_order_ok(order, output, stack):
                continue
            for search, e in (("linear", est), ("binary", est_bin)):
                out_units = costmodel.output_units(
                    stack, output, dims, e.out_nnz
                )
                for opt in (2, 0):
                    pen = costmodel.opt_penalty(backend, opt)
                    units = e.units * pen + out_units
                    scored.append({
                        "order": order,
                        "output_formats": stack,
                        "search": search,
                        "opt_level": opt,
                        "units": units,
                        "out_nnz": e.out_nnz,
                        "serial_s": units * per_unit * correction,
                    })
    scored.sort(key=lambda c: c["units"])
    best = scored[0]

    # price the shard options for the winning serial plan
    from repro.compiler.formats import TensorInput

    order = best["order"]
    specs = {}
    for k, (letters, t) in enumerate(zip(operands, tensors)):
        want = tuple(a for a in order if a in letters)
        fmts = tuple(t.formats[t.attrs.index(a)] for a in want)
        specs[f"t{k}"] = TensorInput(f"t{k}", want, fmts, ops)
    out_spec = None
    if output:
        out_spec = OutputSpec(
            output, best["output_formats"],
            tuple(dims[a] for a in output),
        )
    executor, shards, predicted_s = _executor_choice(
        best["serial_s"], specs, out_spec, ops, profile,
        kernel_name or "einsum",
    )

    capacity_hint = None
    if best["output_formats"] and any(
        f == "sparse" for f in best["output_formats"]
    ):
        dense_size = 1
        for a in output:
            dense_size *= dims[a]
        capacity_hint = min(int(best["out_nnz"] * 1.3) + 16, dense_size)

    decision = Decision(
        order=order,
        output_formats=best["output_formats"] or None,
        opt_level=best["opt_level"],
        search=best["search"],
        executor=executor,
        shards=shards,
        capacity_hint=capacity_hint,
        predicted_s=predicted_s,
        predicted_units=best["units"],
    )
    explain = {
        "considered": len(scored),
        "candidates": [
            {
                "order": list(c["order"]),
                "output_formats": list(c["output_formats"]),
                "search": c["search"],
                "opt_level": c["opt_level"],
                "units": round(c["units"], 1),
            }
            for c in scored[:6]
        ],
    }
    cache.store(signature, decision, explain, correction=correction)
    return TuneResult(
        decision=decision, signature=signature,
        cache="stale" if record is not None else "miss",
        predicted_s=predicted_s, considered=len(scored),
        candidates=explain["candidates"],
        profile_measured=profile.measured,
        spec=spec, tensors=tensors, semiring=semiring,
        backend=backend, kernel_name=kernel_name,
    )


# ----------------------------------------------------------------------
# builder path: order fixed by the caller's TypeContext
# ----------------------------------------------------------------------
def tune_build(
    expr,
    ctx,
    inputs: Dict[str, Any],
    output,
    *,
    semiring,
    backend: str = "c",
    name: str = "kernel",
    cache: Optional[DecisionCache] = None,
    profile: Optional[CalibrationProfile] = None,
) -> TuneResult:
    """Tune the knobs a :class:`KernelBuilder` build leaves open.

    The attribute ordering is the context's schema order (general ℒ
    expressions are not reorderable without retyping), so the search
    covers: linear vs binary search, opt level, executor and shard
    count.  All inputs must be concrete tensors — the caller gates on
    that.
    """
    from repro.compiler.formats import TensorInput
    from repro.compiler.scalars import scalar_ops_for

    cache = cache if cache is not None else decision_cache
    profile = profile if profile is not None else get_profile()
    ops = scalar_ops_for(semiring)

    stats = [
        OperandStats.from_tensor(var, t) for var, t in sorted(inputs.items())
    ]
    mentioned = {a for s in stats for a in s.attrs}
    order = tuple(a for a in ctx.schema.order if a in mentioned)
    dims: Dict[str, int] = {}
    for s in stats:
        for a, d in zip(s.attrs, s.dims):
            dims.setdefault(a, int(d))

    signature = build_signature(expr, order, stats, output, semiring, backend)
    record = cache.lookup(signature)
    if record is not None and not record.stale:
        return TuneResult(
            decision=record.decision, signature=signature, cache="hit",
            predicted_s=record.decision.predicted_s,
            considered=int(record.explain.get("considered", 0)),
            candidates=list(record.explain.get("candidates", [])),
            profile_measured=profile.measured,
        )
    correction = record.correction if record is not None else 1.0

    out_attrs = tuple(output.attrs) if output is not None else ()
    out_fmts = tuple(output.formats) if output is not None else ()
    per_unit = profile.per_unit(backend)
    scored = []
    for search in ("linear", "binary"):
        e = costmodel.estimate(order, stats, out_attrs, dims, search=search)
        out_units = costmodel.output_units(out_fmts, out_attrs, dims,
                                           e.out_nnz)
        for opt in (2, 0):
            pen = costmodel.opt_penalty(backend, opt)
            units = e.units * pen + out_units
            scored.append({
                "search": search, "opt_level": opt, "units": units,
                "out_nnz": e.out_nnz,
                "serial_s": units * per_unit * correction,
            })
    scored.sort(key=lambda c: c["units"])
    best = scored[0]

    specs = {
        var: TensorInput(var, t.attrs, t.formats, ops)
        for var, t in inputs.items()
    }
    executor, shards, predicted_s = _executor_choice(
        best["serial_s"], specs, output, ops, profile, name,
    )

    decision = Decision(
        order=None, output_formats=None,
        opt_level=best["opt_level"], search=best["search"],
        executor=executor, shards=shards,
        predicted_s=predicted_s, predicted_units=best["units"],
    )
    explain = {
        "considered": len(scored),
        "candidates": [
            {"search": c["search"], "opt_level": c["opt_level"],
             "units": round(c["units"], 1)}
            for c in scored[:6]
        ],
    }
    cache.store(signature, decision, explain, correction=correction)
    return TuneResult(
        decision=decision, signature=signature,
        cache="stale" if record is not None else "miss",
        predicted_s=predicted_s, considered=len(scored),
        candidates=explain["candidates"],
        profile_measured=profile.measured,
    )


__all__ = [
    "TuneResult",
    "tune_einsum",
    "tune_build",
    "einsum_signature",
    "build_signature",
    "MAX_ENUM_ATTRS",
]
