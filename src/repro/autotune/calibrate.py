"""Machine calibration: convert cost-model units into seconds.

The cost model ranks plans in abstract units; deciding whether a shard
split *pays* needs real numbers — per-unit throughput of each backend
and the per-shard dispatch overhead of each executor.  BENCH_PR4/PR6
showed why these cannot be assumed: on the single-core bench container
``os.cpu_count()``-based heuristics predict speedups that do not
exist.  So the profile is *measured* (a few micro-benchmarks, once per
machine), persisted next to the kernel cache with the same
checksummed-envelope + quarantine machinery, and loaded thereafter.

Measurement is never implicit: an unset/``auto``
``REPRO_TUNE_CALIBRATE`` loads a persisted profile or falls back to
conservative defaults (``measured=False``, shard speedup 1.0 — the
tuner will then never choose to shard, which is the safe default).
Set ``REPRO_TUNE_CALIBRATE=1`` (measure once, reuse thereafter) or
``force`` (re-measure), or call :func:`calibrate` explicitly.
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import dataclass, field, asdict
from pathlib import Path
from typing import Dict, Optional

from repro.compiler import resilience
from repro.compiler.cache import _payload_digest, default_cache_dir
from repro.compiler.resilience import logger

PROFILE_VERSION = 1
PROFILE_NAME = "atun_cal.json"

#: conservative per-unit seconds when nothing was measured (rough
#: orders of magnitude for a scalar C loop step vs interpreted Python)
DEFAULT_PER_OP_S = {"c": 4e-9, "python": 4e-7, "interp": 2e-6}
#: per-shard dispatch overhead guesses (thread spawn, fork, pool rpc)
DEFAULT_DISPATCH_S = {"serial": 0.0, "thread": 3e-4,
                      "process": 5e-2, "pool": 2e-3}


def tune_cache_dir() -> Path:
    """Where calibration + decision records live
    (``REPRO_TUNE_CACHE_DIR``, default: the kernel cache dir)."""
    env = os.environ.get(resilience.ENV_TUNE_CACHE_DIR)
    if env:
        return Path(env)
    return default_cache_dir()


@dataclass
class CalibrationProfile:
    """Measured machine constants the tuner prices plans with."""

    #: seconds per cost-model unit, per backend
    per_op_s: Dict[str, float] = field(
        default_factory=lambda: dict(DEFAULT_PER_OP_S))
    #: fixed per-shard dispatch cost, per executor
    dispatch_s: Dict[str, float] = field(
        default_factory=lambda: dict(DEFAULT_DISPATCH_S))
    #: measured speedup of a 2-shard run over serial, per executor
    #: (1.0 = sharding does not help on this machine)
    speedup2: Dict[str, float] = field(default_factory=dict)
    cpus: int = 1
    measured: bool = False
    machine: str = ""
    generated: str = ""

    def per_unit(self, backend: str) -> float:
        return self.per_op_s.get(backend, DEFAULT_PER_OP_S.get(backend, 4e-9))

    def shard_speedup(self, executor: str, shards: int) -> float:
        """Expected speedup at ``shards`` shards, extrapolated from the
        measured 2-shard point with diminishing returns and capped by
        the CPU count (Amdahl-ish, deliberately pessimistic)."""
        base = self.speedup2.get(executor, 1.0)
        if shards <= 1 or base <= 1.0:
            return 1.0
        import math

        gain = base ** math.log2(max(shards, 2))
        return min(gain, float(max(self.cpus, 1)), float(shards))

    def executor_time(self, work_s: float, executor: str, shards: int) -> float:
        """Predicted wall time of ``work_s`` of serial work under an
        executor with ``shards`` shards."""
        if executor in (None, "serial") or shards <= 1:
            return work_s
        disp = self.dispatch_s.get(executor, 1e-3)
        return work_s / self.shard_speedup(executor, shards) + disp * shards


def default_profile() -> CalibrationProfile:
    return CalibrationProfile(cpus=os.cpu_count() or 1,
                              machine=platform.machine())


# ----------------------------------------------------------------------
# persistence (checksummed envelope + quarantine, as the kernel cache)
# ----------------------------------------------------------------------
def _profile_path() -> Path:
    return tune_cache_dir() / PROFILE_NAME


def store_profile(profile: CalibrationProfile) -> None:
    payload = dict(asdict(profile), version=PROFILE_VERSION)
    record = {"sha256": _payload_digest(payload), "payload": payload}
    path = _profile_path()
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        with resilience.file_lock(path):
            resilience.atomic_write_text(path, json.dumps(record))
    except OSError as exc:
        logger.warning("could not store calibration profile %s (%s)", path, exc)


def load_profile() -> Optional[CalibrationProfile]:
    """The persisted profile, or None.  Corruption (bad JSON, failed
    checksum, missing fields) quarantines the file and returns None."""
    path = _profile_path()
    try:
        text = path.read_text()
    except FileNotFoundError:
        return None
    except OSError as exc:
        logger.warning("calibration profile %s unreadable (%s)", path, exc)
        return None
    try:
        record = json.loads(text)
        payload = record["payload"]
        digest = record["sha256"]
    except (ValueError, TypeError, KeyError) as exc:
        logger.warning("corrupt calibration profile %s (%s: %s); quarantining",
                       path, type(exc).__name__, exc)
        resilience.quarantine(path)
        return None
    if digest != _payload_digest(payload):
        logger.warning("calibration profile %s failed its checksum; "
                       "quarantining", path)
        resilience.quarantine(path)
        return None
    if payload.get("version") != PROFILE_VERSION:
        return None
    try:
        return CalibrationProfile(
            per_op_s=dict(payload["per_op_s"]),
            dispatch_s=dict(payload["dispatch_s"]),
            speedup2=dict(payload.get("speedup2", {})),
            cpus=int(payload.get("cpus", 1)),
            measured=bool(payload.get("measured", False)),
            machine=str(payload.get("machine", "")),
            generated=str(payload.get("generated", "")),
        )
    except (KeyError, TypeError, ValueError) as exc:
        logger.warning("calibration profile %s malformed (%s); quarantining",
                       path, exc)
        resilience.quarantine(path)
        return None


# ----------------------------------------------------------------------
# measurement
# ----------------------------------------------------------------------
def _best(fn, reps: int = 3) -> float:
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def measure_profile(executors=("thread", "pool")) -> CalibrationProfile:
    """Micro-benchmark this machine: per-unit throughput per backend,
    dispatch overhead and 2-shard speedup per executor.

    A seeded SpMV reference workload keeps the measurement deterministic
    in shape; every executor probe is individually fault-tolerant (a
    broken executor simply keeps its conservative default).
    """
    from repro.autotune.costmodel import OperandStats, estimate
    from repro.compiler.kernel import OutputSpec, compile_kernel
    from repro.krelation import Schema
    from repro.lang import Sum, TypeContext, Var
    from repro.semirings import FLOAT
    from repro.workloads import dense_vector, sparse_matrix

    profile = default_profile()
    profile.measured = True
    profile.generated = time.strftime("%Y-%m-%dT%H:%M:%S")

    n = 2000
    A = sparse_matrix(n, n, 0.01, attrs=("i", "j"), seed=11)
    x = dense_vector(n, attr="j", seed=12)
    ctx = TypeContext(Schema.of(i=None, j=None),
                      {"A": {"i", "j"}, "x": {"j"}})
    expr = Sum("j", Var("A") * Var("x"))
    out = OutputSpec(("i",), ("dense",), (n,))
    tensors = {"A": A, "x": x}
    stats = [OperandStats.from_tensor("A", A),
             OperandStats.from_tensor("x", x)]
    units = estimate(("i", "j"), stats, ("i",), {"i": n, "j": n}).units

    backends = ["python"]
    if resilience.toolchain_available():
        backends.insert(0, "c")
    kernels = {}
    for backend in backends:
        try:
            k = compile_kernel(expr, ctx, tensors, out, semiring=FLOAT,
                               backend=backend, cache=False,
                               name="atun_cal")
            t = _best(lambda: k.run(tensors, parallel=False), reps=3)
            profile.per_op_s[backend] = max(t / max(units, 1.0), 1e-12)
            kernels[backend] = (k, t)
        except Exception as exc:  # a broken backend keeps its default
            logger.warning("calibration: backend %r probe failed (%s)",
                           backend, exc)

    ref_backend = backends[0]
    if ref_backend in kernels:
        kernel, t_serial = kernels[ref_backend]
        for executor in executors:
            try:
                t_two = _best(
                    lambda: kernel.run(tensors, parallel=executor,
                                       workers=2, shards=2),
                    reps=3,
                )
                profile.speedup2[executor] = max(t_serial / max(t_two, 1e-9),
                                                 0.1)
                # dispatch cost: single-shard run through the executor
                # vs the in-process run — pure machinery, no extra work
                t_one = _best(
                    lambda: kernel.run(tensors, parallel=executor,
                                       workers=1, shards=1),
                    reps=3,
                )
                profile.dispatch_s[executor] = max(t_one - t_serial, 1e-6)
            except Exception as exc:
                logger.warning("calibration: executor %r probe failed (%s)",
                               executor, exc)
        if "pool" in profile.speedup2:
            # the pool accounts its own per-call machinery overhead;
            # prefer that direct measurement when calls have happened
            try:
                from repro.runtime.pool import get_shared_pool

                measured = get_shared_pool().stats.avg_overhead_s
                if measured > 0:
                    profile.dispatch_s["pool"] = measured
            except Exception:
                pass
    return profile


# ----------------------------------------------------------------------
# the profile the tuner actually uses
# ----------------------------------------------------------------------
_active: Optional[CalibrationProfile] = None


def _calibrate_requested() -> Optional[str]:
    raw = os.environ.get(resilience.ENV_TUNE_CALIBRATE, "").strip().lower()
    if not raw or raw == "auto":
        return None
    if raw in resilience._FALSEY:
        return "off"
    if raw == "force":
        return "force"
    return "on"


def get_profile() -> CalibrationProfile:
    """The process-wide calibration profile.

    ``REPRO_TUNE_CALIBRATE`` unset/``auto``: persisted profile if one
    exists, else conservative defaults — never measures implicitly.
    Falsey: defaults only (ignores any persisted profile).  Truthy:
    measure once and persist; ``force``: re-measure now.
    """
    global _active
    if _active is not None:
        return _active
    mode = _calibrate_requested()
    if mode == "off":
        _active = default_profile()
        return _active
    if mode == "force":
        _active = measure_profile()
        store_profile(_active)
        return _active
    loaded = load_profile()
    if loaded is not None:
        _active = loaded
        return _active
    if mode == "on":
        _active = measure_profile()
        store_profile(_active)
        return _active
    _active = default_profile()
    return _active


def calibrate(force: bool = False) -> CalibrationProfile:
    """Measure (or load) the machine profile explicitly and persist it."""
    global _active
    if not force:
        loaded = load_profile()
        if loaded is not None and loaded.measured:
            _active = loaded
            return loaded
    profile = measure_profile()
    store_profile(profile)
    _active = profile
    return profile


def reset_profile_cache() -> None:
    """Drop the in-process profile memo (tests switch cache dirs)."""
    global _active
    _active = None


__all__ = [
    "CalibrationProfile",
    "calibrate",
    "default_profile",
    "get_profile",
    "load_profile",
    "measure_profile",
    "reset_profile_cache",
    "store_profile",
    "tune_cache_dir",
    "PROFILE_NAME",
]
