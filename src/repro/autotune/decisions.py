"""Persistent decision cache + outcome feedback loop.

A *decision* is everything the tuner chose for one workload signature:
contraction ordering, output format stack, search strategy, opt level,
executor and shard count, plus the cost prediction it was based on.
Decisions are keyed by a bucketed workload signature — operand
shapes/formats and per-level density buckets plus the expression — so
a warm server never re-searches for traffic it has seen before, across
restarts.

Records live next to the kernel cache (one ``atun_<sig>.json`` per
signature) and use the same crash-safety machinery: per-key flock,
write-temp-and-rename publication, a sha256 checksum over the
canonical body, and quarantine-and-rebuild on any corruption.

Feedback: the serving layer reports each query's observed runtime via
:meth:`DecisionCache.record_outcome`.  An EWMA of observations is kept
with the record; when it drifts outside a 3× band around the
prediction the record is marked *stale* and carries a correction
factor, and the next lookup re-searches instead of trusting it.
"""

from __future__ import annotations

import json
import threading
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from repro.compiler import resilience
from repro.compiler.cache import _payload_digest
from repro.compiler.resilience import logger

from repro.autotune.calibrate import tune_cache_dir

DECISION_VERSION = 1
#: EWMA weight of the newest observation
EWMA_ALPHA = 0.4
#: prediction is "wrong" when the observed EWMA leaves this band
STALE_RATIO = 3.0
#: observations before staleness can trigger at all
STALE_MIN_COUNT = 3


@dataclass(frozen=True)
class Decision:
    """One tuned plan, as stored and as applied."""

    #: global attribute ordering (None = caller/appearance order)
    order: Optional[Tuple[str, ...]] = None
    #: output format stack (None = caller default)
    output_formats: Optional[Tuple[str, ...]] = None
    opt_level: Optional[int] = None
    search: str = "linear"
    #: shard executor ("thread" | "process" | "pool"); None = serial
    executor: Optional[str] = None
    shards: Optional[int] = None
    #: sparse-output capacity to pre-allocate (skips auto-grow retries)
    capacity_hint: Optional[int] = None
    predicted_s: float = 0.0
    predicted_units: float = 0.0

    def as_dict(self) -> Dict[str, Any]:
        d = asdict(self)
        d["order"] = list(self.order) if self.order else None
        d["output_formats"] = (
            list(self.output_formats) if self.output_formats else None
        )
        return d

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "Decision":
        return cls(
            order=tuple(d["order"]) if d.get("order") else None,
            output_formats=(
                tuple(d["output_formats"]) if d.get("output_formats") else None
            ),
            opt_level=d.get("opt_level"),
            search=d.get("search", "linear"),
            executor=d.get("executor"),
            shards=d.get("shards"),
            capacity_hint=d.get("capacity_hint"),
            predicted_s=float(d.get("predicted_s", 0.0)),
            predicted_units=float(d.get("predicted_units", 0.0)),
        )


@dataclass
class DecisionRecord:
    """A cached decision plus its observed-outcome statistics."""

    signature: str
    decision: Decision
    explain: Dict[str, Any] = field(default_factory=dict)
    count: int = 0
    ewma_s: float = 0.0
    stale: bool = False
    correction: float = 1.0


class DecisionCache:
    """Two-tier (memo + disk) decision store, thread-safe."""

    def __init__(self, cache_dir: Optional[Path] = None) -> None:
        self._lock = threading.Lock()
        self._memo: Dict[str, DecisionRecord] = {}
        self._cache_dir = cache_dir
        self.hits = 0
        self.misses = 0

    def cache_dir(self) -> Path:
        return self._cache_dir if self._cache_dir is not None else tune_cache_dir()

    def _path(self, signature: str) -> Path:
        return self.cache_dir() / f"atun_{signature[:24]}.json"

    # ------------------------------------------------------------------
    def lookup(self, signature: str) -> Optional[DecisionRecord]:
        """The cached record for ``signature``, or None.  Stale records
        (observed runtime drifted out of the prediction band) are
        returned too — callers check ``record.stale`` and re-search,
        reusing ``record.correction`` to debias the next prediction."""
        with self._lock:
            rec = self._memo.get(signature)
        if rec is None:
            rec = self._load(signature)
            if rec is not None:
                with self._lock:
                    self._memo[signature] = rec
        with self._lock:
            if rec is None:
                self.misses += 1
            else:
                self.hits += 1
        return rec

    def store(
        self,
        signature: str,
        decision: Decision,
        explain: Optional[Dict[str, Any]] = None,
        correction: float = 1.0,
    ) -> DecisionRecord:
        rec = DecisionRecord(signature, decision, explain or {},
                             correction=correction)
        with self._lock:
            self._memo[signature] = rec
        self._persist(rec)
        return rec

    def record_outcome(self, signature: str, observed_s: float) -> None:
        """Fold one observed runtime into the record's EWMA; mark the
        record stale when the EWMA leaves the prediction band.  Disk
        writes are throttled (first few observations, then every 16th)
        so a hot query does not rewrite its record per request."""
        with self._lock:
            rec = self._memo.get(signature)
        if rec is None:
            rec = self._load(signature)
            if rec is None:
                return
            with self._lock:
                self._memo[signature] = rec
        with self._lock:
            rec.count += 1
            rec.ewma_s = (
                observed_s if rec.count == 1
                else (1 - EWMA_ALPHA) * rec.ewma_s + EWMA_ALPHA * observed_s
            )
            predicted = rec.decision.predicted_s
            if (
                rec.count >= STALE_MIN_COUNT
                and predicted > 0
                and not (
                    predicted / STALE_RATIO
                    <= rec.ewma_s
                    <= predicted * STALE_RATIO
                )
            ):
                rec.stale = True
                rec.correction = rec.ewma_s / predicted
            persist = rec.count <= STALE_MIN_COUNT or rec.count % 16 == 0
        if persist or rec.stale:
            self._persist(rec)

    def invalidate(self, signature: str) -> None:
        with self._lock:
            self._memo.pop(signature, None)
        path = self._path(signature)
        if path.exists():
            resilience.quarantine(path)

    def clear_memo(self) -> None:
        with self._lock:
            self._memo.clear()
            self.hits = 0
            self.misses = 0

    # ------------------------------------------------------------------
    # disk tier
    # ------------------------------------------------------------------
    def _persist(self, rec: DecisionRecord) -> None:
        payload = {
            "version": DECISION_VERSION,
            "signature": rec.signature,
            "decision": rec.decision.as_dict(),
            "explain": rec.explain,
            "count": rec.count,
            "ewma_s": rec.ewma_s,
            "stale": rec.stale,
            "correction": rec.correction,
        }
        record = {"sha256": _payload_digest(payload), "payload": payload}
        path = self._path(rec.signature)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            with resilience.file_lock(path):
                resilience.atomic_write_text(path, json.dumps(record))
        except OSError as exc:
            logger.warning("could not store decision record %s (%s)",
                           path, exc)

    def _load(self, signature: str) -> Optional[DecisionRecord]:
        path = self._path(signature)
        try:
            text = path.read_text()
        except FileNotFoundError:
            return None
        except OSError as exc:
            logger.warning("decision record %s unreadable (%s)", path, exc)
            return None
        try:
            record = json.loads(text)
            payload = record["payload"]
            digest = record["sha256"]
        except (ValueError, TypeError, KeyError) as exc:
            logger.warning("corrupt decision record %s (%s: %s); quarantining",
                           path, type(exc).__name__, exc)
            resilience.quarantine(path)
            return None
        if digest != _payload_digest(payload):
            logger.warning("decision record %s failed its checksum; "
                           "quarantining", path)
            resilience.quarantine(path)
            return None
        if (
            payload.get("version") != DECISION_VERSION
            or payload.get("signature") != signature
        ):
            return None  # stale format or prefix collision: plain miss
        try:
            return DecisionRecord(
                signature=signature,
                decision=Decision.from_dict(payload["decision"]),
                explain=dict(payload.get("explain", {})),
                count=int(payload.get("count", 0)),
                ewma_s=float(payload.get("ewma_s", 0.0)),
                stale=bool(payload.get("stale", False)),
                correction=float(payload.get("correction", 1.0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            logger.warning("decision record %s malformed (%s); quarantining",
                           path, exc)
            resilience.quarantine(path)
            return None


#: the process-wide decision cache the tuner and the server share
decision_cache = DecisionCache()


__all__ = [
    "Decision",
    "DecisionRecord",
    "DecisionCache",
    "decision_cache",
    "EWMA_ALPHA",
    "STALE_RATIO",
    "STALE_MIN_COUNT",
]
