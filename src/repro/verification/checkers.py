"""Executable checkers for the formal stream properties of Section 6."""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Tuple

from repro.semirings.base import Semiring
from repro.streams.base import STAR, Stream, is_stream
from repro.streams.combinators import add as stream_add
from repro.streams.combinators import contract as stream_contract
from repro.streams.combinators import mul as stream_mul
from repro.streams.evaluate import evaluate, merge_values


class _FromState(Stream):
    """The same stream automaton started at a different state."""

    __slots__ = ("inner", "_q",)

    def __init__(self, inner: Stream, q: Any) -> None:
        super().__init__(inner.attr, inner.shape, inner.semiring)
        self.inner = inner
        self._q = q

    @property
    def q0(self) -> Any:
        return self._q

    def valid(self, q):
        return self.inner.valid(q)

    def ready(self, q):
        return self.inner.ready(q)

    def index(self, q):
        return self.inner.index(q)

    def value(self, q):
        return self.inner.value(q)

    def skip(self, q, i, r):
        return self.inner.skip(q, i, r)


def probe_indices(stream: Stream, max_steps: int = 10_000) -> List[Any]:
    """Index values worth probing skip with: every emitted index plus
    integer neighbours when indices are integers."""
    seen: List[Any] = []
    for q in stream.states(max_steps=max_steps):
        if stream.valid(q):
            seen.append(stream.index(q))
    out = []
    for i in sorted(set(seen)):
        out.append(i)
        if isinstance(i, int):
            out.extend((i - 1, i + 1))
    return sorted(set(out)) if out else [0]


def check_monotone(stream: Stream, max_steps: int = 10_000) -> bool:
    """index(q) <= index(skip(q, (i, r))) for all reachable q and probes."""
    if not is_stream(stream):
        return True
    if stream.attr is STAR:
        # dummy levels have the trivial order; check their values
        for q in stream.states(max_steps=max_steps):
            if stream.ready(q) and is_stream(stream.value(q)):
                if not check_monotone(stream.value(q), max_steps):
                    return False
        return True
    probes = probe_indices(stream, max_steps)
    for q in stream.states(max_steps=max_steps):
        here = stream.index(q)
        for i in probes:
            for r in (False, True):
                q2 = stream.skip(q, i, r)
                if stream.valid(q2) and stream.index(q2) < here:
                    return False
        if stream.ready(q) and is_stream(stream.value(q)):
            if not check_monotone(stream.value(q), max_steps):
                return False
    return True


def check_strictly_monotone(stream: Stream, max_steps: int = 10_000) -> bool:
    """Monotone, and δ from a ready state strictly increases the index
    (Section 6.2 — required for multiplication to be sound)."""
    if not is_stream(stream):
        return True
    if not check_monotone(stream, max_steps):
        return False
    if stream.attr is STAR:
        return True  # dummy levels are exempt (and indeed not strict)
    for q in stream.states(max_steps=max_steps):
        if stream.ready(q):
            q2 = stream.next(q)
            if stream.valid(q2) and not (stream.index(q2) > stream.index(q)):
                return False
            if is_stream(stream.value(q)) and not check_strictly_monotone(
                stream.value(q), max_steps
            ):
                return False
    return True


def _eval_at(stream: Stream, q: Any, j: Any) -> Any:
    """⟦stream from state q⟧(j): the evaluation restricted to index j."""
    value = evaluate(_FromState(stream, q))
    if isinstance(value, dict):
        return value.get(j, None)
    return value


def check_lawful(stream: Stream, max_steps: int = 10_000) -> bool:
    """Skipping to (i, r) must not change evaluation at any j ≥ (i, r)
    — i.e. at j > i, or at j = i when r = 0 (Section 6.1)."""
    if not is_stream(stream) or stream.attr is STAR:
        return True
    probes = probe_indices(stream, max_steps)
    states = list(stream.states(max_steps=max_steps))
    for q in states:
        for i in probes:
            for r in (False, True):
                q2 = stream.skip(q, i, r)
                for j in probes:
                    if j < i or (j == i and r):
                        continue  # (i, r) > (j, 0): may be affected
                    before = _eval_at(stream, q, j)
                    after = _eval_at(stream, q2, j)
                    if not _values_eq(before, after, stream.semiring):
                        return False
    return True


def _values_eq(a: Any, b: Any, semiring: Semiring) -> bool:
    if a is None and b is None:
        return True
    if isinstance(a, dict) or isinstance(b, dict):
        a = a or {}
        b = b or {}
        keys = set(a) | set(b)
        return all(_values_eq(a.get(k), b.get(k), semiring) for k in keys)
    if a is None:
        return semiring.is_zero(b)
    if b is None:
        return semiring.is_zero(a)
    return semiring.eq(a, b)


# ----------------------------------------------------------------------
# Theorem 6.1: ⟦-⟧ is a homomorphism
# ----------------------------------------------------------------------
def _dict_mul(a: Any, b: Any, semiring: Semiring) -> Any:
    if not isinstance(a, dict):
        return semiring.mul(a, b)
    out = {}
    for k in a.keys() & b.keys():
        out[k] = _dict_mul(a[k], b[k], semiring)
    return out


def check_homomorphism_mul(x: Stream, y: Stream) -> bool:
    """⟦x · y⟧ = ⟦x⟧ · ⟦y⟧ for same-shape streams."""
    semiring = x.semiring
    lhs = evaluate(stream_mul(x, y, semiring))
    rhs = _dict_mul(evaluate(x), evaluate(y), semiring)
    return _values_eq(_prune(lhs, semiring), _prune(rhs, semiring), semiring)


def check_homomorphism_add(x: Stream, y: Stream) -> bool:
    """⟦x + y⟧ = ⟦x⟧ + ⟦y⟧ for same-shape streams."""
    semiring = x.semiring
    lhs = evaluate(stream_add(x, y, semiring))
    rhs = merge_values(semiring, evaluate(x), evaluate(y))
    return _values_eq(_prune(lhs, semiring), _prune(rhs, semiring), semiring)


def check_homomorphism_contract(x: Stream) -> bool:
    """⟦Σ x⟧ = Σ_i ⟦x⟧(i) for a stream with a real outer attribute."""
    semiring = x.semiring
    lhs = evaluate(stream_contract(x))
    evaluated = evaluate(x)
    if evaluated:
        rhs: Any = None
        for v in evaluated.values():
            rhs = v if rhs is None else merge_values(semiring, rhs, v)
    else:
        rhs = {} if x.shape[1:] else semiring.zero
    return _values_eq(_prune(lhs, semiring), _prune(rhs, semiring), semiring)


def check_shard_parity(
    kernel,
    tensors: Any,
    shards: int = 4,
    executor: str = "serial",
    split_attr: Optional[str] = None,
) -> bool:
    """Sharded execution equals the unsharded oracle, value for value.

    The runtime counterpart of Theorem 6.1: partitioning a split index
    and merging with ⊕/concatenation must be *exactly* the program's
    one-shot denotation (the semiring's own ``eq`` decides value
    equality, so float tolerance applies where the paper applies it).
    Returns True vacuously when the kernel admits no multi-shard plan —
    the runtime's quiet degradation to a single run is itself the
    contract being checked.
    """
    expected = kernel._run_single(tensors)
    actual = kernel.run_sharded(
        tensors, executor=executor, shards=shards, split_attr=split_attr
    )
    semiring = kernel.ops.semiring
    if not hasattr(expected, "to_dict"):
        return semiring.eq(expected, actual)
    if expected.dims != actual.dims or expected.attrs != actual.attrs:
        return False
    lhs, rhs = expected.to_dict(), actual.to_dict()
    if lhs.keys() != rhs.keys():
        return False
    return all(semiring.eq(lhs[c], rhs[c]) for c in lhs)


def check_supervised_parity(kernel, tensors: Any) -> bool:
    """A supervised run equals the in-process oracle, value for value.

    Supervision only relocates execution — same compiled artifact, same
    inputs, a child process instead of the host — so the result must be
    *identical*, not merely tolerance-close: the output crosses the
    pipe as the very arrays the child assembled.  The same holds for
    the circuit breaker's pure-Python fallback by PR 1's cross-backend
    parity, so this checker is the supervised leg of that argument.
    """
    expected = kernel._run_single(tensors)
    actual = kernel.run(tensors, parallel=False, supervised=True)
    semiring = kernel.ops.semiring
    if not hasattr(expected, "to_dict"):
        return semiring.eq(expected, actual)
    if expected.dims != actual.dims or expected.attrs != actual.attrs:
        return False
    lhs, rhs = expected.to_dict(), actual.to_dict()
    if lhs.keys() != rhs.keys():
        return False
    return all(semiring.eq(lhs[c], rhs[c]) for c in lhs)


def _prune(value: Any, semiring: Semiring) -> Any:
    """Drop zero leaves and empty sub-dicts for structural comparison."""
    if not isinstance(value, dict):
        return value
    out = {}
    for k, v in value.items():
        pv = _prune(v, semiring)
        if isinstance(pv, dict):
            if pv:
                out[k] = pv
        elif not semiring.is_zero(pv):
            out[k] = pv
    return out
