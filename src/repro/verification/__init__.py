"""Executable counterparts of the paper's formal properties (Section 6).

The paper mechanizes its correctness theorem in Lean; this package
provides the same properties as *executable checkers* over the runtime
stream model, used by hypothesis property tests:

* :func:`check_monotone` / :func:`check_strictly_monotone` — the
  monotonicity conditions of Section 6.2,
* :func:`check_lawful` — the lawfulness condition of Section 6.1
  (skipping to ``(i, r)`` does not change evaluation at ``j ≥ (i, r)``),
* :func:`check_homomorphism_mul` / ``…_add`` / ``…_contract`` —
  instances of Theorem 6.1 (⟦–⟧ : 𝒮 → 𝒯 is a homomorphism),
* :func:`check_shard_parity` — the runtime corollary of Theorem 6.1:
  sharded execution with ⊕-merge equals the one-shot denotation,
* :func:`check_supervised_parity` — supervised (child-process)
  execution is pure relocation: bit-identical to the in-process run.
"""

from repro.verification.checkers import (
    check_homomorphism_add,
    check_shard_parity,
    check_homomorphism_contract,
    check_homomorphism_mul,
    check_lawful,
    check_monotone,
    check_strictly_monotone,
    check_supervised_parity,
)

__all__ = [
    "check_monotone",
    "check_strictly_monotone",
    "check_lawful",
    "check_homomorphism_mul",
    "check_homomorphism_add",
    "check_homomorphism_contract",
    "check_shard_parity",
    "check_supervised_parity",
]
