"""Packing relations into level-format tensors.

Columns with arbitrary ordered values are dictionary-encoded (order
preserved), then the relation becomes a tensor over its key columns.
The tensor's value is 1 (boolean/bag presence) or a designated
*measure* column — the K-relation view where ``SUM(measure) GROUP BY
keys`` is just Σ over the non-output attributes.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Mapping, Optional, Sequence, Tuple

from repro.data.dictionary import Dictionary
from repro.data.tensor import Tensor
from repro.relational.relation import Relation
from repro.semirings.base import Semiring
from repro.semirings.instances import BOOL, FLOAT


class ColumnEncoder:
    """Shared dictionary encodings for attributes used across relations.

    Attributes that join with each other must share one dictionary, so
    equal values get equal codes; the encoder keys dictionaries by
    *attribute* name and builds each lazily from all values registered
    for it.
    """

    def __init__(self) -> None:
        self._pending: Dict[str, set] = {}
        self._dicts: Dict[str, Dictionary] = {}

    def register(self, attr: str, values) -> None:
        if attr in self._dicts:
            raise RuntimeError(f"dictionary for {attr!r} already frozen")
        self._pending.setdefault(attr, set()).update(values)

    def dictionary(self, attr: str) -> Dictionary:
        if attr not in self._dicts:
            if attr not in self._pending:
                raise KeyError(f"no values registered for attribute {attr!r}")
            self._dicts[attr] = Dictionary(self._pending.pop(attr))
        return self._dicts[attr]

    def dim(self, attr: str) -> int:
        return len(self.dictionary(attr))

    def encode(self, attr: str, value: Any) -> int:
        return self.dictionary(attr).encode(value)

    def decode(self, attr: str, code: int) -> Any:
        return self.dictionary(attr).decode(code)


def relation_to_tensor(
    rel: Relation,
    key_columns: Sequence[str],
    encoder: Optional[ColumnEncoder] = None,
    formats: Optional[Sequence[str]] = None,
    measure: Optional[Callable[[Dict[str, Any]], float]] = None,
    semiring: Optional[Semiring] = None,
    dims: Optional[Mapping[str, int]] = None,
    attr_names: Optional[Mapping[str, str]] = None,
) -> Tensor:
    """Pack a relation into a tensor over its key columns.

    * ``encoder`` — dictionary-encodes non-integer key columns; integer
      columns may instead take their dimension from ``dims``.
    * ``measure`` — a function of the row-dict giving the tensor value
      (default: 1, i.e. presence).  Rows with equal keys have their
      measures summed, which is the correct K-relation semantics for
      SUM aggregates.
    * ``attr_names`` — rename columns to schema attributes.
    """
    attr_names = dict(attr_names or {})
    keys = list(key_columns)
    attrs = [attr_names.get(c, c) for c in keys]
    if semiring is None:
        semiring = FLOAT if measure is not None else BOOL
    if formats is None:
        formats = ["sparse"] * len(keys)

    def code_of(attr: str, col: str, value: Any) -> int:
        if encoder is not None:
            try:
                return encoder.encode(attr, value)
            except KeyError:
                pass
        if isinstance(value, (int,)) and not isinstance(value, bool):
            return value
        raise TypeError(
            f"column {col!r} value {value!r} needs a dictionary encoding"
        )

    entries: Dict[Tuple[int, ...], Any] = {}
    one = semiring.one
    for row in rel.rows:
        rowd = dict(zip(rel.columns, row))
        key = tuple(code_of(a, c, rowd[c]) for a, c in zip(attrs, keys))
        val = measure(rowd) if measure is not None else one
        if key in entries:
            entries[key] = semiring.add(entries[key], val)
        else:
            entries[key] = val

    sizes = []
    for pos, (a, c) in enumerate(zip(attrs, keys)):
        if dims is not None and a in dims:
            sizes.append(dims[a])
        elif encoder is not None and _has_dict(encoder, a):
            sizes.append(encoder.dim(a))
        else:
            sizes.append(1 + max((k[pos] for k in entries), default=0))
    return Tensor.from_entries(attrs, formats, sizes, entries, semiring)


def _has_dict(encoder: ColumnEncoder, attr: str) -> bool:
    try:
        encoder.dictionary(attr)
        return True
    except KeyError:
        return False
