"""Named-perspective relations (Section 4.2's tuples-as-maps view)."""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Mapping, Sequence, Tuple


class Relation:
    """A table: named columns plus a list of row tuples.

    This is a plain data container used by the frontends and the
    baseline engines; the compiled path packs it into level-format
    tensors via :mod:`repro.relational.encode`.
    """

    def __init__(self, columns: Sequence[str], rows: Iterable[Tuple[Any, ...]]) -> None:
        self.columns: Tuple[str, ...] = tuple(columns)
        if len(set(self.columns)) != len(self.columns):
            raise ValueError(f"duplicate column names: {self.columns}")
        self.rows: List[Tuple[Any, ...]] = [tuple(r) for r in rows]
        for r in self.rows:
            if len(r) != len(self.columns):
                raise ValueError(
                    f"row arity {len(r)} != {len(self.columns)} columns"
                )

    @classmethod
    def from_dicts(cls, columns: Sequence[str], dicts: Iterable[Mapping[str, Any]]) -> "Relation":
        return cls(columns, (tuple(d[c] for c in columns) for d in dicts))

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def column(self, name: str) -> List[Any]:
        k = self._idx(name)
        return [r[k] for r in self.rows]

    def _idx(self, name: str) -> int:
        try:
            return self.columns.index(name)
        except ValueError:
            raise KeyError(f"no column {name!r} in {self.columns}") from None

    def project(self, columns: Sequence[str]) -> "Relation":
        """Keep the listed columns (set semantics: duplicates removed)."""
        ks = [self._idx(c) for c in columns]
        seen = set()
        rows = []
        for r in self.rows:
            t = tuple(r[k] for k in ks)
            if t not in seen:
                seen.add(t)
                rows.append(t)
        return Relation(columns, rows)

    def select(self, predicate: Callable[[Dict[str, Any]], bool]) -> "Relation":
        """Filter rows with a predicate over a row-dict."""
        rows = [r for r in self.rows if predicate(dict(zip(self.columns, r)))]
        return Relation(self.columns, rows)

    def rename(self, mapping: Mapping[str, str]) -> "Relation":
        return Relation([mapping.get(c, c) for c in self.columns], self.rows)

    def __repr__(self) -> str:
        return f"Relation({', '.join(self.columns)}; {len(self.rows)} rows)"
