"""A convenience layer for running aggregate queries through Etch.

A :class:`Query` bundles a global attribute ordering, tensor-encoded
relations, and a contraction expression; ``run`` compiles and executes
the fused kernel.  This plays the role a query planner plays in a
DBMS: the user (or the TPC-H driver) picks the column ordering and the
per-table formats, "analogous to those made by a query optimizer"
(Section 8.2).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence, Tuple, Union

from repro.compiler.formats import FunctionInput
from repro.compiler.kernel import KernelBuilder, OutputSpec
from repro.data.tensor import Tensor
from repro.krelation.schema import Attribute, Schema
from repro.lang.ast import Expr
from repro.lang.typing import TypeContext
from repro.semirings.base import Semiring
from repro.semirings.instances import FLOAT


class Query:
    """An aggregate contraction query over tensor-encoded relations."""

    def __init__(self, attr_order: Sequence[str], semiring: Semiring = FLOAT) -> None:
        self.attr_order = tuple(attr_order)
        self.semiring = semiring
        self._inputs: Dict[str, Union[Tensor, FunctionInput]] = {}
        self._shapes: Dict[str, frozenset] = {}

    def bind(self, name: str, source: Union[Tensor, FunctionInput]) -> "Query":
        """Bind a relation tensor or a computed predicate."""
        attrs = source.attrs
        self._inputs[name] = source
        self._shapes[name] = frozenset(attrs)
        return self

    def compile(
        self,
        expr: Expr,
        output: Optional[OutputSpec] = None,
        backend: str = "c",
        search: str = "linear",
        name: str = "query",
        attr_dims: Optional[Mapping[str, int]] = None,
    ):
        schema = Schema(Attribute(a, None) for a in self.attr_order)
        ctx = TypeContext(schema, self._shapes)
        builder = KernelBuilder(ctx, self.semiring, backend=backend, search=search)
        return builder.build(expr, self._inputs, output, name=name, attr_dims=attr_dims)

    def run(
        self,
        expr: Expr,
        output: Optional[OutputSpec] = None,
        backend: str = "c",
        search: str = "linear",
        name: str = "query",
        capacity: Optional[int] = None,
        attr_dims: Optional[Mapping[str, int]] = None,
    ):
        kernel = self.compile(
            expr, output, backend=backend, search=search, name=name,
            attr_dims=attr_dims,
        )
        tensors = {
            k: v for k, v in self._inputs.items() if isinstance(v, Tensor)
        }
        return kernel.run(tensors, capacity=capacity)
