"""Relational algebra → ℒ, following the paper's Figure 6 exactly:

====================  ==========================================
relational operator   contraction expression
====================  ==========================================
union R ∪ S           R + S
natural join R ⋈ S    R · S    (broadcast · infers the ⇑s)
projection π_S'(R)    Σ over the dropped attributes
selection σ_p(R)      R · p    (p a boolean-valued K-relation)
rename ρ(R)           name_ρ(R)
====================  ==========================================

Over the boolean semiring this is set semantics; over ℕ, bag semantics;
over floats with measure-valued relations, SUM aggregation.
"""

from __future__ import annotations

from typing import FrozenSet, Mapping, Tuple

from repro.krelation.schema import ShapeError
from repro.lang.ast import Expr, Rename, Var, sum_over
from repro.lang.typing import TypeContext


class RAExpr:
    """Base class of the small relational-algebra AST."""

    def join(self, other: "RAExpr") -> "RAJoin":
        return RAJoin(self, other)

    def union(self, other: "RAExpr") -> "RAUnion":
        return RAUnion(self, other)

    def project(self, *attrs: str) -> "RAProject":
        return RAProject(tuple(attrs), self)

    def select(self, predicate_name: str) -> "RASelect":
        return RASelect(predicate_name, self)

    def rename(self, **mapping: str) -> "RARename":
        return RARename(dict(mapping), self)


class RATable(RAExpr):
    def __init__(self, name: str) -> None:
        self.name = name


class RAJoin(RAExpr):
    def __init__(self, left: RAExpr, right: RAExpr) -> None:
        self.left = left
        self.right = right


class RAUnion(RAExpr):
    def __init__(self, left: RAExpr, right: RAExpr) -> None:
        self.left = left
        self.right = right


class RAProject(RAExpr):
    def __init__(self, attrs: Tuple[str, ...], body: RAExpr) -> None:
        self.attrs = attrs
        self.body = body


class RASelect(RAExpr):
    """Selection by a named predicate variable (a boolean K-relation or
    a :class:`~repro.compiler.formats.FunctionInput`)."""

    def __init__(self, predicate: str, body: RAExpr) -> None:
        self.predicate = predicate
        self.body = body


class RARename(RAExpr):
    def __init__(self, mapping: Mapping[str, str], body: RAExpr) -> None:
        self.mapping = dict(mapping)
        self.body = body


def ra_shape(ra: RAExpr, ctx: TypeContext) -> FrozenSet[str]:
    """The output attribute set of a relational-algebra expression."""
    if isinstance(ra, RATable):
        return ctx.shape(ra.name)
    if isinstance(ra, RAJoin):
        return ra_shape(ra.left, ctx) | ra_shape(ra.right, ctx)
    if isinstance(ra, RAUnion):
        left = ra_shape(ra.left, ctx)
        right = ra_shape(ra.right, ctx)
        if left != right:
            raise ShapeError(f"union of different schemas: {left} vs {right}")
        return left
    if isinstance(ra, RAProject):
        body = ra_shape(ra.body, ctx)
        extra = set(ra.attrs) - body
        if extra:
            raise ShapeError(f"projection onto absent attributes {extra}")
        return frozenset(ra.attrs)
    if isinstance(ra, RASelect):
        body = ra_shape(ra.body, ctx)
        pred = ctx.shape(ra.predicate)
        if not pred <= body:
            raise ShapeError(
                f"predicate over {sorted(pred)} filters relation over {sorted(body)}"
            )
        return body
    if isinstance(ra, RARename):
        body = ra_shape(ra.body, ctx)
        return frozenset(ra.mapping.get(a, a) for a in body)
    raise TypeError(f"not a relational-algebra expression: {ra!r}")


def ra_to_expr(ra: RAExpr, ctx: TypeContext) -> Expr:
    """Translate relational algebra into ℒ (Figure 6)."""
    if isinstance(ra, RATable):
        return Var(ra.name)
    if isinstance(ra, RAJoin):
        return ra_to_expr(ra.left, ctx) * ra_to_expr(ra.right, ctx)
    if isinstance(ra, RAUnion):
        return ra_to_expr(ra.left, ctx) + ra_to_expr(ra.right, ctx)
    if isinstance(ra, RAProject):
        body = ra_to_expr(ra.body, ctx)
        dropped = sorted(ra_shape(ra.body, ctx) - set(ra.attrs))
        return sum_over(dropped, body)
    if isinstance(ra, RASelect):
        return ra_to_expr(ra.body, ctx) * Var(ra.predicate)
    if isinstance(ra, RARename):
        return Rename(ra.mapping, ra_to_expr(ra.body, ctx))
    raise TypeError(f"not a relational-algebra expression: {ra!r}")
