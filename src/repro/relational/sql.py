"""A small SQL front end for conjunctive aggregate queries.

The paper translates TPC-H queries from SQL to contraction expressions
by hand (Section 8.2); this module mechanizes the translation for the
conjunctive fragment those queries live in:

    SELECT <col | SUM(<arith>)> [, ...]
    FROM <table> [<alias>] [, ...]
    WHERE <col> = <col> [AND <col> = <literal>] [AND <col> <op> <literal>] ...
    [GROUP BY <col> [, ...]]

Equality predicates between columns are equi-joins; predicates against
literals are selections.  Queries are parsed into a :class:`SelectQuery`
and executed two ways:

* :func:`execute` — on :class:`~repro.relational.Relation` tables via
  the pairwise engine (a reference evaluator, cross-checked against
  SQLite in the tests);
* :meth:`SelectQuery.to_algebra` — as a relational-algebra expression
  (Figure 6's operators) over renamed tables, for inspection or further
  translation to ℒ.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.baselines import pairwise
from repro.relational.relation import Relation

_TOKEN = re.compile(
    r"\s*(?:(?P<num>\d+\.\d+|\d+)|(?P<str>'[^']*')|(?P<id>[A-Za-z_][A-Za-z_0-9.]*)"
    r"|(?P<op><=|>=|<>|!=|[(),*+\-/=<>]))"
)

_KEYWORDS = {"select", "from", "where", "group", "by", "and", "as", "sum", "count"}


class SqlError(ValueError):
    """Malformed or unsupported SQL."""


def _tokenize(sql: str) -> List[str]:
    tokens: List[str] = []
    pos = 0
    text = sql.strip().rstrip(";")
    while pos < len(text):
        m = _TOKEN.match(text, pos)
        if not m:
            raise SqlError(f"cannot tokenize SQL at: {text[pos:pos+20]!r}")
        tokens.append(m.group(m.lastgroup))
        pos = m.end()
    return tokens


@dataclass
class Comparison:
    """``left <op> right`` where each side is a column or a literal."""

    left: str
    op: str
    right: Any
    right_is_column: bool

    @property
    def is_join(self) -> bool:
        return self.op == "=" and self.right_is_column


@dataclass
class OutputColumn:
    """A plain column or SUM(arithmetic-over-columns)."""

    kind: str                   # "column" | "sum" | "count"
    column: Optional[str] = None
    terms: Optional[List[List[Tuple[float, str]]]] = None  # parsed SUM body
    expr_text: str = ""


@dataclass
class SelectQuery:
    outputs: List[OutputColumn]
    tables: List[Tuple[str, str]]          # (table, alias)
    predicates: List[Comparison] = field(default_factory=list)
    group_by: List[str] = field(default_factory=list)

    @property
    def is_aggregate(self) -> bool:
        return any(o.kind in ("sum", "count") for o in self.outputs)

    def to_algebra(self):
        """The query as a relational-algebra expression (Figure 6):
        tables renamed so join columns coincide, joined with ⋈,
        selections as named predicates, projection onto the outputs."""
        from repro.relational.algebra import RAJoin, RAProject, RASelect, RATable

        ra = RATable(self.tables[0][1])
        for _table, alias in self.tables[1:]:
            ra = RAJoin(ra, RATable(alias))
        for k, pred in enumerate(self.predicates):
            if not pred.is_join:
                ra = RASelect(f"pred{k}", ra)
        keep = [o.column for o in self.outputs if o.kind == "column"]
        keep += [c for c in self.group_by if c not in keep]
        if keep:
            ra = RAProject(tuple(keep), ra)
        return ra


class _Parser:
    def __init__(self, tokens: List[str]) -> None:
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> Optional[str]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> str:
        tok = self.peek()
        if tok is None:
            raise SqlError("unexpected end of query")
        self.pos += 1
        return tok

    def expect(self, word: str) -> None:
        tok = self.next()
        if tok.lower() != word:
            raise SqlError(f"expected {word!r}, got {tok!r}")

    def accept(self, word: str) -> bool:
        if self.peek() is not None and self.peek().lower() == word:
            self.pos += 1
            return True
        return False

    # -- clauses -------------------------------------------------------
    def parse(self) -> SelectQuery:
        self.expect("select")
        outputs = [self.output_column()]
        while self.accept(","):
            outputs.append(self.output_column())
        self.expect("from")
        tables = [self.table_ref()]
        while self.accept(","):
            tables.append(self.table_ref())
        predicates: List[Comparison] = []
        if self.accept("where"):
            predicates.append(self.comparison())
            while self.accept("and"):
                predicates.append(self.comparison())
        group_by: List[str] = []
        if self.accept("group"):
            self.expect("by")
            group_by.append(self.column())
            while self.accept(","):
                group_by.append(self.column())
        if self.peek() is not None:
            raise SqlError(f"unexpected trailing token {self.peek()!r}")
        return SelectQuery(outputs, tables, predicates, group_by)

    def output_column(self) -> OutputColumn:
        tok = self.peek()
        if tok is not None and tok.lower() == "sum":
            self.next()
            self.expect("(")
            terms, text = self.arithmetic()
            self.expect(")")
            self._alias_ok()
            return OutputColumn("sum", terms=terms, expr_text=text)
        if tok is not None and tok.lower() == "count":
            self.next()
            self.expect("(")
            self.expect("*")
            self.expect(")")
            self._alias_ok()
            return OutputColumn("count")
        col = self.column()
        self._alias_ok()
        return OutputColumn("column", column=col)

    def _alias_ok(self) -> None:
        if self.accept("as"):
            self.next()  # output aliases are parsed and ignored

    def column(self) -> str:
        tok = self.next()
        if not re.match(r"^[A-Za-z_][A-Za-z_0-9.]*$", tok) or tok.lower() in _KEYWORDS:
            raise SqlError(f"expected a column name, got {tok!r}")
        return tok

    def table_ref(self) -> Tuple[str, str]:
        table = self.column()
        alias = table
        nxt = self.peek()
        if nxt is not None and re.match(r"^[A-Za-z_][A-Za-z_0-9]*$", nxt) \
                and nxt.lower() not in _KEYWORDS and nxt != ",":
            alias = self.next()
        return table, alias

    def comparison(self) -> Comparison:
        left = self.column()
        op = self.next()
        if op not in ("=", "<", "<=", ">", ">=", "<>", "!="):
            raise SqlError(f"unsupported comparison operator {op!r}")
        tok = self.next()
        if tok.startswith("'"):
            return Comparison(left, op, tok[1:-1], right_is_column=False)
        if re.match(r"^\d", tok):
            value = float(tok) if "." in tok else int(tok)
            return Comparison(left, op, value, right_is_column=False)
        return Comparison(left, op, tok, right_is_column=True)

    def arithmetic(self) -> Tuple[List[List[Tuple[float, str]]], str]:
        """SUM bodies: sums of products of columns and numeric literals,
        e.g. ``a * (1 - b)`` normalized by distribution into
        [[(coef, col), ...], ...]: a list of product terms."""
        text_start = self.pos
        terms = self._sum_expr()
        text = " ".join(self.tokens[text_start:self.pos])
        return terms, text

    def _sum_expr(self):
        terms = self._product()
        while self.peek() in ("+", "-"):
            op = self.next()
            rhs = self._product()
            if op == "-":
                rhs = [_negate(term) for term in rhs]
            terms = terms + rhs
        return terms

    def _product(self):
        factors = [self._atom()]
        while self.peek() == "*":
            self.next()
            factors.append(self._atom())
        # multiply out: each factor is a list of terms; start with 1
        out = [[]]
        for factor in factors:
            new = []
            for left in out:
                for term in factor:
                    new.append(left + term)
            out = new
        return out

    def _atom(self):
        tok = self.peek()
        if tok == "(":
            self.next()
            inner = self._sum_expr()
            self.expect(")")
            return inner
        tok = self.next()
        if re.match(r"^\d", tok):
            value = float(tok)
            return [[(value, None)]]
        if re.match(r"^[A-Za-z_]", tok):
            return [[(1.0, tok)]]
        raise SqlError(f"unsupported token {tok!r} in SUM body")


def _negate(term):
    """Negate one product term (flip exactly one coefficient)."""
    if not term:
        return [(-1.0, None)]
    (c0, col0), rest = term[0], term[1:]
    return [(-c0, col0)] + list(rest)


def parse(sql: str) -> SelectQuery:
    """Parse a conjunctive aggregate query."""
    return _Parser(_tokenize(sql)).parse()


# ----------------------------------------------------------------------
# execution on Relations (reference evaluator via the pairwise engine)
# ----------------------------------------------------------------------
_OPS: Dict[str, Callable[[Any, Any], bool]] = {
    "=": lambda a, b: a == b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "<>": lambda a, b: a != b,
    "!=": lambda a, b: a != b,
}


def _strip_alias(name: str) -> Tuple[Optional[str], str]:
    if "." in name:
        alias, col = name.split(".", 1)
        return alias, col
    return None, name


def execute(query: SelectQuery, tables: Mapping[str, Relation]) -> List[Tuple]:
    """Evaluate the query: selections, equi-joins (renamed to shared
    columns), then SUM/COUNT GROUP BY.  Output rows are sorted."""
    # 1. instantiate aliased tables with alias-qualified column names
    inst: Dict[str, Relation] = {}
    for table, alias in query.tables:
        if table not in tables:
            raise SqlError(f"unknown table {table!r}")
        rel = tables[table]
        inst[alias] = Relation([f"{alias}.{c}" for c in rel.columns], rel.rows)

    def resolve(name: str) -> str:
        alias, col = _strip_alias(name)
        candidates = [
            a for a, rel in inst.items()
            if (alias is None or a == alias) and f"{a}.{col}" in rel.columns
        ]
        if len(candidates) != 1:
            raise SqlError(f"column {name!r} is unknown or ambiguous")
        return f"{candidates[0]}.{col}"

    # 2. rename join columns to shared names
    renames: Dict[str, str] = {}

    def canon(col: str) -> str:
        while renames.get(col, col) != col:
            col = renames[col]
        return col

    for pred in query.predicates:
        if pred.is_join:
            left = canon(resolve(pred.left))
            right = canon(resolve(str(pred.right)))
            if left != right:
                renames[right] = left

    for alias in inst:
        mapping = {c: canon(c) for c in inst[alias].columns}
        inst[alias] = inst[alias].rename(mapping)

    # 3. selections
    for pred in query.predicates:
        if pred.is_join:
            continue
        col = canon(resolve(pred.left))
        op = _OPS[pred.op]
        for alias, rel in inst.items():
            if col in rel.columns:
                inst[alias] = rel.select(lambda row: op(row[col], pred.right))
                break
        else:
            raise SqlError(f"selection column {pred.left!r} not found")

    # 4. joins (left-deep, in FROM order)
    joined = pairwise.join_all([inst[alias] for _t, alias in query.tables])

    # 5. outputs
    def term_value(row: Dict[str, Any], terms) -> float:
        total = 0.0
        for term in terms:
            prod = 1.0
            for coef, col in term:
                prod *= coef
                if col is not None:
                    prod *= row[canon(resolve(col))]
            total += prod
        return total

    group_cols = [canon(resolve(c)) for c in query.group_by]
    plain_cols = [canon(resolve(o.column)) for o in query.outputs
                  if o.kind == "column"]
    for col in plain_cols:
        if col not in group_cols and query.is_aggregate:
            raise SqlError(f"non-aggregated column {col!r} must be grouped")

    if not query.is_aggregate:
        out_rows = {tuple(dict(zip(joined.columns, r))[c] for c in plain_cols)
                    for r in joined.rows}
        return sorted(out_rows)

    groups: Dict[Tuple, List[float]] = {}
    for r in joined.rows:
        row = dict(zip(joined.columns, r))
        key = tuple(row[c] for c in (group_cols or plain_cols))
        acc = groups.setdefault(key, [0.0] * len(query.outputs))
        for k, o in enumerate(query.outputs):
            if o.kind == "sum":
                acc[k] += term_value(row, o.terms)
            elif o.kind == "count":
                acc[k] += 1
    out: List[Tuple] = []
    for key, acc in groups.items():
        row_out: List[Any] = []
        key_iter = iter(key)
        for k, o in enumerate(query.outputs):
            if o.kind == "column":
                row_out.append(next(key_iter))
            elif o.kind == "count":
                row_out.append(int(acc[k]))
            else:
                row_out.append(acc[k])
        out.append(tuple(row_out))
    return sorted(out, key=lambda t: tuple(str(x) for x in t))


def run(sql: str, tables: Mapping[str, Relation]) -> List[Tuple]:
    """Parse and execute in one call."""
    return execute(parse(sql), tables)
