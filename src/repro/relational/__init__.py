"""Relational algebra on top of contraction expressions (Figure 6).

A :class:`Relation` is a named-perspective table (Hall et al. 1975);
:mod:`repro.relational.algebra` translates relational-algebra operators
into ℒ exactly as the paper's Figure 6 (union is +, join is ·, and
projection is Σ over the dropped attributes); :mod:`repro.relational.encode`
dictionary-encodes columns and packs relations into level-format
tensors so queries compile through Etch.
"""

from repro.relational.relation import Relation
from repro.relational.algebra import (
    RAExpr,
    RAJoin,
    RAProject,
    RARename,
    RASelect,
    RATable,
    RAUnion,
    ra_shape,
    ra_to_expr,
)
from repro.relational.encode import ColumnEncoder, relation_to_tensor
from repro.relational.query import Query
from repro.relational import sql

__all__ = [
    "Relation",
    "RAExpr",
    "RATable",
    "RAJoin",
    "RAUnion",
    "RAProject",
    "RASelect",
    "RARename",
    "ra_to_expr",
    "ra_shape",
    "ColumnEncoder",
    "relation_to_tensor",
    "Query",
    "sql",
]
