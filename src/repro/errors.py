"""The shared error taxonomy, rooted at :class:`ReproError`.

Every failure the compiler pipeline can surface to a caller is a typed
subclass of :class:`ReproError`, so service layers can catch one base
class and switch on the concrete type.  The taxonomy distinguishes

* *environment* failures — a missing or broken toolchain
  (:class:`BackendUnavailableError`, :class:`CompileError`),
* *state* failures — corrupted on-disk cache artifacts
  (:class:`CacheCorruptionError`),
* *sizing* failures — a preallocated sparse output too small for the
  result (:class:`CapacityError`),
* *usage* failures — shape mismatches (:class:`ShapeError`),
* *execution* failures — a supervised kernel run dying by signal or
  missing its wall-clock deadline (:class:`KernelCrashError`,
  :class:`KernelTimeoutError`), and
* *coordination* failures — a cross-process build lock that could not
  be acquired in time under strict-lock mode
  (:class:`LockTimeoutError`), and
* *configuration* failures — an environment knob holding an unparsable
  value (:class:`ConfigError`, naming the variable).

Orthogonally to the failure domain, every class is either *retryable*
(it carries the :class:`Retryable` mixin and its instance verdict is
positive — see :func:`is_retryable`) or *permanent*.  Retry loops in
the serving layer and the sharded runtime consult this classification
instead of pattern-matching types, so a deterministic failure (shape
mismatch, source-level compile error, capacity exhaustion) is never
replayed.

:class:`CapacityError` and :class:`ShapeError` predate the taxonomy and
keep their original bases (``RuntimeError`` / ``TypeError``) so
existing ``except`` clauses continue to work.

Fallback behavior (backend downgrade, cache quarantine-and-rebuild,
capacity auto-growth) is never silent: every recovery path logs through
the package-wide ``repro`` logger (see
:mod:`repro.compiler.resilience`).
"""

from __future__ import annotations

from typing import Optional, Sequence


class ReproError(Exception):
    """Base class for every typed error raised by the repro package."""


class Retryable:
    """Mixin marking an error class whose failures *may* be transient.

    The serving layer (:mod:`repro.serve`) and the sharded runtime's
    failover only ever retry errors that pass :func:`is_retryable`;
    everything else is treated as deterministic — retrying a shape
    mismatch or an ill-typed IR reproduces the identical failure and
    only burns the caller's deadline budget.

    Inheriting the mixin makes *instances* retryable by default; a
    subclass (or instance) can refine the verdict by overriding the
    :attr:`retryable` property — :class:`CompileError` does this to
    distinguish a toolchain killed by a signal or timeout (transient:
    OOM pressure, an interrupted build host) from a genuine source
    error (deterministic: the same diagnostics every time).
    """

    @property
    def retryable(self) -> bool:
        return True


def is_retryable(exc: BaseException) -> bool:
    """Whether one more attempt at the failed operation is reasonable.

    True only for :class:`Retryable` errors whose instance verdict is
    positive.  Errors outside the repro taxonomy (a raw ``OSError``
    from an executor, a ``BrokenProcessPool``) are *not* classified
    here — infrastructure layers make their own call for those.
    """
    return isinstance(exc, Retryable) and exc.retryable


class ConfigError(ReproError, ValueError):
    """An environment knob holds a value that cannot be parsed.

    Raised at *read* time by the typed parsers of
    :mod:`repro.compiler.resilience` (strict mode) and always by the
    ``REPRO_SERVE_*`` configuration of :mod:`repro.serve.config`, so an
    operator typo like ``REPRO_POOL_WORKERS=abc`` surfaces once, named,
    at startup — never as a raw ``ValueError`` deep in the stack.
    """

    def __init__(self, variable: str, value: str, reason: str) -> None:
        super().__init__(
            f"invalid {variable}={value!r}: {reason}"
        )
        self.variable = variable
        self.value = value
        self.reason = reason


class CompileError(Retryable, ReproError):
    """Invoking the C toolchain failed (nonzero exit, signal, timeout).

    Carries everything needed for a useful bug report: the command,
    exit code, captured stderr, and whether the failure was a timeout.
    """

    def __init__(
        self,
        message: str,
        *,
        command: Optional[Sequence[str]] = None,
        returncode: Optional[int] = None,
        stderr: Optional[str] = None,
        timeout: bool = False,
    ) -> None:
        detail = message
        if stderr:
            detail = f"{message}\n--- compiler stderr ---\n{stderr.rstrip()}"
        super().__init__(detail)
        self.command = list(command) if command is not None else None
        self.returncode = returncode
        self.stderr = stderr
        self.timeout = timeout
        #: when the toolchain died by signal (negative returncode on
        #: POSIX): the signal number and its symbolic name (``SIGKILL``
        #: usually means the OOM killer)
        self.signal: Optional[int] = None
        self.signal_name: Optional[str] = None
        if returncode is not None and returncode < 0:
            self.signal = -returncode
            self.signal_name = _signal_name(-returncode)

    @property
    def retryable(self) -> bool:
        """A toolchain death by timeout or signal is environmental (an
        OOM kill, an interrupted host) and worth one more attempt; a
        regular nonzero exit is a source error that fails identically
        every time."""
        return self.timeout or self.signal is not None


class BackendUnavailableError(ReproError):
    """The requested backend cannot run in this environment (e.g. the C
    backend with no compiler on ``PATH``)."""

    def __init__(self, backend: str, reason: str) -> None:
        super().__init__(f"backend {backend!r} unavailable: {reason}")
        self.backend = backend
        self.reason = reason


class CacheCorruptionError(Retryable, ReproError):
    """A cached build artifact is unreadable and could not be rebuilt.

    Retryable: the corrupt entry is quarantined on detection, so a
    second attempt rebuilds into a clean slot.
    """

    def __init__(self, message: str, *, path: Optional[str] = None) -> None:
        super().__init__(message)
        self.path = path


class CapacityError(ReproError, RuntimeError):
    """The preallocated sparse output was too small for the result.

    ``needed`` and ``capacity`` (when known) let callers — and
    ``Kernel.run(auto_grow=True)`` — size the retry allocation.
    """

    def __init__(
        self,
        message: str,
        *,
        needed: Optional[int] = None,
        capacity: Optional[int] = None,
    ) -> None:
        super().__init__(message)
        self.needed = needed
        self.capacity = capacity


def _signal_name(signum: int) -> str:
    """``SIGSEGV``-style symbolic name for a signal number (a plain
    ``SIG<n>`` string when the number is unknown on this platform)."""
    import signal as _signal

    try:
        return _signal.Signals(signum).name
    except ValueError:
        return f"SIG{signum}"


class KernelRuntimeError(ReproError):
    """Base class for failures of a *supervised* kernel execution.

    Raised only on the supervised path (:mod:`repro.runtime.supervisor`)
    — an unsupervised in-process run has no one to catch a segfault.
    """


class KernelCrashError(Retryable, KernelRuntimeError):
    """A supervised kernel child died by signal (segfault from an
    out-of-contract write, SIGKILL from the OOM killer or a resource
    cap, SIGXCPU from ``RLIMIT_CPU``, ...).

    Retryable — but *once*: a crash may be environmental (memory
    pressure on a shared worker, a poisoned pool slot already replaced
    by the time the error surfaces), so the serving layer grants one
    replay on a fresh worker; a kernel that crashes twice is treated as
    deterministic and left to the circuit breaker.

    ``signal`` / ``signal_name`` identify the killer; ``exitcode`` is
    the raw child exit status when the death was not signal-shaped
    (e.g. a child that vanished without reporting a result).
    """

    def __init__(
        self,
        message: str,
        *,
        signal: Optional[int] = None,
        exitcode: Optional[int] = None,
    ) -> None:
        name = _signal_name(signal) if signal is not None else None
        if name is not None:
            message = f"{message} (killed by {name})"
        super().__init__(message)
        self.signal = signal
        self.signal_name = name
        self.exitcode = exitcode


class KernelTimeoutError(KernelRuntimeError):
    """A supervised kernel child missed its wall-clock deadline and was
    killed by the supervising parent.

    Deliberately *not* retryable: the deadline that was missed came out
    of the caller's own budget — replaying a run that just burned the
    whole budget can only miss again, later.
    """

    def __init__(self, message: str, *, deadline: Optional[float] = None) -> None:
        super().__init__(message)
        self.deadline = deadline


class LockTimeoutError(Retryable, ReproError):
    """A cross-process build lock stayed busy past its timeout.

    Retryable: lock contention is transient by nature — the holder
    finishes (or dies) and a later attempt acquires cleanly.

    Raised only under ``REPRO_STRICT_LOCKS=1``; the default policy logs
    a warning and continues unlocked (artifact publication is atomic,
    so the worst case is duplicated work, never corruption).
    """

    def __init__(
        self,
        message: str,
        *,
        path: Optional[str] = None,
        timeout: Optional[float] = None,
    ) -> None:
        super().__init__(message)
        self.path = path
        self.timeout = timeout


class InjectedFault(ReproError):
    """A deliberate failure fired by an armed ``REPRO_FAULT`` site.

    Raised by :func:`repro.compiler.resilience.fault_point` in ``raise``
    mode so chaos tests can fail a specific step (a shard completion,
    the pre-merge instant) deterministically.  *Not* retryable: the
    point of the injection is to observe the failure path, and the
    sharded runtime treats non-retryable :class:`ReproError` as fatal —
    which is exactly what leaves the job journal behind for a resume.
    """

    def __init__(self, site: str) -> None:
        super().__init__(f"injected fault at site {site!r}")
        self.site = site


class ShapeError(ReproError, TypeError):
    """Raised when an expression or operation is used at the wrong shape."""


class StreamPropertyError(ReproError):
    """A stream pipeline failed static property verification.

    Raised by :mod:`repro.compiler.analysis.streamprops` when the
    per-combinator transfer rules (the paper's §6 preservation lemmas)
    cannot certify a pipeline: a non-monotone source, a multiplication
    over a non-strict operand, a contraction over an unbounded level,
    or a semiring-law obligation (idempotent ⊕ for duplicate-folding
    contraction, commutative ⊕ for a sharded contracted merge) the
    kernel's semiring does not discharge.

    ``findings`` is the list of
    :class:`~repro.compiler.analysis.streamprops.Blame` records naming
    the exact AST node / combinator that broke each property;
    :meth:`diagnostic` renders them as a machine-readable body for the
    serving layer's 400 responses.
    """

    def __init__(
        self,
        message: str,
        *,
        kernel: Optional[str] = None,
        findings: Sequence[object] = (),
    ) -> None:
        if kernel:
            message = f"[kernel {kernel!r}] {message}"
        super().__init__(message)
        self.kernel = kernel
        self.findings = list(findings)

    def diagnostic(self) -> dict:
        """Machine-readable body: error text plus one record per blame."""
        rendered = []
        for f in self.findings:
            as_dict = getattr(f, "as_dict", None)
            rendered.append(as_dict() if callable(as_dict) else {"detail": str(f)})
        return {
            "error": str(self),
            "type": type(self).__name__,
            "kernel": self.kernel,
            "findings": rendered,
        }


class IRVerifyError(ReproError):
    """The IR verifier found an invariant violation in a P/E program.

    Raised by :mod:`repro.compiler.analysis` when a kernel body fails
    static verification — an ill-typed operator application, an
    undefined variable, an inconsistent array element type, or (in
    strict mode) a use-before-def.  When the verifier runs inside the
    optimization pipeline (``optimize(..., verify=True)`` or
    ``REPRO_IR_VERIFY=1``), ``pass_name`` attributes the breakage to
    the pass whose output first failed, turning every miscompiling
    rewrite into a loud, named failure instead of a wrong answer.

    ``violations`` is the list of :class:`~repro.compiler.analysis.verifier.Issue`
    objects that triggered the error; ``stmt`` is the repr of the first
    offending statement.
    """

    def __init__(
        self,
        message: str,
        *,
        pass_name: Optional[str] = None,
        stmt: Optional[str] = None,
        violations: Sequence[object] = (),
    ) -> None:
        if pass_name:
            message = f"[after pass {pass_name!r}] {message}"
        super().__init__(message)
        self.pass_name = pass_name
        self.stmt = stmt
        self.violations = list(violations)


__all__ = [
    "ReproError",
    "Retryable",
    "is_retryable",
    "ConfigError",
    "CompileError",
    "BackendUnavailableError",
    "CacheCorruptionError",
    "CapacityError",
    "InjectedFault",
    "ShapeError",
    "StreamPropertyError",
    "IRVerifyError",
    "KernelRuntimeError",
    "KernelCrashError",
    "KernelTimeoutError",
    "LockTimeoutError",
]
