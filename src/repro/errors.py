"""The shared error taxonomy, rooted at :class:`ReproError`.

Every failure the compiler pipeline can surface to a caller is a typed
subclass of :class:`ReproError`, so service layers can catch one base
class and switch on the concrete type.  The taxonomy distinguishes

* *environment* failures — a missing or broken toolchain
  (:class:`BackendUnavailableError`, :class:`CompileError`),
* *state* failures — corrupted on-disk cache artifacts
  (:class:`CacheCorruptionError`),
* *sizing* failures — a preallocated sparse output too small for the
  result (:class:`CapacityError`), and
* *usage* failures — shape mismatches (:class:`ShapeError`).

:class:`CapacityError` and :class:`ShapeError` predate the taxonomy and
keep their original bases (``RuntimeError`` / ``TypeError``) so
existing ``except`` clauses continue to work.

Fallback behavior (backend downgrade, cache quarantine-and-rebuild,
capacity auto-growth) is never silent: every recovery path logs through
the package-wide ``repro`` logger (see
:mod:`repro.compiler.resilience`).
"""

from __future__ import annotations

from typing import Optional, Sequence


class ReproError(Exception):
    """Base class for every typed error raised by the repro package."""


class CompileError(ReproError):
    """Invoking the C toolchain failed (nonzero exit, signal, timeout).

    Carries everything needed for a useful bug report: the command,
    exit code, captured stderr, and whether the failure was a timeout.
    """

    def __init__(
        self,
        message: str,
        *,
        command: Optional[Sequence[str]] = None,
        returncode: Optional[int] = None,
        stderr: Optional[str] = None,
        timeout: bool = False,
    ) -> None:
        detail = message
        if stderr:
            detail = f"{message}\n--- compiler stderr ---\n{stderr.rstrip()}"
        super().__init__(detail)
        self.command = list(command) if command is not None else None
        self.returncode = returncode
        self.stderr = stderr
        self.timeout = timeout


class BackendUnavailableError(ReproError):
    """The requested backend cannot run in this environment (e.g. the C
    backend with no compiler on ``PATH``)."""

    def __init__(self, backend: str, reason: str) -> None:
        super().__init__(f"backend {backend!r} unavailable: {reason}")
        self.backend = backend
        self.reason = reason


class CacheCorruptionError(ReproError):
    """A cached build artifact is unreadable and could not be rebuilt."""

    def __init__(self, message: str, *, path: Optional[str] = None) -> None:
        super().__init__(message)
        self.path = path


class CapacityError(ReproError, RuntimeError):
    """The preallocated sparse output was too small for the result.

    ``needed`` and ``capacity`` (when known) let callers — and
    ``Kernel.run(auto_grow=True)`` — size the retry allocation.
    """

    def __init__(
        self,
        message: str,
        *,
        needed: Optional[int] = None,
        capacity: Optional[int] = None,
    ) -> None:
        super().__init__(message)
        self.needed = needed
        self.capacity = capacity


class ShapeError(ReproError, TypeError):
    """Raised when an expression or operation is used at the wrong shape."""


class IRVerifyError(ReproError):
    """The IR verifier found an invariant violation in a P/E program.

    Raised by :mod:`repro.compiler.analysis` when a kernel body fails
    static verification — an ill-typed operator application, an
    undefined variable, an inconsistent array element type, or (in
    strict mode) a use-before-def.  When the verifier runs inside the
    optimization pipeline (``optimize(..., verify=True)`` or
    ``REPRO_IR_VERIFY=1``), ``pass_name`` attributes the breakage to
    the pass whose output first failed, turning every miscompiling
    rewrite into a loud, named failure instead of a wrong answer.

    ``violations`` is the list of :class:`~repro.compiler.analysis.verifier.Issue`
    objects that triggered the error; ``stmt`` is the repr of the first
    offending statement.
    """

    def __init__(
        self,
        message: str,
        *,
        pass_name: Optional[str] = None,
        stmt: Optional[str] = None,
        violations: Sequence[object] = (),
    ) -> None:
        if pass_name:
            message = f"[after pass {pass_name!r}] {message}"
        super().__init__(message)
        self.pass_name = pass_name
        self.stmt = stmt
        self.violations = list(violations)


__all__ = [
    "ReproError",
    "CompileError",
    "BackendUnavailableError",
    "CacheCorruptionError",
    "CapacityError",
    "ShapeError",
    "IRVerifyError",
]
