"""Schemas: attribute sets with totally ordered index sets (Def. 4.2).

A schema also fixes a *total order on the attributes themselves*; the
stream algebra (Definition 5.8) needs this global attribute ordering to
define which nested stream types are valid, and the compiler uses it to
order the generated loop nest.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional, Sequence, Tuple

from repro.errors import ShapeError  # re-exported; historical home of the class

__all__ = ["ShapeError", "Attribute", "Schema"]


class Attribute:
    """A named dimension with a totally ordered index set.

    ``domain`` optionally enumerates the index set in increasing order.
    It is required only by operations that must *iterate* the full index
    set — denotational evaluation of expansion, and dense storage — and
    may be ``None`` for attributes that are only ever co-iterated
    against finite data (the paper's "infinite support" inputs).
    """

    __slots__ = ("name", "domain")

    def __init__(self, name: str, domain: Optional[Sequence[Any]] = None) -> None:
        if not name or name == "*":
            raise ValueError("attribute names must be non-empty and not '*'")
        self.name = name
        self.domain = tuple(domain) if domain is not None else None
        if self.domain is not None:
            if list(self.domain) != sorted(set(self.domain)):
                raise ValueError(
                    f"domain of attribute {name!r} must be strictly increasing"
                )

    @property
    def finite(self) -> bool:
        return self.domain is not None

    @property
    def cardinality(self) -> int:
        if self.domain is None:
            raise ShapeError(f"attribute {self.name!r} has no finite domain")
        return len(self.domain)

    def __repr__(self) -> str:
        dom = f", |I|={len(self.domain)}" if self.domain is not None else ""
        return f"Attribute({self.name!r}{dom})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Attribute):
            return NotImplemented
        return self.name == other.name and self.domain == other.domain

    def __hash__(self) -> int:
        return hash((self.name, self.domain))


class Schema:
    """A finite, totally ordered attribute set with per-attribute domains.

    The declaration order of the attributes is the global attribute
    ordering used by the stream algebra and the compiler's loop nest.
    """

    def __init__(self, attributes: Iterable[Attribute]) -> None:
        attrs = list(attributes)
        names = [a.name for a in attrs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate attribute names in schema: {names}")
        self._attrs: Dict[str, Attribute] = {a.name: a for a in attrs}
        self._order: Tuple[str, ...] = tuple(names)

    @classmethod
    def of(cls, **domains: Optional[Sequence[Any]]) -> "Schema":
        """Build a schema from keyword arguments, in declaration order.

        >>> s = Schema.of(i=range(3), j=range(4), k=None)
        """
        return cls(
            Attribute(name, list(dom) if dom is not None else None)
            for name, dom in domains.items()
        )

    @property
    def order(self) -> Tuple[str, ...]:
        return self._order

    def reorder(self, order: Sequence[str]) -> "Schema":
        """The same schema under a different global attribute ordering."""
        if sorted(order) != sorted(self._order):
            raise ValueError(
                f"reorder {order!r} is not a permutation of {self._order!r}"
            )
        return Schema(self._attrs[name] for name in order)

    def attribute(self, name: str) -> Attribute:
        try:
            return self._attrs[name]
        except KeyError:
            raise ShapeError(f"unknown attribute {name!r}") from None

    def domain(self, name: str) -> Tuple[Any, ...]:
        attr = self.attribute(name)
        if attr.domain is None:
            raise ShapeError(f"attribute {name!r} has no finite domain")
        return attr.domain

    def position(self, name: str) -> int:
        """Position of an attribute in the global ordering."""
        try:
            return self._order.index(name)
        except ValueError:
            raise ShapeError(f"unknown attribute {name!r}") from None

    def sort_shape(self, shape: Iterable[str]) -> Tuple[str, ...]:
        """A shape (attribute set) as an ordered tuple per the global order."""
        shape = list(shape)
        for name in shape:
            self.attribute(name)
        if len(set(shape)) != len(shape):
            raise ShapeError(f"shape has duplicate attributes: {shape}")
        return tuple(sorted(shape, key=self.position))

    def check_shape(self, shape: Iterable[str]) -> frozenset:
        shape = frozenset(shape)
        for name in shape:
            self.attribute(name)
        return shape

    def __contains__(self, name: str) -> bool:
        return name in self._attrs

    def __iter__(self):
        return iter(self._order)

    def __len__(self) -> int:
        return len(self._order)

    def __repr__(self) -> str:
        return f"Schema({', '.join(self._order)})"
