"""K-relations: finitely supported functions ``I_S -> K`` (Def. 4.6).

A :class:`KRelation` stores only its support, as a dict from index
tuples (ordered by the schema's global attribute ordering) to nonzero
semiring values.  All of the operations the denotational semantics
``[-]^T`` needs are provided: pointwise + and *, contraction,
expansion, rename, partial application, and the broadcast product
(the ⇑-then-· composite, i.e. the natural join).
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterable, Mapping, Tuple

from repro.krelation.schema import Schema, ShapeError
from repro.semirings.base import Semiring

Key = Tuple[Any, ...]


class KRelation:
    """A K-relation of a given shape over a schema and semiring.

    The shape is stored as an ordered tuple of attribute names sorted by
    the schema's global ordering, and every key in ``data`` is an index
    tuple in that order.  Zero values are never stored.
    """

    __slots__ = ("schema", "semiring", "shape", "_data")

    def __init__(
        self,
        schema: Schema,
        semiring: Semiring,
        shape: Iterable[str],
        data: Mapping[Key, Any] | None = None,
    ) -> None:
        self.schema = schema
        self.semiring = semiring
        self.shape: Tuple[str, ...] = schema.sort_shape(shape)
        self._data: Dict[Key, Any] = {}
        for key, val in (data or {}).items():
            key = tuple(key) if isinstance(key, tuple) else (key,)
            if len(key) != len(self.shape):
                raise ShapeError(
                    f"key {key!r} has arity {len(key)}, shape {self.shape} "
                    f"expects {len(self.shape)}"
                )
            if not semiring.is_zero(val):
                self._data[key] = val

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def zero(cls, schema: Schema, semiring: Semiring, shape: Iterable[str]) -> "KRelation":
        return cls(schema, semiring, shape, {})

    @classmethod
    def scalar(cls, schema: Schema, semiring: Semiring, value: Any) -> "KRelation":
        if semiring.is_zero(value):
            return cls(schema, semiring, (), {})
        return cls(schema, semiring, (), {(): value})

    @classmethod
    def from_tuples(
        cls,
        schema: Schema,
        semiring: Semiring,
        shape: Iterable[str],
        rows: Iterable[Mapping[str, Any]],
        value: Any = None,
    ) -> "KRelation":
        """Build a relation from dict-like rows, all mapped to ``value``.

        With the boolean semiring and ``value`` omitted this encodes an
        ordinary relation (indicator function); duplicate rows are
        summed, so the nat semiring yields bag semantics.
        """
        out = cls(schema, semiring, shape, {})
        val = semiring.one if value is None else value
        for row in rows:
            out = out._accumulate(tuple(row[a] for a in out.shape), val)
        return out

    def _accumulate(self, key: Key, val: Any) -> "KRelation":
        data = dict(self._data)
        cur = data.get(key, self.semiring.zero)
        new = self.semiring.add(cur, val)
        if self.semiring.is_zero(new):
            data.pop(key, None)
        else:
            data[key] = new
        return KRelation(self.schema, self.semiring, self.shape, data)

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    def __call__(self, assignment: Mapping[str, Any]) -> Any:
        """Evaluate the relation at a tuple, given as ``{attr: index}``."""
        missing = [a for a in self.shape if a not in assignment]
        if missing:
            raise ShapeError(f"assignment missing attributes {missing}")
        key = tuple(assignment[a] for a in self.shape)
        return self._data.get(key, self.semiring.zero)

    @property
    def support(self) -> Dict[Key, Any]:
        return dict(self._data)

    def items(self):
        return self._data.items()

    def __len__(self) -> int:
        return len(self._data)

    def __bool__(self) -> bool:
        return bool(self._data)

    def equal(self, other: "KRelation") -> bool:
        """Semantic equality (uses the semiring's eq, e.g. float tolerance)."""
        if set(self.shape) != set(other.shape):
            return False
        other = other.reorder_like(self)
        keys = set(self._data) | set(other._data)
        zero = self.semiring.zero
        return all(
            self.semiring.eq(self._data.get(k, zero), other._data.get(k, zero))
            for k in keys
        )

    def reorder_like(self, other: "KRelation") -> "KRelation":
        """Re-key under ``other``'s schema ordering (same attribute set)."""
        if set(self.shape) != set(other.shape):
            raise ShapeError(f"shape mismatch: {self.shape} vs {other.shape}")
        if self.shape == other.shape:
            return self
        perm = [self.shape.index(a) for a in other.shape]
        data = {tuple(k[p] for p in perm): v for k, v in self._data.items()}
        return KRelation(other.schema, self.semiring, other.shape, data)

    # ------------------------------------------------------------------
    # pointwise operations (same shape)
    # ------------------------------------------------------------------
    def add(self, other: "KRelation") -> "KRelation":
        self._check_same_shape(other)
        data = dict(self._data)
        for key, val in other._data.items():
            cur = data.get(key, self.semiring.zero)
            new = self.semiring.add(cur, val)
            if self.semiring.is_zero(new):
                data.pop(key, None)
            else:
                data[key] = new
        return KRelation(self.schema, self.semiring, self.shape, data)

    def mul(self, other: "KRelation") -> "KRelation":
        self._check_same_shape(other)
        # iterate the smaller support; multiplication keeps operand order
        # since semiring mul need not be commutative
        probe = self if len(self) <= len(other) else other
        data = {}
        for key in probe._data:
            if key in self._data and key in other._data:
                prod = self.semiring.mul(self._data[key], other._data[key])
                if not self.semiring.is_zero(prod):
                    data[key] = prod
        return KRelation(self.schema, self.semiring, self.shape, data)

    def _check_same_shape(self, other: "KRelation") -> None:
        if self.shape != other.shape:
            raise ShapeError(
                f"pointwise op on different shapes: {self.shape} vs {other.shape}"
            )
        if self.semiring is not other.semiring:
            raise ShapeError("pointwise op on different semirings")

    # ------------------------------------------------------------------
    # structural operations
    # ------------------------------------------------------------------
    def contract(self, attr: str) -> "KRelation":
        """Sum out one attribute: ``(Σ_a f)(t) = Σ_{i∈I_a} f(a↦i, t)``."""
        if attr not in self.shape:
            raise ShapeError(f"cannot contract absent attribute {attr!r}")
        pos = self.shape.index(attr)
        out_shape = tuple(a for a in self.shape if a != attr)
        data: Dict[Key, Any] = {}
        for key, val in self._data.items():
            new_key = key[:pos] + key[pos + 1 :]
            cur = data.get(new_key, self.semiring.zero)
            data[new_key] = self.semiring.add(cur, val)
        data = {k: v for k, v in data.items() if not self.semiring.is_zero(v)}
        return KRelation(self.schema, self.semiring, out_shape, data)

    def expand(self, attr: str) -> "KRelation":
        """Repeat across one attribute: ``(⇑_a f)(a↦i, t) = f(t)``.

        Requires ``attr`` to have a finite domain in the schema, since
        the result enumerates it.  The stream semantics does *not* have
        this restriction; infinite expansion there stays lazy.
        """
        if attr in self.shape:
            raise ShapeError(f"cannot expand present attribute {attr!r}")
        domain = self.schema.domain(attr)
        out_shape = self.schema.sort_shape(self.shape + (attr,))
        pos = out_shape.index(attr)
        data: Dict[Key, Any] = {}
        for key, val in self._data.items():
            for i in domain:
                data[key[:pos] + (i,) + key[pos:]] = val
        return KRelation(self.schema, self.semiring, out_shape, data)

    def rename(self, mapping: Mapping[str, str]) -> "KRelation":
        """Relabel attributes; must be injective on the shape.

        The renamed attributes must exist in the schema with equal index
        sets (the paper's side condition ``I_ρ(s) = I_s``).
        """
        new_names = []
        for a in self.shape:
            b = mapping.get(a, a)
            if self.schema.attribute(a).domain != self.schema.attribute(b).domain:
                raise ShapeError(
                    f"rename {a!r}->{b!r} changes the index set, which is not allowed"
                )
            new_names.append(b)
        if len(set(new_names)) != len(new_names):
            raise ShapeError(f"rename is not injective on shape: {mapping}")
        out_shape = self.schema.sort_shape(new_names)
        perm = [new_names.index(b) for b in out_shape]
        data = {tuple(k[p] for p in perm): v for k, v in self._data.items()}
        return KRelation(self.schema, self.semiring, out_shape, data)

    def partial(self, attr: str, index: Any) -> "KRelation":
        """Partial application ``f(a ↦ i)`` (Section 4.4)."""
        if attr not in self.shape:
            raise ShapeError(f"cannot apply absent attribute {attr!r}")
        pos = self.shape.index(attr)
        out_shape = tuple(a for a in self.shape if a != attr)
        data = {
            key[:pos] + key[pos + 1 :]: val
            for key, val in self._data.items()
            if key[pos] == index
        }
        return KRelation(self.schema, self.semiring, out_shape, data)

    # ------------------------------------------------------------------
    # derived operations
    # ------------------------------------------------------------------
    def join(self, other: "KRelation") -> "KRelation":
        """Broadcast product: expand both sides to the union shape, then
        multiply pointwise.  This is the K-relation natural join and the
        meaning of the paper's "⇑ inferred automatically" convention.

        Implemented directly (hash join on the shared attributes) so it
        works even when the fresh attributes have infinite domains.
        """
        if self.semiring is not other.semiring:
            raise ShapeError("join on different semirings")
        shared = [a for a in self.shape if a in other.shape]
        out_shape = self.schema.sort_shape(set(self.shape) | set(other.shape))
        spos = [self.shape.index(a) for a in shared]
        opos = [other.shape.index(a) for a in shared]

        buckets: Dict[Key, list] = {}
        for key, val in other._data.items():
            buckets.setdefault(tuple(key[p] for p in opos), []).append((key, val))

        data: Dict[Key, Any] = {}
        for skey, sval in self._data.items():
            for okey, oval in buckets.get(tuple(skey[p] for p in spos), ()):
                assignment = dict(zip(self.shape, skey))
                assignment.update(zip(other.shape, okey))
                key = tuple(assignment[a] for a in out_shape)
                prod = self.semiring.mul(sval, oval)
                cur = data.get(key, self.semiring.zero)
                new = self.semiring.add(cur, prod)
                if self.semiring.is_zero(new):
                    data.pop(key, None)
                else:
                    data[key] = new
        return KRelation(self.schema, self.semiring, out_shape, data)

    def total(self) -> Any:
        """Contract every attribute down to a scalar."""
        return self.semiring.sum(self._data.values())

    def to_dense(self) -> Any:
        """Materialize as nested lists over the finite domains (small shapes)."""
        domains = [self.schema.domain(a) for a in self.shape]

        def build(prefix: Key, dims: list) -> Any:
            if not dims:
                return self._data.get(prefix, self.semiring.zero)
            return [build(prefix + (i,), dims[1:]) for i in dims[0]]

        return build((), list(domains))

    def __repr__(self) -> str:
        entries = ", ".join(
            f"{dict(zip(self.shape, k))}: {v!r}"
            for k, v in itertools.islice(self._data.items(), 4)
        )
        more = "" if len(self._data) <= 4 else f", … ({len(self._data)} total)"
        return f"KRelation[{','.join(self.shape)}]({{{entries}{more}}})"
