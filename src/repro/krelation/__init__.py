"""Schemas, tuples, and K-relations: the functional semantics 𝒯.

This package implements Section 4 of the paper minus the language
itself: attributes with totally ordered index sets (Definition 4.2),
and K-relations — finitely supported functions from tuples to a
semiring (Definition 4.6) — together with the standard operations the
denotational semantics is built from (pointwise ops, projection,
partial application, contraction, expansion, rename).

The denotational semantics is the *ground truth* for the whole
reproduction: the stream model and the compiler are both tested against
it (Theorem 6.1).
"""

from repro.krelation.schema import Attribute, Schema, ShapeError
from repro.krelation.relation import KRelation

__all__ = ["Attribute", "Schema", "ShapeError", "KRelation"]
