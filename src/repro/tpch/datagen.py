"""Synthetic TPC-H data generator (a scaled-down dbgen).

Row counts follow the TPC-H specification scaled by SF:
supplier = 10 000·SF, customer = 150 000·SF, part = 200 000·SF,
partsupp = 4·part, orders = 1 500 000·SF, lineitem ≈ 4·orders.
Dates are integers (YYYYMMDD), which keeps the custom year-extraction
operator of Q9 honest while staying portable.

Only the columns Q5/Q9 read are generated — mirroring the paper's
fairness measure (c): "delete columns irrelevant to the query".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.relational.relation import Relation

REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]

NATIONS = [
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1),
    ("EGYPT", 4), ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3),
    ("INDIA", 2), ("INDONESIA", 2), ("IRAN", 4), ("IRAQ", 4),
    ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0), ("MOROCCO", 0),
    ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3),
    ("UNITED KINGDOM", 3), ("UNITED STATES", 1),
]

# TPC-H P_NAME is five words drawn from a 92-color list; "green" is one
# of them, so ~5.3% of parts match LIKE '%green%'
_COLORS = [
    "almond", "antique", "aquamarine", "azure", "beige", "bisque", "black",
    "blanched", "blue", "blush", "brown", "burlywood", "burnished", "chartreuse",
    "chiffon", "chocolate", "coral", "cornflower", "cornsilk", "cream", "cyan",
    "dark", "deep", "dim", "dodger", "drab", "firebrick", "floral", "forest",
    "frosted", "gainsboro", "ghost", "goldenrod", "green", "grey", "honeydew",
    "hot", "indian", "ivory", "khaki", "lace", "lavender", "lawn", "lemon",
    "light", "lime", "linen", "magenta", "maroon", "medium", "metallic", "midnight",
    "mint", "misty", "moccasin", "navajo", "navy", "olive", "orange", "orchid",
    "pale", "papaya", "peach", "peru", "pink", "plum", "powder", "puff", "purple",
    "red", "rose", "rosy", "royal", "saddle", "salmon", "sandy", "seashell",
    "sienna", "sky", "slate", "smoke", "snow", "spring", "steel", "tan", "thistle",
    "tomato", "turquoise", "violet", "wheat", "white", "yellow",
]


@dataclass
class TpchData:
    """The generated tables plus their scale factor."""

    sf: float
    region: Relation      # (regionkey, name)
    nation: Relation      # (nationkey, name, regionkey)
    supplier: Relation    # (suppkey, nationkey)
    customer: Relation    # (custkey, nationkey)
    part: Relation        # (partkey, name)
    partsupp: Relation    # (partkey, suppkey, supplycost)
    orders: Relation      # (orderkey, custkey, orderdate)
    lineitem: Relation    # (orderkey, linenumber, partkey, suppkey,
                          #  quantity, extendedprice, discount)

    @property
    def tables(self) -> Dict[str, Relation]:
        return {
            "region": self.region,
            "nation": self.nation,
            "supplier": self.supplier,
            "customer": self.customer,
            "part": self.part,
            "partsupp": self.partsupp,
            "orders": self.orders,
            "lineitem": self.lineitem,
        }


def _random_date(rng: np.random.Generator) -> int:
    """A date in [1992-01-01, 1998-12-31] as YYYYMMDD (days 1..28 keep
    every generated date valid)."""
    year = int(rng.integers(1992, 1999))
    month = int(rng.integers(1, 13))
    day = int(rng.integers(1, 29))
    return year * 10000 + month * 100 + day


def generate(sf: float, seed: int = 0) -> TpchData:
    """Generate all tables at scale factor ``sf``."""
    rng = np.random.default_rng(seed)

    n_supplier = max(5, int(10_000 * sf))
    n_customer = max(10, int(150_000 * sf))
    n_part = max(10, int(200_000 * sf))
    n_orders = max(20, int(1_500_000 * sf))

    region = Relation(("r_regionkey", "r_name"), list(enumerate(REGIONS)))
    nation = Relation(
        ("n_nationkey", "n_name", "n_regionkey"),
        [(k, name, reg) for k, (name, reg) in enumerate(NATIONS)],
    )

    supplier = Relation(
        ("s_suppkey", "s_nationkey"),
        [(s, int(rng.integers(0, 25))) for s in range(n_supplier)],
    )
    customer = Relation(
        ("c_custkey", "c_nationkey"),
        [(c, int(rng.integers(0, 25))) for c in range(n_customer)],
    )

    part_rows: List[Tuple[int, str]] = []
    for p in range(n_part):
        words = rng.choice(len(_COLORS), size=5, replace=False)
        part_rows.append((p, " ".join(_COLORS[w] for w in words)))
    part = Relation(("p_partkey", "p_name"), part_rows)

    partsupp_rows: List[Tuple[int, int, float]] = []
    suppliers_of_part: Dict[int, List[int]] = {}
    for p in range(n_part):
        supps = rng.choice(n_supplier, size=min(4, n_supplier), replace=False)
        suppliers_of_part[p] = [int(s) for s in supps]
        for s in suppliers_of_part[p]:
            partsupp_rows.append((p, s, float(rng.uniform(1.0, 1000.0))))
    partsupp = Relation(("ps_partkey", "ps_suppkey", "ps_supplycost"), partsupp_rows)

    orders_rows = [
        (o, int(rng.integers(0, n_customer)), _random_date(rng))
        for o in range(n_orders)
    ]
    orders = Relation(("o_orderkey", "o_custkey", "o_orderdate"), orders_rows)

    lineitem_rows: List[Tuple] = []
    for o in range(n_orders):
        for ln in range(int(rng.integers(1, 8))):
            p = int(rng.integers(0, n_part))
            s = int(rng.choice(suppliers_of_part[p]))
            qty = float(rng.integers(1, 51))
            price = float(rng.uniform(900.0, 105_000.0))
            disc = float(rng.integers(0, 11)) / 100.0
            lineitem_rows.append((o, ln, p, s, qty, price, disc))
    lineitem = Relation(
        (
            "l_orderkey", "l_linenumber", "l_partkey", "l_suppkey",
            "l_quantity", "l_extendedprice", "l_discount",
        ),
        lineitem_rows,
    )

    return TpchData(
        sf=sf,
        region=region,
        nation=nation,
        supplier=supplier,
        customer=customer,
        part=part,
        partsupp=partsupp,
        orders=orders,
        lineitem=lineitem,
    )
