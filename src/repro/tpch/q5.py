"""TPC-H Query 5 ("local supplier volume") three ways.

The contraction-expression form computes, per nation ``n``::

    revenue(n) = Σ_{o,c,r,s,ln}  orders(o,c) · orders_in_1994(o)
               · customer(c,n) · nation(n,r) · region_asia(r)
               · supplier(n,s) · lineitem_rev(o,s,ln)

with the global attribute ordering o < c < n < r < s < ln: the fused
loop drives from orders (one pass over the fact data), follows the
functional joins o→c→n→r, and intersects the nation's suppliers with
the order's lineitem suppliers — overall linear in the data, which is
the join-locality advantage Figure 19 attributes to Etch on Q5.  All
joins, the date selection, and SUM/GROUP BY fuse into one loop nest;
the date and region selections are boolean-valued streams, the same
technique the paper uses for Q9's substring predicate.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.compiler.kernel import Kernel, OutputSpec
from repro.data.tensor import Tensor
from repro.lang.ast import Var, sum_over
from repro.relational.encode import relation_to_tensor
from repro.relational.query import Query
from repro.semirings.instances import FLOAT
from repro.tpch.datagen import TpchData
from repro.baselines import pairwise
from repro.baselines.sqlite_bridge import SqliteDB

ATTR_ORDER = ("o", "c", "n", "r", "s", "ln")

DATE_LO = 19940101
DATE_HI = 19950101

SQL = """
SELECT n_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue
FROM customer, orders, lineitem, supplier, nation, region
WHERE c_custkey = o_custkey
  AND l_orderkey = o_orderkey
  AND l_suppkey = s_suppkey
  AND c_nationkey = s_nationkey
  AND s_nationkey = n_nationkey
  AND n_regionkey = r_regionkey
  AND r_name = 'ASIA'
  AND o_orderdate >= 19940101 AND o_orderdate < 19950101
GROUP BY n_name
"""


def build_tensors(data: TpchData) -> Dict[str, Tensor]:
    """Pack the tables into level-format tensors under ATTR_ORDER.

    Key columns that are 0-based surrogate keys get dense levels (the
    paper's Example 2.2: numeric identifiers favour dense storage);
    everything else is compressed.
    """
    one = lambda _row: 1.0
    dims = {
        "o": len(data.orders),
        "c": len(data.customer),
        "n": 25,
        "r": 5,
        "s": len(data.supplier),
        "ln": 8,
    }
    orders = relation_to_tensor(
        data.orders, ("o_orderkey", "o_custkey"),
        formats=("dense", "sparse"),
        measure=one, semiring=FLOAT,
        attr_names={"o_orderkey": "o", "o_custkey": "c"}, dims=dims,
    )
    # the date selection as a boolean-valued stream over orderkey
    odate = relation_to_tensor(
        data.orders.select(lambda row: DATE_LO <= row["o_orderdate"] < DATE_HI),
        ("o_orderkey",), measure=one, semiring=FLOAT,
        attr_names={"o_orderkey": "o"}, dims=dims,
    )
    customer = relation_to_tensor(
        data.customer, ("c_custkey", "c_nationkey"),
        formats=("dense", "sparse"),
        measure=one, semiring=FLOAT,
        attr_names={"c_custkey": "c", "c_nationkey": "n"}, dims=dims,
    )
    nation = relation_to_tensor(
        data.nation, ("n_nationkey", "n_regionkey"),
        formats=("dense", "sparse"),
        measure=one, semiring=FLOAT,
        attr_names={"n_nationkey": "n", "n_regionkey": "r"}, dims=dims,
    )
    region_asia = relation_to_tensor(
        data.region.select(lambda row: row["r_name"] == "ASIA"),
        ("r_regionkey",), measure=one, semiring=FLOAT,
        attr_names={"r_regionkey": "r"}, dims=dims,
    )
    supplier = relation_to_tensor(
        data.supplier, ("s_nationkey", "s_suppkey"),
        measure=one, semiring=FLOAT,
        attr_names={"s_nationkey": "n", "s_suppkey": "s"}, dims=dims,
    )
    lineitem = relation_to_tensor(
        data.lineitem, ("l_orderkey", "l_suppkey", "l_linenumber"),
        formats=("dense", "sparse", "sparse"),
        measure=lambda row: row["l_extendedprice"] * (1.0 - row["l_discount"]),
        semiring=FLOAT,
        attr_names={"l_orderkey": "o", "l_suppkey": "s", "l_linenumber": "ln"},
        dims=dims,
    )
    return {
        "orders": orders,
        "odate": odate,
        "customer": customer,
        "nation": nation,
        "region_asia": region_asia,
        "supplier": supplier,
        "lineitem": lineitem,
    }


def expression():
    body = (
        Var("orders") * Var("odate") * Var("customer") * Var("nation")
        * Var("region_asia") * Var("supplier") * Var("lineitem")
    )
    return sum_over(("o", "c", "r", "s", "ln"), body)


def prepare_etch(data: TpchData, backend: str = "c", search: str = "linear") -> Tuple[Kernel, Dict[str, Tensor]]:
    """Build tensors and compile the fused kernel (the paper prepares
    queries before repeated execution — fairness measure (d))."""
    tensors = build_tensors(data)
    query = Query(ATTR_ORDER, FLOAT)
    for name, tensor in tensors.items():
        query.bind(name, tensor)
    kernel = query.compile(
        expression(),
        OutputSpec(("n",), ("dense",), (25,)),
        backend=backend,
        search=search,
        name="tpch_q5",
    )
    return kernel, tensors


def run_etch(kernel: Kernel, tensors: Dict[str, Tensor], data: TpchData) -> Dict[str, float]:
    out = kernel.run(tensors)
    names = {k: name for k, name, _reg in data.nation.rows}
    result = {}
    for (n,), v in out.to_dict().items():
        result[names[n]] = v
    return result


def load_sqlite(data: TpchData) -> SqliteDB:
    db = SqliteDB()
    for name, rel in data.tables.items():
        db.load(name, rel)
    # indices with the same column ordering as the Etch plan
    db.index("supplier", ("s_nationkey", "s_suppkey"))
    db.index("customer", ("c_custkey", "c_nationkey"))
    db.index("orders", ("o_orderkey", "o_custkey"))
    db.index("lineitem", ("l_orderkey", "l_suppkey"))
    db.index("nation", ("n_nationkey", "n_regionkey"))
    db.analyze()
    return db


def run_sqlite(db: SqliteDB) -> Dict[str, float]:
    return {name: rev for name, rev in db.query(SQL)}


def run_pairwise(data: TpchData) -> Dict[str, float]:
    """The classical plan: filter, pairwise hash joins, then aggregate."""
    region = data.region.select(lambda r: r["r_name"] == "ASIA")
    orders = data.orders.select(
        lambda r: DATE_LO <= r["o_orderdate"] < DATE_HI
    )
    nation = data.nation.rename({"n_nationkey": "c_nationkey"})
    customer = data.customer
    supplier = data.supplier.rename({"s_nationkey": "c_nationkey"})
    lineitem = data.lineitem.rename(
        {"l_orderkey": "o_orderkey", "l_suppkey": "s_suppkey"}
    )
    region = region.rename({"r_regionkey": "n_regionkey"})
    orders = orders.rename({"o_custkey": "c_custkey"})

    joined = pairwise.join_all([nation, region, customer, orders, lineitem, supplier])
    agg = pairwise.aggregate(
        joined, ("n_name",),
        lambda row: row["l_extendedprice"] * (1.0 - row["l_discount"]),
    )
    return {name: v for name, v in agg.rows}
