"""A scaled-down TPC-H substrate (Section 8.2).

:mod:`repro.tpch.datagen` generates the eight TPC-H tables with the
schema, key relationships, and the distributions Q5/Q9 touch (dates
uniform over 1992–1998, part names containing "green" with ~5%
probability, lineitem (partkey, suppkey) drawn from partsupp).  The
scale factor works like dbgen's: row counts scale linearly.

:mod:`repro.tpch.q5` and :mod:`repro.tpch.q9` each provide the query
three ways: as a contraction expression compiled by Etch, as SQL for
SQLite, and through the pairwise-join baseline engine — the paper's
Figure 19 comparison.
"""

from repro.tpch.datagen import TpchData, generate

__all__ = ["TpchData", "generate"]
