"""TPC-H Query 9 ("product type profit") three ways.

profit(nation, year) = Σ over suppliers/parts/orders/lineitems of

    l_extendedprice·(1−l_discount) − ps_supplycost·l_quantity

restricted to parts whose name contains "green".  As a contraction
expression the subtraction splits into two fused terms (floats form a
ring, so the second term is scaled by the literal −1)::

    Σ_{s,p,o,ln}  supplier(n,s)·green(p)·ps_one(s,p)·line_rev(s,p,o,ln)·oyear(o,y)
  + (−1) · Σ_{s,p,o,ln}  supplier(n,s)·green(p)·ps_cost(s,p)·line_qty(s,p,o,ln)·oyear(o,y)

with attribute ordering n < s < p < o < y < ln.  The substring
predicate is a boolean-valued stream over partkey (exactly the paper's
encoding) and year extraction is the integer op YYYYMMDD / 10000 —
the paper's custom timestamp-to-year operator.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.compiler.kernel import Kernel, OutputSpec
from repro.data.tensor import Tensor
from repro.lang.ast import Lit, Var, sum_over
from repro.relational.encode import relation_to_tensor
from repro.relational.query import Query
from repro.semirings.instances import FLOAT
from repro.tpch.datagen import TpchData
from repro.baselines import pairwise
from repro.baselines.sqlite_bridge import SqliteDB

ATTR_ORDER = ("n", "s", "p", "o", "y", "ln")

YEAR_BASE = 1992
N_YEARS = 7


def year_of(date: int) -> int:
    """The paper defines a custom operator for year extraction; with
    YYYYMMDD integer dates it is a single division."""
    return date // 10000


SQL = """
SELECT n_name AS nation, o_orderdate/10000 AS o_year,
       SUM(l_extendedprice * (1 - l_discount) - ps_supplycost * l_quantity)
       AS sum_profit
FROM part, supplier, lineitem, partsupp, orders, nation
WHERE s_suppkey = l_suppkey
  AND ps_suppkey = l_suppkey
  AND ps_partkey = l_partkey
  AND p_partkey = l_partkey
  AND o_orderkey = l_orderkey
  AND s_nationkey = n_nationkey
  AND p_name LIKE '%green%'
GROUP BY nation, o_year
"""


def build_tensors(data: TpchData) -> Dict[str, Tensor]:
    one = lambda _row: 1.0
    dims = {
        "n": 25,
        "s": len(data.supplier),
        "p": len(data.part),
        "o": len(data.orders),
        "y": N_YEARS,
        "ln": 8,
    }
    supplier = relation_to_tensor(
        data.supplier, ("s_nationkey", "s_suppkey"),
        measure=one, semiring=FLOAT,
        attr_names={"s_nationkey": "n", "s_suppkey": "s"}, dims=dims,
    )
    # substring selection as a boolean-valued indexed stream (Section 8.2)
    green = relation_to_tensor(
        data.part.select(lambda row: "green" in row["p_name"]),
        ("p_partkey",), measure=one, semiring=FLOAT,
        attr_names={"p_partkey": "p"}, dims=dims,
    )
    ps_one = relation_to_tensor(
        data.partsupp, ("ps_suppkey", "ps_partkey"),
        measure=one, semiring=FLOAT,
        attr_names={"ps_suppkey": "s", "ps_partkey": "p"}, dims=dims,
    )
    ps_cost = relation_to_tensor(
        data.partsupp, ("ps_suppkey", "ps_partkey"),
        measure=lambda row: row["ps_supplycost"], semiring=FLOAT,
        attr_names={"ps_suppkey": "s", "ps_partkey": "p"}, dims=dims,
    )
    line_keys = ("l_suppkey", "l_partkey", "l_orderkey", "l_linenumber")
    line_attrs = {"l_suppkey": "s", "l_partkey": "p", "l_orderkey": "o",
                  "l_linenumber": "ln"}
    line_rev = relation_to_tensor(
        data.lineitem, line_keys,
        measure=lambda row: row["l_extendedprice"] * (1.0 - row["l_discount"]),
        semiring=FLOAT, attr_names=line_attrs, dims=dims,
    )
    line_qty = relation_to_tensor(
        data.lineitem, line_keys,
        measure=lambda row: row["l_quantity"],
        semiring=FLOAT, attr_names=line_attrs, dims=dims,
    )
    # apply the custom year-extraction operator while building the
    # (orderkey, year) boolean stream
    from repro.relational.relation import Relation

    oyear_rel = Relation(
        ("o_orderkey", "o_yearcode"),
        [
            (row[0], year_of(row[2]) - YEAR_BASE)
            for row in data.orders.rows
        ],
    )
    oyear = relation_to_tensor(
        oyear_rel, ("o_orderkey", "o_yearcode"),
        measure=one, semiring=FLOAT,
        attr_names={"o_orderkey": "o", "o_yearcode": "y"},
        dims=dims,
    )
    return {
        "supplier": supplier,
        "green": green,
        "ps_one": ps_one,
        "ps_cost": ps_cost,
        "line_rev": line_rev,
        "line_qty": line_qty,
        "oyear": oyear,
    }


def expression():
    # the subtraction is pushed inside the shared joins (distributivity),
    # so supplier/green/oyear are traversed once and only the
    # partsupp×lineitem amount computation is two-sided
    amount = Var("ps_one") * Var("line_rev") + Lit(-1.0) * (
        Var("ps_cost") * Var("line_qty")
    )
    body = Var("supplier") * Var("green") * amount * Var("oyear")
    return sum_over(("s", "p", "o", "ln"), body)


def prepare_etch(data: TpchData, backend: str = "c", search: str = "linear") -> Tuple[Kernel, Dict[str, Tensor]]:
    tensors = build_tensors(data)
    query = Query(ATTR_ORDER, FLOAT)
    for name, tensor in tensors.items():
        query.bind(name, tensor)
    kernel = query.compile(
        expression(),
        OutputSpec(("n", "y"), ("dense", "dense"), (25, N_YEARS)),
        backend=backend,
        search=search,
        name="tpch_q9",
    )
    return kernel, tensors


def run_etch(kernel: Kernel, tensors: Dict[str, Tensor], data: TpchData) -> Dict[Tuple[str, int], float]:
    out = kernel.run(tensors)
    names = {k: name for k, name, _reg in data.nation.rows}
    result = {}
    for (n, y), v in out.to_dict().items():
        result[(names[n], YEAR_BASE + y)] = v
    return result


def load_sqlite(data: TpchData) -> SqliteDB:
    db = SqliteDB()
    for name, rel in data.tables.items():
        db.load(name, rel)
    db.index("supplier", ("s_nationkey", "s_suppkey"))
    db.index("partsupp", ("ps_suppkey", "ps_partkey"))
    db.index("lineitem", ("l_suppkey", "l_partkey", "l_orderkey"))
    db.index("orders", ("o_orderkey",))
    db.index("part", ("p_partkey",))
    db.analyze()
    return db


def run_sqlite(db: SqliteDB) -> Dict[Tuple[str, int], float]:
    return {(name, year): v for name, year, v in db.query(SQL)}


def run_pairwise(data: TpchData) -> Dict[Tuple[str, int], float]:
    part = data.part.select(lambda r: "green" in r["p_name"]).rename(
        {"p_partkey": "l_partkey"}
    )
    supplier = data.supplier.rename({"s_suppkey": "l_suppkey"})
    partsupp = data.partsupp.rename(
        {"ps_partkey": "l_partkey", "ps_suppkey": "l_suppkey"}
    )
    orders = data.orders.rename({"o_orderkey": "l_orderkey"})
    nation = data.nation.rename({"n_nationkey": "s_nationkey"})

    joined = pairwise.join_all(
        [part, data.lineitem, partsupp, orders, supplier, nation]
    )
    agg = pairwise.aggregate(
        joined, ("n_name", "o_orderdate"),
        lambda row: row["l_extendedprice"] * (1.0 - row["l_discount"])
        - row["ps_supplycost"] * row["l_quantity"],
    )
    # collapse dates to years after the join, as the SQL does
    result: Dict[Tuple[str, int], float] = {}
    for name, date, v in agg.rows:
        key = (name, year_of(date))
        result[key] = result.get(key, 0.0) + v
    return result
