"""Abstract syntax of the contraction language ℒ (Figure 4a).

Core constructors mirror the paper exactly: variables, + and ·,
contraction Σ_a, expansion ⇑_a, and rename_ρ.  Two sugar nodes,
:class:`BroadcastAdd` and :class:`BroadcastMul`, implement the paper's
convention that "the set of attributes to expand over can be inferred
from the argument shapes and can be omitted"; they are rewritten into
core syntax by :func:`repro.lang.typing.elaborate`.

Python's ``*`` and ``+`` operators build the broadcast forms, so
``Sum("b", x * y)`` is the matrix product of Example 4.1.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Tuple


class Expr:
    """Base class for contraction expressions.  Immutable."""

    __slots__ = ()

    def __add__(self, other: "Expr") -> "Expr":
        return BroadcastAdd(self, _as_expr(other))

    def __radd__(self, other: Any) -> "Expr":
        return BroadcastAdd(_as_expr(other), self)

    def __mul__(self, other: "Expr") -> "Expr":
        return BroadcastMul(self, _as_expr(other))

    def __rmul__(self, other: Any) -> "Expr":
        return BroadcastMul(_as_expr(other), self)

    def sum(self, *attrs: str) -> "Expr":
        """Contract one or more attributes (innermost listed last)."""
        return sum_over(attrs, self)

    def rename(self, **mapping: str) -> "Expr":
        return Rename(dict(mapping), self)

    def children(self) -> Tuple["Expr", ...]:
        raise NotImplementedError


def _as_expr(x: Any) -> Expr:
    if isinstance(x, Expr):
        return x
    return Lit(x)


class Var(Expr):
    """A named input (a data structure or user-defined function)."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def children(self) -> Tuple[Expr, ...]:
        return ()

    def __repr__(self) -> str:
        return self.name


class Lit(Expr):
    """A scalar literal (shape ∅)."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def children(self) -> Tuple[Expr, ...]:
        return ()

    def __repr__(self) -> str:
        return repr(self.value)


class Add(Expr):
    """Pointwise addition of two same-shape expressions."""

    __slots__ = ("left", "right")

    def __init__(self, left: Expr, right: Expr) -> None:
        self.left = left
        self.right = right

    def children(self) -> Tuple[Expr, ...]:
        return (self.left, self.right)

    def __repr__(self) -> str:
        return f"({self.left!r} + {self.right!r})"


class Mul(Expr):
    """Pointwise multiplication of two same-shape expressions."""

    __slots__ = ("left", "right")

    def __init__(self, left: Expr, right: Expr) -> None:
        self.left = left
        self.right = right

    def children(self) -> Tuple[Expr, ...]:
        return (self.left, self.right)

    def __repr__(self) -> str:
        return f"({self.left!r} * {self.right!r})"


class Sum(Expr):
    """The contraction operator Σ_a."""

    __slots__ = ("attr", "body")

    def __init__(self, attr: str, body: Expr) -> None:
        self.attr = attr
        self.body = body

    def children(self) -> Tuple[Expr, ...]:
        return (self.body,)

    def __repr__(self) -> str:
        return f"Σ_{self.attr}({self.body!r})"


class Expand(Expr):
    """The expansion operator ⇑_a."""

    __slots__ = ("attr", "body")

    def __init__(self, attr: str, body: Expr) -> None:
        self.attr = attr
        self.body = body

    def children(self) -> Tuple[Expr, ...]:
        return (self.body,)

    def __repr__(self) -> str:
        return f"⇑_{self.attr}({self.body!r})"


class Rename(Expr):
    """Attribute relabeling name_ρ; ρ must be injective on the shape."""

    __slots__ = ("mapping", "body")

    def __init__(self, mapping: Mapping[str, str], body: Expr) -> None:
        self.mapping = dict(mapping)
        self.body = body

    def children(self) -> Tuple[Expr, ...]:
        return (self.body,)

    def __repr__(self) -> str:
        ren = ",".join(f"{k}→{v}" for k, v in self.mapping.items())
        return f"name[{ren}]({self.body!r})"


class BroadcastAdd(Expr):
    """Sugar: + with automatic ⇑ insertion on both operands."""

    __slots__ = ("left", "right")

    def __init__(self, left: Expr, right: Expr) -> None:
        self.left = left
        self.right = right

    def children(self) -> Tuple[Expr, ...]:
        return (self.left, self.right)

    def __repr__(self) -> str:
        return f"({self.left!r} ⊕ {self.right!r})"


class BroadcastMul(Expr):
    """Sugar: · with automatic ⇑ insertion on both operands."""

    __slots__ = ("left", "right")

    def __init__(self, left: Expr, right: Expr) -> None:
        self.left = left
        self.right = right

    def children(self) -> Tuple[Expr, ...]:
        return (self.left, self.right)

    def __repr__(self) -> str:
        return f"({self.left!r} ⊗ {self.right!r})"


def sum_over(attrs: Iterable[str], body: Expr) -> Expr:
    """Contract several attributes: ``sum_over(("a", "b"), e)`` = Σ_a Σ_b e."""
    expr = body
    for attr in reversed(list(attrs)):
        expr = Sum(attr, expr)
    return expr
