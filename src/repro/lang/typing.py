"""Shape checking and elaboration for ℒ (Figure 4b).

``shape_of`` implements the typing rules of Figure 4b, assigning each
expression a *shape* (a set of attributes).  ``elaborate`` rewrites the
broadcast sugar (:class:`BroadcastAdd`/:class:`BroadcastMul`) into core
syntax by inserting the ⇑ operators the paper says "can be inferred
from the argument shapes".
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Mapping

from repro.krelation.schema import Schema, ShapeError
from repro.lang import ast
from repro.lang.ast import (
    Add,
    BroadcastAdd,
    BroadcastMul,
    Expand,
    Expr,
    Lit,
    Mul,
    Rename,
    Sum,
    Var,
)

Shape = FrozenSet[str]


class TypeContext:
    """Variable typing context τ : V → 2^A plus the ambient schema."""

    def __init__(self, schema: Schema, shapes: Mapping[str, frozenset | set | tuple | list]) -> None:
        self.schema = schema
        self.shapes: Dict[str, Shape] = {}
        for name, shape in shapes.items():
            self.shapes[name] = frozenset(schema.check_shape(shape))

    def shape(self, var: str) -> Shape:
        try:
            return self.shapes[var]
        except KeyError:
            raise ShapeError(f"unbound variable {var!r}") from None


def shape_of(expr: Expr, ctx: TypeContext) -> Shape:
    """The shape of an expression under the typing rules of Figure 4b.

    Broadcast nodes are typed at the union of their operand shapes.
    Raises :class:`ShapeError` for ill-typed expressions.
    """
    if isinstance(expr, Var):
        return ctx.shape(expr.name)
    if isinstance(expr, Lit):
        return frozenset()
    if isinstance(expr, (Add, Mul)):
        left = shape_of(expr.left, ctx)
        right = shape_of(expr.right, ctx)
        if left != right:
            op = "+" if isinstance(expr, Add) else "*"
            raise ShapeError(
                f"operands of {op} have different shapes: "
                f"{sorted(left)} vs {sorted(right)}"
            )
        return left
    if isinstance(expr, (BroadcastAdd, BroadcastMul)):
        return shape_of(expr.left, ctx) | shape_of(expr.right, ctx)
    if isinstance(expr, Sum):
        body = shape_of(expr.body, ctx)
        if expr.attr not in body:
            raise ShapeError(
                f"Σ_{expr.attr} applied to expression of shape {sorted(body)}"
            )
        return body - {expr.attr}
    if isinstance(expr, Expand):
        body = shape_of(expr.body, ctx)
        if expr.attr in body:
            raise ShapeError(
                f"⇑_{expr.attr} applied to expression already of shape {sorted(body)}"
            )
        ctx.schema.attribute(expr.attr)
        return body | {expr.attr}
    if isinstance(expr, Rename):
        body = shape_of(expr.body, ctx)
        for src in expr.mapping:
            if src not in body:
                raise ShapeError(f"rename source {src!r} not in shape {sorted(body)}")
        image = [expr.mapping.get(a, a) for a in body]
        if len(set(image)) != len(image):
            raise ShapeError(f"rename {expr.mapping} is not injective on {sorted(body)}")
        for attr in image:
            ctx.schema.attribute(attr)
        return frozenset(image)
    raise TypeError(f"not a contraction expression: {expr!r}")


def elaborate(expr: Expr, ctx: TypeContext) -> Expr:
    """Rewrite broadcast sugar into core ℒ by inserting ⇑ operators.

    The result contains only core constructors, and ``shape_of`` on it
    agrees with ``shape_of`` on the input.
    """
    if isinstance(expr, (Var, Lit)):
        return expr
    if isinstance(expr, Add):
        return Add(elaborate(expr.left, ctx), elaborate(expr.right, ctx))
    if isinstance(expr, Mul):
        return Mul(elaborate(expr.left, ctx), elaborate(expr.right, ctx))
    if isinstance(expr, Sum):
        return Sum(expr.attr, elaborate(expr.body, ctx))
    if isinstance(expr, Expand):
        return Expand(expr.attr, elaborate(expr.body, ctx))
    if isinstance(expr, Rename):
        return Rename(expr.mapping, elaborate(expr.body, ctx))
    if isinstance(expr, (BroadcastAdd, BroadcastMul)):
        left = elaborate(expr.left, ctx)
        right = elaborate(expr.right, ctx)
        lshape = shape_of(left, ctx)
        rshape = shape_of(right, ctx)
        left = _expand_to(left, lshape, lshape | rshape, ctx)
        right = _expand_to(right, rshape, lshape | rshape, ctx)
        node = Add if isinstance(expr, BroadcastAdd) else Mul
        return node(left, right)
    raise TypeError(f"not a contraction expression: {expr!r}")


def _expand_to(expr: Expr, have: Shape, want: Shape, ctx: TypeContext) -> Expr:
    # deepest (largest-position) attributes first, so each ⇑ never has
    # to descend through a level inserted by a later ⇑ — outermost
    # levels are built last and stay directly indexable
    for attr in sorted(want - have, key=ctx.schema.position, reverse=True):
        expr = Expand(attr, expr)
    return expr


def free_attributes(expr: Expr, ctx: TypeContext) -> Shape:
    """Alias for :func:`shape_of`, named for readability at call sites."""
    return shape_of(expr, ctx)
