"""Denotational semantics ⟦–⟧ᵀ of ℒ (Figure 4c).

Maps a shape-checked contraction expression to a
:class:`~repro.krelation.KRelation`, given a value context binding each
variable to a K-relation.  This is the ground-truth semantics that both
the stream model (Theorem 6.1) and the compiler are validated against.
"""

from __future__ import annotations

from typing import Mapping

from repro.krelation.relation import KRelation
from repro.krelation.schema import ShapeError
from repro.lang.ast import (
    Add,
    BroadcastAdd,
    BroadcastMul,
    Expand,
    Expr,
    Lit,
    Mul,
    Rename,
    Sum,
    Var,
)
from repro.lang.typing import TypeContext, elaborate, shape_of


def denote(
    expr: Expr,
    ctx: TypeContext,
    bindings: Mapping[str, KRelation],
) -> KRelation:
    """Evaluate ``expr`` to a K-relation (the semantics 𝒯 of Figure 4c).

    Broadcast sugar is elaborated first; bindings must agree with the
    typing context's shapes.
    """
    core = elaborate(expr, ctx)
    for name, shape in ctx.shapes.items():
        if name in bindings and set(bindings[name].shape) != set(shape):
            raise ShapeError(
                f"binding for {name!r} has shape {bindings[name].shape}, "
                f"context declares {sorted(shape)}"
            )
    semiring = _find_semiring(core, bindings)
    return _denote(core, ctx, bindings, semiring)


def _find_semiring(expr: Expr, bindings: Mapping[str, KRelation]):
    for node in _walk(expr):
        if isinstance(node, Var):
            return bindings[node.name].semiring
    raise ShapeError("expression contains no variables; cannot infer semiring")


def _walk(expr: Expr):
    yield expr
    for child in expr.children():
        yield from _walk(child)


def _denote(expr, ctx, bindings, semiring) -> KRelation:
    if isinstance(expr, Var):
        rel = bindings[expr.name]
        # normalize key order to the ambient schema's attribute ordering
        target_shape = ctx.schema.sort_shape(rel.shape)
        if target_shape == rel.shape:
            return KRelation(ctx.schema, rel.semiring, rel.shape, rel.support)
        perm = [rel.shape.index(a) for a in target_shape]
        data = {tuple(k[p] for p in perm): v for k, v in rel.items()}
        return KRelation(ctx.schema, rel.semiring, target_shape, data)
    if isinstance(expr, Lit):
        value = expr.value if semiring.is_element(expr.value) else semiring.from_int(expr.value)
        return KRelation.scalar(ctx.schema, semiring, value)
    if isinstance(expr, Add):
        return _denote(expr.left, ctx, bindings, semiring).add(
            _denote(expr.right, ctx, bindings, semiring)
        )
    if isinstance(expr, Mul):
        return _denote(expr.left, ctx, bindings, semiring).mul(
            _denote(expr.right, ctx, bindings, semiring)
        )
    if isinstance(expr, Sum):
        return _denote(expr.body, ctx, bindings, semiring).contract(expr.attr)
    if isinstance(expr, Expand):
        return _denote(expr.body, ctx, bindings, semiring).expand(expr.attr)
    if isinstance(expr, Rename):
        return _denote(expr.body, ctx, bindings, semiring).rename(expr.mapping)
    if isinstance(expr, (BroadcastAdd, BroadcastMul)):
        raise AssertionError("broadcast sugar must be elaborated before denotation")
    raise TypeError(f"not a contraction expression: {expr!r}")
