"""The contraction expression language ℒ (Section 4, Figure 4).

The language has variables, + and ·, the contraction operator Σ_a, the
expansion operator ⇑_a, and rename.  Expressions are shape-checked
(Figure 4b) and can be evaluated three ways:

* denotationally, to a :class:`~repro.krelation.KRelation`
  (Figure 4c — the semantics 𝒯, implemented in :mod:`repro.lang.denotation`);
* operationally, to an indexed stream (Figure 9 — the semantics 𝒮,
  implemented in :mod:`repro.lang.stream_semantics`);
* by compilation, to imperative code (Section 7, :mod:`repro.compiler`).

Theorem 6.1 says the three agree; the test suite checks this.
"""

from repro.lang.ast import (
    Add,
    BroadcastAdd,
    BroadcastMul,
    Expand,
    Expr,
    Lit,
    Mul,
    Rename,
    Sum,
    Var,
    sum_over,
)
from repro.lang.typing import TypeContext, elaborate, shape_of
from repro.lang.denotation import denote

__all__ = [
    "Expr",
    "Var",
    "Lit",
    "Add",
    "Mul",
    "Sum",
    "Expand",
    "Rename",
    "BroadcastAdd",
    "BroadcastMul",
    "sum_over",
    "TypeContext",
    "shape_of",
    "elaborate",
    "denote",
]
