"""Attribute-ordering utilities (Section 7.3's scheduling decisions).

Compilation requires a global ordering of attributes, which controls
the loop nest and therefore the asymptotics (Sections 5.4.1, 8.1).
The paper uses "a very simple heuristic (putting primary keys first
when possible)"; this module provides that heuristic plus the
underlying consistency machinery:

* :func:`consistent_order` — a global order compatible with every
  input tensor's level order (topological sort of the precedence
  constraints), or an explanation of why none exists;
* :func:`primary_keys_first` — the paper's heuristic: among orders
  consistent with all inputs, prefer to emit primary-key attributes
  (each relation's leading attribute) early.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Mapping, Sequence, Set, Tuple

from repro.krelation.schema import ShapeError


class OrderConflictError(ShapeError):
    """No global attribute order is consistent with all level orders."""


def _edges(orders: Iterable[Sequence[str]]) -> Tuple[Set[str], Dict[str, Set[str]]]:
    attrs: Set[str] = set()
    succ: Dict[str, Set[str]] = {}
    for order in orders:
        order = list(order)
        attrs.update(order)
        for earlier, later in zip(order, order[1:]):
            succ.setdefault(earlier, set()).add(later)
    return attrs, succ


def consistent_order(
    orders: Iterable[Sequence[str]],
    priority: Mapping[str, int] | None = None,
) -> Tuple[str, ...]:
    """A global attribute order compatible with every given level order.

    ``priority`` breaks ties among simultaneously available attributes
    (lower = earlier; default: lexicographic).  Raises
    :class:`OrderConflictError` if the constraints are cyclic — i.e.
    some tensor must be repacked before a single loop nest can serve
    all of them.
    """
    orders = [list(o) for o in orders]
    attrs, succ = _edges(orders)
    indegree: Dict[str, int] = {a: 0 for a in attrs}
    for earlier, laters in succ.items():
        for later in laters:
            indegree[later] += 1
    priority = dict(priority or {})
    heap: List[Tuple[int, str]] = [
        (priority.get(a, 0), a) for a, d in indegree.items() if d == 0
    ]
    heapq.heapify(heap)
    out: List[str] = []
    while heap:
        _, attr = heapq.heappop(heap)
        out.append(attr)
        for later in sorted(succ.get(attr, ())):
            indegree[later] -= 1
            if indegree[later] == 0:
                heapq.heappush(heap, (priority.get(later, 0), later))
    if len(out) != len(attrs):
        stuck = sorted(a for a, d in indegree.items() if d > 0)
        raise OrderConflictError(
            f"level orders {orders} are cyclic around {stuck}; repack one "
            "of the tensors (materialize a transposed temporary)"
        )
    return tuple(out)


def primary_keys_first(
    relations: Mapping[str, Sequence[str]],
    output: Sequence[str] = (),
) -> Tuple[str, ...]:
    """The paper's §7.3 heuristic: a consistent order that emits primary
    keys (each relation's leading attribute) as early as possible, with
    output attributes next — so selective outer loops prune early and
    group-by keys sit high in the nest.
    """
    primaries = {order[0] for order in relations.values() if order}
    priority: Dict[str, int] = {}
    for attr in primaries:
        priority[attr] = -2
    for attr in output:
        priority.setdefault(attr, -1)
    return consistent_order(relations.values(), priority)


def validate_order(order: Sequence[str], tensor_orders: Iterable[Sequence[str]]) -> None:
    """Check that every tensor's level order is a subsequence of
    ``order`` (the validity condition of Definition 5.7)."""
    position = {a: k for k, a in enumerate(order)}
    for t_order in tensor_orders:
        last = -1
        for attr in t_order:
            if attr not in position:
                raise ShapeError(f"attribute {attr!r} missing from order {order}")
            if position[attr] < last:
                raise ShapeError(
                    f"level order {tuple(t_order)} is not a subsequence of "
                    f"{tuple(order)}"
                )
            last = position[attr]
