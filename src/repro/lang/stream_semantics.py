"""The stream semantics ⟦–⟧ˢ of ℒ (Figure 9, Definition 5.8).

Interprets a contraction expression as a nested indexed stream, given a
context binding each variable to a stream whose level order respects
the schema's global attribute ordering.

Σ and ⇑ are pushed to the correct depth with the functorial map —
the paper's ``map^#(a,S)`` (Definition 5.8) — implemented here by
structural descent (:func:`deep_contract` / :func:`deep_expand`), which
also steps over dummy (``*``) levels introduced by earlier
contractions.

A rename that would put levels out of order is realized by
materializing a temporary in the required order (the workspace
technique of Kjolstad et al. 2019; the paper's streams can express
temporaries, Section 9).
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.krelation.schema import Schema, ShapeError
from repro.lang.ast import (
    Add,
    Expand,
    Expr,
    Lit,
    Mul,
    Rename,
    Sum,
    Var,
)
from repro.lang.typing import TypeContext, elaborate
from repro.semirings.base import Semiring
from repro.streams.base import STAR, Stream, is_stream
from repro.streams.combinators import (
    ContractStream,
    MapStream,
    add,
    mul,
    rename as rename_stream,
)
from repro.streams.materialize import materialize
from repro.streams.sources import expand_stream


def interpret(
    expr: Expr,
    ctx: TypeContext,
    bindings: Mapping[str, Any],
) -> Any:
    """Evaluate ``expr`` to a nested indexed stream (or scalar).

    ``bindings`` maps variable names to streams (or scalars for
    shape-∅ variables).  Streams whose level order disagrees with the
    schema ordering are transposed by materialization.
    """
    core = elaborate(expr, ctx)
    semiring = _find_semiring(core, bindings)
    return _interpret(core, ctx, bindings, semiring)


def _find_semiring(expr: Expr, bindings: Mapping[str, Any]) -> Semiring:
    if isinstance(expr, Var):
        bound = bindings[expr.name]
        if is_stream(bound):
            return bound.semiring
        return None  # scalar binding: keep searching siblings
    for child in expr.children():
        found = _find_semiring(child, bindings)
        if found is not None:
            return found
    if isinstance(expr, Var):  # pragma: no cover - handled above
        return None
    return None


def _interpret(expr, ctx: TypeContext, bindings, semiring: Semiring):
    if isinstance(expr, Var):
        stream = bindings[expr.name]
        if not is_stream(stream):
            return stream
        want = ctx.schema.sort_shape(stream.shape)
        if tuple(stream.shape) != want:
            stream = materialize(stream, order=want)
        return stream
    if isinstance(expr, Lit):
        if semiring is None:
            raise ShapeError("cannot infer semiring for a literal-only expression")
        return expr.value if semiring.is_element(expr.value) else semiring.from_int(expr.value)
    if isinstance(expr, Add):
        return add(
            _interpret(expr.left, ctx, bindings, semiring),
            _interpret(expr.right, ctx, bindings, semiring),
            semiring,
        )
    if isinstance(expr, Mul):
        return mul(
            _interpret(expr.left, ctx, bindings, semiring),
            _interpret(expr.right, ctx, bindings, semiring),
            semiring,
        )
    if isinstance(expr, Sum):
        return deep_contract(_interpret(expr.body, ctx, bindings, semiring), expr.attr)
    if isinstance(expr, Expand):
        return deep_expand(
            _interpret(expr.body, ctx, bindings, semiring),
            expr.attr,
            ctx.schema,
            semiring,
        )
    if isinstance(expr, Rename):
        body = _interpret(expr.body, ctx, bindings, semiring)
        if not is_stream(body):
            return body
        renamed = rename_stream(body, expr.mapping)
        want = ctx.schema.sort_shape(renamed.shape)
        if tuple(renamed.shape) != want:
            renamed = materialize(renamed, order=want)
        return renamed
    raise TypeError(f"not a core contraction expression: {expr!r}")


def deep_contract(stream: Any, attr: str) -> Any:
    """Apply Σ_attr at the level labeled ``attr`` (map^k Σ of Def. 5.8)."""
    if not is_stream(stream):
        raise ShapeError(f"cannot contract {attr!r} in a scalar")
    if stream.attr == attr:
        return ContractStream(stream)
    if attr not in stream.shape:
        raise ShapeError(f"attribute {attr!r} not in stream shape {stream.shape}")
    new_shape = tuple(a for a in stream.shape if a != attr)
    return MapStream(lambda v: deep_contract(v, attr), stream, new_shape)


def deep_expand(stream: Any, attr: str, schema: Schema, semiring: Semiring) -> Any:
    """Insert ⇑_attr at its position in the global attribute ordering
    (map^k ⇑ of Def. 5.8).  Dummy levels are stepped over, so the new
    level lands below any contracted levels."""
    attribute = schema.attribute(attr)
    if not is_stream(stream) or (
        stream.attr is not STAR and schema.position(attr) < schema.position(stream.attr)
    ):
        return expand_stream(attr, stream, semiring, domain=attribute.domain)
    if attr in stream.shape:
        raise ShapeError(f"attribute {attr!r} already in stream shape {stream.shape}")
    new_shape = schema_insert(stream.shape, attr, schema)
    return MapStream(
        lambda v: deep_expand(v, attr, schema, semiring), stream, new_shape
    )


def schema_insert(shape, attr: str, schema: Schema):
    """Insert ``attr`` into an ordered shape at its schema position."""
    out = list(shape)
    pos = schema.position(attr)
    at = next((k for k, a in enumerate(out) if schema.position(a) > pos), len(out))
    out.insert(at, attr)
    return tuple(out)
