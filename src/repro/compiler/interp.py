"""A reference interpreter for **P** (the run/eval semantics of §7.2).

The paper relates syntactic streams to indexed streams through semantic
functions ``run : P → S → S`` and ``eval : E α → S → α`` over machine
states.  This module implements those functions directly: a machine
state is a dict of local variables plus the parameter arrays.  The
interpreter is slow but is the semantic yardstick the code generators
are tested against.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.compiler.ir import (
    E,
    EAccess,
    EBinop,
    ECall,
    ECond,
    ELit,
    EUnop,
    EVar,
    P,
    PAssign,
    PComment,
    PIf,
    PSeq,
    PSkip,
    PSort,
    PStore,
    PWhile,
    TINT,
)

MachineState = Dict[str, Any]


def eval_expr(e: E, state: MachineState) -> Any:
    """``eval : E α → S → α``."""
    if isinstance(e, EVar):
        return state[e.name]
    if isinstance(e, ELit):
        return e.value
    if isinstance(e, EAccess):
        return state[e.array][eval_expr(e.index, state)]
    if isinstance(e, EBinop):
        op = e.op
        if op == "&&":
            return bool(eval_expr(e.left, state)) and bool(eval_expr(e.right, state))
        if op == "||":
            return bool(eval_expr(e.left, state)) or bool(eval_expr(e.right, state))
        a = eval_expr(e.left, state)
        b = eval_expr(e.right, state)
        if op == "+":
            return a + b
        if op == "-":
            return a - b
        if op == "*":
            return a * b
        if op == "/":
            return a // b if e.type == TINT else a / b
        if op == "%":
            return a % b
        if op == "<":
            return a < b
        if op == "<=":
            return a <= b
        if op == ">":
            return a > b
        if op == ">=":
            return a >= b
        if op == "==":
            return a == b
        if op == "!=":
            return a != b
        if op == "min":
            return min(a, b)
        if op == "max":
            return max(a, b)
        raise ValueError(f"unknown binop {op!r}")
    if isinstance(e, EUnop):
        v = eval_expr(e.operand, state)
        return (not v) if e.op == "!" else (-v)
    if isinstance(e, ECond):
        return (
            eval_expr(e.then, state)
            if eval_expr(e.cond, state)
            else eval_expr(e.els, state)
        )
    if isinstance(e, ECall):
        return e.op.spec(*[eval_expr(a, state) for a in e.args])
    raise TypeError(f"cannot evaluate {e!r}")


def run_stmt(p: P, state: MachineState, fuel: int = 100_000_000) -> int:
    """``run : P → S → S`` (state is mutated in place).

    ``fuel`` bounds total loop iterations, turning non-termination into
    an error; the remaining fuel is returned."""
    if isinstance(p, (PSkip, PComment)):
        return fuel
    if isinstance(p, PSeq):
        for item in p.items:
            fuel = run_stmt(item, state, fuel)
        return fuel
    if isinstance(p, PAssign):
        state[p.var.name] = eval_expr(p.expr, state)
        return fuel
    if isinstance(p, PStore):
        state[p.array][eval_expr(p.index, state)] = eval_expr(p.expr, state)
        return fuel
    if isinstance(p, PWhile):
        while eval_expr(p.cond, state):
            fuel -= 1
            if fuel <= 0:
                raise RuntimeError("interpreter ran out of fuel (non-termination?)")
            fuel = run_stmt(p.body, state, fuel)
        return fuel
    if isinstance(p, PIf):
        if eval_expr(p.cond, state):
            return run_stmt(p.then, state, fuel)
        if p.els is not None:
            return run_stmt(p.els, state, fuel)
        return fuel
    if isinstance(p, PSort):
        count = eval_expr(p.count, state)
        state[p.array][:count].sort()
        return fuel
    raise TypeError(f"cannot run {p!r}")


class InterpKernel:
    """A kernel executed by the reference interpreter."""

    def __init__(self, name: str, params, decls, body: P) -> None:
        self.name = name
        self.params = list(params)
        self.decls = list(decls)
        self.body = body
        self.source = repr(body)
        # precomputed per-call scaffolding: declared locals all start at
        # 0 and the parameter-name list never changes
        self._base_state: MachineState = {v.name: 0 for v in self.decls}
        self._param_names = [p.name for p in self.params]

    def __call__(self, env: Dict[str, Any]) -> None:
        state = dict(self._base_state)
        for name in self._param_names:
            state[name] = env[name]
        run_stmt(self.body, state)
