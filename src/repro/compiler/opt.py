"""Optimization passes over the imperative IR **P** / **E**.

The seed compiler's only transform was the constant :func:`~repro.compiler.ir.fold`
applied at emission time.  This module is a real (if small) optimizer run
between the destination-passing ``compile`` function and code generation:

* :func:`simplify` — extended constant folding plus branch pruning
  (``PIf``/``PWhile`` with literal conditions);
* :func:`propagate_copies` — forward propagation of variable-to-variable
  and literal copies through straight-line code, branches, and loops;
* :func:`hoist_loop_invariants` — hoists loop-invariant subexpressions
  of ``PWhile`` conditions (the always-evaluated part only, so a
  guarded array access is never made eager) into temporaries defined
  before the loop, replacing every occurrence in the condition and body;
* :func:`eliminate_common_subexprs` — common-subexpression elimination
  of repeated ``EAccess``/``EBinop``/``ECall`` reads within straight-line
  blocks;
* :func:`eliminate_dead_stores` — liveness-based removal of assignments
  to local variables that are never read again.

Every pass is semantics-preserving for *any* scalar semiring: passes
only restructure index arithmetic and pure reads — semiring values are
only ever combined by the ops the lowering already chose, and literal
folding touches ``TINT``/``TBOOL`` expressions whose meaning is fixed.
All **E** expressions are pure (``Op`` specs are functional by the
paper's Figure 12 contract), which the passes rely on.

The pipeline is selected with ``opt_level``:

* ``0`` — identity (the seed behavior, for ablation);
* ``1`` — :func:`simplify` only;
* ``2`` (default) — the full pipeline.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.compiler.analysis.dataflow import (
    arrays_read,
    expr_key,
    expr_uses,
    free_vars,
    live_transfer,
    stmt_effects,
    stmt_reads,
)
from repro.compiler.analysis.verifier import VerifyContext, check_program
from repro.compiler.ir import (
    E,
    fold,
    EAccess,
    EBinop,
    ECall,
    ECond,
    ELit,
    EUnop,
    EVar,
    NameGen,
    P,
    PAssign,
    PComment,
    PIf,
    PSeq,
    PSkip,
    PSort,
    PStore,
    PWhile,
    TBOOL,
)

DEFAULT_OPT_LEVEL = 2

# The structural helpers (expr_key/expr_uses/free_vars/arrays_read/
# stmt_effects/stmt_reads) moved to repro.compiler.analysis.dataflow —
# the one shared implementation under every pass, the vectorizer, and
# the verifier.  They are re-exported here for existing importers.


def subst_vars(e: E, env: Dict[str, E]) -> E:
    """Replace free variables of ``e`` by the expressions in ``env``."""
    if not env:
        return e
    if isinstance(e, EVar):
        return env.get(e.name, e)
    if isinstance(e, EAccess):
        return EAccess(e.array, subst_vars(e.index, env), e.type)
    if isinstance(e, EBinop):
        return EBinop(e.op, subst_vars(e.left, env), subst_vars(e.right, env), e.type)
    if isinstance(e, EUnop):
        return EUnop(e.op, subst_vars(e.operand, env), e.type)
    if isinstance(e, ECond):
        return ECond(
            subst_vars(e.cond, env), subst_vars(e.then, env), subst_vars(e.els, env)
        )
    if isinstance(e, ECall):
        return ECall(e.op, [subst_vars(a, env) for a in e.args])
    return e


def replace_exprs(e: E, table: Dict[str, E]) -> E:
    """Replace whole subexpressions (matched structurally) by ``table``
    entries, largest match first."""
    if not table:
        return e
    hit = table.get(expr_key(e))
    if hit is not None:
        return hit
    if isinstance(e, EAccess):
        return EAccess(e.array, replace_exprs(e.index, table), e.type)
    if isinstance(e, EBinop):
        return EBinop(
            e.op, replace_exprs(e.left, table), replace_exprs(e.right, table), e.type
        )
    if isinstance(e, EUnop):
        return EUnop(e.op, replace_exprs(e.operand, table), e.type)
    if isinstance(e, ECond):
        return ECond(
            replace_exprs(e.cond, table),
            replace_exprs(e.then, table),
            replace_exprs(e.els, table),
        )
    if isinstance(e, ECall):
        return ECall(e.op, [replace_exprs(a, table) for a in e.args])
    return e


def map_stmt_exprs(p: P, fn) -> P:
    """Apply ``fn`` to every expression of ``p``, recursively."""
    if isinstance(p, PSeq):
        return PSeq(*[map_stmt_exprs(x, fn) for x in p.items])
    if isinstance(p, PAssign):
        return PAssign(p.var, fn(p.expr))
    if isinstance(p, PStore):
        return PStore(p.array, fn(p.index), fn(p.expr))
    if isinstance(p, PSort):
        return PSort(p.array, fn(p.count))
    if isinstance(p, PWhile):
        return PWhile(fn(p.cond), map_stmt_exprs(p.body, fn))
    if isinstance(p, PIf):
        els = map_stmt_exprs(p.els, fn) if p.els is not None else None
        return PIf(fn(p.cond), map_stmt_exprs(p.then, fn), els)
    return p


# ----------------------------------------------------------------------
# pass: fold + branch pruning
# ----------------------------------------------------------------------
def simplify(p: P) -> P:
    """Constant-fold every expression and prune branches whose condition
    folded to a literal.  A ``PWhile`` whose condition folds to false is
    removed entirely; a self-assignment ``v = v`` becomes a no-op."""
    if isinstance(p, PSeq):
        return PSeq(*[simplify(x) for x in p.items])
    if isinstance(p, PAssign):
        e = fold(p.expr)
        if isinstance(e, EVar) and e.name == p.var.name:
            return PSkip()
        return PAssign(p.var, e)
    if isinstance(p, PStore):
        return PStore(p.array, fold(p.index), fold(p.expr))
    if isinstance(p, PSort):
        return PSort(p.array, fold(p.count))
    if isinstance(p, PWhile):
        cond = fold(p.cond)
        if isinstance(cond, ELit) and cond.type == TBOOL and not cond.value:
            return PSkip()
        return PWhile(cond, simplify(p.body))
    if isinstance(p, PIf):
        cond = fold(p.cond)
        if isinstance(cond, ELit) and cond.type == TBOOL:
            if cond.value:
                return simplify(p.then)
            return simplify(p.els) if p.els is not None else PSkip()
        then = simplify(p.then)
        els = simplify(p.els) if p.els is not None else None
        if _is_noop(then) and (els is None or _is_noop(els)):
            return PSkip()  # the condition is pure
        return PIf(cond, then, els)
    return p


def _is_noop(p: P) -> bool:
    return isinstance(p, (PSkip, PComment)) or (
        isinstance(p, PSeq) and all(_is_noop(x) for x in p.items)
    )


# ----------------------------------------------------------------------
# pass: copy propagation
# ----------------------------------------------------------------------
def propagate_copies(p: P) -> P:
    """Forward-propagate ``v = w`` / ``v = literal`` copies.

    The environment maps a variable to the ``EVar``/``ELit`` it was last
    assigned; an entry dies when either side is reassigned.  Loop bodies
    are entered with every entry touching a body-assigned variable
    killed, which makes the remaining entries valid on *every*
    iteration; branch environments are merged by intersection."""
    env: Dict[str, E] = {}
    return _cp(p, env)


def _cp_kill(env: Dict[str, E], names: Set[str]) -> None:
    if not names:
        return
    dead = [
        k
        for k, v in env.items()
        if k in names or (isinstance(v, EVar) and v.name in names)
    ]
    for k in dead:
        del env[k]


def _cp(p: P, env: Dict[str, E]) -> P:
    if isinstance(p, PSeq):
        return PSeq(*[_cp(x, env) for x in p.items])
    if isinstance(p, PAssign):
        e = subst_vars(p.expr, env)
        _cp_kill(env, {p.var.name})
        if isinstance(e, ELit) or (isinstance(e, EVar) and e.name != p.var.name):
            env[p.var.name] = e
        return PAssign(p.var, e)
    if isinstance(p, PStore):
        return PStore(p.array, subst_vars(p.index, env), subst_vars(p.expr, env))
    if isinstance(p, PSort):
        return PSort(p.array, subst_vars(p.count, env))
    if isinstance(p, PWhile):
        assigned, _ = stmt_effects(p.body)
        _cp_kill(env, assigned)
        cond = subst_vars(p.cond, env)
        body_env = dict(env)
        body = _cp(p.body, body_env)
        return PWhile(cond, body)
    if isinstance(p, PIf):
        cond = subst_vars(p.cond, env)
        then_env = dict(env)
        then = _cp(p.then, then_env)
        if p.els is not None:
            els_env = dict(env)
            els = _cp(p.els, els_env)
        else:
            els_env, els = env, None
        merged = {
            k: v
            for k, v in then_env.items()
            if k in els_env and expr_key(els_env[k]) == expr_key(v)
        }
        env.clear()
        env.update(merged)
        return PIf(cond, then, els)
    return p


# ----------------------------------------------------------------------
# pass: dead-store elimination
# ----------------------------------------------------------------------
def eliminate_dead_stores(p: P) -> P:
    """Remove assignments to local variables that are never read again.
    Memory effects (``PStore``/``PSort``) are always retained."""
    new_p, _ = _dse(p, set())
    return new_p


def _dse(p: P, live: Set[str]) -> Tuple[P, Set[str]]:
    if isinstance(p, PSeq):
        items: List[P] = []
        for item in reversed(p.items):
            new_item, live = _dse(item, live)
            items.append(new_item)
        return PSeq(*reversed(items)), live
    if isinstance(p, PAssign):
        if p.var.name not in live:
            return PSkip(), live
        return p, live_transfer(p, live)
    if isinstance(p, (PStore, PSort)):
        return p, live_transfer(p, live)
    if isinstance(p, PWhile):
        live_in = live | free_vars(p.cond) | stmt_reads(p.body)
        body, _ = _dse(p.body, set(live_in))
        return PWhile(p.cond, body), live_in
    if isinstance(p, PIf):
        then, live_t = _dse(p.then, set(live))
        if p.els is not None:
            els, live_e = _dse(p.els, set(live))
        else:
            els, live_e = None, live
        return PIf(p.cond, then, els), live_t | live_e | free_vars(p.cond)
    return p, live


# ----------------------------------------------------------------------
# pass: common-subexpression elimination
# ----------------------------------------------------------------------
def eliminate_common_subexprs(p: P, ng: NameGen) -> P:
    """Within each straight-line run of assignments/stores, hoist a read
    expression (``EAccess``/``EBinop``/``ECall``) that occurs at least
    twice with no intervening invalidation into a fresh temporary.

    Occurrences in *conditionally evaluated* positions (branches of an
    ``ECond``, right operands of ``&&``/``||``) are substituted when a
    temporary already exists but never force one into existence — a
    guarded array access stays guarded."""
    if isinstance(p, PSeq):
        out: List[P] = []
        segment: List[P] = []
        for item in p.items:
            if isinstance(item, (PAssign, PStore, PComment)):
                segment.append(item)
            else:
                out.extend(_cse_segment(segment, ng))
                segment = []
                out.append(eliminate_common_subexprs(item, ng))
        out.extend(_cse_segment(segment, ng))
        return PSeq(*out)
    if isinstance(p, PWhile):
        return PWhile(p.cond, eliminate_common_subexprs(p.body, ng))
    if isinstance(p, PIf):
        els = eliminate_common_subexprs(p.els, ng) if p.els is not None else None
        return PIf(p.cond, eliminate_common_subexprs(p.then, ng), els)
    return p


def _cse_candidate(e: E) -> bool:
    if isinstance(e, EAccess):
        return True
    if isinstance(e, (EBinop, ECall)):
        vs: Set[str] = set()
        arrs: Set[str] = set()
        expr_uses(e, vs, arrs)
        return bool(vs or arrs)  # folding already handled all-literal exprs
    return False


def _stmt_read_exprs(stmt: P) -> List[E]:
    if isinstance(stmt, PAssign):
        return [stmt.expr]
    if isinstance(stmt, PStore):
        return [stmt.index, stmt.expr]
    return []


def _stmt_kills(stmt: P) -> Tuple[Optional[str], Optional[str]]:
    if isinstance(stmt, PAssign):
        return stmt.var.name, None
    if isinstance(stmt, PStore):
        return None, stmt.array
    return None, None


def _cse_segment(stmts: List[P], ng: NameGen) -> List[P]:
    if len(stmts) < 2:
        return list(stmts)

    # pass 1: count occurrences per (key, epoch); an epoch ends when the
    # expression's variables/arrays are invalidated.
    counts: Dict[Tuple[str, int], int] = {}
    epoch: Dict[str, int] = {}
    meta: Dict[str, Tuple[Set[str], Set[str]]] = {}

    def count(e: E, guarded: bool) -> None:
        if _cse_candidate(e):
            k = expr_key(e)
            if k not in meta:
                vs: Set[str] = set()
                arrs: Set[str] = set()
                expr_uses(e, vs, arrs)
                meta[k] = (vs, arrs)
            counts[(k, epoch.get(k, 0))] = counts.get((k, epoch.get(k, 0)), 0) + 1
        if isinstance(e, EAccess):
            count(e.index, guarded)
        elif isinstance(e, EBinop):
            count(e.left, guarded)
            count(e.right, guarded or e.op in ("&&", "||"))
        elif isinstance(e, EUnop):
            count(e.operand, guarded)
        elif isinstance(e, ECond):
            count(e.cond, guarded)
            count(e.then, True)
            count(e.els, True)
        elif isinstance(e, ECall):
            for a in e.args:
                count(a, guarded)

    def apply_kills(stmt: P, epochs: Dict[str, int]) -> None:
        var, arr = _stmt_kills(stmt)
        if var is None and arr is None:
            return
        for k, (vs, arrs) in meta.items():
            if (var is not None and var in vs) or (arr is not None and arr in arrs):
                epochs[k] = epochs.get(k, 0) + 1

    for stmt in stmts:
        for e in _stmt_read_exprs(stmt):
            count(e, False)
        apply_kills(stmt, epoch)

    # pass 2: rewrite, materializing a temporary at the first unguarded
    # occurrence of any key seen >= 2 times within one epoch.
    out: List[P] = []
    cur_epoch: Dict[str, int] = {}
    avail: Dict[Tuple[str, int], EVar] = {}

    def rewrite(e: E, guarded: bool) -> E:
        k = expr_key(e) if _cse_candidate(e) else None
        if k is not None:
            ep = cur_epoch.get(k, 0)
            tmp = avail.get((k, ep))
            if tmp is not None:
                return tmp
            if not guarded and counts.get((k, ep), 0) >= 2:
                rebuilt = _rebuild(e, guarded)
                tmp = ng.fresh("cse", e.type)
                out.append(PAssign(tmp, rebuilt))
                avail[(k, ep)] = tmp
                return tmp
        return _rebuild(e, guarded)

    def _rebuild(e: E, guarded: bool) -> E:
        if isinstance(e, EAccess):
            return EAccess(e.array, rewrite(e.index, guarded), e.type)
        if isinstance(e, EBinop):
            rguard = guarded or e.op in ("&&", "||")
            return EBinop(
                e.op, rewrite(e.left, guarded), rewrite(e.right, rguard), e.type
            )
        if isinstance(e, EUnop):
            return EUnop(e.op, rewrite(e.operand, guarded), e.type)
        if isinstance(e, ECond):
            return ECond(
                rewrite(e.cond, guarded),
                rewrite(e.then, True),
                rewrite(e.els, True),
            )
        if isinstance(e, ECall):
            return ECall(e.op, [rewrite(a, guarded) for a in e.args])
        return e

    for stmt in stmts:
        if isinstance(stmt, PAssign):
            stmt = PAssign(stmt.var, rewrite(stmt.expr, False))
        elif isinstance(stmt, PStore):
            stmt = PStore(
                stmt.array, rewrite(stmt.index, False), rewrite(stmt.expr, False)
            )
        apply_kills(stmt, cur_epoch)
        out.append(stmt)
    return out


# ----------------------------------------------------------------------
# pass: loop-invariant hoisting
# ----------------------------------------------------------------------
def hoist_loop_invariants(p: P, ng: NameGen) -> P:
    """Hoist invariant subexpressions of each ``PWhile`` condition into
    temporaries assigned immediately before the loop.

    Only the *always-evaluated* part of the condition is considered (the
    left spine of ``&&``/``||`` chains, the scrutinee of conditionals),
    so hoisting evaluates exactly what the first condition check would
    have evaluated — safe even for zero-iteration loops and for guarded
    array accesses.  Every other occurrence of a hoisted expression in
    the condition or body is then replaced by the temporary."""
    if isinstance(p, PSeq):
        return PSeq(*[hoist_loop_invariants(x, ng) for x in p.items])
    if isinstance(p, PIf):
        els = hoist_loop_invariants(p.els, ng) if p.els is not None else None
        return PIf(p.cond, hoist_loop_invariants(p.then, ng), els)
    if not isinstance(p, PWhile):
        return p

    body = hoist_loop_invariants(p.body, ng)
    assigned, stored = stmt_effects(body)

    def invariant(e: E) -> bool:
        vs: Set[str] = set()
        arrs: Set[str] = set()
        expr_uses(e, vs, arrs)
        return not (vs & assigned) and not (arrs & stored)

    hoisted: List[E] = []
    seen: Set[str] = set()

    def nontrivial(e: E) -> bool:
        return isinstance(e, (EAccess, EBinop, ECall)) and not isinstance(e, ELit)

    def collect(e: E) -> None:
        # maximal invariant subexpressions of the always-evaluated part
        if nontrivial(e) and invariant(e):
            k = expr_key(e)
            if k not in seen:
                seen.add(k)
                hoisted.append(e)
            return
        if isinstance(e, EBinop):
            collect(e.left)
            if e.op not in ("&&", "||"):
                collect(e.right)
        elif isinstance(e, EUnop):
            collect(e.operand)
        elif isinstance(e, ECond):
            collect(e.cond)
        elif isinstance(e, EAccess):
            collect(e.index)
        elif isinstance(e, ECall):
            for a in e.args:
                collect(a)

    collect(p.cond)
    if not hoisted:
        return PWhile(p.cond, body)

    table: Dict[str, E] = {}
    pre: List[P] = []
    for e in hoisted:
        tmp = ng.fresh("inv", e.type)
        pre.append(PAssign(tmp, e))
        table[expr_key(e)] = tmp
    cond = replace_exprs(p.cond, table)
    body = map_stmt_exprs(body, lambda ex: replace_exprs(ex, table))
    return PSeq(*pre, PWhile(cond, body))


# ----------------------------------------------------------------------
# the pipeline
# ----------------------------------------------------------------------
# Each entry is (pass name, min opt level, runner).  The runners look
# the pass function up through the module namespace at call time, so
# tests can monkeypatch an individual pass (fault injection) and the
# pipeline — and the verifier's blame assignment — picks it up.
PIPELINE: List[Tuple[str, int, Callable[[P, NameGen], P]]] = [
    ("simplify", 1, lambda b, ng: simplify(b)),
    ("copy-prop", 2, lambda b, ng: propagate_copies(b)),
    ("licm", 2, lambda b, ng: hoist_loop_invariants(b, ng)),
    ("cse", 2, lambda b, ng: eliminate_common_subexprs(b, ng)),
    ("dse", 2, lambda b, ng: eliminate_dead_stores(b)),
    ("final-simplify", 2, lambda b, ng: simplify(b)),
]


def optimize(
    body: P,
    ng: NameGen,
    level: int = DEFAULT_OPT_LEVEL,
    *,
    verify: Optional[bool] = None,
    params: Optional[Sequence[object]] = None,
) -> P:
    """Run the pass pipeline selected by ``level`` (see module docs).

    With ``verify=True`` (default: the ``REPRO_IR_VERIFY`` environment
    toggle) and the kernel's ``params``, the typed IR verifier runs on
    the input and again after every pass, in strict mode (even a
    use-before-def *warning* in optimizer output means a pass deleted
    or reordered a live definition).  A violation raises
    :class:`~repro.errors.IRVerifyError` naming the offending pass.
    Verification needs the parameter list to know the typing
    environment; without ``params`` it is skipped.
    """
    if verify is None:
        from repro.compiler import resilience

        verify = resilience.ir_verify_enabled()
    checking = bool(verify) and params is not None

    def check(after: str) -> None:
        if not checking:
            return
        ctx = VerifyContext.from_params(params, ng.allocated)
        check_program(body, ctx, pass_name=after, strict=True)

    check("input")
    for name, min_level, run in PIPELINE:
        if level < min_level:
            continue
        body = run(body, ng)
        check(name)
    return body
