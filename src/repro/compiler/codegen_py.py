"""Python code generation for **P** — the toolchain-free backend.

Emits the same loop nest as the C backend as a Python function over
numpy arrays (orders of magnitude slower, but requires no compiler and
is byte-for-byte comparable in the parity tests)."""

from __future__ import annotations

from typing import Dict, Sequence

import math

from repro.compiler.formats import Param
from repro.compiler.ir import (
    E,
    fold,
    EAccess,
    EBinop,
    ECall,
    ECond,
    ELit,
    EUnop,
    EVar,
    P,
    PAssign,
    PComment,
    PIf,
    PSeq,
    PSkip,
    PSort,
    PStore,
    PWhile,
    TBOOL,
    TFLOAT,
    TINT,
)

_PY_BINOPS = {"&&": "and", "||": "or", "%": "%"}


def emit_expr(e: E) -> str:
    return _emit_expr(fold(e))


def _emit_expr(e: E) -> str:
    if isinstance(e, EVar):
        return e.name
    if isinstance(e, ELit):
        if e.type == TFLOAT and math.isinf(e.value):
            return "_inf" if e.value > 0 else "(-_inf)"
        return repr(e.value)
    if isinstance(e, EAccess):
        return f"{e.array}[{_emit_expr(e.index)}]"
    if isinstance(e, EBinop):
        a, b = _emit_expr(e.left), _emit_expr(e.right)
        if e.op == "min":
            return f"min({a}, {b})"
        if e.op == "max":
            return f"max({a}, {b})"
        if e.op == "/" and e.type == TINT:
            return f"({a} // {b})"
        op = _PY_BINOPS.get(e.op, e.op)
        return f"({a} {op} {b})"
    if isinstance(e, EUnop):
        if e.op == "!":
            return f"(not {_emit_expr(e.operand)})"
        return f"(-{_emit_expr(e.operand)})"
    if isinstance(e, ECond):
        return f"({_emit_expr(e.then)} if {_emit_expr(e.cond)} else {_emit_expr(e.els)})"
    if isinstance(e, ECall):
        return f"_op_{e.op.name}({', '.join(_emit_expr(a) for a in e.args)})"
    raise TypeError(f"cannot emit expression {e!r}")


def emit_stmt(p: P, indent: int = 1) -> str:
    pad = "    " * indent
    if isinstance(p, PSkip):
        return f"{pad}pass"
    if isinstance(p, PSeq):
        lines = [emit_stmt(x, indent) for x in p.items]
        lines = [ln for ln in lines if ln.strip() != "pass" or len(lines) == 1]
        return "\n".join(lines) if lines else f"{pad}pass"
    if isinstance(p, PAssign):
        return f"{pad}{p.var.name} = {emit_expr(p.expr)}"
    if isinstance(p, PStore):
        return f"{pad}{p.array}[{emit_expr(p.index)}] = {emit_expr(p.expr)}"
    if isinstance(p, PWhile):
        return f"{pad}while {emit_expr(p.cond)}:\n{_block(p.body, indent + 1)}"
    if isinstance(p, PIf):
        out = f"{pad}if {emit_expr(p.cond)}:\n{_block(p.then, indent + 1)}"
        if p.els is not None and not isinstance(p.els, PSkip):
            out += f"\n{pad}else:\n{_block(p.els, indent + 1)}"
        return out
    if isinstance(p, PComment):
        return f"{pad}# {p.text}"
    if isinstance(p, PSort):
        return f"{pad}{p.array}[:{emit_expr(p.count)}].sort()"
    raise TypeError(f"cannot emit statement {p!r}")


def _block(p: P, indent: int) -> str:
    body = emit_stmt(p, indent)
    return body if body.strip() else "    " * indent + "pass"


def _collect_ops(p: P, acc: Dict[str, object]) -> None:
    def walk_e(e: E) -> None:
        if isinstance(e, ECall):
            acc[e.op.name] = e.op.spec
            for a in e.args:
                walk_e(a)
        elif isinstance(e, EBinop):
            walk_e(e.left)
            walk_e(e.right)
        elif isinstance(e, EUnop):
            walk_e(e.operand)
        elif isinstance(e, ECond):
            walk_e(e.cond)
            walk_e(e.then)
            walk_e(e.els)
        elif isinstance(e, EAccess):
            walk_e(e.index)

    if isinstance(p, PSeq):
        for x in p.items:
            _collect_ops(x, acc)
    elif isinstance(p, PWhile):
        walk_e(p.cond)
        _collect_ops(p.body, acc)
    elif isinstance(p, PIf):
        walk_e(p.cond)
        _collect_ops(p.then, acc)
        if p.els is not None:
            _collect_ops(p.els, acc)
    elif isinstance(p, PAssign):
        walk_e(p.expr)
    elif isinstance(p, PStore):
        walk_e(p.index)
        walk_e(p.expr)


def emit_kernel_source(name: str, params: Sequence[Param], decls, body: P) -> str:
    arg_list = ", ".join(p.name for p in params)
    decl_lines = "\n".join(
        f"    {v.name} = " + ("0.0" if v.type == TFLOAT else "False" if v.type == TBOOL else "0")
        for v in decls
    )
    return f"def {name}({arg_list}):\n{decl_lines}\n{emit_stmt(body)}\n"


class PyKernel:
    """A kernel executed as generated Python code."""

    def __init__(self, name: str, params: Sequence[Param], decls, body: P) -> None:
        source = emit_kernel_source(name, params, decls, body)
        ops: Dict[str, object] = {}
        _collect_ops(body, ops)
        self.source = source
        self.name = name
        self.params = list(params)
        namespace: Dict[str, object] = {"_inf": math.inf}
        for op_name, spec in ops.items():
            namespace[f"_op_{op_name}"] = spec
        exec(compile(source, f"<kernel {name}>", "exec"), namespace)
        self._fn = namespace[name]

    def __call__(self, env: Dict[str, object]) -> None:
        self._fn(*[env[p.name] for p in self.params])
