"""Python code generation for **P** — the toolchain-free backend.

Emits the same loop nest as the C backend as a Python function over
numpy arrays (slower, but requires no compiler and is byte-for-byte
comparable in the parity tests).

With ``vectorize=True`` the emitter additionally recognizes innermost
*counted* loops

    while p < end:
        <index defs, pure loads, accumulates or stores>
        p = p + 1

whose body is straight-line and free of loop-carried dependences other
than recognized reductions, and emits a NumPy slice expression instead
of an interpreted loop — e.g. the SpMV inner loop becomes

    out_vals[i] += (A_vals[lo:hi] * x_vals[A_crd1[lo:hi]]).sum()

Recognized effects: accumulation into a slot whose index does not
depend on ``p`` (reduction: ``.sum()``/``.min()``/``.max()``/
``.prod()``), accumulation into a scalar variable, and element-wise
stores/accumulates whose index is affine in ``p`` (``p`` or ``b + p``)
— affine indices enumerate *distinct* elements, so NumPy's simultaneous
update semantics coincide with the sequential loop.  Gather loads
(``x[crd[lo:hi]]``) are allowed; scatter *stores* through a gathered
index are not (NumPy would collapse repeated indices) and fall back.
Any unrecognized shape — conditionals, calls, boolean operators,
nested loops — falls back to the scalar emitter for that loop.

Floating-point caveat: NumPy reduces with pairwise summation, so float
results can differ from the sequential loop by rounding; semantic
comparisons in this repo go through ``Semiring.eq``, which tolerates
this.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import math

import numpy as np

from repro.compiler.formats import Param
from repro.errors import CompileError
from repro.compiler.ir import (
    E,
    fold,
    EAccess,
    EBinop,
    ECall,
    ECond,
    ELit,
    EUnop,
    EVar,
    P,
    PAssign,
    PComment,
    PIf,
    PSeq,
    PSkip,
    PSort,
    PStore,
    PWhile,
    TBOOL,
    TFLOAT,
    TINT,
)
from repro.compiler.opt import arrays_read, expr_key, free_vars, subst_vars

_PY_BINOPS = {"&&": "and", "||": "or", "%": "%"}


def emit_expr(e: E) -> str:
    return _emit_expr(fold(e))


def _emit_expr(e: E) -> str:
    if isinstance(e, EVar):
        return e.name
    if isinstance(e, ELit):
        if e.type == TFLOAT and math.isinf(e.value):
            return "_inf" if e.value > 0 else "(-_inf)"
        return repr(e.value)
    if isinstance(e, EAccess):
        return f"{e.array}[{_emit_expr(e.index)}]"
    if isinstance(e, EBinop):
        a, b = _emit_expr(e.left), _emit_expr(e.right)
        if e.op == "min":
            return f"min({a}, {b})"
        if e.op == "max":
            return f"max({a}, {b})"
        if e.op == "/" and e.type == TINT:
            return f"({a} // {b})"
        op = _PY_BINOPS.get(e.op, e.op)
        return f"({a} {op} {b})"
    if isinstance(e, EUnop):
        if e.op == "!":
            return f"(not {_emit_expr(e.operand)})"
        return f"(-{_emit_expr(e.operand)})"
    if isinstance(e, ECond):
        return f"({_emit_expr(e.then)} if {_emit_expr(e.cond)} else {_emit_expr(e.els)})"
    if isinstance(e, ECall):
        return f"_op_{e.op.name}({', '.join(_emit_expr(a) for a in e.args)})"
    raise TypeError(f"cannot emit expression {e!r}")


def emit_stmt(p: P, indent: int = 1, vectorize: bool = False) -> str:
    pad = "    " * indent
    if isinstance(p, PSkip):
        return f"{pad}pass"
    if isinstance(p, PSeq):
        lines = [emit_stmt(x, indent, vectorize) for x in p.items]
        lines = [ln for ln in lines if ln.strip() != "pass" or len(lines) == 1]
        return "\n".join(lines) if lines else f"{pad}pass"
    if isinstance(p, PAssign):
        return f"{pad}{p.var.name} = {emit_expr(p.expr)}"
    if isinstance(p, PStore):
        return f"{pad}{p.array}[{emit_expr(p.index)}] = {emit_expr(p.expr)}"
    if isinstance(p, PWhile):
        if vectorize:
            vec = _try_vectorize(p, indent)
            if vec is not None:
                return vec
        return f"{pad}while {emit_expr(p.cond)}:\n{_block(p.body, indent + 1, vectorize)}"
    if isinstance(p, PIf):
        out = f"{pad}if {emit_expr(p.cond)}:\n{_block(p.then, indent + 1, vectorize)}"
        if p.els is not None and not isinstance(p.els, PSkip):
            out += f"\n{pad}else:\n{_block(p.els, indent + 1, vectorize)}"
        return out
    if isinstance(p, PComment):
        return f"{pad}# {p.text}"
    if isinstance(p, PSort):
        return f"{pad}{p.array}[:{emit_expr(p.count)}].sort()"
    raise TypeError(f"cannot emit statement {p!r}")


def _block(p: P, indent: int, vectorize: bool = False) -> str:
    body = emit_stmt(p, indent, vectorize)
    return body if body.strip() else "    " * indent + "pass"


# ----------------------------------------------------------------------
# the loop vectorizer
# ----------------------------------------------------------------------
class _VecFail(Exception):
    """Raised internally when a loop does not match the vector pattern."""


_REDUCERS = {"+": "sum", "min": "min", "max": "max", "*": "prod"}
_SLICE_ACCUM = {
    "+": "{lhs} += {rhs}",
    "*": "{lhs} *= {rhs}",
    "min": "{lhs} = _np.minimum({lhs}, {rhs})",
    "max": "{lhs} = _np.maximum({lhs}, {rhs})",
}
_SLOT_ACCUM = {
    "+": "{lhs} = {lhs} + ({vec}).sum()",
    "*": "{lhs} = {lhs} * ({vec}).prod()",
    "min": "{lhs} = min({lhs}, ({vec}).min())",
    "max": "{lhs} = max({lhs}, ({vec}).max())",
}


def _affine_base(idx: E, pname: str) -> Optional[E]:
    """``idx`` must be ``p`` (returns None) or ``b + p``/``p + b`` with
    ``p`` not free in ``b`` (returns ``b``); anything else fails."""
    if isinstance(idx, EVar) and idx.name == pname:
        return None
    if isinstance(idx, EBinop) and idx.op == "+":
        if isinstance(idx.right, EVar) and idx.right.name == pname:
            if pname not in free_vars(idx.left):
                return idx.left
        if isinstance(idx.left, EVar) and idx.left.name == pname:
            if pname not in free_vars(idx.right):
                return idx.right
    raise _VecFail


def _slice_code(arr: str, base: Optional[E]) -> str:
    if base is None:
        return f"{arr}[_vlo:_vhi]"
    b = _emit_expr(base)
    return f"{arr}[({b}) + _vlo:({b}) + _vhi]"


def _vec_expr(e: E, pname: str) -> str:
    """Emit ``e`` as a NumPy expression over the range ``_vlo:_vhi`` of
    the loop variable; ``e`` must contain ``p``."""
    if pname not in free_vars(e):
        return _emit_expr(e)  # loop-invariant: scalar, broadcasts
    if isinstance(e, EVar):  # e is p itself
        return "_np.arange(_vlo, _vhi)"
    if isinstance(e, EAccess):
        try:
            return _slice_code(e.array, _affine_base(e.index, pname))
        except _VecFail:
            return f"{e.array}[{_vec_expr(e.index, pname)}]"  # gather load
    if isinstance(e, EBinop):
        a = _vec_expr(e.left, pname)
        b = _vec_expr(e.right, pname)
        if e.op == "min":
            return f"_np.minimum({a}, {b})"
        if e.op == "max":
            return f"_np.maximum({a}, {b})"
        if e.op == "/":
            return f"({a} {'//' if e.type == TINT else '/'} {b})"
        if e.op in ("+", "-", "*", "%"):
            return f"({a} {e.op} {b})"
        raise _VecFail  # comparisons / && / || — no mask support
    if isinstance(e, EUnop) and e.op == "-":
        return f"(-{_vec_expr(e.operand, pname)})"
    raise _VecFail  # ECond, ECall, !


def _try_vectorize(w: PWhile, indent: int) -> Optional[str]:
    """Emit ``w`` as NumPy slice code, or None to fall back to the
    scalar loop emitter."""
    try:
        return _vectorize(w, indent)
    except _VecFail:
        return None


def _vectorize(w: PWhile, indent: int) -> str:
    cond = fold(w.cond)
    if not (
        isinstance(cond, EBinop)
        and cond.op == "<"
        and isinstance(cond.left, EVar)
        and cond.left.type == TINT
    ):
        raise _VecFail
    pname = cond.left.name
    bound = cond.right
    if pname in free_vars(bound):
        raise _VecFail

    items = [s for s in (w.body.items if isinstance(w.body, PSeq) else (w.body,))
             if not isinstance(s, (PComment, PSkip))]
    if not items:
        raise _VecFail
    incr = items[-1]
    if not (
        isinstance(incr, PAssign)
        and incr.var.name == pname
        and _is_incr(fold(incr.expr), pname)
    ):
        raise _VecFail

    # classify the body: index definitions (substituted through) and
    # effects (stores / reductions)
    sub: Dict[str, E] = {}
    defs: Dict[str, E] = {}  # insertion-ordered; last value wins for fixups
    effects: List[Tuple] = []  # ("slot"/"var"/"slice", ...)
    reduced: set = set()
    for s in items[:-1]:
        if isinstance(s, PAssign):
            if s.var.name == pname:
                raise _VecFail
            e = subst_vars(fold(s.expr), sub)
            red = _match_var_reduce(s.var, e, pname)
            if red is not None:
                if s.var.name in sub or s.var.name in reduced:
                    raise _VecFail
                effects.append(("var", s.var.name, *red))
                reduced.add(s.var.name)
                continue
            if s.var.name in free_vars(e) or s.var.name in reduced:
                raise _VecFail  # loop-carried dependence
            sub[s.var.name] = e
            defs[s.var.name] = e
        elif isinstance(s, PStore):
            idx = subst_vars(fold(s.index), sub)
            rhs = subst_vars(fold(s.expr), sub)
            if pname in free_vars(idx):
                base = _affine_base(idx, pname)  # scatter via gather: fail
                effects.append(("slice", s.array, base, idx, rhs))
            else:
                effects.append(("slot", s.array, idx, rhs))
        else:
            raise _VecFail  # nested loop / branch / sort
    if not effects:
        raise _VecFail  # pure index loop: not worth a frame

    # ------------------------------------------------------------------
    # safety checks: no effect may read state another effect writes, the
    # bound and the index defs must be invariant across the whole loop
    written = {eff[1] for eff in effects if eff[0] in ("slot", "slice")}
    if len(written) + len(reduced) != len(effects):
        raise _VecFail  # two effects on one target: possible aliasing

    def check_invariant(e: E, own_target: Optional[str] = None) -> None:
        vs = free_vars(e)
        if vs & reduced:
            raise _VecFail
        arrs = arrays_read(e)
        if own_target is not None:
            arrs = arrs - {own_target}
        if arrs & written:
            raise _VecFail

    check_invariant(bound)
    if free_vars(bound) & set(defs):
        raise _VecFail  # bound recomputed per iteration
    for e in defs.values():
        check_invariant(e)

    lines: List[str] = []
    for eff in effects:
        if eff[0] == "slot":
            _, arr, idx, rhs = eff
            op, vec = _match_accum(rhs, arr, idx, pname)
            if op not in _SLOT_ACCUM or pname not in free_vars(vec):
                raise _VecFail
            check_invariant(idx)
            check_invariant(vec, own_target=None)
            lhs = f"{arr}[{_emit_expr(idx)}]"
            lines.append(_SLOT_ACCUM[op].format(lhs=lhs, vec=_vec_expr(vec, pname)))
        elif eff[0] == "var":
            _, vname, op, vec = eff
            check_invariant(vec)
            lines.append(_SLOT_ACCUM[op].format(lhs=vname, vec=_vec_expr(vec, pname)))
        else:
            _, arr, base, idx, rhs = eff
            if base is not None:
                check_invariant(base)
            op, vec = _match_accum(rhs, arr, idx, pname)
            lhs = _slice_code(arr, base)
            if op is None:
                check_invariant(vec, own_target=None)  # plain store
                lines.append(f"{lhs} = {_vec_expr(vec, pname)}")
            else:
                if op not in _SLICE_ACCUM:
                    raise _VecFail
                check_invariant(vec, own_target=None)
                lines.append(_SLICE_ACCUM[op].format(lhs=lhs, rhs=_vec_expr(vec, pname)))

    # after the loop each index variable holds its last-iteration value
    for vname, e in defs.items():
        lines.append(f"{vname} = {_emit_expr(_shift_last(e, pname))}")
    lines.append(f"{pname} = _vhi")

    pad = "    " * indent
    inner = "    " * (indent + 1)
    out = [f"{pad}_vlo = {pname}", f"{pad}_vhi = {_emit_expr(bound)}",
           f"{pad}if _vlo < _vhi:"]
    out.extend(f"{inner}{ln}" for ln in lines)
    return "\n".join(out)


def _shift_last(e: E, pname: str) -> E:
    """``e`` with ``p`` replaced by ``_vhi - 1`` (the final iteration)."""
    last = EBinop("-", EVar("_vhi", TINT), ELit(1, TINT), TINT)
    return fold(subst_vars(e, {pname: last}))


def _is_incr(e: E, pname: str) -> bool:
    return (
        isinstance(e, EBinop)
        and e.op == "+"
        and (
            (isinstance(e.left, EVar) and e.left.name == pname
             and isinstance(e.right, ELit) and e.right.value == 1)
            or (isinstance(e.right, EVar) and e.right.name == pname
                and isinstance(e.left, ELit) and e.left.value == 1)
        )
    )


def _match_accum(rhs: E, arr: str, idx: E, pname: str):
    """Split ``arr[idx] op rest`` (an accumulation reading its own
    target) into (op, rest); a plain store returns (None, rhs)."""
    if isinstance(rhs, EBinop) and rhs.op in _REDUCERS:
        key = expr_key(idx)
        for own, rest in ((rhs.left, rhs.right), (rhs.right, rhs.left)):
            if (
                isinstance(own, EAccess)
                and own.array == arr
                and expr_key(own.index) == key
            ):
                if arr in arrays_read(rest):
                    raise _VecFail
                return rhs.op, rest
    if arr in arrays_read(rhs):
        raise _VecFail
    return None, rhs


def _match_var_reduce(var: EVar, e: E, pname: str):
    """Match ``v = v op rest`` with ``p`` free in rest: a scalar
    reduction.  Returns (op, rest) or None."""
    if not (isinstance(e, EBinop) and e.op in _REDUCERS):
        return None
    for own, rest in ((e.left, e.right), (e.right, e.left)):
        if isinstance(own, EVar) and own.name == var.name:
            if var.name in free_vars(rest) or pname not in free_vars(rest):
                return None
            return e.op, rest
    return None


# ----------------------------------------------------------------------
# the checked (sanitizing) mode
# ----------------------------------------------------------------------
class _CheckedArray:
    """A bounds-verifying proxy over one kernel array.

    The checked Python backend (``REPRO_SANITIZE``) wraps every array
    parameter in one of these, so *every* subscript the generated code
    performs — loads, stores, and the ``PSort`` slice — is validated
    against the allocation.  Out-of-bounds access (including negative
    indices, which NumPy would silently wrap) raises ``IndexError``
    naming the kernel, array, index, and length — the Python analogue
    of an ASan report, with the same fail-loudly contract."""

    __slots__ = ("kernel", "name", "data")

    def __init__(self, kernel: str, name: str, data) -> None:
        self.kernel = kernel
        self.name = name
        self.data = data

    def _fail(self, index: object) -> None:
        raise IndexError(
            f"kernel {self.kernel!r}: out-of-bounds access "
            f"{self.name}[{index}] (length {len(self.data)})"
        )

    def _check(self, index: object) -> None:
        n = len(self.data)
        if isinstance(index, slice):
            if index.step is not None:
                self._fail(index)
            start = 0 if index.start is None else int(index.start)
            stop = n if index.stop is None else int(index.stop)
            if not (0 <= start <= n and 0 <= stop <= n):
                self._fail(index)
            return
        if not 0 <= int(index) < n:
            self._fail(index)

    def __getitem__(self, index):
        self._check(index)
        return self.data[index]

    def __setitem__(self, index, value) -> None:
        self._check(index)
        self.data[index] = value

    def __len__(self) -> int:
        return len(self.data)


def _checked_preamble(name: str, params: Sequence[Param]) -> str:
    return "\n".join(
        f"    {p.name} = _chk({name!r}, {p.name!r}, {p.name})"
        for p in params
        if p.kind == "array"
    )


# ----------------------------------------------------------------------
# kernel object
# ----------------------------------------------------------------------
def _collect_ops(p: P, acc: Dict[str, object]) -> None:
    def walk_e(e: E) -> None:
        if isinstance(e, ECall):
            acc[e.op.name] = e.op.spec
            for a in e.args:
                walk_e(a)
        elif isinstance(e, EBinop):
            walk_e(e.left)
            walk_e(e.right)
        elif isinstance(e, EUnop):
            walk_e(e.operand)
        elif isinstance(e, ECond):
            walk_e(e.cond)
            walk_e(e.then)
            walk_e(e.els)
        elif isinstance(e, EAccess):
            walk_e(e.index)

    if isinstance(p, PSeq):
        for x in p.items:
            _collect_ops(x, acc)
    elif isinstance(p, PWhile):
        walk_e(p.cond)
        _collect_ops(p.body, acc)
    elif isinstance(p, PIf):
        walk_e(p.cond)
        _collect_ops(p.then, acc)
        if p.els is not None:
            _collect_ops(p.els, acc)
    elif isinstance(p, PAssign):
        walk_e(p.expr)
    elif isinstance(p, PStore):
        walk_e(p.index)
        walk_e(p.expr)


def emit_kernel_source(
    name: str,
    params: Sequence[Param],
    decls,
    body: P,
    vectorize: bool = False,
    checked: bool = False,
) -> str:
    arg_list = ", ".join(p.name for p in params)
    decl_lines = "\n".join(
        f"    {v.name} = " + ("0.0" if v.type == TFLOAT else "False" if v.type == TBOOL else "0")
        for v in decls
    )
    if checked:
        # the checked emitter is scalar: vectorized slice expressions
        # would bypass the per-subscript bounds checks
        vectorize = False
        preamble = _checked_preamble(name, params)
        if preamble:
            decl_lines = preamble + ("\n" + decl_lines if decl_lines else "")
    return f"def {name}({arg_list}):\n{decl_lines}\n{emit_stmt(body, 1, vectorize)}\n"


class PyKernel:
    """A kernel executed as generated Python code."""

    def __init__(
        self,
        name: str,
        params: Sequence[Param],
        decls,
        body: P,
        vectorize: bool = False,
        checked: bool = False,
    ) -> None:
        source = emit_kernel_source(
            name, params, decls, body, vectorize=vectorize, checked=checked
        )
        ops: Dict[str, object] = {}
        _collect_ops(body, ops)
        self._setup(name, params, source, ops)

    @classmethod
    def from_source(cls, name: str, params: Sequence[Param], source: str) -> "PyKernel":
        """Reconstruct a kernel from previously emitted source (the disk
        cache tier; only kernels without user-defined ops are cached)."""
        self = cls.__new__(cls)
        self._setup(name, params, source, {})
        return self

    def _setup(
        self, name: str, params: Sequence[Param], source: str, ops: Dict[str, object]
    ) -> None:
        self.source = source
        self.name = name
        self.params = list(params)
        self._param_names = [p.name for p in self.params]
        namespace: Dict[str, object] = {
            "_inf": math.inf, "_np": np, "_chk": _CheckedArray,
        }
        for op_name, spec in ops.items():
            namespace[f"_op_{op_name}"] = spec
        try:
            exec(compile(source, f"<kernel {name}>", "exec"), namespace)
            self._fn = namespace[name]
        except (SyntaxError, ValueError, KeyError) as exc:
            # freshly emitted source always compiles; this fires on a
            # tampered/truncated disk-cache payload, which the builder
            # must treat as corruption, not crash on
            raise CompileError(
                f"generated Python source for kernel {name!r} is invalid: {exc}"
            ) from exc

    def __call__(self, env: Dict[str, object]) -> None:
        self._fn(*map(env.__getitem__, self._param_names))
