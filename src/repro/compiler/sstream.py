"""Syntactic indexed streams (Section 7.2, Figure 13).

A :class:`SStream` is an indexed stream whose components are program
fragments: ``index``/``ready``/``valid`` are **E** expressions over the
stream's state variables, ``skip0``/``skip1`` render skip code for a
given target index expression, and ``init`` (re)initializes the state.
``value`` is either a nested :class:`SStream` or a scalar **E**.

Level constructors (:func:`sparse_level`, :func:`dense_level`,
:func:`function_level`) encode the primitive streams of Example 5.2;
the combinators (:func:`smul`, :func:`sadd`, :func:`scontract`,
:func:`sreplicate`) mirror the runtime combinators of
:mod:`repro.streams.combinators` — compare :func:`smul` with
Definition 5.4 and the paper's Figure 14.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, List, Optional, Tuple, Union

from repro.compiler.ir import (
    E,
    EAccess,
    EBinop,
    ECond,
    ELit,
    EUnop,
    EVar,
    NameGen,
    P,
    PAssign,
    PIf,
    PSeq,
    PSkip,
    PWhile,
    TBOOL,
    TINT,
    blit,
    eand,
    emax,
    emin,
    eor,
    ilit,
)
from repro.compiler.scalars import ScalarOps
from repro.streams.base import STAR

Value = Union["SStream", E]
SkipFn = Callable[[Optional[E]], P]


@dataclass
class SStream:
    """A syntactic indexed stream (Figure 13).

    ``attr`` is the level's attribute (or :data:`STAR` for contracted
    levels, whose ``index`` is ``None`` and whose skip functions ignore
    their argument).  ``shape`` is the real-attribute shape of the whole
    nested stream.

    Levels that support random access — dense and implicit levels, whose
    value is a pure function of the index — additionally carry a
    ``locate`` function (TACO's "locate capability"): multiplication can
    then index into them directly rather than co-iterate, collapsing
    e.g. SpMV's inner loop to ``y[i] += A_vals[p] * x[A_crd[p]]``.
    ``dim`` is the level's extent (None = unbounded), used both to
    bound located reads and to decide which operand can drive a loop.
    """

    attr: object
    shape: Tuple[str, ...]
    init: P
    valid: E
    ready: E
    index: Optional[E]
    value: Value
    skip0: SkipFn
    skip1: SkipFn
    locate: Optional[Callable[[E], Value]] = None
    dim: Optional[E] = None
    #: fast path for δ at a ready state: equivalent to
    #: ``skip1(index(q))`` there (e.g. ``q += 1`` for a strictly
    #: monotone source), letting the common path of the emitted loop
    #: avoid a scan.  None = no fast path; use skip1.
    advance1: Optional[P] = None

    @property
    def locatable(self) -> bool:
        return self.locate is not None

    def with_value(self, value: Value, shape: Optional[Tuple[str, ...]] = None) -> "SStream":
        # an opaquely replaced value invalidates the locate shortcut
        # (it would rebuild the untransformed subtree)
        return replace(
            self,
            value=value,
            shape=self.shape if shape is None else shape,
            locate=None,
        )

    def map_value(self, fn: Callable[[Value], Value], shape: Optional[Tuple[str, ...]] = None) -> "SStream":
        """Transform the value while *preserving* random access: the
        located subtree is the same transformation applied at the
        located index."""
        locate = None
        if self.locate is not None:
            old_locate = self.locate
            locate = lambda i: fn(old_locate(i))
        return replace(
            self,
            value=fn(self.value),
            shape=self.shape if shape is None else shape,
            locate=locate,
        )


def is_sstream(x: object) -> bool:
    return isinstance(x, SStream)


# ----------------------------------------------------------------------
# primitive levels (Example 5.2, syntactically)
# ----------------------------------------------------------------------
def sparse_level(
    ng: NameGen,
    attr: str,
    crd_array: str,
    lo: E,
    hi: E,
    value_fn: Callable[[EVar], Value],
    shape: Tuple[str, ...],
    search: str = "linear",
) -> SStream:
    """A compressed level reading sorted coordinates from ``crd_array``
    between positions ``lo`` and ``hi``.

    ``search`` selects the skip implementation: ``"linear"`` scans
    forward one element at a time (TACO-style merge loops), ``"binary"``
    gallops then bisects — the variant the paper credits for the
    ``smul`` speedup (Section 8.1).
    """
    if search not in ("linear", "binary"):
        raise ValueError(f"unknown search strategy {search!r}")
    q = ng.fresh(f"{attr}_q")
    valid = EBinop("<", q, hi, TBOOL)
    index = EAccess(crd_array, q, TINT)

    def make_skip(strict: bool) -> SkipFn:
        cmp_op = "<=" if strict else "<"

        def skip(i: Optional[E]) -> P:
            assert i is not None
            within = EBinop(cmp_op, EAccess(crd_array, q, TINT), i, TBOOL)
            if search == "linear":
                return PWhile(
                    eand(EBinop("<", q, hi, TBOOL), within),
                    PAssign(q, EBinop("+", q, ilit(1), TINT)),
                )
            step = ng.fresh(f"{attr}_step")
            bhi = ng.fresh(f"{attr}_bhi")
            mid = ng.fresh(f"{attr}_mid")
            probe = lambda pos: EBinop(cmp_op, EAccess(crd_array, pos, TINT), i, TBOOL)
            gallop = PWhile(
                eand(
                    EBinop("<", EBinop("+", q, step, TINT), hi, TBOOL),
                    probe(EBinop("+", q, step, TINT)),
                ),
                PSeq(
                    PAssign(q, EBinop("+", q, step, TINT)),
                    PAssign(step, EBinop("*", step, ilit(2), TINT)),
                ),
            )
            bisect = PWhile(
                EBinop("<", q, bhi, TBOOL),
                PSeq(
                    PAssign(mid, EBinop("/", EBinop("+", q, bhi, TINT), ilit(2), TINT)),
                    PIf(
                        probe(mid),
                        PAssign(q, EBinop("+", mid, ilit(1), TINT)),
                        PAssign(bhi, mid),
                    ),
                ),
            )
            return PSeq(
                PIf(
                    eand(EBinop("<", q, hi, TBOOL), probe(q)),
                    PSeq(
                        PAssign(step, ilit(1)),
                        gallop,
                        PAssign(bhi, emin(EBinop("+", q, step, TINT), hi)),
                        PAssign(q, EBinop("+", q, ilit(1), TINT)),
                        bisect,
                    ),
                ),
            )

        return skip

    return SStream(
        attr=attr,
        shape=shape,
        init=PAssign(q, lo),
        valid=valid,
        ready=valid,
        index=index,
        value=value_fn(q),
        skip0=make_skip(strict=False),
        skip1=make_skip(strict=True),
        advance1=PAssign(q, EBinop("+", q, ilit(1), TINT)),
    )


def dense_level(
    ng: NameGen,
    attr: str,
    dim: E,
    value_fn: Callable[[EVar], Value],
    shape: Tuple[str, ...],
) -> SStream:
    """A dense level iterating indices ``0 .. dim-1`` directly."""
    i = ng.fresh(f"{attr}_i")
    valid = EBinop("<", i, dim, TBOOL)

    def skip0(j: Optional[E]) -> P:
        assert j is not None
        return PIf(EBinop(">", j, i, TBOOL), PAssign(i, j))

    def skip1(j: Optional[E]) -> P:
        assert j is not None
        j1 = EBinop("+", j, ilit(1), TINT)
        return PIf(EBinop(">", j1, i, TBOOL), PAssign(i, j1))

    return SStream(
        attr=attr,
        shape=shape,
        init=PAssign(i, ilit(0)),
        valid=valid,
        ready=valid,
        index=i,
        value=value_fn(i),
        skip0=skip0,
        skip1=skip1,
        locate=value_fn,
        dim=dim,
        advance1=PAssign(i, EBinop("+", i, ilit(1), TINT)),
    )


def function_level(
    ng: NameGen,
    attr: str,
    value_fn: Callable[[EVar], Value],
    shape: Tuple[str, ...],
    dim: Optional[E] = None,
) -> SStream:
    """An implicitly represented level: always ready, value computed
    from the index variable (Section 7.2's "implicit" streams).

    With ``dim=None`` the level is *infinite* (valid is the literal
    true); such levels encode ⇑ and user-defined functions and must be
    multiplied by a finite stream before compilation of an enclosing
    loop."""
    i = ng.fresh(f"{attr}_i")
    valid = blit(True) if dim is None else EBinop("<", i, dim, TBOOL)

    def skip0(j: Optional[E]) -> P:
        assert j is not None
        return PIf(EBinop(">", j, i, TBOOL), PAssign(i, j))

    def skip1(j: Optional[E]) -> P:
        assert j is not None
        j1 = EBinop("+", j, ilit(1), TINT)
        return PIf(EBinop(">", j1, i, TBOOL), PAssign(i, j1))

    return SStream(
        attr=attr,
        shape=shape,
        init=PAssign(i, ilit(0)),
        valid=valid,
        ready=valid,
        index=i,
        value=value_fn(i),
        skip0=skip0,
        skip1=skip1,
        locate=value_fn,
        dim=dim,
        advance1=PAssign(i, EBinop("+", i, ilit(1), TINT)),
    )


def sreplicate(ng: NameGen, attr: str, value: Value, dim: Optional[E] = None) -> SStream:
    """The expansion operator ⇑_attr as a syntactic stream: it stores
    one value and makes it available at every index (Section 5.1.3)."""
    inner_shape = value.shape if is_sstream(value) else ()
    return function_level(
        ng, attr, lambda _i: value, (attr,) + tuple(inner_shape), dim=dim
    )


# ----------------------------------------------------------------------
# guarding (used by addition)
# ----------------------------------------------------------------------
def guard(cond: E, s: Value, ops: ScalarOps) -> Value:
    """A stream equal to ``s`` while ``cond`` holds and empty otherwise.

    ``cond`` must be loop-invariant for the guarded stream's lifetime
    (it references the *enclosing* level's state)."""
    if not is_sstream(s):
        return ECond(cond, s, ops.zero)
    return SStream(
        attr=s.attr,
        shape=s.shape,
        init=PIf(cond, s.init),
        valid=eand(cond, s.valid),
        ready=s.ready,
        index=s.index,
        value=s.value,
        skip0=lambda i: PIf(cond, s.skip0(i)),
        skip1=lambda i: PIf(cond, s.skip1(i)),
        advance1=PIf(cond, s.advance1) if s.advance1 is not None else None,
    )


# ----------------------------------------------------------------------
# multiplication (Figure 14 / Definition 5.4)
# ----------------------------------------------------------------------
def smul(a: Value, b: Value, ops: ScalarOps, ng: Optional[NameGen] = None) -> Value:
    """Product of syntactic streams, with the same dummy-level
    dispatch rules as the runtime :func:`repro.streams.combinators.mul`.

    When one operand supports random access (``locatable``) the product
    iterates the other operand and *locates* into it — TACO's locate
    optimization — instead of emitting a co-iteration merge loop.
    """
    if not is_sstream(a) and not is_sstream(b):
        return ops.mul(a, b)
    if is_sstream(a) and a.attr is STAR:
        return a.map_value(lambda v: smul(v, b, ops, ng))
    if is_sstream(b) and b.attr is STAR:
        return b.map_value(lambda v: smul(a, v, ops, ng))
    if not is_sstream(a):
        return b.map_value(lambda v: smul(a, v, ops, ng))
    if not is_sstream(b):
        return a.map_value(lambda v: smul(v, b, ops, ng))
    if a.attr != b.attr:
        raise ValueError(f"cannot multiply levels {a.attr!r} and {b.attr!r}")
    assert a.index is not None and b.index is not None

    if ng is not None:
        located = _try_locate(a, b, ops, ng)
        if located is not None:
            return located

    advance1 = None
    if a.advance1 is not None and b.advance1 is not None:
        # product is ready only when both operands are ready at the same
        # index, so advancing each past its own index is exactly skip1
        advance1 = PSeq(a.advance1, b.advance1)
    return SStream(
        attr=a.attr,
        shape=a.shape,
        init=PSeq(a.init, b.init),
        valid=eand(a.valid, b.valid),
        ready=eand(a.ready, b.ready, EBinop("==", a.index, b.index, TBOOL)),
        index=emax(a.index, b.index),
        value=smul(a.value, b.value, ops, ng),
        skip0=lambda i: PSeq(a.skip0(i), b.skip0(i)),
        skip1=lambda i: PSeq(a.skip1(i), b.skip1(i)),
        advance1=advance1,
    )


def _try_locate(a: SStream, b: SStream, ops: ScalarOps, ng: NameGen) -> Optional[SStream]:
    """Iterate one operand and random-access the other, when possible.

    The iterating operand must be able to *drive* the loop: sparse and
    composite levels always terminate, while a locatable level can only
    drive if it has a dimension bound (an unbounded implicit level is an
    infinite stream).  When both operands are locatable the first one
    drives, so operand order is preserved in the emitted product.
    """

    def can_drive(s: SStream) -> bool:
        return not (s.locatable and s.dim is None)

    if b.locatable and can_drive(a):
        driver, passenger, order = a, b, "ab"
    elif a.locatable and can_drive(b):
        driver, passenger, order = b, a, "ba"
    else:
        return None

    assert passenger.locate is not None and driver.index is not None
    # the located operand reads at the driver's current index expression;
    # any duplication is cleaned up by the C compiler's CSE.  No bounds
    # check is needed: all operands of a level share one attribute, and
    # the kernel wrapper validates that every tensor (and the output)
    # agrees on each attribute's dimension, while tensor construction
    # bounds every stored coordinate by its dimension.
    inner = passenger.locate(driver.index)
    if order == "ab":
        value = smul(driver.value, inner, ops, ng)
    else:
        value = smul(inner, driver.value, ops, ng)
    return replace(
        driver,
        value=value,
        shape=driver.shape,
        locate=None,
    )


# ----------------------------------------------------------------------
# addition
# ----------------------------------------------------------------------
def sadd(a: Value, b: Value, ops: ScalarOps, ng: NameGen) -> Value:
    """Sum of syntactic streams (the min-merge of Section 5.1.1)."""
    if not is_sstream(a) and not is_sstream(b):
        return ops.add(a, b)
    a_star = is_sstream(a) and a.attr is STAR
    b_star = is_sstream(b) and b.attr is STAR
    if a_star and not b_star:
        return _sadd_streams(a, singleton_contract(ng, b, ops), ops, ng)
    if b_star and not a_star:
        return _sadd_streams(singleton_contract(ng, a, ops), b, ops, ng)
    if not is_sstream(a) or not is_sstream(b):
        raise ValueError("cannot add a scalar to a non-contracted stream")
    return _sadd_streams(a, b, ops, ng)


def _sadd_streams(a: SStream, b: SStream, ops: ScalarOps, ng: NameGen) -> SStream:
    """The min-merge, mirroring :class:`repro.streams.combinators.AddStream`:
    ready requires every live operand *at the min index* to be ready
    itself (an unready operand at that index may still produce a value
    there, so the sum must wait — δ's skip-to-(i, 0) lets it advance
    internally without loss)."""
    if a.attr != b.attr and not (a.attr is STAR and b.attr is STAR):
        raise ValueError(f"cannot add levels {a.attr!r} and {b.attr!r}")
    if a.attr is STAR:
        # all indices are *, so every live side is at the merge point
        at_a = a.valid
        at_b = b.valid
        index = None
    else:
        assert a.index is not None and b.index is not None
        at_a = eand(
            a.valid,
            eor(EUnop("!", b.valid, TBOOL), EBinop("<=", a.index, b.index, TBOOL)),
        )
        at_b = eand(
            b.valid,
            eor(EUnop("!", a.valid, TBOOL), EBinop("<=", b.index, a.index, TBOOL)),
        )
        index = ECond(
            eand(a.valid, b.valid),
            emin(a.index, b.index),
            ECond(a.valid, a.index, b.index),
        )

    ready = eand(
        eor(at_a, at_b),
        eor(EUnop("!", at_a, TBOOL), a.ready),
        eor(EUnop("!", at_b, TBOOL), b.ready),
    )
    value = sadd(guard(at_a, a.value, ops), guard(at_b, b.value, ops), ops, ng)

    def skip(fn_a: SkipFn, fn_b: SkipFn) -> SkipFn:
        def run(i: Optional[E]) -> P:
            return PSeq(PIf(a.valid, fn_a(i)), PIf(b.valid, fn_b(i)))

        return run

    return SStream(
        attr=a.attr,
        shape=a.shape,
        init=PSeq(a.init, b.init),
        valid=eor(a.valid, b.valid),
        ready=ready,
        index=index,
        value=value,
        skip0=skip(a.skip0, b.skip0),
        skip1=skip(a.skip1, b.skip1),
    )


# ----------------------------------------------------------------------
# contraction (Section 5.1.2)
# ----------------------------------------------------------------------
def scontract(s: SStream, ng: NameGen) -> SStream:
    """Σ on the outermost level: forget the index; skip at the current
    inner index (``skip(q, (*, r)) = skip(q, (index(q), r))``)."""
    if s.attr is STAR:
        raise ValueError("cannot contract an already-contracted level")
    tmp = ng.fresh("ci")

    def skip(fn: SkipFn) -> SkipFn:
        def run(_i: Optional[E]) -> P:
            assert s.index is not None
            return PSeq(PAssign(tmp, s.index), fn(tmp))

        return run

    return SStream(
        attr=STAR,
        shape=s.shape[1:],
        init=s.init,
        valid=s.valid,
        ready=s.ready,
        index=None,
        value=s.value,
        skip0=skip(s.skip0),
        skip1=skip(s.skip1),
        advance1=s.advance1,
    )


def singleton_contract(ng: NameGen, value: Value, ops: ScalarOps) -> SStream:
    """A one-shot contracted stream (dummy level emitting once); aligns
    a non-contracted operand with a contracted one under addition."""
    flag = ng.fresh("once")
    shape = value.shape if is_sstream(value) else ()
    return SStream(
        attr=STAR,
        shape=tuple(shape),
        init=PAssign(flag, ilit(0)),
        valid=EBinop("==", flag, ilit(0), TBOOL),
        ready=blit(True),
        index=None,
        value=value,
        skip0=lambda _i: PSkip(),
        skip1=lambda _i: PAssign(flag, ilit(1)),
        advance1=PAssign(flag, ilit(1)),
    )


# ----------------------------------------------------------------------
# structural maps (Definition 5.8's map^k, syntactically)
# ----------------------------------------------------------------------
def deep_contract(s: Value, attr: str, ng: NameGen) -> Value:
    """Σ_attr applied at the level labeled ``attr``."""
    if not is_sstream(s):
        raise ValueError(f"cannot contract {attr!r} in a scalar")
    if s.attr == attr:
        return scontract(s, ng)
    if attr not in s.shape:
        raise ValueError(f"attribute {attr!r} not in stream shape {s.shape}")
    new_shape = tuple(x for x in s.shape if x != attr)
    return s.map_value(lambda v: deep_contract(v, attr, ng), shape=new_shape)


def deep_expand(
    s: Value,
    attr: str,
    position: Callable[[str], int],
    ng: NameGen,
    dim: Optional[E] = None,
) -> Value:
    """⇑_attr inserted at its position in the global attribute order.

    ``position`` ranks real attributes; dummy levels are descended
    through, as in :func:`repro.lang.stream_semantics.deep_expand`."""
    if not is_sstream(s) or (s.attr is not STAR and position(attr) < position(s.attr)):
        return sreplicate(ng, attr, s, dim=dim)
    if attr in s.shape:
        raise ValueError(f"attribute {attr!r} already in stream shape {s.shape}")
    inserted = list(s.shape)
    at = next(
        (k for k, x in enumerate(inserted) if position(x) > position(attr)),
        len(inserted),
    )
    inserted.insert(at, attr)
    return s.map_value(
        lambda v: deep_expand(v, attr, position, ng, dim=dim),
        shape=tuple(inserted),
    )


def map_leaf(s: Value, fn: Callable[[E], E]) -> Value:
    """Apply an operation to every leaf value (user-defined post-ops)."""
    if not is_sstream(s):
        return fn(s)
    return s.map_value(lambda v: map_leaf(v, fn))
