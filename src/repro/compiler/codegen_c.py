"""C code generation for the imperative IR **P** (Figure 2's output).

Emits a single self-contained kernel function; arrays become typed
pointers and scalar parameters ``int64_t`` values.  Compiled with
``gcc -O3`` into a shared object and invoked through ctypes — the same
pipeline shape as the paper's Lean → C → Clang -O3 evaluation.
"""

from __future__ import annotations

import hashlib
import math
import os
import shutil
import subprocess
import tempfile
from ctypes import CDLL, POINTER, c_bool, c_double, c_int64
from typing import Dict, List, Sequence

import numpy as np

from repro.compiler import resilience
from repro.compiler.cache import default_cache_dir
from repro.compiler.formats import Param
from repro.compiler.resilience import logger
from repro.errors import BackendUnavailableError, CacheCorruptionError, CompileError
from repro.compiler.ir import (
    E,
    fold,
    EAccess,
    EBinop,
    ECall,
    ECond,
    ELit,
    EUnop,
    EVar,
    P,
    PAssign,
    PComment,
    PIf,
    PSeq,
    PSkip,
    PSort,
    PStore,
    PWhile,
    TBOOL,
    TFLOAT,
    TINT,
    c_type,
)

_CTYPES = {TINT: c_int64, TFLOAT: c_double, TBOOL: c_bool}
_NP_DTYPES = {TINT: np.int64, TFLOAT: np.float64, TBOOL: np.bool_}


def np_dtype(t: str):
    return _NP_DTYPES[t]


def emit_expr(e: E) -> str:
    return _emit_expr(fold(e))


def _emit_expr(e: E) -> str:
    if isinstance(e, EVar):
        return e.name
    if isinstance(e, ELit):
        if e.type == TBOOL:
            return "true" if e.value else "false"
        if e.type == TFLOAT:
            if math.isinf(e.value):
                return "INFINITY" if e.value > 0 else "-INFINITY"
            return repr(float(e.value))
        return str(int(e.value))
    if isinstance(e, EAccess):
        return f"{e.array}[{_emit_expr(e.index)}]"
    if isinstance(e, EBinop):
        a, b = _emit_expr(e.left), _emit_expr(e.right)
        if e.op == "min":
            return f"(({a}) < ({b}) ? ({a}) : ({b}))"
        if e.op == "max":
            return f"(({a}) > ({b}) ? ({a}) : ({b}))"
        return f"({a} {e.op} {b})"
    if isinstance(e, EUnop):
        return f"({e.op}{_emit_expr(e.operand)})"
    if isinstance(e, ECond):
        return f"({_emit_expr(e.cond)} ? {_emit_expr(e.then)} : {_emit_expr(e.els)})"
    if isinstance(e, ECall):
        return e.op.c_expr(*[_emit_expr(a) for a in e.args])
    raise TypeError(f"cannot emit expression {e!r}")


def emit_stmt(p: P, indent: int = 1) -> str:
    pad = "  " * indent
    if isinstance(p, PSkip):
        return ""
    if isinstance(p, PSeq):
        return "\n".join(s for s in (emit_stmt(x, indent) for x in p.items) if s)
    if isinstance(p, PAssign):
        return f"{pad}{p.var.name} = {emit_expr(p.expr)};"
    if isinstance(p, PStore):
        return f"{pad}{p.array}[{emit_expr(p.index)}] = {emit_expr(p.expr)};"
    if isinstance(p, PWhile):
        body = emit_stmt(p.body, indent + 1)
        return f"{pad}while ({emit_expr(p.cond)}) {{\n{body}\n{pad}}}"
    if isinstance(p, PIf):
        out = f"{pad}if ({emit_expr(p.cond)}) {{\n{emit_stmt(p.then, indent + 1)}\n{pad}}}"
        if p.els is not None and not isinstance(p.els, PSkip):
            out += f" else {{\n{emit_stmt(p.els, indent + 1)}\n{pad}}}"
        return out
    if isinstance(p, PComment):
        return f"{pad}/* {p.text} */"
    if isinstance(p, PSort):
        return f"{pad}qsort({p.array}, {emit_expr(p.count)}, sizeof(int64_t), _cmp_i64);"
    raise TypeError(f"cannot emit statement {p!r}")


def _collect_headers(p: P, acc: Dict[str, str]) -> None:
    def walk_e(e: E) -> None:
        if isinstance(e, ECall):
            if e.op.c_header:
                acc[e.op.name] = e.op.c_header
            for a in e.args:
                walk_e(a)
        elif isinstance(e, EBinop):
            walk_e(e.left)
            walk_e(e.right)
        elif isinstance(e, EUnop):
            walk_e(e.operand)
        elif isinstance(e, ECond):
            walk_e(e.cond)
            walk_e(e.then)
            walk_e(e.els)
        elif isinstance(e, EAccess):
            walk_e(e.index)

    if isinstance(p, PSeq):
        for x in p.items:
            _collect_headers(x, acc)
    elif isinstance(p, PWhile):
        walk_e(p.cond)
        _collect_headers(p.body, acc)
    elif isinstance(p, PIf):
        walk_e(p.cond)
        _collect_headers(p.then, acc)
        if p.els is not None:
            _collect_headers(p.els, acc)
    elif isinstance(p, PAssign):
        walk_e(p.expr)
    elif isinstance(p, PStore):
        walk_e(p.index)
        walk_e(p.expr)


def emit_kernel_source(
    name: str,
    params: Sequence[Param],
    decls: Sequence[EVar],
    body: P,
) -> str:
    """The full C translation unit for one kernel."""
    headers: Dict[str, str] = {}
    _collect_headers(body, headers)
    sig_parts = []
    for param in params:
        if param.kind == "array":
            sig_parts.append(f"{c_type(param.ctype)}* {param.name}")
        else:
            sig_parts.append(f"{c_type(param.ctype)} {param.name}")
    decl_lines = "\n".join(
        f"  {c_type(v.type)} {v.name} = 0;" for v in decls
    )
    helper_code = "\n".join(headers.values())
    return f"""#include <stdint.h>
#include <stdbool.h>
#include <math.h>
#include <string.h>
#include <stdlib.h>

__attribute__((unused))
static int _cmp_i64(const void* a, const void* b) {{
  int64_t x = *(const int64_t*)a, y = *(const int64_t*)b;
  return (x > y) - (x < y);
}}

{helper_code}

void {name}({', '.join(sig_parts)}) {{
{decl_lines}
{emit_stmt(body)}
}}
"""


class CKernel:
    """A compiled C kernel, callable with numpy arrays."""

    def __init__(self, source: str, name: str, params: Sequence[Param], cache_dir: str | None = None) -> None:
        self.source = source
        self.name = name
        self.params = list(params)
        self._lib = _build(source, name, cache_dir)
        self._fn = getattr(self._lib, name)
        # precomputed marshal plan: (name, is_array, value ctor, pointer type)
        self._plan = [
            (
                p.name,
                p.kind == "array",
                _CTYPES[p.ctype],
                POINTER(_CTYPES[p.ctype]) if p.kind == "array" else None,
            )
            for p in self.params
        ]
        self._fn.argtypes = [
            ptr if is_arr else ctor for _, is_arr, ctor, ptr in self._plan
        ]
        self._fn.restype = None

    def __call__(self, env: Dict[str, object]) -> None:
        """Invoke with ``env`` mapping parameter names to numpy arrays /
        Python scalars.  Arrays are used in place (must be contiguous
        and correctly typed; the kernel builder guarantees this)."""
        self._fn(
            *(
                env[name].ctypes.data_as(ptr) if is_arr else ctor(env[name])
                for name, is_arr, ctor, ptr in self._plan
            )
        )


_CACHE: Dict[str, CDLL] = {}


def _sanitizer_flags() -> List[str]:
    """Compiler flags for the requested ``REPRO_SANITIZE`` modes.

    ``address`` instruments heap/stack accesses (loading the resulting
    shared object into an uninstrumented Python needs
    ``LD_PRELOAD=libasan.so`` — see the CI sanitize job); ``undefined``
    aborts on signed overflow, bad shifts, and friends instead of
    recovering silently."""
    flags: List[str] = []
    for mode in resilience.sanitize_modes():
        if mode == "address":
            flags += ["-fsanitize=address", "-fno-omit-frame-pointer"]
        elif mode == "undefined":
            flags += ["-fsanitize=undefined", "-fno-sanitize-recover=undefined"]
    return flags


def _compile(source: str, c_path: str, so_path: str) -> None:
    """Run the C toolchain: atomic source/artifact publication, probe
    for a missing compiler, configurable timeout, one retry on
    transient failures, stderr attached to the raised error."""
    cc = resilience.toolchain()
    if shutil.which(cc) is None:
        raise BackendUnavailableError("c", f"compiler {cc!r} not found on PATH")
    resilience.atomic_write_text(c_path, source)
    # compile into a temp name and publish with os.replace so a
    # concurrent (or crashed) builder never exposes a truncated .so
    tmp_so = f"{so_path}.build{os.getpid()}"
    cmd = [cc, "-O3", "-march=native", "-shared", "-fPIC", *_sanitizer_flags(),
           c_path, "-o", tmp_so, "-lm"]
    timeout = resilience.gcc_timeout()
    last_error: CompileError | None = None
    seen_signals: set[int] = set()
    repeated_kill = False
    try:
        for attempt in (1, 2):
            try:
                proc = subprocess.run(cmd, capture_output=True, timeout=timeout)
            except subprocess.TimeoutExpired as exc:
                stderr = exc.stderr.decode(errors="replace") if exc.stderr else None
                raise CompileError(
                    f"{cc} timed out after {timeout:.1f}s compiling {c_path}",
                    command=cmd, stderr=stderr, timeout=True,
                ) from exc
            except OSError as exc:  # vanished mid-run, exec failure, ...
                last_error = CompileError(f"could not invoke {cc}: {exc}", command=cmd)
                logger.warning("compiler invocation failed (%s); attempt %d", exc, attempt)
                continue
            if proc.returncode == 0:
                os.replace(tmp_so, so_path)
                return
            stderr = proc.stderr.decode(errors="replace")
            if proc.returncode < 0:
                signame = resilience.signal_name(-proc.returncode)
                last_error = CompileError(
                    f"{cc} was killed by {signame}",
                    command=cmd, returncode=proc.returncode, stderr=stderr,
                )
            else:
                last_error = CompileError(
                    f"{cc} exited with status {proc.returncode}",
                    command=cmd, returncode=proc.returncode, stderr=stderr,
                )
            if not resilience.is_transient(proc.returncode, seen_signals):
                repeated_kill = (
                    proc.returncode < 0 and -proc.returncode in seen_signals
                )
                break
            seen_signals.add(-proc.returncode)
            logger.warning(
                "transient compiler failure (killed by %s) on attempt %d; "
                "retrying once",
                resilience.signal_name(-proc.returncode), attempt,
            )
        assert last_error is not None
        if repeated_kill and last_error.signal is not None:
            # the retry died by the same signal: deterministic, not
            # transient — tell the operator what to do about it
            hint = (
                "likely the OOM killer — reduce concurrent builds, raise the "
                "memory limit, or set REPRO_BACKEND_FALLBACK=1 to use the "
                "Python backend"
                if last_error.signal_name == "SIGKILL"
                else "an external supervisor is killing the toolchain; check "
                "resource limits and container policies"
            )
            raise CompileError(
                f"{cc} was killed by {last_error.signal_name} twice in a row; "
                f"not retrying further ({hint})",
                command=cmd,
                returncode=last_error.returncode,
                stderr=last_error.stderr,
            )
        raise last_error
    finally:
        if os.path.exists(tmp_so):
            try:
                os.unlink(tmp_so)
            except OSError:
                pass


def _build(source: str, name: str, cache_dir: str | None = None) -> CDLL:
    # the sanitizer flags are part of the artifact identity: a build
    # with REPRO_SANITIZE set must never reuse an uninstrumented .so
    # (or vice versa).  Unsanitized builds keep the plain source hash
    # so existing cached artifacts stay valid.
    tag = ",".join(resilience.sanitize_modes())
    keyed = f"sanitize={tag}\x00{source}" if tag else source
    key = hashlib.sha256(keyed.encode()).hexdigest()[:16]
    if key in _CACHE:
        return _CACHE[key]
    cache_dir = resilience.usable_cache_dir(cache_dir or str(default_cache_dir()))
    c_path = os.path.join(cache_dir, f"{name}_{key}.c")
    so_path = os.path.join(cache_dir, f"{name}_{key}.so")
    if not os.path.exists(so_path):
        # per-key lock: two processes building the same kernel compile
        # once (or harmlessly twice on lock failure — publication is
        # atomic either way)
        with resilience.file_lock(so_path):
            if not os.path.exists(so_path):
                _compile(source, c_path, so_path)
    try:
        lib = CDLL(so_path)
    except OSError as exc:
        # truncated or clobbered .so from a crashed writer: quarantine
        # the bad artifact and rebuild (in a scratch dir if the cache
        # dir is not writable)
        logger.warning(
            "cached shared object %s failed to load (%s); rebuilding", so_path, exc
        )
        if resilience.quarantine(so_path) is None:
            scratch = tempfile.mkdtemp(prefix="repro_so_")
            c_path = os.path.join(scratch, f"{name}_{key}.c")
            so_path = os.path.join(scratch, f"{name}_{key}.so")
        with resilience.file_lock(so_path):
            if not os.path.exists(so_path):
                _compile(source, c_path, so_path)
        try:
            lib = CDLL(so_path)
        except OSError as exc2:
            raise CacheCorruptionError(
                f"shared object {so_path} unloadable even after rebuild: {exc2}",
                path=so_path,
            ) from exc2
    _CACHE[key] = lib
    return lib
