"""Scalar code generation per semiring.

Contraction expressions in Etch are parameterized by the choice of
scalars (Section 7.3): "as long as a semiring has a runtime
representation and implementations of (0, 1, +, ·), it can be used".
:class:`ScalarOps` is that runtime representation at the IR level —
it renders the semiring's constants and operations as **E** fragments.
The paper's evaluation uses boolean, floating point, and (min, +)
scalars; all three (plus integer and (max, +)) are provided.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from repro.compiler.ir import E, EBinop, ELit, TBOOL, TFLOAT, TINT
from repro.semirings.base import Semiring
from repro.semirings.instances import (
    BoolSemiring,
    FloatSemiring,
    IntSemiring,
    MaxPlusSemiring,
    MinPlusSemiring,
    NatSemiring,
)


@dataclass(frozen=True)
class ScalarOps:
    """IR-level (0, 1, +, ·) for one semiring."""

    semiring: Semiring
    type: str
    zero: E
    one: E
    add: Callable[[E, E], E]
    mul: Callable[[E, E], E]

    @property
    def numpy_dtype(self) -> str:
        return {"int": "int64", "float": "float64", "bool": "bool_"}[self.type]


def _binop(op: str, type_: str) -> Callable[[E, E], E]:
    def build(a: E, b: E) -> E:
        return EBinop(op, a, b, type_)

    return build


def scalar_ops_for(semiring: Semiring) -> ScalarOps:
    """The IR rendering of a semiring's scalar algebra."""
    if isinstance(semiring, BoolSemiring):
        return ScalarOps(
            semiring,
            TBOOL,
            ELit(False, TBOOL),
            ELit(True, TBOOL),
            _binop("||", TBOOL),
            _binop("&&", TBOOL),
        )
    if isinstance(semiring, (NatSemiring, IntSemiring)):
        return ScalarOps(
            semiring,
            TINT,
            ELit(0, TINT),
            ELit(1, TINT),
            _binop("+", TINT),
            _binop("*", TINT),
        )
    if isinstance(semiring, FloatSemiring):
        return ScalarOps(
            semiring,
            TFLOAT,
            ELit(0.0, TFLOAT),
            ELit(1.0, TFLOAT),
            _binop("+", TFLOAT),
            _binop("*", TFLOAT),
        )
    if isinstance(semiring, MinPlusSemiring):
        return ScalarOps(
            semiring,
            TFLOAT,
            ELit(math.inf, TFLOAT),
            ELit(0.0, TFLOAT),
            _binop("min", TFLOAT),
            _binop("+", TFLOAT),
        )
    if isinstance(semiring, MaxPlusSemiring):
        return ScalarOps(
            semiring,
            TFLOAT,
            ELit(-math.inf, TFLOAT),
            ELit(0.0, TFLOAT),
            _binop("max", TFLOAT),
            _binop("+", TFLOAT),
        )
    raise TypeError(
        f"semiring {semiring.name!r} has no IR scalar representation; "
        "supported: bool, nat, int, float, min-plus, max-plus"
    )
