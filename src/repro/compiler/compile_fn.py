"""The core code generation function (Figure 15/16).

``compile_stream(dest, s)`` emits a while loop that traverses the
syntactic stream ``s`` and accumulates its evaluation into ``dest``,
recursing into nested streams for inner loops.  The structure follows
the equational derivation of Figure 16:

    init;
    while (valid) {
        i = index;                 // saved so skips see a stable value
        if (ready) { push; compile(sub-dest, value); skip1(i); }
        else      { skip0(i); }
    }

Contracted (dummy) levels have no index and no push; their skips close
over the inner index themselves (Section 5.1.2).
"""

from __future__ import annotations

from repro.compiler.dest import Dest
from repro.compiler.ir import E, NameGen, P, PAssign, PIf, PSeq, PWhile
from repro.compiler.sstream import SStream, is_sstream
from repro.errors import CompileError
from repro.streams.base import STAR


def compile_stream(dest: Dest, s, ng: NameGen) -> P:
    """Emit code accumulating ⟦s⟧ into ``dest`` (the paper's Hoare
    triple {out ↦ v} compile out q {out ↦ v + ⟦q⟧})."""
    if not is_sstream(s):
        # base case: a scalar expression
        return dest.store(s)
    if not isinstance(s, SStream):
        raise CompileError(
            f"cannot compile non-stream value {s!r} (is_sstream lied?)"
        )
    if s.attr is STAR:
        step = s.advance1 if s.advance1 is not None else s.skip1(None)
        hot = PSeq(compile_stream(dest, s.value, ng), step)
        if repr(s.ready) == repr(s.valid):
            body = hot  # ready whenever valid: no branch needed
        else:
            body = PIf(s.ready, hot, s.skip0(None))
        return PSeq(s.init, PWhile(s.valid, body))
    if s.index is None:
        raise CompileError(
            f"stream level {s.attr!r} has no index expression; every "
            "non-contracted level must produce one"
        )
    i = ng.fresh(f"ix_{s.attr}")
    pre, sub, post = dest.push(i)
    step = s.advance1 if s.advance1 is not None else s.skip1(i)
    hot = PSeq(pre, compile_stream(sub, s.value, ng), post, step)
    if repr(s.ready) == repr(s.valid):
        body = PSeq(PAssign(i, s.index), hot)
    else:
        body = PSeq(PAssign(i, s.index), PIf(s.ready, hot, s.skip0(i)))
    return PSeq(s.init, PWhile(s.valid, body))
