"""The target languages **P** and **E** (Figure 11) and ``Op`` (Figure 12).

**E** is a pure expression language: variables, array accesses, literals,
built-in operators, conditionals, and calls to *user-defined operations*
(:class:`Op`), the paper's extension mechanism for embedding external
procedures.  **P** is a small imperative language with sequencing,
while, branch, assignment, and array stores.  Both map directly to C
and to Python.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Sequence, Tuple

from repro.errors import ShapeError

# ----------------------------------------------------------------------
# types
# ----------------------------------------------------------------------
TINT = "int"      # 64-bit integer (indices, positions)
TFLOAT = "float"  # double
TBOOL = "bool"

#: every valid IR scalar type
IR_TYPES = (TINT, TFLOAT, TBOOL)

_C_TYPES = {TINT: "int64_t", TFLOAT: "double", TBOOL: "bool"}


def c_type(t: str) -> str:
    """The C rendering of an IR type; unknown types are a typed error
    (a :class:`~repro.errors.ShapeError`), not a bare ``KeyError``."""
    try:
        return _C_TYPES[t]
    except KeyError:
        raise ShapeError(
            f"unknown IR type {t!r}; valid types: {', '.join(IR_TYPES)}"
        ) from None


# ----------------------------------------------------------------------
# user-defined operations (Figure 12)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Op:
    """A user-defined operation: name, type, functional spec, and code.

    ``spec`` is the Python-level functional specification (used by the
    interpreter and the Python backend); ``c_expr`` renders a C
    expression from argument strings; ``c_header`` optionally supplies
    a C definition emitted once per kernel (e.g. a helper function).
    Like the paper's ``Op.add``, built-in arithmetic is unprivileged —
    it is expressed with the same mechanism users extend.
    """

    name: str
    arg_types: Tuple[str, ...]
    ret_type: str
    spec: Callable[..., Any]
    c_expr: Callable[..., str]
    c_header: str = ""

    def __post_init__(self) -> None:
        for t in self.arg_types:
            if t not in IR_TYPES:
                raise ShapeError(
                    f"op {self.name!r}: argument type {t!r} is not an IR type "
                    f"(valid: {', '.join(IR_TYPES)})"
                )
        if self.ret_type not in IR_TYPES:
            raise ShapeError(
                f"op {self.name!r}: return type {self.ret_type!r} is not an "
                f"IR type (valid: {', '.join(IR_TYPES)})"
            )

    @property
    def arity(self) -> int:
        return len(self.arg_types)


# ----------------------------------------------------------------------
# expressions
# ----------------------------------------------------------------------
class E:
    """Base class for expressions.  Immutable, side-effect free."""

    __slots__ = ("type",)

    def __init__(self, type_: str) -> None:
        self.type = type_


class EVar(E):
    __slots__ = ("name",)

    def __init__(self, name: str, type_: str = TINT) -> None:
        super().__init__(type_)
        self.name = name

    def __repr__(self) -> str:
        return self.name


class ELit(E):
    __slots__ = ("value",)

    def __init__(self, value: Any, type_: str) -> None:
        super().__init__(type_)
        self.value = value

    def __repr__(self) -> str:
        return repr(self.value)


class EAccess(E):
    """Array access ``arr[idx]``."""

    __slots__ = ("array", "index")

    def __init__(self, array: str, index: E, type_: str) -> None:
        super().__init__(type_)
        self.array = array
        self.index = index

    def __repr__(self) -> str:
        return f"{self.array}[{self.index!r}]"


_BINOPS = {
    "+", "-", "*", "/", "%",
    "<", "<=", ">", ">=", "==", "!=",
    "&&", "||", "min", "max",
}


class EBinop(E):
    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: E, right: E, type_: str) -> None:
        if op not in _BINOPS:
            raise ValueError(f"unknown binary operator {op!r}")
        super().__init__(type_)
        self.op = op
        self.left = left
        self.right = right

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


class EUnop(E):
    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand: E, type_: str) -> None:
        if op not in ("!", "-"):
            raise ValueError(f"unknown unary operator {op!r}")
        super().__init__(type_)
        self.op = op
        self.operand = operand

    def __repr__(self) -> str:
        return f"{self.op}({self.operand!r})"


class ECond(E):
    """Conditional expression ``c ? t : f``."""

    __slots__ = ("cond", "then", "els")

    def __init__(self, cond: E, then: E, els: E) -> None:
        super().__init__(then.type)
        self.cond = cond
        self.then = then
        self.els = els

    def __repr__(self) -> str:
        return f"({self.cond!r} ? {self.then!r} : {self.els!r})"


class ECall(E):
    """A fully applied call to a user-defined operation."""

    __slots__ = ("op", "args")

    def __init__(self, op: Op, args: Sequence[E]) -> None:
        if len(args) != op.arity:
            raise ValueError(f"{op.name} expects {op.arity} args, got {len(args)}")
        super().__init__(op.ret_type)
        self.op = op
        self.args = tuple(args)

    def __repr__(self) -> str:
        return f"{self.op.name}({', '.join(map(repr, self.args))})"


# convenience constructors ------------------------------------------------
def ilit(n: int) -> ELit:
    return ELit(int(n), TINT)


def blit(b: bool) -> ELit:
    return ELit(bool(b), TBOOL)


def eand(*xs: E) -> E:
    xs = [x for x in xs if not (isinstance(x, ELit) and x.value is True)]
    if not xs:
        return blit(True)
    out = xs[0]
    for x in xs[1:]:
        out = EBinop("&&", out, x, TBOOL)
    return out


def eor(*xs: E) -> E:
    xs = [x for x in xs if not (isinstance(x, ELit) and x.value is False)]
    if not xs:
        return blit(False)
    out = xs[0]
    for x in xs[1:]:
        out = EBinop("||", out, x, TBOOL)
    return out


def emax(a: E, b: E) -> E:
    return EBinop("max", a, b, a.type)


def emin(a: E, b: E) -> E:
    return EBinop("min", a, b, a.type)


# ----------------------------------------------------------------------
# statements
# ----------------------------------------------------------------------
class P:
    """Base class for statements."""

    __slots__ = ()


class PSkip(P):
    """No-op (unrelated to stream skip)."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "skip"


class PSeq(P):
    __slots__ = ("items",)

    def __init__(self, *items: P) -> None:
        flat = []
        for item in items:
            if isinstance(item, PSeq):
                flat.extend(item.items)
            elif not isinstance(item, PSkip):
                flat.append(item)
        self.items = tuple(flat)

    def __repr__(self) -> str:
        return "; ".join(map(repr, self.items)) or "skip"


class PWhile(P):
    __slots__ = ("cond", "body")

    def __init__(self, cond: E, body: P) -> None:
        self.cond = cond
        self.body = body

    def __repr__(self) -> str:
        return f"while ({self.cond!r}) {{ {self.body!r} }}"


class PIf(P):
    __slots__ = ("cond", "then", "els")

    def __init__(self, cond: E, then: P, els: Optional[P] = None) -> None:
        self.cond = cond
        self.then = then
        self.els = els

    def __repr__(self) -> str:
        tail = f" else {{ {self.els!r} }}" if self.els is not None else ""
        return f"if ({self.cond!r}) {{ {self.then!r} }}{tail}"


class PAssign(P):
    """``store_var``: assignment to a local variable."""

    __slots__ = ("var", "expr")

    def __init__(self, var: EVar, expr: E) -> None:
        self.var = var
        self.expr = expr

    def __repr__(self) -> str:
        return f"{self.var!r} = {self.expr!r}"


class PStore(P):
    """``store_mem``: assignment to an array element."""

    __slots__ = ("array", "index", "expr")

    def __init__(self, array: str, index: E, expr: E) -> None:
        self.array = array
        self.index = index
        self.expr = expr

    def __repr__(self) -> str:
        return f"{self.array}[{self.index!r}] = {self.expr!r}"


class PComment(P):
    __slots__ = ("text",)

    def __init__(self, text: str) -> None:
        self.text = text

    def __repr__(self) -> str:
        return f"/* {self.text} */"


class PSort(P):
    """Sort the first ``count`` elements of an int64 array in place.

    Used by workspace destinations to order coordinates accumulated out
    of order (the compression step of a TACO-style workspace)."""

    __slots__ = ("array", "count")

    def __init__(self, array: str, count: E) -> None:
        self.array = array
        self.count = count

    def __repr__(self) -> str:
        return f"sort({self.array}, {self.count!r})"


# ----------------------------------------------------------------------
# constant folding
# ----------------------------------------------------------------------
def fold(e: E) -> E:
    """Structurally simplify an expression: fold integer-literal
    arithmetic and algebraic identities (0+x, 0*x, 1*x, x-0).  Used by
    the code generators so the emitted source is readable; the C
    compiler would fold these anyway."""
    if isinstance(e, EBinop):
        left = fold(e.left)
        right = fold(e.right)
        lint = left.value if isinstance(left, ELit) and left.type == TINT else None
        rint = right.value if isinstance(right, ELit) and right.type == TINT else None
        if lint is not None and rint is not None:
            table = {
                "+": lambda: lint + rint,
                "-": lambda: lint - rint,
                "*": lambda: lint * rint,
                "min": lambda: min(lint, rint),
                "max": lambda: max(lint, rint),
            }
            if e.op in table:
                return ELit(table[e.op](), TINT)
            cmps = {"<": lint < rint, "<=": lint <= rint, ">": lint > rint,
                    ">=": lint >= rint, "==": lint == rint, "!=": lint != rint}
            if e.op in cmps:
                return ELit(cmps[e.op], TBOOL)
        if e.op == "+":
            if lint == 0:
                return right
            if rint == 0:
                return left
        if e.op == "-" and rint == 0:
            return left
        if e.op == "*":
            if lint == 0 or rint == 0:
                return ELit(0, TINT)
            if lint == 1:
                return right
            if rint == 1:
                return left
        if e.op == "&&":
            if isinstance(left, ELit) and left.type == TBOOL:
                return right if left.value else ELit(False, TBOOL)
            if isinstance(right, ELit) and right.type == TBOOL and right.value:
                return left
        if e.op == "||":
            if isinstance(left, ELit) and left.type == TBOOL:
                return ELit(True, TBOOL) if left.value else right
            if isinstance(right, ELit) and right.type == TBOOL and not right.value:
                return left
        return EBinop(e.op, left, right, e.type)
    if isinstance(e, EUnop):
        operand = fold(e.operand)
        if e.op == "!" and isinstance(operand, ELit) and operand.type == TBOOL:
            return ELit(not operand.value, TBOOL)
        return EUnop(e.op, operand, e.type)
    if isinstance(e, ECond):
        cond = fold(e.cond)
        if isinstance(cond, ELit) and cond.type == TBOOL:
            return fold(e.then) if cond.value else fold(e.els)
        return ECond(cond, fold(e.then), fold(e.els))
    if isinstance(e, EAccess):
        return EAccess(e.array, fold(e.index), e.type)
    if isinstance(e, ECall):
        return ECall(e.op, [fold(a) for a in e.args])
    return e


# ----------------------------------------------------------------------
# fresh-name generation
# ----------------------------------------------------------------------
class NameGen:
    """Deterministic fresh-name source (the paper's ``Name`` parameter).

    Every generated temporary carries the reserved prefix
    :data:`RESERVED_PREFIX` (``_t`` by default), so compiler-introduced
    names live in a namespace user/source variables can never occupy —
    :class:`~repro.compiler.kernel.KernelBuilder` rejects user variable
    names starting with ``_``.  This closes a latent CSE/LICM hazard:
    a fresh ``cse0``/``inv0`` temporary could previously collide with
    (and silently shadow) a like-named kernel parameter.
    """

    #: prefix reserved for compiler-generated temporaries; user-facing
    #: identifiers (kernel names, variable names, derived parameter
    #: names) must never start with ``_``
    RESERVED_PREFIX = "_t"

    def __init__(self, prefix: Optional[str] = None) -> None:
        self._prefix = self.RESERVED_PREFIX if prefix is None else prefix
        self._counts: Dict[str, int] = {}
        #: every variable handed out, for declaration at kernel entry
        self.allocated: list = []

    def fresh(self, hint: str, type_: str = TINT) -> EVar:
        n = self._counts.get(hint, 0)
        self._counts[hint] = n + 1
        var = EVar(f"{self._prefix}{hint}{n}", type_)
        self.allocated.append(var)
        return var
