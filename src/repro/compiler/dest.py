"""Destinations for destination-passing-style compilation (Section 7.3).

``compile out v`` accumulates the value of ``v`` into ``out``
({out ↦ v} compile {out ↦ v + ⟦q⟧}).  A destination is either a scalar
accumulator or, for stream values, something that maps an index
expression to a sub-destination via :meth:`Dest.push`.

Provided destinations mirror the paper's: a scalar variable, dense
arrays (with affine offset arithmetic), and compressed (pos/crd/vals)
outputs whose upper levels append coordinates only for non-empty slices
— the per-level decomposition of Chou et al. [2018].
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.compiler.analysis.intervals import ArrayContract
from repro.compiler.ir import (
    E,
    EAccess,
    EBinop,
    EUnop,
    EVar,
    NameGen,
    P,
    PAssign,
    PIf,
    PSeq,
    PSkip,
    PSort,
    PStore,
    PWhile,
    TBOOL,
    TINT,
    eand,
    emin,
    ilit,
)
from repro.compiler.scalars import ScalarOps


class Dest:
    """A compilation destination."""

    def store(self, value: E) -> P:
        """Accumulate a scalar expression (leaf case)."""
        raise NotImplementedError

    def push(self, index: E) -> Tuple[P, "Dest", P]:
        """Map an index expression to (pre-code, sub-destination,
        post-code); pre runs before the recursive compile of the value,
        post after it."""
        raise NotImplementedError

    def setup(self) -> P:
        """Code emitted once before the kernel loop nest."""
        return PSkip()

    def finalize(self) -> P:
        """Code emitted once after the kernel loop nest."""
        return PSkip()

    def close_slice(self) -> P:
        """Code a parent level emits when one of its slices completes
        (no-op except for workspace destinations, which flush)."""
        return PSkip()

    def contracts(self) -> List["ArrayContract"]:
        """The capacity contracts this destination's stores must honor
        (see :mod:`repro.compiler.analysis.intervals`): only the
        capacity-managed append arrays, whose writes the emitted code
        guards by a counter-vs-capacity test.  Dimension-sized arrays
        (dense outputs, ``DensePosDest`` pos levels, workspace scratch)
        are bounded by the runtime dimension agreement that
        ``Kernel._validate_dims`` enforces instead."""
        return []


class ScalarDest(Dest):
    """Accumulate into a local variable, copied out at finalize."""

    def __init__(self, ops: ScalarOps, var: EVar, out_array: Optional[str] = None) -> None:
        self.ops = ops
        self.var = var
        self.out_array = out_array

    def store(self, value: E) -> P:
        return PAssign(self.var, self.ops.add(self.var, value))

    def setup(self) -> P:
        return PAssign(self.var, self.ops.zero)

    def finalize(self) -> P:
        if self.out_array is None:
            return PSkip()
        return PStore(self.out_array, ilit(0), self.var)


class ArraySlotDest(Dest):
    """Accumulate into ``array[slot]`` (a fixed element)."""

    def __init__(self, ops: ScalarOps, array: str, slot: E) -> None:
        self.ops = ops
        self.array = array
        self.slot = slot

    def store(self, value: E) -> P:
        cur = EAccess(self.array, self.slot, self.ops.type)
        return PStore(self.array, self.slot, self.ops.add(cur, value))


class DenseDest(Dest):
    """A dense output tensor: push extends an affine offset expression.

    ``dims`` lists the remaining dimensions (outermost first).  The
    output array must be zero-initialized by the caller.
    """

    def __init__(self, ops: ScalarOps, array: str, dims: List[E], offset: Optional[E] = None) -> None:
        self.ops = ops
        self.array = array
        self.dims = list(dims)
        self.offset = offset if offset is not None else ilit(0)

    def store(self, value: E) -> P:
        if self.dims:
            raise ValueError(f"dense destination still has {len(self.dims)} levels")
        cur = EAccess(self.array, self.offset, self.ops.type)
        return PStore(self.array, self.offset, self.ops.add(cur, value))

    def push(self, index: E) -> Tuple[P, Dest, P]:
        if not self.dims:
            raise ValueError("dense destination has no levels left")
        offset = EBinop(
            "+", EBinop("*", self.offset, self.dims[0], TINT), index, TINT
        )
        return PSkip(), DenseDest(self.ops, self.array, self.dims[1:], offset), PSkip()


class SparseLeafDest(Dest):
    """The last level of a compressed output: append (crd, val) pairs.

    In-order, strictly monotone iteration guarantees coordinates are
    appended in strictly increasing order within each slice, so the
    output is a valid compressed level without sorting or dedup.

    Writes are bounded by ``cap``; the counter keeps counting past it,
    so the kernel wrapper can detect overflow and raise instead of
    corrupting memory.  Note the count includes *candidate* entries:
    like TACO's assembly, a slot is appended whenever the output level
    is reached, even if the accumulated value ends up zero.
    """

    def __init__(self, ops: ScalarOps, crd: str, vals: str, counter: EVar, cap: E) -> None:
        self.ops = ops
        self.crd = crd
        self.vals = vals
        self.counter = counter
        self.cap = cap

    def push(self, index: E) -> Tuple[P, Dest, P]:
        slot = emin(self.counter, EBinop("-", self.cap, ilit(1), TINT))
        pre = PIf(
            EBinop("<", self.counter, self.cap, TBOOL),
            PSeq(
                PStore(self.crd, self.counter, index),
                PStore(self.vals, self.counter, self.ops.zero),
            ),
        )
        sub = ArraySlotDest(self.ops, self.vals, slot)
        post = PAssign(self.counter, EBinop("+", self.counter, ilit(1), TINT))
        return pre, sub, post

    def setup(self) -> P:
        return PAssign(self.counter, ilit(0))

    def contracts(self) -> List[ArrayContract]:
        return [
            ArrayContract(self.crd, self.cap),
            ArrayContract(self.vals, self.cap),
        ]


class SparseInnerDest(Dest):
    """A non-leaf compressed output level.

    Appends its coordinate (and the child's pos entry) only when the
    recursively compiled slice produced output, so empty slices leave
    no trace — the same assembly discipline as TACO's compressed mode.
    """

    def __init__(
        self,
        ops: ScalarOps,
        ng: NameGen,
        crd: str,
        counter: EVar,
        child_pos: str,
        child: Dest,
        child_counter: EVar,
        cap: E,
    ) -> None:
        self.ops = ops
        self.ng = ng
        self.crd = crd
        self.counter = counter
        self.child_pos = child_pos
        self.child = child
        self.child_counter = child_counter
        self.cap = cap

    def push(self, index: E) -> Tuple[P, Dest, P]:
        mark = self.ng.fresh("mark")
        pre = PAssign(mark, self.child_counter)
        post = PSeq(
            self.child.close_slice(),
            PIf(
                EBinop(">", self.child_counter, mark, TBOOL),
                PSeq(
                    PIf(
                        EBinop("<", self.counter, self.cap, TBOOL),
                        PStore(self.crd, self.counter, index),
                    ),
                    PAssign(self.counter, EBinop("+", self.counter, ilit(1), TINT)),
                    PIf(
                        EBinop("<=", self.counter, self.cap, TBOOL),
                        PStore(self.child_pos, self.counter, self.child_counter),
                    ),
                ),
            ),
        )
        return pre, self.child, post

    def setup(self) -> P:
        return PSeq(
            PAssign(self.counter, ilit(0)),
            PStore(self.child_pos, ilit(0), ilit(0)),
            self.child.setup(),
        )

    def contracts(self) -> List[ArrayContract]:
        # the pos array is allocated with one extra slot (cap + 1)
        return [
            ArrayContract(self.crd, self.cap),
            ArrayContract(self.child_pos, self.cap, slack=1),
        ] + self.child.contracts()


class DensePosDest(Dest):
    """A dense output level above a compressed one (CSR's row level).

    Fills the child's pos array for every row, including rows the
    iteration skipped."""

    def __init__(
        self,
        ops: ScalarOps,
        ng: NameGen,
        dim: E,
        child_pos: str,
        child: Dest,
        child_counter: EVar,
    ) -> None:
        self.ops = ops
        self.ng = ng
        self.dim = dim
        self.child_pos = child_pos
        self.child = child
        self.child_counter = child_counter
        self.row = ng.fresh("row")

    def _fill_to(self, bound: E) -> P:
        return PWhile(
            EBinop("<", self.row, bound, TBOOL),
            PSeq(
                PAssign(self.row, EBinop("+", self.row, ilit(1), TINT)),
                PStore(self.child_pos, self.row, self.child_counter),
            ),
        )

    def push(self, index: E) -> Tuple[P, Dest, P]:
        # close out rows before `index`, then close `index`'s row after
        # its slice is computed
        pre = self._fill_to(index)
        post = PSeq(
            self.child.close_slice(),
            PAssign(self.row, EBinop("+", index, ilit(1), TINT)),
            PStore(self.child_pos, self.row, self.child_counter),
        )
        return pre, self.child, post

    def setup(self) -> P:
        return PSeq(
            PAssign(self.row, ilit(0)),
            PStore(self.child_pos, ilit(0), ilit(0)),
            self.child.setup(),
        )

    def finalize(self) -> P:
        return PSeq(self._fill_to(self.dim), self.child.finalize())

    def contracts(self) -> List[ArrayContract]:
        # child_pos is sized by the level dimension, not a capacity
        return self.child.contracts()


class WorkspaceLeafDest(Dest):
    """A dense workspace in front of a compressed leaf level.

    When a contraction loop encloses the output's last level (e.g. the
    linear-combination-of-rows matmul), coordinates arrive out of order
    and may repeat; appending directly would corrupt the compressed
    output.  This destination accumulates each slice into a dense
    scratch array while recording the touched coordinates, then — when
    the parent closes the slice — sorts the touched list, appends the
    (coordinate, value) pairs to the compressed leaf, and resets only
    the touched entries.  This is exactly the workspace optimization of
    Kjolstad et al. [2019], which the paper notes indexed streams can
    express (Section 9).

    Scratch arrays (``ws_vals``, ``ws_mask``, ``ws_list``) are sized by
    the level dimension and supplied by the kernel wrapper.
    """

    def __init__(
        self,
        ops: ScalarOps,
        ng: NameGen,
        crd: str,
        vals: str,
        counter: EVar,
        ws_vals: str,
        ws_mask: str,
        ws_list: str,
        cap: E,
    ) -> None:
        self.ops = ops
        self.ng = ng
        self.crd = crd
        self.vals = vals
        self.counter = counter
        self.ws_vals = ws_vals
        self.ws_mask = ws_mask
        self.ws_list = ws_list
        self.cap = cap
        self.touched = ng.fresh("wsn")

    def push(self, index: E) -> Tuple[P, Dest, P]:
        pre = PIf(
            EBinop("==", EAccess(self.ws_mask, index, TINT), ilit(0), TBOOL),
            PSeq(
                PStore(self.ws_mask, index, ilit(1)),
                PStore(self.ws_list, self.touched, index),
                PAssign(self.touched, EBinop("+", self.touched, ilit(1), TINT)),
                PStore(self.ws_vals, index, self.ops.zero),
            ),
        )
        sub = ArraySlotDest(self.ops, self.ws_vals, index)
        return pre, sub, PSkip()

    def setup(self) -> P:
        return PSeq(PAssign(self.counter, ilit(0)), PAssign(self.touched, ilit(0)))

    def close_slice(self) -> P:
        t = self.ng.fresh("wst")
        c = self.ng.fresh("wsc")
        flush_one = PSeq(
            PAssign(c, EAccess(self.ws_list, t, TINT)),
            PIf(
                EBinop("<", self.counter, self.cap, TBOOL),
                PSeq(
                    PStore(self.crd, self.counter, c),
                    PStore(
                        self.vals, self.counter,
                        EAccess(self.ws_vals, c, self.ops.type),
                    ),
                ),
            ),
            PAssign(self.counter, EBinop("+", self.counter, ilit(1), TINT)),
            PStore(self.ws_mask, c, ilit(0)),
        )
        return PSeq(
            PSort(self.ws_list, self.touched),
            PAssign(t, ilit(0)),
            PWhile(
                EBinop("<", t, self.touched, TBOOL),
                PSeq(flush_one, PAssign(t, EBinop("+", t, ilit(1), TINT))),
            ),
            PAssign(self.touched, ilit(0)),
        )

    def finalize(self) -> P:
        # if the workspace is the top level, the single slice closes here
        return self.close_slice()

    def contracts(self) -> List[ArrayContract]:
        # ws_vals/ws_mask/ws_list are dimension-sized scratch, and the
        # flush loop guards its crd/vals appends by the capacity
        return [
            ArrayContract(self.crd, self.cap),
            ArrayContract(self.vals, self.cap),
        ]
