"""Input bindings: data structures and functions as syntactic streams.

Each variable of a contraction expression is bound either to a
:class:`TensorInput` (a concrete :class:`~repro.data.Tensor`, lowered to
a chain of sparse/dense levels reading its pos/crd/vals arrays) or to a
:class:`FunctionInput` (a user-defined operation used as data — the
paper encodes predicates like Q9's substring match as boolean-valued
indexed streams, Section 8.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.compiler.ir import (
    E,
    EAccess,
    EBinop,
    ECall,
    EVar,
    NameGen,
    Op,
    TINT,
    ilit,
)
from repro.compiler.scalars import ScalarOps
from repro.compiler.sstream import (
    SStream,
    Value,
    dense_level,
    function_level,
    sparse_level,
)


@dataclass(frozen=True)
class Param:
    """A kernel parameter: an array or a scalar."""

    name: str
    kind: str       # "array" | "scalar"
    ctype: str      # element type for arrays, value type for scalars


class TensorInput:
    """A tensor-shaped variable binding (formats, not data).

    Only the *structure* (attrs, formats, value type) is needed to
    build the kernel; the actual arrays are supplied at run time.
    """

    def __init__(
        self,
        name: str,
        attrs: Sequence[str],
        formats: Sequence[str],
        ops: ScalarOps,
    ) -> None:
        self.name = name
        self.attrs = tuple(attrs)
        self.formats = tuple(formats)
        self.ops = ops

    @property
    def rank(self) -> int:
        return len(self.attrs)

    def split_kind(self, attr: str) -> Optional[str]:
        """How this operand participates in a shard split on ``attr``.

        Returns ``"whole"`` when the operand does not mention ``attr``
        (every shard reads it unchanged), ``"outer"`` when ``attr`` is
        the outermost level (the operand can be row-block sliced with
        :meth:`repro.data.tensor.Tensor.slice_outer`), and ``None`` when
        ``attr`` sits at an inner level — such an operand cannot be
        partitioned without re-formatting, so the planner must reject
        the candidate split index.
        """
        if attr not in self.attrs:
            return "whole"
        if self.attrs[0] == attr:
            return "outer"
        return None

    def params(self) -> List[Param]:
        out: List[Param] = []
        for k, fmt in enumerate(self.formats):
            if fmt == "sparse":
                out.append(Param(f"{self.name}_pos{k}", "array", TINT))
                out.append(Param(f"{self.name}_crd{k}", "array", TINT))
            else:
                out.append(Param(f"{self.name}_dim{k}", "scalar", TINT))
        out.append(Param(f"{self.name}_vals", "array", self.ops.type))
        return out

    def sstream(self, ng: NameGen, search: str = "linear") -> Value:
        """The nested syntactic stream reading this tensor's arrays."""

        def build(level: int, slot: E) -> Value:
            if level == self.rank:
                return EAccess(f"{self.name}_vals", slot, self.ops.type)
            attr = self.attrs[level]
            shape = self.attrs[level:]
            if self.formats[level] == "sparse":
                pos = f"{self.name}_pos{level}"
                lo = EAccess(pos, slot, TINT)
                hi = EAccess(pos, EBinop("+", slot, ilit(1), TINT), TINT)
                return sparse_level(
                    ng,
                    attr,
                    f"{self.name}_crd{level}",
                    lo,
                    hi,
                    lambda q: build(level + 1, q),
                    shape,
                    search=search,
                )
            dim = EVar(f"{self.name}_dim{level}", TINT)
            return dense_level(
                ng,
                attr,
                dim,
                lambda i: build(
                    level + 1, EBinop("+", EBinop("*", slot, dim, TINT), i, TINT)
                ),
                shape,
            )

        return build(0, ilit(0))


class FunctionInput:
    """A variable bound to a user-defined operation over its attributes.

    The op receives one integer index per attribute and returns a
    scalar; the stream is always ready (an implicitly represented,
    possibly infinite stream) so it must be multiplied by finite data.
    ``dims`` optionally bounds each level, making the stream finite.
    """

    def __init__(
        self,
        name: str,
        attrs: Sequence[str],
        op: Op,
        ops: ScalarOps,
        dims: Optional[Sequence[Optional[int]]] = None,
    ) -> None:
        if len(op.arg_types) != len(attrs):
            raise ValueError(
                f"op {op.name!r} arity {op.arity} != {len(attrs)} attributes"
            )
        self.name = name
        self.attrs = tuple(attrs)
        self.op = op
        self.ops = ops
        self.dims = tuple(dims) if dims is not None else (None,) * len(attrs)

    def params(self) -> List[Param]:
        return []

    def split_kind(self, attr: str) -> Optional[str]:
        """Function streams evaluate at *absolute* indices, but shard
        slicing rebases the split attribute to a local window — so a
        function input is only compatible with splits on attributes it
        does not mention."""
        return "whole" if attr not in self.attrs else None

    def sstream(self, ng: NameGen, search: str = "linear") -> Value:
        def build(level: int, idxs: Tuple[E, ...]) -> Value:
            if level == len(self.attrs):
                return ECall(self.op, list(idxs))
            attr = self.attrs[level]
            dim = self.dims[level]
            return function_level(
                ng,
                attr,
                lambda i: build(level + 1, idxs + (i,)),
                self.attrs[level:],
                dim=None if dim is None else ilit(dim),
            )

        return build(0, ())
