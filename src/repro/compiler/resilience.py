"""Resilient build & execution utilities for the compiler pipeline.

The compiler built through PR 1 assumed a cooperating environment: gcc
on ``PATH``, a writable cache directory, intact cache artifacts.  This
module centralizes everything needed to degrade gracefully when those
assumptions break:

* **Toolchain probing** — :func:`toolchain`, :func:`toolchain_available`
  (result cached per compiler name; ``REPRO_GCC`` overrides the
  compiler binary, which doubles as a fault-injection hook).
* **Fallback policy** — :func:`fallback_enabled` reads
  ``REPRO_BACKEND_FALLBACK`` (default *on*).  When the C backend cannot
  build, :class:`~repro.compiler.kernel.KernelBuilder` downgrades to
  the Python backend and logs a warning; with fallback disabled the
  typed error propagates instead.
* **Subprocess hardening** — :func:`gcc_timeout` reads
  ``REPRO_GCC_TIMEOUT`` (seconds, default 120); :func:`is_transient`
  classifies failures worth one retry (signals/OS hiccups, not source
  errors).
* **Crash-safe writes** — :func:`atomic_write_text` /
  :func:`atomic_write_bytes` publish files via write-to-temp +
  ``os.replace`` so a concurrent reader never observes a half-written
  artifact; :func:`file_lock` serializes builders racing on one cache
  key.
* **Quarantine** — :func:`quarantine` renames a corrupt artifact to
  ``<name>.corrupt`` (keeping it for post-mortem) so the builder can
  rebuild into a clean slot.

Every recovery path in the package logs through the shared ``repro``
logger (:data:`logger`) — fallbacks are **never** silent.
"""

from __future__ import annotations

import logging
import os
import shutil
import tempfile
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterable, Optional, Union

try:  # POSIX advisory locks; Windows falls back to O_EXCL spinning
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platform
    fcntl = None  # type: ignore[assignment]

#: name of the default handler :func:`_get_logger` installs exactly once
_HANDLER_NAME = "repro-default"


def _get_logger(name: str = "repro") -> logging.Logger:
    """The shared ``repro`` logger, with its default handler installed
    *idempotently*.

    Worker processes of the parallel runtime re-enter this module —
    spawned workers by re-importing it, forked workers by inheriting the
    parent's already-configured logger and then running their own
    initializer.  Naively calling ``addHandler`` on each entry would
    stack duplicate handlers and every warning would print once per
    (re-)initialization.  Handlers are therefore deduplicated by name:
    if a handler called ``repro-default`` is already attached, the
    logger is returned untouched.
    """
    log = logging.getLogger(name)
    for handler in log.handlers:
        if getattr(handler, "name", None) == _HANDLER_NAME:
            return log
    handler = logging.StreamHandler()
    handler.name = _HANDLER_NAME
    handler.setFormatter(
        logging.Formatter("[%(processName)s] %(name)s %(levelname)s: %(message)s")
    )
    log.addHandler(handler)
    return log


#: the package-wide logger every fallback/recovery path reports through
logger = _get_logger()

ENV_BACKEND_FALLBACK = "REPRO_BACKEND_FALLBACK"
ENV_GCC = "REPRO_GCC"
ENV_GCC_TIMEOUT = "REPRO_GCC_TIMEOUT"
ENV_MAX_CAPACITY = "REPRO_MAX_CAPACITY"
ENV_IR_VERIFY = "REPRO_IR_VERIFY"
ENV_STREAM_VERIFY = "REPRO_STREAM_VERIFY"
ENV_SANITIZE = "REPRO_SANITIZE"
ENV_PARALLEL = "REPRO_PARALLEL"
ENV_WORKERS = "REPRO_WORKERS"
ENV_MP_START = "REPRO_MP_START"
ENV_SUPERVISE = "REPRO_SUPERVISE"
ENV_KERNEL_DEADLINE = "REPRO_KERNEL_DEADLINE"
ENV_KERNEL_MEM_MB = "REPRO_KERNEL_MEM_MB"
ENV_STRICT_LOCKS = "REPRO_STRICT_LOCKS"
ENV_BREAKER_THRESHOLD = "REPRO_BREAKER_THRESHOLD"
ENV_BREAKER_BACKOFF = "REPRO_BREAKER_BACKOFF"
ENV_POOL = "REPRO_POOL"
ENV_POOL_WORKERS = "REPRO_POOL_WORKERS"
ENV_POOL_WARM = "REPRO_POOL_WARM"
ENV_POOL_IDLE_TTL = "REPRO_POOL_IDLE_TTL"
ENV_SHM_THRESHOLD = "REPRO_SHM_THRESHOLD"
ENV_STRICT_ENV = "REPRO_STRICT_ENV"
ENV_TUNE = "REPRO_TUNE"
ENV_TUNE_CACHE_DIR = "REPRO_TUNE_CACHE_DIR"
ENV_TUNE_CALIBRATE = "REPRO_TUNE_CALIBRATE"
ENV_DURABLE = "REPRO_DURABLE"
ENV_JOB_DIR = "REPRO_JOB_DIR"
ENV_MEM_BUDGET_MB = "REPRO_MEM_BUDGET_MB"
ENV_FAULT = "REPRO_FAULT"
ENV_BREAKER_TTL = "REPRO_BREAKER_TTL"

DEFAULT_GCC_TIMEOUT = 120.0
DEFAULT_KERNEL_DEADLINE = 60.0
DEFAULT_BREAKER_THRESHOLD = 3
DEFAULT_BREAKER_BACKOFF = 30.0
#: closed, untouched breaker records older than this are swept (seconds)
DEFAULT_BREAKER_TTL = 7 * 24 * 3600.0
DEFAULT_POOL_IDLE_TTL = 300.0
#: operand/result payloads below this many bytes travel inline over the
#: pipe; at or above it they go through a shared-memory segment
DEFAULT_SHM_THRESHOLD = 16384

_FALSEY = ("0", "off", "no", "false")


# ----------------------------------------------------------------------
# typed environment parsing
# ----------------------------------------------------------------------
def strict_env() -> bool:
    """Whether an unparsable ``REPRO_*`` value raises a typed
    :class:`~repro.errors.ConfigError` at read time instead of the
    default warn-and-use-default policy (``REPRO_STRICT_ENV``, default
    off).  Deployments that would rather fail to boot than run with a
    silently ignored knob set this; the ``REPRO_SERVE_*`` family is
    always strict."""
    raw = os.environ.get(ENV_STRICT_ENV, "")
    return bool(raw) and raw.lower() not in _FALSEY


def _env_invalid(name: str, raw: str, reason: str, default, *, strict=None):
    """One invalid environment value, handled by policy.

    Default: log a warning naming the variable and return ``default``
    (configuration mistakes must not take down a running library
    call).  Under ``REPRO_STRICT_ENV=1`` — or when the caller forces
    ``strict=True``, as the serve config does — raise a typed
    :class:`~repro.errors.ConfigError` instead, once, at read time.
    """
    from repro.errors import ConfigError

    if strict if strict is not None else strict_env():
        raise ConfigError(name, raw, reason)
    logger.warning("ignoring invalid %s=%r (%s); using %r",
                   name, raw, reason, default)
    return default


def env_int(
    name: str,
    default: Optional[int],
    *,
    minimum: Optional[int] = None,
    strict: Optional[bool] = None,
) -> Optional[int]:
    """``int(os.environ[name])`` with validation at read time.

    Unset/empty returns ``default``.  A non-numeric value, or one below
    ``minimum``, follows the invalid-value policy (warn + default, or
    :class:`~repro.errors.ConfigError` when strict).
    """
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    try:
        value = int(raw)
    except ValueError:
        return _env_invalid(name, raw, "not an integer", default,
                            strict=strict)
    if minimum is not None and value < minimum:
        return _env_invalid(name, raw, f"must be >= {minimum}", default,
                            strict=strict)
    return value


def env_float(
    name: str,
    default: Optional[float],
    *,
    minimum: Optional[float] = None,
    strict: Optional[bool] = None,
) -> Optional[float]:
    """``float(os.environ[name])`` with validation at read time (same
    policy as :func:`env_int`)."""
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    try:
        value = float(raw)
    except ValueError:
        return _env_invalid(name, raw, "non-numeric", default,
                            strict=strict)
    if minimum is not None and value < minimum:
        return _env_invalid(name, raw, f"must be >= {minimum}", default,
                            strict=strict)
    return value


def env_flag(name: str, default: bool) -> bool:
    """Boolean knob: unset/empty → ``default``; any of ``0/off/no/
    false`` (case-insensitive) → False; anything else → True.  Never
    invalid, so never strict."""
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    return raw.strip().lower() not in _FALSEY

#: sanitizers the build layer knows how to wire up
KNOWN_SANITIZERS = ("address", "undefined")

#: executor backends of :mod:`repro.runtime` selectable via REPRO_PARALLEL
KNOWN_EXECUTORS = ("serial", "thread", "process", "pool")


def fallback_enabled() -> bool:
    """Whether a failed C build may downgrade to the Python backend."""
    return os.environ.get(ENV_BACKEND_FALLBACK, "1").lower() not in _FALSEY


def tune_mode() -> Optional[str]:
    """The autotuner routing requested via ``REPRO_TUNE``.

    Returns ``None`` when unset/empty (caller decides its own default;
    the library default is off, the serve default is auto), ``"off"``
    for any falsey spelling, ``"auto"`` for ``auto/on/1/true/yes``.  An
    unrecognized value warns and behaves as unset — tuning is an
    optimization, a typo must not change semantics."""
    raw = os.environ.get(ENV_TUNE, "").strip().lower()
    if not raw:
        return None
    if raw in _FALSEY:
        return "off"
    if raw in ("auto", "on", "1", "true", "yes"):
        return "auto"
    logger.warning("ignoring invalid %s=%r (expected off/auto)", ENV_TUNE, raw)
    return None


def ir_verify_enabled() -> bool:
    """Whether the optimizer verifies its IR after every pass
    (``REPRO_IR_VERIFY``, default off; any truthy value enables)."""
    raw = os.environ.get(ENV_IR_VERIFY, "")
    return bool(raw) and raw.lower() not in _FALSEY


def stream_verify_enabled() -> bool:
    """Whether :meth:`KernelBuilder.prepare` statically verifies stream
    properties (monotonicity, lawfulness, termination, semiring-law
    obligations) before lowering (``REPRO_STREAM_VERIFY``, default
    **on** — unlike the IR verifier, the stream pass is a few dict
    lookups per AST node, cheap enough to always run)."""
    return env_flag(ENV_STREAM_VERIFY, True)


def sanitize_modes() -> tuple:
    """The requested sanitizers, parsed from ``REPRO_SANITIZE``.

    The value is a comma-separated subset of ``address``/``undefined``
    (e.g. ``REPRO_SANITIZE=address,undefined``).  Unknown entries are
    logged and ignored rather than breaking the build.  The C backend
    maps these to ``-fsanitize=`` flags; the Python backend treats any
    requested sanitizer as "emit the checked, bounds-verified kernel".
    """
    raw = os.environ.get(ENV_SANITIZE, "")
    if not raw or raw.lower() in _FALSEY:
        return ()
    modes = []
    for part in raw.split(","):
        part = part.strip().lower()
        if not part:
            continue
        if part not in KNOWN_SANITIZERS:
            logger.warning(
                "ignoring unknown sanitizer %r in %s=%r (known: %s)",
                part, ENV_SANITIZE, raw, ", ".join(KNOWN_SANITIZERS),
            )
            continue
        if part not in modes:
            modes.append(part)
    # canonical (sorted) so equivalent spellings share cache keys
    return tuple(sorted(modes))


def parallel_backend() -> Optional[str]:
    """The executor the sharded runtime should default to.

    ``REPRO_PARALLEL`` selects one of ``serial``/``thread``/``process``
    (``serial`` shards and merges but runs shards inline — the debug
    oracle).  Unset, empty, or falsey means "no sharding": every
    ``Kernel.run`` stays the single-shot fused kernel.  An unknown value
    is logged and ignored rather than breaking execution.
    """
    raw = os.environ.get(ENV_PARALLEL, "").strip().lower()
    if not raw or raw in _FALSEY:
        return None
    if raw not in KNOWN_EXECUTORS:
        logger.warning(
            "ignoring unknown executor %s=%r (known: %s)",
            ENV_PARALLEL, raw, ", ".join(KNOWN_EXECUTORS),
        )
        return None
    return raw


def worker_count(default: Optional[int] = None) -> int:
    """Worker count for parallel executors (``REPRO_WORKERS`` override,
    then ``default``, then the machine's CPU count)."""
    value = env_int(ENV_WORKERS, None, minimum=1)
    if value is not None:
        return value
    if default is not None:
        return int(default)
    return max(1, os.cpu_count() or 1)


def mp_start_method() -> str:
    """The multiprocessing start method for process workers.

    Defaults to ``spawn``: workers then genuinely rebuild their kernels
    from the on-disk cache tier (a forked worker would inherit the
    parent's in-memory memo, hiding cold-start bugs), and the ctypes
    handles of loaded ``.so`` files are never shared across a fork.
    ``REPRO_MP_START=fork`` opts into the faster fork start on POSIX.
    """
    raw = os.environ.get(ENV_MP_START, "").strip().lower()
    if raw in ("fork", "spawn", "forkserver"):
        return raw
    if raw:
        logger.warning("ignoring unknown start method %s=%r", ENV_MP_START, raw)
    return "spawn"


def supervise_mode() -> Optional[bool]:
    """The three-valued ``REPRO_SUPERVISE`` policy.

    ``True``: every ``Kernel.run`` executes in a supervised child;
    ``False``: supervision is off even for at-risk kernels; ``None``
    (unset/empty): the automatic policy — C-backed kernels whose
    capacity lint could not prove every output store in bounds
    (``Kernel.needs_guard``) run supervised, everything else in
    process.
    """
    raw = os.environ.get(ENV_SUPERVISE, "").strip().lower()
    if not raw:
        return None
    return raw not in _FALSEY


def kernel_deadline() -> float:
    """Wall-clock budget for one supervised kernel run, in seconds
    (``REPRO_KERNEL_DEADLINE``, default 60)."""
    value = env_float(ENV_KERNEL_DEADLINE, None, minimum=0.0)
    if value is None or value <= 0:
        return DEFAULT_KERNEL_DEADLINE
    return value


def kernel_mem_mb() -> Optional[int]:
    """``RLIMIT_AS`` cap for a supervised kernel child, in MiB
    (``REPRO_KERNEL_MEM_MB``; default None = no address-space cap)."""
    return env_int(ENV_KERNEL_MEM_MB, None, minimum=1)


def strict_locks() -> bool:
    """Whether a build-lock timeout raises :class:`~repro.errors.LockTimeoutError`
    instead of degrading to an unlocked (but still atomic) build
    (``REPRO_STRICT_LOCKS``, default off)."""
    raw = os.environ.get(ENV_STRICT_LOCKS, "")
    return bool(raw) and raw.lower() not in _FALSEY


def breaker_threshold() -> int:
    """Supervised crashes/timeouts before the circuit breaker opens
    (``REPRO_BREAKER_THRESHOLD``, default 3)."""
    value = env_int(ENV_BREAKER_THRESHOLD, None, minimum=1)
    return DEFAULT_BREAKER_THRESHOLD if value is None else value


def breaker_backoff() -> float:
    """Base re-probe delay of an open circuit breaker, in seconds
    (``REPRO_BREAKER_BACKOFF``, default 30; doubles per failed probe,
    with jitter)."""
    value = env_float(ENV_BREAKER_BACKOFF, None, minimum=0.0)
    return DEFAULT_BREAKER_BACKOFF if value is None else value


def pool_enabled() -> bool:
    """Whether supervised runs may route through the persistent worker
    pool instead of forking a fresh child per call (``REPRO_POOL``,
    default off).

    Off by default because the fork-per-call supervisor inherits the
    parent's in-memory kernel handle — the contract the fault-injection
    suite pins — while a pooled worker rebuilds the kernel from its
    recipe.  Selecting the ``pool`` *executor* (``REPRO_PARALLEL=pool``
    or ``parallel="pool"``) does not require this switch; it only
    gates the supervised-single-run routing.
    """
    raw = os.environ.get(ENV_POOL, "")
    return bool(raw) and raw.lower() not in _FALSEY


def pool_workers(default: Optional[int] = None) -> int:
    """Resident worker count for the persistent pool
    (``REPRO_POOL_WORKERS`` override, else :func:`worker_count`)."""
    value = env_int(ENV_POOL_WORKERS, None, minimum=1)
    return worker_count(default) if value is None else value


def pool_warm_enabled() -> bool:
    """Whether new/replacement pool workers are proactively warmed with
    every recipe the pool has seen (``REPRO_POOL_WARM``, default on).
    Off, recipes still ship lazily — once per worker per cache key — on
    first use."""
    return os.environ.get(ENV_POOL_WARM, "1").lower() not in _FALSEY


def pool_idle_ttl() -> Optional[float]:
    """Seconds an idle pool worker beyond the first may live before
    eviction (``REPRO_POOL_IDLE_TTL``, default 300; ``0``/falsey
    disables eviction)."""
    raw = os.environ.get(ENV_POOL_IDLE_TTL)
    if raw is None or not raw.strip():
        return DEFAULT_POOL_IDLE_TTL
    if raw.strip().lower() in _FALSEY:
        return None
    value = env_float(ENV_POOL_IDLE_TTL, DEFAULT_POOL_IDLE_TTL, minimum=0.0)
    return value if value else None


def shm_threshold() -> int:
    """Minimum payload size, in bytes, that travels through a
    shared-memory segment instead of the pickle pipe
    (``REPRO_SHM_THRESHOLD``; ``0`` forces shm for everything)."""
    value = env_int(ENV_SHM_THRESHOLD, DEFAULT_SHM_THRESHOLD, minimum=0)
    return DEFAULT_SHM_THRESHOLD if value is None else value


def durable_enabled() -> bool:
    """Whether sharded runs journal completed shard partials to disk by
    default (``REPRO_DURABLE``, default off).  The explicit
    ``run_sharded(durable=...)`` argument overrides the environment."""
    return env_flag(ENV_DURABLE, False)


def job_dir_env() -> Optional[str]:
    """The directory job journals live under (``REPRO_JOB_DIR``; default
    ``<kernel cache dir>/jobs``)."""
    raw = os.environ.get(ENV_JOB_DIR)
    if raw is None or not raw.strip():
        return None
    return raw.strip()


def mem_budget_mb() -> Optional[float]:
    """Resident-partial memory budget for sharded runs, in MiB
    (``REPRO_MEM_BUDGET_MB``; default None = unbounded).  When set, the
    memory governor spills accumulated shard partials to the job
    journal and merges with a streaming ⊕-fold instead of holding every
    partial resident."""
    value = env_float(ENV_MEM_BUDGET_MB, None, minimum=0.0)
    if value is not None and value <= 0:
        return None
    return value


def breaker_ttl() -> Optional[float]:
    """Age past which a *closed*, untouched on-disk breaker record is
    swept on breaker load, in seconds (``REPRO_BREAKER_TTL``, default
    7 days; ``0``/falsey disables the sweep)."""
    raw = os.environ.get(ENV_BREAKER_TTL)
    if raw is None or not raw.strip():
        return DEFAULT_BREAKER_TTL
    if raw.strip().lower() in _FALSEY:
        return None
    value = env_float(ENV_BREAKER_TTL, DEFAULT_BREAKER_TTL, minimum=0.0)
    return value if value else None


# ----------------------------------------------------------------------
# fault injection
# ----------------------------------------------------------------------
_fault_lock = threading.Lock()
_fault_hits: Dict[str, int] = {}
_fault_fired: Dict[str, bool] = {}


def reset_fault_counters() -> None:
    """Forget which fault sites have been hit/fired (tests)."""
    with _fault_lock:
        _fault_hits.clear()
        _fault_fired.clear()


def _parse_fault_spec(raw: str):
    """``<site>[:<mode>[:<n>]]`` → ``(site, mode, n)`` or ``None``."""
    parts = [p.strip() for p in raw.split(":")]
    site = parts[0]
    mode = parts[1].lower() if len(parts) > 1 and parts[1] else "raise"
    if not site:
        return None
    if mode not in ("raise", "sigkill"):
        logger.warning("ignoring invalid %s=%r (unknown mode %r; "
                       "expected raise/sigkill)", ENV_FAULT, raw, mode)
        return None
    n = 1
    if len(parts) > 2 and parts[2]:
        try:
            n = int(parts[2])
        except ValueError:
            logger.warning("ignoring invalid %s=%r (hit count %r not an "
                           "integer)", ENV_FAULT, raw, parts[2])
            return None
        if n < 1:
            logger.warning("ignoring invalid %s=%r (hit count must be >= 1)",
                           ENV_FAULT, raw)
            return None
    return site, mode, n


def fault_point(site: str) -> None:
    """A named fault-injection site for chaos tests.

    ``REPRO_FAULT=<site>[:<mode>[:<n>]]`` arms exactly one site per
    process: on the *n*-th hit (default: the first) of the named site
    the hook fires once — ``raise`` mode (the default) raises
    :class:`~repro.errors.InjectedFault`, ``sigkill`` mode delivers
    ``SIGKILL`` to the current process, simulating the OOM killer.
    Subsequent hits pass through, so an in-process re-run after a
    ``raise``-mode failure completes normally.  Unset, or armed for a
    different site, the call is a no-op (one dict lookup).

    Production code calls this at the handful of places chaos tests
    need to kill: after a shard partial is journaled (``shard``),
    before the merge (``merge``), and at the top of the supervised
    child (``supervised_child``).
    """
    raw = os.environ.get(ENV_FAULT, "").strip()
    if not raw:
        return
    spec = _parse_fault_spec(raw)
    if spec is None or spec[0] != site:
        return
    _, mode, n = spec
    with _fault_lock:
        if _fault_fired.get(site):
            return
        _fault_hits[site] = _fault_hits.get(site, 0) + 1
        if _fault_hits[site] < n:
            return
        _fault_fired[site] = True
    if mode == "sigkill":
        import signal as _signal

        logger.warning("fault injection: SIGKILL at site %r", site)
        os.kill(os.getpid(), _signal.SIGKILL)
        return  # pragma: no cover - unreachable
    from repro.errors import InjectedFault

    raise InjectedFault(site)


def signal_name(signum: int) -> str:
    """Symbolic name of a signal number (``SIG<n>`` when unknown)."""
    from repro.errors import _signal_name

    return _signal_name(signum)


def toolchain() -> str:
    """The C compiler binary (``REPRO_GCC`` override, default ``gcc``)."""
    return os.environ.get(ENV_GCC, "gcc")


def gcc_timeout() -> float:
    """Wall-clock budget for one compiler invocation, in seconds."""
    value = env_float(ENV_GCC_TIMEOUT, DEFAULT_GCC_TIMEOUT, minimum=0.0)
    if value is None or value <= 0:
        return DEFAULT_GCC_TIMEOUT
    return value


def max_auto_capacity() -> Optional[int]:
    """Optional global ceiling for capacity auto-growth."""
    return env_int(ENV_MAX_CAPACITY, None, minimum=1)


_probe_lock = threading.Lock()
_probe_cache: Dict[str, bool] = {}


def toolchain_available(refresh: bool = False) -> bool:
    """Whether the configured C compiler is on ``PATH`` (probe cached
    per compiler name; ``refresh=True`` re-probes)."""
    cc = toolchain()
    with _probe_lock:
        if refresh or cc not in _probe_cache:
            _probe_cache[cc] = shutil.which(cc) is not None
        return _probe_cache[cc]


def reset_probe_cache() -> None:
    """Forget probe results (tests; after installing a toolchain)."""
    with _probe_lock:
        _probe_cache.clear()


def is_transient(
    returncode: Optional[int], seen_signals: Iterable[int] = ()
) -> bool:
    """Whether a compiler exit status is worth one retry.

    Death by signal (negative returncode on POSIX) usually means an OOM
    kill or an external interruption, not a defect in the generated
    source; a regular nonzero exit is a real compile error and retrying
    would only fail identically.

    ``seen_signals`` is the set of signal numbers that already killed a
    previous attempt of the *same* build: a toolchain SIGKILLed twice is
    being OOM-killed deterministically, and hammering it a third time
    only makes the memory pressure worse — one retry per signal, then
    fail with an actionable message.
    """
    if returncode is None or returncode >= 0:
        return False
    return -returncode not in set(seen_signals)


# ----------------------------------------------------------------------
# crash-safe filesystem primitives
# ----------------------------------------------------------------------
def atomic_write_bytes(path: Union[str, Path], data: bytes) -> None:
    """Write ``data`` to ``path`` so readers see old-or-new, never half."""
    path = Path(path)
    fd, tmp = tempfile.mkstemp(dir=str(path.parent), prefix=path.name, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as f:
            f.write(data)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def atomic_write_text(path: Union[str, Path], text: str) -> None:
    atomic_write_bytes(path, text.encode())


def _lock_timed_out(lock_path: str, timeout: float) -> None:
    """Policy for a lock still busy at its deadline: *never* a silent
    downgrade.  Default — warn and let the caller continue unlocked
    (artifact publication is atomic, so the worst case is duplicated
    work); under ``REPRO_STRICT_LOCKS=1`` — raise a typed
    :class:`~repro.errors.LockTimeoutError` so fault harnesses (and
    strict deployments) can assert on the condition instead of racing.
    """
    from repro.errors import LockTimeoutError

    if strict_locks():
        raise LockTimeoutError(
            f"build lock {lock_path} still busy after {timeout:.1f}s "
            f"({ENV_STRICT_LOCKS}=1: failing instead of running unlocked)",
            path=lock_path, timeout=timeout,
        )
    logger.warning(
        "lock %s busy past its %.1fs timeout; continuing unlocked "
        "(set %s=1 to fail instead)",
        lock_path, timeout, ENV_STRICT_LOCKS,
    )


@contextmanager
def file_lock(path: Union[str, Path], timeout: float = 60.0):
    """An advisory per-key lock for concurrent builders.

    ``path`` names the artifact being built; the lock itself lives in a
    sibling ``<name>.lock`` file.  Uses ``flock`` where available and
    falls back to ``O_CREAT|O_EXCL`` spinning otherwise.  Lock
    *failures* (read-only directory, exotic filesystems) degrade to
    running unlocked — the artifacts themselves are still published
    atomically, so the worst case is duplicated work, never corruption.
    A lock that stays *busy* past ``timeout`` is different: that is
    logged as a warning, and under ``REPRO_STRICT_LOCKS=1`` raises
    :class:`~repro.errors.LockTimeoutError` instead of continuing.
    """
    lock_path = str(path) + ".lock"
    if fcntl is not None:
        fd = None
        try:
            fd = os.open(lock_path, os.O_CREAT | os.O_RDWR, 0o644)
        except OSError:
            logger.debug("could not lock %s; continuing unlocked", lock_path)
        if fd is not None:
            deadline = time.monotonic() + timeout
            while True:
                try:
                    fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
                    break
                except BlockingIOError:
                    if time.monotonic() >= deadline:
                        os.close(fd)
                        fd = None
                        _lock_timed_out(lock_path, timeout)  # may raise
                        break
                    time.sleep(0.02)
                except OSError:
                    os.close(fd)
                    fd = None
                    logger.debug("could not lock %s; continuing unlocked", lock_path)
                    break
        try:
            yield
        finally:
            if fd is not None:
                try:
                    fcntl.flock(fd, fcntl.LOCK_UN)
                finally:
                    os.close(fd)
        return
    # portable fallback: exclusive-create spin lock  # pragma: no cover
    deadline = time.monotonic() + timeout
    fd = None
    while True:
        try:
            fd = os.open(lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            break
        except FileExistsError:
            if time.monotonic() >= deadline:
                _lock_timed_out(lock_path, timeout)  # may raise
                break
            time.sleep(0.05)
        except OSError:
            logger.debug("could not lock %s; continuing unlocked", lock_path)
            break
    try:
        yield
    finally:
        if fd is not None:
            os.close(fd)
            try:
                os.unlink(lock_path)
            except OSError:
                pass


def quarantine(path: Union[str, Path]) -> Optional[Path]:
    """Move a corrupt artifact aside to ``<name>.corrupt``.

    Returns the quarantine path, or ``None`` when the rename failed
    (read-only directory) — callers must then build elsewhere.  The bad
    bytes are kept, not deleted, so corruption can be diagnosed later.
    """
    path = Path(path)
    target = path.with_name(path.name + ".corrupt")
    try:
        os.replace(path, target)
    except OSError:
        logger.warning("could not quarantine corrupt artifact %s", path)
        return None
    logger.warning("quarantined corrupt artifact %s -> %s", path, target.name)
    return target


def usable_cache_dir(preferred: Union[str, Path]) -> str:
    """``preferred`` if it can be created, else a temp-dir fallback.

    An unusable ``REPRO_KERNEL_CACHE_DIR`` (missing parent, file in the
    way, no permissions) must never break compilation — artifacts have
    to land somewhere.  The downgrade is logged, never silent.
    """
    preferred = str(preferred)
    try:
        os.makedirs(preferred, exist_ok=True)
        return preferred
    except OSError as exc:
        fallback = os.path.join(tempfile.gettempdir(), "repro_kernels")
        logger.warning(
            "cache directory %s unusable (%s); falling back to %s",
            preferred, exc, fallback,
        )
        os.makedirs(fallback, exist_ok=True)
        return fallback


__all__ = [
    "logger",
    "ENV_BACKEND_FALLBACK",
    "ENV_GCC",
    "ENV_GCC_TIMEOUT",
    "ENV_MAX_CAPACITY",
    "ENV_IR_VERIFY",
    "ENV_STREAM_VERIFY",
    "ENV_SANITIZE",
    "ENV_PARALLEL",
    "ENV_WORKERS",
    "ENV_MP_START",
    "ENV_SUPERVISE",
    "ENV_KERNEL_DEADLINE",
    "ENV_KERNEL_MEM_MB",
    "ENV_STRICT_LOCKS",
    "ENV_BREAKER_THRESHOLD",
    "ENV_BREAKER_BACKOFF",
    "ENV_POOL",
    "ENV_POOL_WORKERS",
    "ENV_POOL_WARM",
    "ENV_POOL_IDLE_TTL",
    "ENV_SHM_THRESHOLD",
    "ENV_STRICT_ENV",
    "ENV_TUNE",
    "ENV_TUNE_CACHE_DIR",
    "ENV_TUNE_CALIBRATE",
    "ENV_DURABLE",
    "ENV_JOB_DIR",
    "ENV_MEM_BUDGET_MB",
    "ENV_FAULT",
    "ENV_BREAKER_TTL",
    "env_int",
    "env_float",
    "env_flag",
    "strict_env",
    "KNOWN_SANITIZERS",
    "KNOWN_EXECUTORS",
    "DEFAULT_GCC_TIMEOUT",
    "DEFAULT_KERNEL_DEADLINE",
    "DEFAULT_BREAKER_THRESHOLD",
    "DEFAULT_BREAKER_BACKOFF",
    "DEFAULT_BREAKER_TTL",
    "DEFAULT_POOL_IDLE_TTL",
    "DEFAULT_SHM_THRESHOLD",
    "parallel_backend",
    "worker_count",
    "mp_start_method",
    "supervise_mode",
    "kernel_deadline",
    "kernel_mem_mb",
    "strict_locks",
    "breaker_threshold",
    "breaker_backoff",
    "pool_enabled",
    "pool_workers",
    "pool_warm_enabled",
    "pool_idle_ttl",
    "shm_threshold",
    "durable_enabled",
    "job_dir_env",
    "mem_budget_mb",
    "breaker_ttl",
    "fault_point",
    "reset_fault_counters",
    "signal_name",
    "fallback_enabled",
    "tune_mode",
    "ir_verify_enabled",
    "stream_verify_enabled",
    "sanitize_modes",
    "toolchain",
    "toolchain_available",
    "reset_probe_cache",
    "gcc_timeout",
    "max_auto_capacity",
    "is_transient",
    "atomic_write_bytes",
    "atomic_write_text",
    "file_lock",
    "quarantine",
    "usable_cache_dir",
]
