"""The Etch compiler (Section 7), reimplemented in Python.

The pipeline mirrors Figure 1 of the paper:

1. a contraction expression over ℒ, with each variable bound to a
   concrete tensor format (:mod:`repro.compiler.lower`),
2. is translated to *syntactic indexed streams* — indexed streams whose
   components are program fragments (:mod:`repro.compiler.sstream`,
   Figure 13/14),
3. which the destination-passing ``compile`` function (Figure 15/16)
   lowers to a loop nest in the small imperative language **P**
   (:mod:`repro.compiler.ir`, Figure 11),
4. which is emitted as C (compiled with gcc, like the paper's Clang
   -O3 pipeline) or as Python, or executed directly by the reference
   interpreter (:mod:`repro.compiler.interp`).
"""

from repro.compiler.ir import (
    E,
    EAccess,
    EBinop,
    ECall,
    ECond,
    ELit,
    EUnop,
    EVar,
    NameGen,
    Op,
    P,
    PAssign,
    PComment,
    PIf,
    PSeq,
    PSkip,
    PStore,
    PWhile,
    TBOOL,
    TFLOAT,
    TINT,
)
from repro.compiler.cache import (
    CacheStats,
    KernelCache,
    kernel_cache,
    kernel_cache_key,
)
from repro.compiler.kernel import KernelBuilder, compile_kernel
from repro.compiler.resilience import (
    fallback_enabled,
    gcc_timeout,
    logger,
    toolchain,
    toolchain_available,
)
from repro.errors import (
    BackendUnavailableError,
    CacheCorruptionError,
    CapacityError,
    CompileError,
    ReproError,
    ShapeError,
)
from repro.compiler.opt import (
    DEFAULT_OPT_LEVEL,
    eliminate_common_subexprs,
    eliminate_dead_stores,
    hoist_loop_invariants,
    optimize,
    propagate_copies,
    simplify,
)
from repro.compiler.scalars import ScalarOps, scalar_ops_for

__all__ = [
    "E",
    "EVar",
    "ELit",
    "EAccess",
    "EBinop",
    "EUnop",
    "ECond",
    "ECall",
    "Op",
    "P",
    "PSeq",
    "PWhile",
    "PIf",
    "PSkip",
    "PAssign",
    "PStore",
    "PComment",
    "NameGen",
    "TINT",
    "TFLOAT",
    "TBOOL",
    "ScalarOps",
    "scalar_ops_for",
    "KernelBuilder",
    "compile_kernel",
    "optimize",
    "simplify",
    "propagate_copies",
    "eliminate_dead_stores",
    "eliminate_common_subexprs",
    "hoist_loop_invariants",
    "DEFAULT_OPT_LEVEL",
    "kernel_cache",
    "kernel_cache_key",
    "KernelCache",
    "CacheStats",
    "ReproError",
    "CompileError",
    "BackendUnavailableError",
    "CacheCorruptionError",
    "CapacityError",
    "ShapeError",
    "logger",
    "fallback_enabled",
    "toolchain",
    "toolchain_available",
    "gcc_timeout",
]
