"""Lowering ℒ to syntactic indexed streams (the first arrow of Figure 1).

This mirrors the runtime stream semantics
(:mod:`repro.lang.stream_semantics`) constructor for constructor, but
produces :class:`~repro.compiler.sstream.SStream` program fragments
instead of runtime automata.  Almost all of the compiler's work happens
here, in library code implementing the stream constructors — the
paper's "key organizing principle" (Section 3).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Mapping, Optional, Union

from repro.compiler.formats import FunctionInput, TensorInput
from repro.compiler.ir import ELit, NameGen, ilit
from repro.compiler.scalars import ScalarOps
from repro.compiler.sstream import (
    SStream,
    Value,
    deep_contract,
    deep_expand,
    is_sstream,
    sadd,
    smul,
)
from repro.krelation.schema import Schema, ShapeError
from repro.lang.ast import (
    Add,
    Expand,
    Expr,
    Lit,
    Mul,
    Rename,
    Sum,
    Var,
)
from repro.lang.typing import TypeContext, elaborate
from repro.streams.base import STAR

InputBinding = Union[TensorInput, FunctionInput]


def lower(
    expr: Expr,
    ctx: TypeContext,
    inputs: Mapping[str, InputBinding],
    ops: ScalarOps,
    ng: NameGen,
    search: str = "linear",
    attr_dims: Optional[Mapping[str, int]] = None,
    locate: bool = True,
) -> Value:
    """Lower a contraction expression to a syntactic stream.

    ``attr_dims`` supplies dimensions for attributes introduced by ⇑
    that must be iterated finitely (those appearing in the output).
    ``locate=False`` disables the random-access optimization in
    products (pure co-iteration, for ablation).
    """
    core = elaborate(expr, ctx)
    attr_dims = dict(attr_dims or {})
    return _lower(core, ctx, inputs, ops, ng, search, attr_dims, locate)


def _lower(expr, ctx, inputs, ops, ng, search, attr_dims, locate=True) -> Value:
    if isinstance(expr, Var):
        try:
            binding = inputs[expr.name]
        except KeyError:
            raise ShapeError(f"variable {expr.name!r} has no input binding") from None
        want = ctx.schema.sort_shape(binding.attrs)
        if tuple(binding.attrs) != want:
            raise ShapeError(
                f"input {expr.name!r} level order {binding.attrs} violates the "
                f"global attribute ordering {want}; repack the tensor"
            )
        return binding.sstream(ng, search=search)
    if isinstance(expr, Lit):
        value = expr.value
        if not ops.semiring.is_element(value):
            value = ops.semiring.from_int(value)
        return ELit(value, ops.type)
    if isinstance(expr, Mul):
        return smul(
            _lower(expr.left, ctx, inputs, ops, ng, search, attr_dims, locate),
            _lower(expr.right, ctx, inputs, ops, ng, search, attr_dims, locate),
            ops,
            ng if locate else None,
        )
    if isinstance(expr, Add):
        return sadd(
            _lower(expr.left, ctx, inputs, ops, ng, search, attr_dims, locate),
            _lower(expr.right, ctx, inputs, ops, ng, search, attr_dims, locate),
            ops,
            ng,
        )
    if isinstance(expr, Sum):
        return deep_contract(
            _lower(expr.body, ctx, inputs, ops, ng, search, attr_dims, locate),
            expr.attr, ng,
        )
    if isinstance(expr, Expand):
        body = _lower(expr.body, ctx, inputs, ops, ng, search, attr_dims, locate)
        dim = attr_dims.get(expr.attr)
        attribute = ctx.schema.attribute(expr.attr)
        if dim is None and attribute.domain is not None:
            dim = len(attribute.domain)
        return deep_expand(
            body,
            expr.attr,
            ctx.schema.position,
            ng,
            dim=None if dim is None else ilit(dim),
        )
    if isinstance(expr, Rename):
        body = _lower(expr.body, ctx, inputs, ops, ng, search, attr_dims, locate)
        return _srename(body, expr.mapping, ctx.schema)
    raise ShapeError(f"not a core contraction expression: {expr!r}")


def _srename(s: Value, mapping: Mapping[str, str], schema: Schema) -> Value:
    if not is_sstream(s):
        return s
    new_shape = tuple(mapping.get(a, a) for a in s.shape)
    if schema.sort_shape(new_shape) != new_shape:
        raise ShapeError(
            f"rename {dict(mapping)} reorders levels {s.shape} -> {new_shape}; "
            "the compiler cannot transpose in place — materialize a temporary "
            "in the new order first"
        )
    attr = s.attr if s.attr is STAR else mapping.get(s.attr, s.attr)
    locate = None
    if s.locate is not None:
        old_locate = s.locate
        locate = lambda i: _srename(old_locate(i), mapping, schema)
    return replace(
        s,
        attr=attr,
        shape=new_shape,
        value=_srename(s.value, mapping, schema),
        locate=locate,
    )
