"""Two-tier kernel build cache.

Tier 1 is an in-memory memo from a canonical build key to the finished
:class:`~repro.compiler.kernel.Kernel`, so loops that rebuild an
identical kernel (benchmark harnesses, repeated ``compile_kernel``
calls) get the compiled artifact back without re-running
lower → compile → optimize → codegen.

Tier 2 generalizes the shared-object cache in ``codegen_c._build`` to
every source-emitting backend: the emitted source plus the metadata
needed to reconstruct a kernel object (params, declarations, workspace
dim) is written to a JSON file keyed by the same canonical key.  A
fresh process can then skip lowering and optimization entirely and go
straight to backend construction — which for the C backend also hits
the existing source-hash ``.so`` cache, so no compiler is invoked.

The canonical key hashes: a cache format version, the contraction
expression (structural repr), the signature of every input spec, the
output spec signature, the semiring and value type, backend, search
strategy, locate flag, opt level, and vectorize flag.  User-defined
``Op``s are identified *by name* in the key; two different ops sharing
a name and type signature would collide, so kernels whose IR contains
``ECall``s are never written to the disk tier (their Python callables
cannot be serialized anyway) and are memoized in memory only.

The disk tier is crash-safe and self-verifying: payloads are published
with write-to-temp + ``os.replace`` under a per-key file lock, carry a
sha256 checksum over the canonical JSON body, and a corrupt or
truncated entry is *quarantined* (renamed to ``<name>.corrupt``) and
rebuilt — logged via the ``repro`` logger, never a crash and never a
silent wrong answer.

Environment variables:

* ``REPRO_KERNEL_CACHE_DIR`` — directory for the disk tier (default
  ``$TMPDIR/repro_kernels``, shared with the ``.so`` cache);
* ``REPRO_KERNEL_CACHE=0`` (or ``off``/``no``/``false``) — disable the
  disk tier (the in-memory memo is controlled per-builder with
  ``KernelBuilder(cache=False)``).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from repro.compiler import resilience
from repro.compiler.resilience import logger

CACHE_VERSION = 2  # v2: checksummed payload envelope

ENV_CACHE_DIR = "REPRO_KERNEL_CACHE_DIR"
ENV_CACHE = "REPRO_KERNEL_CACHE"


def default_cache_dir() -> Path:
    """The disk-tier directory (also used for cached ``.so`` files)."""
    env = os.environ.get(ENV_CACHE_DIR)
    if env:
        return Path(env)
    return Path(tempfile.gettempdir()) / "repro_kernels"


def disk_cache_enabled() -> bool:
    return os.environ.get(ENV_CACHE, "1").lower() not in ("0", "off", "no", "false")


@dataclass
class CacheStats:
    """Hit/miss counters, exposed for tests and benchmark harnesses."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    def reset(self) -> None:
        self.memory_hits = 0
        self.disk_hits = 0
        self.misses = 0


class KernelCache:
    """The process-wide kernel cache (both tiers). Thread-safe."""

    def __init__(self, cache_dir: Optional[Path] = None) -> None:
        self._lock = threading.Lock()
        self._memo: Dict[str, Any] = {}
        self._cache_dir = cache_dir
        self.stats = CacheStats()

    # -- tier 1: in-memory -------------------------------------------------
    def lookup(self, key: str) -> Any:
        with self._lock:
            kernel = self._memo.get(key)
            if kernel is not None:
                self.stats.memory_hits += 1
            return kernel

    def store(self, key: str, kernel: Any) -> None:
        with self._lock:
            self._memo[key] = kernel

    def record_miss(self) -> None:
        with self._lock:
            self.stats.misses += 1

    # -- tier 2: on-disk source/metadata ----------------------------------
    def cache_dir(self) -> Path:
        return self._cache_dir if self._cache_dir is not None else default_cache_dir()

    def _payload_path(self, key: str) -> Path:
        return self.cache_dir() / f"kmeta_{key[:24]}.json"

    def load_payload(self, key: str) -> Optional[Dict[str, Any]]:
        """Return the stored build payload for ``key``, or None.

        A missing entry and a stale version are silent misses; a
        corrupt entry (unparseable JSON, checksum mismatch, missing
        envelope fields) is quarantined and logged, then treated as a
        miss so the caller rebuilds.
        """
        if not disk_cache_enabled():
            return None
        path = self._payload_path(key)
        try:
            text = path.read_text()
        except FileNotFoundError:
            return None
        except OSError as exc:
            logger.warning("kernel cache entry %s unreadable (%s)", path, exc)
            return None
        try:
            record = json.loads(text)
            if isinstance(record, dict) and "payload" not in record and "version" in record:
                return None  # pre-checksum (v1) entry: stale, plain miss
            payload = record["payload"]
            digest = record["sha256"]
        except (ValueError, TypeError, KeyError) as exc:
            logger.warning(
                "corrupt kernel cache entry %s (%s: %s); quarantining",
                path, type(exc).__name__, exc,
            )
            resilience.quarantine(path)
            return None
        if digest != _payload_digest(payload):
            logger.warning(
                "kernel cache entry %s failed its checksum; quarantining", path
            )
            resilience.quarantine(path)
            return None
        if payload.get("version") != CACHE_VERSION or payload.get("key") != key:
            return None  # stale format or hash-prefix collision: plain miss
        with self._lock:
            self.stats.disk_hits += 1
        return payload

    def store_payload(self, key: str, payload: Dict[str, Any]) -> None:
        if not disk_cache_enabled():
            return
        payload = dict(payload, version=CACHE_VERSION, key=key)
        record = {"sha256": _payload_digest(payload), "payload": payload}
        path = self._payload_path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            with resilience.file_lock(path):
                resilience.atomic_write_text(path, json.dumps(record))
        except OSError as exc:
            # the disk tier is best-effort, but skipping it is not silent
            logger.warning("could not store kernel cache entry %s (%s)", path, exc)

    def invalidate_payload(self, key: str) -> None:
        """Drop ``key``'s disk entry (quarantine it for post-mortem)."""
        path = self._payload_path(key)
        if path.exists():
            resilience.quarantine(path)

    def clear(self, disk: bool = False) -> None:
        with self._lock:
            self._memo.clear()
            self.stats.reset()
        if disk:
            try:
                for f in self.cache_dir().glob("kmeta_*.json"):
                    f.unlink()
            except OSError:
                pass


def _payload_digest(payload: Any) -> str:
    """sha256 over the canonical JSON body (key-sorted, so the digest
    is independent of dict insertion order)."""
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()
    ).hexdigest()


#: the default process-wide cache used by :class:`KernelBuilder`
kernel_cache = KernelCache()


# ----------------------------------------------------------------------
# canonical build key
# ----------------------------------------------------------------------
def _spec_signature(spec: Any) -> tuple:
    """A canonical, hashable signature of an input spec."""
    # FunctionInput (check first: it has no `formats`)
    if hasattr(spec, "op"):
        return (
            "function",
            spec.name,
            tuple(spec.attrs),
            spec.op.name,
            tuple(spec.op.arg_types),
            spec.op.ret_type,
            tuple(spec.dims),
        )
    # TensorInput
    if hasattr(spec, "ops"):
        return (
            "tensor",
            spec.name,
            tuple(spec.attrs),
            tuple(spec.formats),
            spec.ops.semiring.name,
            spec.ops.type,
        )
    return ("opaque", repr(spec))


def kernel_cache_key(
    expr: Any,
    specs: Dict[str, Any],
    output: Any,
    *,
    semiring: Any,
    backend: str,
    search: str,
    locate: bool,
    opt_level: int,
    vectorize: bool,
    name: str,
    attr_dims: Optional[Dict[str, int]] = None,
    sanitize: Tuple[str, ...] = (),
) -> str:
    """sha256 of the canonical description of one kernel build.

    ``sanitize`` participates because the requested sanitizers change
    the generated artifact (ASan/UBSan build flags for C, the checked
    bounds-verifying emitter for Python) — a sanitized and an
    unsanitized build of the same kernel must never share a cache slot.
    """
    parts = (
        CACHE_VERSION,
        repr(expr),
        tuple(_spec_signature(specs[k]) for k in sorted(specs)),
        repr(output),  # OutputSpec is a frozen dataclass (or None): repr is canonical
        semiring.name,
        backend,
        search,
        bool(locate),
        int(opt_level),
        bool(vectorize),
        name,
        tuple(sorted((attr_dims or {}).items())),
        tuple(sanitize),
    )
    return hashlib.sha256(repr(parts).encode()).hexdigest()
