"""Kernel building: expression + formats → runnable compiled kernel.

:func:`compile_kernel` runs the full Etch pipeline of Figure 1 — lower
the contraction expression to syntactic streams, emit the loop nest
with the destination-passing compile function, generate C (or Python),
build, and wrap the result as a :class:`Kernel` that marshals
:class:`~repro.data.Tensor` inputs and allocates/assembles outputs.
"""

from __future__ import annotations

import dataclasses
import math
import re
import threading
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.compiler import codegen_c, codegen_py, resilience
from repro.compiler.analysis.intervals import lint_bounds
from repro.compiler.analysis.streamprops import verify_expr
from repro.compiler.cache import kernel_cache, kernel_cache_key
from repro.compiler.resilience import logger
from repro.compiler.compile_fn import compile_stream
from repro.compiler.dest import (
    DensePosDest,
    DenseDest,
    ScalarDest,
    SparseInnerDest,
    SparseLeafDest,
    WorkspaceLeafDest,
)
from repro.compiler.formats import FunctionInput, Param, TensorInput
from repro.compiler.interp import InterpKernel
from repro.compiler.ir import EVar, NameGen, PSeq, PStore, TINT, ilit
from repro.compiler.lower import lower
from repro.compiler.opt import DEFAULT_OPT_LEVEL, optimize
from repro.compiler.scalars import ScalarOps, scalar_ops_for
from repro.compiler.sstream import is_sstream
from repro.streams.base import STAR
from repro.data.tensor import Tensor
from repro.errors import (
    BackendUnavailableError,
    CapacityError,
    CompileError,
    IRVerifyError,
    KernelCrashError,
    KernelTimeoutError,
    ShapeError,
)
from repro.lang.ast import Expr
from repro.lang.typing import TypeContext, shape_of
from repro.semirings.base import Semiring

_IDENT = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")

#: cache keys whose expressions already passed stream-property
#: verification in this process — the static pass is pure over the key's
#: inputs, so a warm build skips straight past it (one set lookup),
#: which is what amortizes the verifier behind the build cache
_VERIFIED_KEYS: set = set()

# CapacityError historically lived here; it now sits in the shared
# taxonomy (repro.errors) and is re-exported for existing importers.


@dataclass(frozen=True)
class OutputSpec:
    """The output tensor's attrs (in global order), formats and dims."""

    attrs: Tuple[str, ...]
    formats: Tuple[str, ...]
    dims: Tuple[int, ...]

    def __post_init__(self):
        if not (len(self.attrs) == len(self.formats) == len(self.dims)):
            raise ValueError("attrs, formats, dims must have equal length")
        supported = {
            (),
            ("dense",),
            ("sparse",),
            ("dense", "dense"),
            ("dense", "sparse"),
            ("sparse", "sparse"),
            ("dense", "dense", "dense"),
        }
        if tuple(self.formats) not in supported and not all(
            f == "dense" for f in self.formats
        ):
            raise ValueError(
                f"unsupported output format stack {self.formats}; supported: "
                "scalar, any all-dense stack, sparse vector, CSR, DCSR"
            )


InputLike = Union[Tensor, TensorInput, FunctionInput]


@dataclass(frozen=True)
class KernelRecipe:
    """Everything needed to rebuild a kernel in another process.

    The parallel runtime's process workers never receive the compiled
    kernel itself (a ctypes handle to a ``.so`` cannot be pickled, and
    shipping generated code would bypass the cache).  They receive this
    recipe — plain picklable data — and replay ``KernelBuilder.build``,
    which lands on the two-tier kernel cache: the in-memory memo within
    a worker, the on-disk source payload (and the ``.so`` cache) across
    workers, so a warm-cache rebuild never re-lowers or re-compiles.

    Only kernels whose inputs are all :class:`TensorInput` get a recipe;
    :class:`FunctionInput` bindings hold arbitrary Python callables and
    are flagged by ``KernelBuilder`` with ``recipe = None`` (the process
    executor then downgrades to threads).
    """

    expr: Expr
    ctx: TypeContext
    input_structure: Tuple[Tuple[str, Tuple[str, ...], Tuple[str, ...]], ...]
    output: Optional[OutputSpec]
    semiring: Semiring
    backend: str
    search: str
    locate: bool
    opt_level: int
    vectorize: Optional[bool]
    name: str
    attr_dims: Tuple[Tuple[str, int], ...]

    def build(self, cache: bool = True) -> "Kernel":
        """Rebuild the kernel (hits the two-tier cache when warm)."""
        builder = KernelBuilder(
            self.ctx, self.semiring, backend=self.backend, search=self.search,
            locate=self.locate, opt_level=self.opt_level,
            vectorize=self.vectorize, cache=cache,
        )
        specs: Dict[str, Union[TensorInput, FunctionInput]] = {
            var: TensorInput(var, attrs, formats, builder.ops)
            for var, attrs, formats in self.input_structure
        }
        return builder.build(
            self.expr, specs, self.output, name=self.name,
            attr_dims=dict(self.attr_dims),
        )


class Kernel:
    """A compiled contraction kernel."""

    def __init__(
        self,
        name: str,
        backend_kernel,
        params: Sequence[Param],
        input_specs: Dict[str, Union[TensorInput, FunctionInput]],
        output: Optional[OutputSpec],
        ops: ScalarOps,
        loop_ir,
        decls: Sequence[EVar] = (),
    ) -> None:
        self.name = name
        self._kernel = backend_kernel
        self.params = list(params)
        self.input_specs = input_specs
        self.output = output
        self.ops = ops
        self.loop_ir = loop_ir
        #: the compiler-declared locals of ``loop_ir`` (for the verifier)
        self.decls = list(decls)
        #: dimension of the dense workspace for the last output level,
        #: or None when the output is assembled in iteration order
        self.ws_dim: Optional[int] = None
        #: the capacity lint's verdict on every store into a
        #: capacity-managed output array (empty for dense/scalar
        #: outputs and for kernels restored from the disk cache)
        self.capacity_findings: list = []
        #: picklable rebuild instructions for process workers, attached
        #: by :class:`KernelBuilder` (None when an input is a
        #: :class:`FunctionInput`)
        self.recipe: Optional[KernelRecipe] = None
        #: default executor for :meth:`run` ("serial" | "thread" |
        #: "process"), set from ``compile_kernel(parallel=...)``; None
        #: defers to the ``REPRO_PARALLEL`` environment knob
        self.parallel: Optional[str] = None
        self.workers: Optional[int] = None
        #: the canonical build-cache key (None when caching is off);
        #: also keys the supervised-execution circuit breaker
        self.cache_key: Optional[str] = None
        #: the autotuner's verdict when this kernel was built through
        #: ``tune="auto"`` (a :class:`repro.autotune.TuneResult`); None
        #: for untuned builds
        self.tune_decision = None
        #: per-kernel supervision default: True/False force it on/off
        #: for every run; None defers to ``REPRO_SUPERVISE`` and then
        #: the auto policy (C-backed ``needs_guard`` kernels)
        self.supervised: Optional[bool] = None
        #: per-shard timing/volume stats from the last sharded run,
        #: behind a lock (see the ``last_shard_stats`` property)
        self._stats_lock = threading.Lock()
        self._last_shard_stats: List = []
        #: lazily built pure-Python twin served while the circuit
        #: breaker is open
        self._fallback_lock = threading.Lock()
        self._fallback: Optional["Kernel"] = None

    @property
    def last_shard_stats(self) -> List:
        """Per-shard stats of the most recent sharded run (a copy).

        Reads and writes go through one lock so concurrent
        :meth:`run_sharded` calls on a shared kernel can never expose a
        half-written list; each call's own stats are available
        race-free via ``run_sharded(..., stats_out=[])``.
        """
        with self._stats_lock:
            return list(self._last_shard_stats)

    @last_shard_stats.setter
    def last_shard_stats(self, stats) -> None:
        with self._stats_lock:
            self._last_shard_stats = list(stats)

    @property
    def needs_guard(self) -> bool:
        """Whether some output store could not be statically proven
        within its capacity contract — the signal that
        ``run(auto_grow=True)`` must rely on runtime guards alone."""
        return any(not f.proven for f in self.capacity_findings)

    @property
    def source(self) -> str:
        """The generated kernel source (C or Python, per backend)."""
        return self._kernel.source

    def run(
        self,
        tensors: Mapping[str, Tensor],
        capacity: Optional[int] = None,
        *,
        auto_grow: bool = False,
        max_capacity: Optional[int] = None,
        parallel: Optional[Union[str, bool]] = None,
        workers: Optional[int] = None,
        shards: Optional[int] = None,
        supervised: Optional[bool] = None,
        deadline: Optional[float] = None,
    ) -> Union[Tensor, float, int, bool]:
        """Execute on concrete tensors; returns the output tensor (or a
        scalar for shape-∅ kernels).

        ``deadline`` is a per-call wall-clock budget in seconds.  It is
        honored wherever execution is crash-isolated — the fork
        supervisor and the worker pool kill the child and raise
        :class:`~repro.errors.KernelTimeoutError` when the budget runs
        out — and overrides the ambient ``REPRO_KERNEL_DEADLINE``
        default for this call only.  An unsupervised in-process run has
        no one to enforce it, so there it is advisory (ignored).  The
        serving layer threads each request's remaining budget through
        here so a queue-delayed request never runs longer than its
        client is still waiting.

        ``supervised=True`` runs the kernel in an isolated,
        resource-capped child process (see
        :mod:`repro.runtime.supervisor`): a segfault or runaway loop
        becomes a typed :class:`~repro.errors.KernelCrashError` /
        :class:`~repro.errors.KernelTimeoutError` instead of taking the
        host down, and a kernel that keeps failing is quarantined by a
        circuit breaker that transparently serves the pure-Python
        backend until a backoff re-probe succeeds.  ``None`` defers to
        the kernel's own ``supervised`` stamp, then ``REPRO_SUPERVISE``,
        then the auto policy: C-backed kernels whose output stores the
        capacity lint could not prove safe (``needs_guard``) are
        supervised automatically.

        ``parallel`` selects a shard executor (``"serial"``,
        ``"thread"``, ``"process"``, ``"pool"``); ``None`` defers first
        to the kernel's compiled-in default and then to the
        ``REPRO_PARALLEL`` environment knob, and ``False`` forces a
        single-shard in-process run regardless of either.  Sharded
        execution partitions the operands along one index, runs this
        same kernel per shard, and ⊕-merges the partials (see
        :mod:`repro.runtime`); when no index is splittable it quietly
        degrades to the single run.  The ``pool`` executor keeps this
        kernel resident in persistent workers and ships operand buffers
        through shared memory instead of pickle (see
        :mod:`repro.runtime.pool` / :mod:`repro.runtime.shm`) — the
        fast path for repeated runs.

        With ``auto_grow=True`` an undersized sparse output no longer
        raises: the run is retried with geometrically doubled capacity
        (jumping straight to the reported need when it is larger) up to
        ``max_capacity`` — default ``REPRO_MAX_CAPACITY`` or the dense
        size of the output, whichever the caller supplies.  Each retry
        is logged via the ``repro`` logger.  Generated kernels bound
        every write by the allocated capacity, so an overflowing run is
        safe — only its size counters run past the end.
        """
        if parallel is None:
            backend_choice = self.parallel or resilience.parallel_backend()
        elif parallel is False:
            backend_choice = None
        else:
            backend_choice = parallel
        if backend_choice:
            return self.run_sharded(
                tensors,
                capacity=capacity,
                auto_grow=auto_grow,
                max_capacity=max_capacity,
                executor=backend_choice,
                workers=workers if workers is not None else self.workers,
                shards=shards,
                supervised=supervised,
                deadline=deadline,
            )
        return self._run_guarded(
            tensors, capacity, auto_grow=auto_grow, max_capacity=max_capacity,
            supervised=supervised, deadline=deadline,
        )

    # ------------------------------------------------------------------
    # supervised execution (repro.runtime.supervisor + breaker)
    # ------------------------------------------------------------------
    def _resolve_supervised(self, supervised: Optional[bool] = None) -> bool:
        """Call argument → kernel stamp → ``REPRO_SUPERVISE`` → auto
        policy (supervise C-backed kernels the capacity lint could not
        prove safe; the Python backend cannot corrupt the host)."""
        if supervised is None:
            supervised = self.supervised
        if supervised is not None:
            return bool(supervised)
        env = resilience.supervise_mode()
        if env is not None:
            return env
        return self.needs_guard and isinstance(self._kernel, codegen_c.CKernel)

    def _run_guarded(
        self,
        tensors: Mapping[str, Tensor],
        capacity: Optional[int] = None,
        *,
        auto_grow: bool = False,
        max_capacity: Optional[int] = None,
        supervised: Optional[bool] = None,
        deadline: Optional[float] = None,
    ) -> Union[Tensor, float, int, bool]:
        """The single-run entry that applies the supervision policy.

        ``deadline`` reaches the child only on the supervised path;
        in-process runs cannot be interrupted, so it is dropped there.
        """
        if not self._resolve_supervised(supervised):
            return self._run_single(
                tensors, capacity, auto_grow=auto_grow,
                max_capacity=max_capacity,
            )
        from repro.runtime import supervisor

        if not supervisor.can_supervise(self):
            logger.warning(
                "kernel %r: supervision requested but unavailable here "
                "(no fork and no rebuild recipe); running in-process",
                self.name,
            )
            return self._run_single(
                tensors, capacity, auto_grow=auto_grow,
                max_capacity=max_capacity,
            )
        return self._run_supervised(
            tensors, capacity, auto_grow=auto_grow, max_capacity=max_capacity,
            deadline=deadline,
        )

    def _run_supervised(
        self,
        tensors: Mapping[str, Tensor],
        capacity: Optional[int],
        *,
        auto_grow: bool,
        max_capacity: Optional[int],
        deadline: Optional[float] = None,
    ) -> Union[Tensor, float, int, bool]:
        """One supervised run, routed through the circuit breaker.

        closed → run supervised; a crash/timeout raises its typed error
        and counts toward the breaker threshold.  open → serve the
        pure-Python fallback without forking at all.  half-open → this
        call is the re-probe; success closes the breaker, failure
        re-opens it (with doubled backoff) and degrades to the fallback
        transparently — once callers have been getting fallback service,
        a probe failure is the breaker's business, not theirs.

        Under ``REPRO_POOL=1`` the supervised run itself is served by
        the persistent worker pool (rlimits paid once per worker, the
        kernel resident, operands over shared memory) instead of a
        fork-per-call child; the typed errors — and therefore the
        breaker transitions driven here — are identical either way.
        """
        from repro.runtime import breaker as breaker_mod
        from repro.runtime.supervisor import run_supervised

        key = self.cache_key or f"uncached:{self.name}"
        brk = breaker_mod.breaker
        state = brk.try_probe(key)
        if state == breaker_mod.OPEN:
            return self._run_fallback(
                tensors, capacity, auto_grow=auto_grow,
                max_capacity=max_capacity,
            )
        probe = state == breaker_mod.HALF_OPEN
        if probe:
            logger.warning(
                "kernel %r: circuit breaker half-open; re-probing the "
                "supervised kernel", self.name,
            )
        resolved = False
        try:
            result = run_supervised(
                self, tensors, capacity, auto_grow=auto_grow,
                max_capacity=max_capacity, deadline=deadline,
            )
            resolved = True
            brk.record_success(key, name=self.name, probe=probe)
            return result
        except (KernelCrashError, KernelTimeoutError) as exc:
            resolved = True
            brk.record_failure(key, name=self.name, probe=probe)
            if probe:
                return self._run_fallback(
                    tensors, capacity, auto_grow=auto_grow,
                    max_capacity=max_capacity, cause=exc,
                )
            raise
        finally:
            if probe and not resolved:
                # a typed child error (CapacityError, ShapeError, ...)
                # neither closes nor re-opens the breaker, but the
                # probe claim must not stay wedged in flight
                brk.release_probe(key)

    def _fallback_kernel(self) -> Optional["Kernel"]:
        """The memoized pure-Python twin of this kernel (None when there
        is no rebuild recipe to build it from)."""
        with self._fallback_lock:
            if self._fallback is None and self.recipe is not None:
                recipe = dataclasses.replace(
                    self.recipe, backend="python", vectorize=None
                )
                fb = recipe.build()
                if fb is self or fb._kernel is self._kernel:
                    # this kernel was already Python-backed, so the
                    # rebuild aliased it through the cache — serving a
                    # crashing kernel as its own fallback is useless;
                    # force a fresh (memoized here) build instead
                    fb = recipe.build(cache=False)
                # free-split shard clones carry shard-sized output dims
                if (
                    self.output is not None
                    and fb.output is not None
                    and tuple(fb.output.dims) != tuple(self.output.dims)
                ):
                    fb = fb.with_output_dims(self.output.dims)
                fb.supervised = False  # the fallback must never recurse
                self._fallback = fb
            return self._fallback

    def _run_fallback(
        self,
        tensors: Mapping[str, Tensor],
        capacity: Optional[int],
        *,
        auto_grow: bool,
        max_capacity: Optional[int],
        cause: Optional[BaseException] = None,
    ) -> Union[Tensor, float, int, bool]:
        """Serve one run from the pure-Python twin (breaker open)."""
        fb = self._fallback_kernel()
        if fb is None:
            if cause is not None:
                raise cause
            raise KernelCrashError(
                f"kernel {self.name!r}: circuit breaker is open and no "
                "Python fallback can be built (no rebuild recipe)"
            )
        logger.info(
            "kernel %r: serving the pure-Python fallback result "
            "(circuit breaker open)", self.name,
        )
        return fb._run_single(
            tensors, capacity, auto_grow=auto_grow, max_capacity=max_capacity
        )

    def _run_single(
        self,
        tensors: Mapping[str, Tensor],
        capacity: Optional[int] = None,
        *,
        auto_grow: bool = False,
        max_capacity: Optional[int] = None,
    ) -> Union[Tensor, float, int, bool]:
        """The unsharded execution path (also each shard's body)."""
        if auto_grow and self.capacity_findings:
            if self.needs_guard:
                unproven = [f for f in self.capacity_findings if not f.proven]
                logger.debug(
                    "kernel %r: %d output store(s) not statically proven "
                    "within capacity (first: %s); auto-grow relies on the "
                    "runtime guards alone",
                    self.name, len(unproven), unproven[0],
                )
            else:
                logger.debug(
                    "kernel %r: all %d output stores statically proven "
                    "within capacity; auto-grow retries are overflow-safe",
                    self.name, len(self.capacity_findings),
                )
        cap = capacity
        while True:
            env = self._marshal_inputs(tensors)
            self._allocate_output(env, cap)
            self._kernel(env)
            try:
                return self._assemble_output(env, {})
            except CapacityError as exc:
                if not auto_grow:
                    raise
                current = int(env.get("out_cap", 0))
                bound = self._grow_bound(max_capacity)
                if current >= bound:
                    raise CapacityError(
                        f"output needs {exc.needed} entries but the auto-grow "
                        f"bound is {bound}; raise max_capacity/"
                        f"{resilience.ENV_MAX_CAPACITY}",
                        needed=exc.needed,
                        capacity=current,
                    ) from exc
                cap = min(bound, max(current * 2, exc.needed or 0))
                logger.info(
                    "kernel %r: output capacity %d too small (needs >= %s); "
                    "retrying with capacity %d",
                    self.name, current, exc.needed, cap,
                )

    def _grow_bound(self, max_capacity: Optional[int]) -> int:
        """The auto-grow ceiling: caller argument, then the
        ``REPRO_MAX_CAPACITY`` environment override, then the dense size
        of the output (an undersized result can never need more)."""
        if max_capacity is not None:
            return int(max_capacity)
        env_bound = resilience.max_auto_capacity()
        if env_bound is not None:
            return env_bound
        out = self.output
        return int(np.prod(out.dims)) if out is not None and out.dims else 1

    # ------------------------------------------------------------------
    # sharded execution (repro.runtime)
    # ------------------------------------------------------------------
    def with_output_dims(self, dims: Sequence[int]) -> "Kernel":
        """A shallow clone whose :class:`OutputSpec` has ``dims``.

        Every output dimension is a *runtime* parameter of the compiled
        artifact (``out_dim*`` scalars / allocation sizes), so the clone
        shares the backend kernel object — no recompilation.  The shard
        runtime uses this to give each free-split shard a shard-sized
        output window.
        """
        if self.output is None:
            raise ShapeError("scalar kernels have no output dims to override")
        dims = tuple(int(d) for d in dims)
        if len(dims) != len(self.output.dims):
            raise ShapeError(
                f"expected {len(self.output.dims)} output dims, got {len(dims)}"
            )
        clone = Kernel(
            self.name, self._kernel, self.params, self.input_specs,
            OutputSpec(self.output.attrs, self.output.formats, dims),
            self.ops, self.loop_ir, decls=self.decls,
        )
        clone.ws_dim = self.ws_dim
        clone.capacity_findings = self.capacity_findings
        clone.recipe = self.recipe
        clone.cache_key = self.cache_key
        clone.supervised = self.supervised
        return clone

    def run_sharded(
        self,
        tensors: Mapping[str, Tensor],
        capacity: Optional[int] = None,
        *,
        auto_grow: bool = False,
        max_capacity: Optional[int] = None,
        executor: str = "serial",
        workers: Optional[int] = None,
        shards: Optional[int] = None,
        split_attr: Optional[str] = None,
        supervised: Optional[bool] = None,
        stats_out: Optional[List] = None,
        deadline: Optional[float] = None,
        durable: Optional[bool] = None,
        resume: Optional[str] = None,
        job_out: Optional[Dict[str, object]] = None,
    ) -> Union[Tensor, float, int, bool]:
        """Partition the operands, execute per shard, ⊕-merge.

        Delegates to :func:`repro.runtime.api.run_sharded`; falls back
        to the single-shard path when no split index qualifies.  Under
        supervision a crashing shard fails over to the pure-Python
        backend *for that shard only*, visible in the stats as
        ``worker="fallback"``.  ``stats_out`` (a caller-supplied list)
        receives this call's own :class:`~repro.runtime.api.ShardStat`
        records — the race-free alternative to ``last_shard_stats``
        when several threads share one kernel.

        ``durable=True`` (or ``REPRO_DURABLE=1``) checkpoints each
        completed shard to an on-disk job journal so an identical
        re-invocation after a crash resumes instead of restarting;
        ``resume`` pins the expected job id.  ``REPRO_MEM_BUDGET_MB``
        bounds resident partials by spilling to the same journal (see
        :mod:`repro.runtime.jobs` / :mod:`repro.runtime.governor`).
        """
        from repro.runtime.api import run_sharded as _run_sharded

        return _run_sharded(
            self, tensors, capacity=capacity, auto_grow=auto_grow,
            max_capacity=max_capacity, executor=executor, workers=workers,
            shards=shards, split_attr=split_attr, supervised=supervised,
            stats_out=stats_out, deadline=deadline, durable=durable,
            resume=resume, job_out=job_out,
        )

    def run_batch(
        self,
        runs: Sequence[Mapping[str, Tensor]],
        capacity: Optional[int] = None,
        *,
        auto_grow: bool = False,
        max_capacity: Optional[int] = None,
        executor: Optional[str] = None,
        workers: Optional[int] = None,
        deadline: Optional[float] = None,
    ) -> list:
        """Execute this kernel over many independent input bindings.

        The batch API for many small kernels: no sharding or merging,
        just the executor's bounded queue amortized across ``runs``.
        Results are returned in input order.
        """
        from repro.runtime.api import run_batch as _run_batch

        return _run_batch(
            self, runs, capacity=capacity, auto_grow=auto_grow,
            max_capacity=max_capacity, executor=executor, workers=workers,
            deadline=deadline,
        )

    def _marshal_inputs(self, tensors: Mapping[str, Tensor]) -> Dict[str, object]:
        env: Dict[str, object] = {}
        self._validate_dims(tensors)
        for name, spec in self.input_specs.items():
            if isinstance(spec, FunctionInput):
                continue
            tensor = tensors[name]
            _check_tensor(name, spec, tensor)
            for k, fmt in enumerate(spec.formats):
                if fmt == "sparse":
                    env[f"{name}_pos{k}"] = np.ascontiguousarray(tensor.pos[k], dtype=np.int64)
                    env[f"{name}_crd{k}"] = np.ascontiguousarray(tensor.crd[k], dtype=np.int64)
                else:
                    env[f"{name}_dim{k}"] = int(tensor.dims[k])
            env[f"{name}_vals"] = np.ascontiguousarray(
                tensor.vals, dtype=codegen_c.np_dtype(self.ops.type)
            )
        return env

    def _validate_dims(self, tensors: Mapping[str, Tensor]) -> None:
        """Every tensor (and the output) must agree on each attribute's
        dimension: generated kernels index located operands without
        bounds checks on the strength of this invariant."""
        seen: Dict[str, Tuple[int, str]] = {}
        items = []
        for name, spec in self.input_specs.items():
            if isinstance(spec, FunctionInput):
                continue
            tensor = tensors[name]
            items.append((name, tensor.attrs, tensor.dims))
        if self.output is not None:
            items.append(("output", self.output.attrs, self.output.dims))
        for name, attrs, dims in items:
            for attr, dim in zip(attrs, dims):
                if attr in seen and seen[attr][0] != int(dim):
                    other_dim, other_name = seen[attr]
                    raise ShapeError(
                        f"attribute {attr!r} has dimension {dim} in {name!r} "
                        f"but {other_dim} in {other_name!r}"
                    )
                seen[attr] = (int(dim), name)

    def bind(self, tensors: Mapping[str, Tensor], capacity: Optional[int] = None) -> "BoundKernel":
        """Pre-marshal the inputs and pre-allocate the outputs, returning
        a zero-overhead callable.  This matches the evaluation
        methodology of Section 8.2: data loaded and laid out in memory
        once, the prepared query executed repeatedly."""
        env = self._marshal_inputs(tensors)
        self._allocate_output(env, capacity)
        return BoundKernel(self, env)

    # ------------------------------------------------------------------
    def _allocate_output(self, env: Dict[str, object], capacity: Optional[int]):
        dtype = codegen_c.np_dtype(self.ops.type)
        zero = self.ops.semiring.zero
        out = self.output
        if out is None:
            env["out_vals"] = np.full(1, zero, dtype=dtype)
            return {}
        if all(f == "dense" for f in out.formats):
            size = int(np.prod(out.dims)) if out.dims else 1
            env["out_vals"] = np.full(size, zero, dtype=dtype)
            for k, d in enumerate(out.dims):
                env[f"out_dim{k}"] = int(d)
            return {}
        cap = capacity if capacity is not None else _default_capacity(out)
        if out.formats == ("sparse",):
            env["out_crd0"] = np.zeros(cap, dtype=np.int64)
            env["out_vals"] = np.full(cap, zero, dtype=dtype)
            env["out_size"] = np.zeros(1, dtype=np.int64)
            env["out_cap"] = cap
        elif out.formats == ("dense", "sparse"):
            env["out_dim0"] = int(out.dims[0])
            env["out_pos1"] = np.zeros(out.dims[0] + 1, dtype=np.int64)
            env["out_crd1"] = np.zeros(cap, dtype=np.int64)
            env["out_vals"] = np.full(cap, zero, dtype=dtype)
            env["out_size"] = np.zeros(1, dtype=np.int64)
            env["out_cap"] = cap
        elif out.formats == ("sparse", "sparse"):
            row_cap = min(out.dims[0], cap)
            env["out_crd0"] = np.zeros(row_cap, dtype=np.int64)
            env["out_pos1"] = np.zeros(row_cap + 1, dtype=np.int64)
            env["out_crd1"] = np.zeros(cap, dtype=np.int64)
            env["out_vals"] = np.full(cap, zero, dtype=dtype)
            env["out_size"] = np.zeros(2, dtype=np.int64)
            env["out_cap"] = cap
            env["out_row_cap"] = row_cap
        else:  # pragma: no cover - rejected by OutputSpec
            raise ShapeError(f"unsupported output formats {out.formats}")
        if self.ws_dim is not None:
            env["out_ws_vals"] = np.full(self.ws_dim, zero, dtype=dtype)
            env["out_ws_mask"] = np.zeros(self.ws_dim, dtype=np.int64)
            env["out_ws_list"] = np.zeros(self.ws_dim, dtype=np.int64)
        return {}

    def _assemble_output(self, env: Dict[str, object], _marker):
        out = self.output
        if out is None:
            return env["out_vals"][0].item()
        sr = self.ops.semiring
        if all(f == "dense" for f in out.formats):
            return Tensor(out.attrs, out.formats, out.dims, {}, {}, env["out_vals"], sr)
        sizes = env["out_size"]
        if "out_cap" in env:
            leaf_size = int(sizes[-1]) if out.formats == ("sparse", "sparse") else int(sizes[0])
            if leaf_size > env["out_cap"]:
                raise CapacityError(
                    f"output needs {leaf_size} entries but capacity is "
                    f"{env['out_cap']}; re-run with a larger capacity=",
                    needed=leaf_size,
                    capacity=int(env["out_cap"]),
                )
        if "out_row_cap" in env and out.formats == ("sparse", "sparse"):
            if int(sizes[0]) > env["out_row_cap"]:
                raise CapacityError(
                    f"output needs {int(sizes[0])} rows but row capacity is "
                    f"{env['out_row_cap']}; re-run with a larger capacity=",
                    needed=int(sizes[0]),
                    capacity=int(env["out_row_cap"]),
                )
        if out.formats == ("sparse",):
            n = int(sizes[0])
            return Tensor(
                out.attrs,
                out.formats,
                out.dims,
                {0: np.array([0, n], dtype=np.int64)},
                {0: env["out_crd0"][:n]},
                env["out_vals"][:n],
                sr,
            )
        if out.formats == ("dense", "sparse"):
            n = int(sizes[0])
            return Tensor(
                out.attrs,
                out.formats,
                out.dims,
                {1: env["out_pos1"]},
                {1: env["out_crd1"][:n]},
                env["out_vals"][:n],
                sr,
            )
        if out.formats == ("sparse", "sparse"):
            n0, n1 = int(sizes[0]), int(sizes[1])
            return Tensor(
                out.attrs,
                out.formats,
                out.dims,
                {
                    0: np.array([0, n0], dtype=np.int64),
                    1: env["out_pos1"][: n0 + 1],
                },
                {0: env["out_crd0"][:n0], 1: env["out_crd1"][:n1]},
                env["out_vals"][:n1],
                sr,
            )
        raise ShapeError(f"unsupported output formats {out.formats}")


class BoundKernel:
    """A kernel with inputs marshaled and outputs allocated up front.

    Calling it re-runs the kernel in place; dense output buffers are
    re-zeroed first (sparse outputs re-initialize their own counters in
    generated setup code).  Use :meth:`result` to assemble the output
    tensor after a call."""

    def __init__(self, kernel: Kernel, env: Dict[str, object]) -> None:
        self.kernel = kernel
        self.env = env
        self._dense_out = None
        out = kernel.output
        if out is None or all(f == "dense" for f in out.formats):
            self._dense_out = env["out_vals"]
        self._zero = kernel.ops.semiring.zero

    def __call__(self):
        if self._dense_out is not None:
            self._dense_out.fill(self._zero)
        self.kernel._kernel(self.env)
        return self.kernel._assemble_output(self.env, {})

    def run_only(self) -> None:
        """Execute without assembling a result object (pure kernel time)."""
        if self._dense_out is not None:
            self._dense_out.fill(self._zero)
        self.kernel._kernel(self.env)

    def result(self):
        return self.kernel._assemble_output(self.env, {})


def _default_capacity(out: OutputSpec) -> int:
    total = int(np.prod(out.dims)) if out.dims else 1
    return max(16, min(total, 1 << 22))


def _check_tensor(name: str, spec: TensorInput, tensor: Tensor) -> None:
    if tuple(tensor.attrs) != spec.attrs or tuple(tensor.formats) != spec.formats:
        raise ShapeError(
            f"tensor for {name!r} has levels {tensor.attrs}/{tensor.formats}, "
            f"kernel expects {spec.attrs}/{spec.formats}"
        )


class KernelBuilder:
    """Configurable front door to the compiler.

    ``opt_level`` selects the :mod:`repro.compiler.opt` pass pipeline
    (0 = off, the seed behavior, for ablation; 2 = full, the default).
    ``vectorize`` controls the Python backend's NumPy slice emitter
    (default: on whenever ``opt_level > 0``; ignored by other
    backends).  ``cache`` enables the two-tier build cache of
    :mod:`repro.compiler.cache`.  ``parallel``/``workers`` stamp the
    built kernel's default shard executor (a run-time property, not
    part of the cache key: rebuilding a cached kernel with different
    parallel settings re-stamps the shared object).
    """

    def __init__(
        self,
        ctx: TypeContext,
        semiring: Semiring,
        backend: str = "c",
        search: str = "linear",
        locate: bool = True,
        opt_level: int = DEFAULT_OPT_LEVEL,
        vectorize: Optional[bool] = None,
        cache: bool = True,
        verify: Optional[bool] = None,
        parallel: Optional[str] = None,
        workers: Optional[int] = None,
        stream_verify: Optional[bool] = None,
        tune: Optional[str] = None,
    ) -> None:
        if backend not in ("c", "python", "interp"):
            raise ValueError(f"unknown backend {backend!r}")
        if tune not in (None, "off", "auto"):
            raise ValueError(
                f"unknown tune mode {tune!r}; expected 'off' or 'auto'"
            )
        self.ctx = ctx
        self.ops = scalar_ops_for(semiring)
        self.backend = backend
        self.search = search
        self.locate = locate
        self.opt_level = int(opt_level)
        self.sanitize = resilience.sanitize_modes()
        # the checked Python emitter is scalar; vectorized slices would
        # bypass its per-subscript bounds checks
        self.vectorize = (
            backend == "python"
            and not self.sanitize
            and (vectorize if vectorize is not None else self.opt_level > 0)
        )
        self.cache = cache
        #: run the IR verifier after every optimization pass (None =
        #: the ``REPRO_IR_VERIFY`` environment toggle)
        self.verify = verify
        if parallel is not None and parallel not in resilience.KNOWN_EXECUTORS:
            raise ValueError(
                f"unknown parallel executor {parallel!r}; expected one of "
                f"{resilience.KNOWN_EXECUTORS}"
            )
        self.parallel = parallel
        self.workers = workers
        #: statically verify stream properties (monotonicity, lawfulness,
        #: termination, semiring-law obligations) in :meth:`prepare`
        #: before anything lowers (None = the ``REPRO_STREAM_VERIFY``
        #: environment toggle, default on)
        self.stream_verify = stream_verify
        #: autotune routing: "auto" consults :mod:`repro.autotune`
        #: before building, "off" never does, None defers to
        #: ``REPRO_TUNE`` (unset = off — tuning is strictly opt-in for
        #: library builds)
        self.tune = tune
        self._tune_result = None

    def _tuned_clone(
        self,
        expr: Expr,
        inputs: Mapping[str, InputLike],
        output: Optional[OutputSpec],
        name: str,
        tune: Optional[str],
    ) -> Optional["KernelBuilder"]:
        """A builder reconfigured by the autotuner, or None.

        None means: tuning is off (the resolved mode — call argument,
        then the builder's ``tune``, then ``REPRO_TUNE``, default off),
        an input is not a concrete :class:`Tensor` (no statistics to
        model), or the tuner itself failed — tuning is an optimization
        and must never turn a buildable kernel into an error.  The
        clone carries ``tune="off"`` so it cannot recurse, and the
        caller's explicit ``parallel``/``workers`` settings win over
        the tuned executor choice.
        """
        mode = tune if tune is not None else self.tune
        if mode is None:
            mode = resilience.tune_mode() or "off"
        if mode != "auto":
            return None
        if not inputs or not all(
            isinstance(b, Tensor) for b in inputs.values()
        ):
            return None
        try:
            from repro.autotune import tune_build

            result = tune_build(
                expr, self.ctx, dict(inputs), output,
                semiring=self.ops.semiring, backend=self.backend,
                name=name,
            )
        except Exception as exc:
            logger.warning(
                "autotune failed for kernel %r (%s: %s); building untuned",
                name, type(exc).__name__, exc,
            )
            return None
        d = result.decision
        clone = KernelBuilder(
            self.ctx,
            self.ops.semiring,
            backend=self.backend,
            search=d.search,
            locate=self.locate,
            opt_level=(
                d.opt_level if d.opt_level is not None else self.opt_level
            ),
            cache=self.cache,
            verify=self.verify,
            parallel=self.parallel if self.parallel is not None else d.executor,
            workers=self.workers if self.workers is not None else d.shards,
            stream_verify=self.stream_verify,
            tune="off",
        )
        clone._tune_result = result
        return clone

    def prepare(
        self,
        expr: Expr,
        inputs: Mapping[str, InputLike],
        output: Optional[OutputSpec] = None,
        name: str = "kernel",
        attr_dims: Optional[Mapping[str, int]] = None,
        tune: Optional[str] = None,
    ) -> Tuple[Dict[str, Union[TensorInput, FunctionInput]], Dict[str, int], Optional[str]]:
        """Validate a build request and compute its cache key *without*
        compiling anything.

        Returns ``(specs, dims, key)``; ``key`` is ``None`` when the
        builder runs uncached.  This is the admission-control hook for
        the serving layer: the key identifies the kernel the request
        *would* build, so a query whose kernel the circuit breaker has
        quarantined can be rejected before any compile or fork happens.
        Every validation error (bad names, shape mismatches) raises
        here exactly as :meth:`build` would.

        ``tune="auto"`` computes the key of the kernel a *tuned*
        :meth:`build` would produce (the tuned knobs participate in the
        cache key, so tuned and untuned builds never collide).
        """
        clone = self._tuned_clone(expr, inputs, output, name, tune)
        if clone is not None:
            return clone.prepare(expr, inputs, output, name, attr_dims)
        if not _IDENT.match(name) or name.startswith("_"):
            raise ValueError(
                f"kernel name {name!r} is not a valid identifier (leading "
                "underscores are reserved for compiler temporaries)"
            )
        specs: Dict[str, Union[TensorInput, FunctionInput]] = {}
        for var, binding in inputs.items():
            if not _IDENT.match(var) or var.startswith("_"):
                raise ValueError(
                    f"variable name {var!r} is not a valid identifier (leading "
                    "underscores are reserved for compiler temporaries)"
                )
            if isinstance(binding, Tensor):
                specs[var] = TensorInput(var, binding.attrs, binding.formats, self.ops)
            else:
                specs[var] = binding

        expr_shape = shape_of(expr, self.ctx)
        out_attrs = self.ctx.schema.sort_shape(expr_shape)
        if output is None and out_attrs:
            raise ShapeError(
                f"expression has shape {out_attrs}; an OutputSpec is required"
            )
        if output is not None and tuple(output.attrs) != out_attrs:
            raise ShapeError(
                f"output attrs {output.attrs} != expression shape {out_attrs}"
            )

        dims = dict(attr_dims or {})
        if output is not None:
            for a, d in zip(output.attrs, output.dims):
                dims.setdefault(a, d)

        key = None
        if self.cache:
            key = kernel_cache_key(
                expr, specs, output,
                semiring=self.ops.semiring, backend=self.backend,
                search=self.search, locate=self.locate,
                opt_level=self.opt_level, vectorize=self.vectorize,
                name=name, attr_dims=dims, sanitize=self.sanitize,
            )

        active = (
            self.stream_verify
            if self.stream_verify is not None
            else resilience.stream_verify_enabled()
        )
        if active and (key is None or key not in _VERIFIED_KEYS):
            verify_expr(
                expr,
                self.ctx,
                specs=specs,
                semiring=self.ops.semiring,
                dims=dims,
                kernel=name,
            )
            if key is not None:
                _VERIFIED_KEYS.add(key)
        return specs, dims, key

    def cache_key(
        self,
        expr: Expr,
        inputs: Mapping[str, InputLike],
        output: Optional[OutputSpec] = None,
        name: str = "kernel",
        attr_dims: Optional[Mapping[str, int]] = None,
    ) -> Optional[str]:
        """The canonical cache key of the kernel :meth:`build` would
        produce — computable before (and without) compiling."""
        return self.prepare(expr, inputs, output, name, attr_dims)[2]

    def build(
        self,
        expr: Expr,
        inputs: Mapping[str, InputLike],
        output: Optional[OutputSpec] = None,
        name: str = "kernel",
        attr_dims: Optional[Mapping[str, int]] = None,
        tune: Optional[str] = None,
    ) -> Kernel:
        clone = self._tuned_clone(expr, inputs, output, name, tune)
        if clone is not None:
            kernel = clone.build(expr, inputs, output, name, attr_dims)
            kernel.tune_decision = clone._tune_result
            return kernel
        specs, dims, key = self.prepare(expr, inputs, output, name, attr_dims)
        if key is not None:
            cached = kernel_cache.lookup(key)
            if cached is not None:
                return self._attach_runtime(cached, expr, specs, output, name,
                                            dims, key=key)
            restored = self._from_payload(key, specs, output)
            if restored is not None:
                kernel_cache.store(key, restored)
                return self._attach_runtime(restored, expr, specs, output,
                                            name, dims, key=key)
            kernel_cache.record_miss()

        ng = NameGen()
        stream = lower(
            expr, self.ctx, specs, self.ops, ng, search=self.search,
            attr_dims=dims, locate=self.locate,
        )

        workspace = _workspace_needed(stream, output)
        dest, out_params, size_stores = _build_dest(output, self.ops, ng, workspace)
        body = PSeq(
            dest.setup(),
            compile_stream(dest, stream, ng),
            dest.finalize(),
            size_stores,
        )

        params: list = []
        for var in sorted(specs):
            params.extend(specs[var].params())
        params.extend(out_params)

        body = optimize(body, ng, self.opt_level,
                        verify=self.verify, params=params)
        _check_no_shadowing(name, params, ng)

        findings = lint_bounds(
            body,
            dest.contracts(),
            params=[p.name for p in params],
            decls=[v.name for v in ng.allocated],
        )

        backend_used = self.backend
        if self.backend == "c":
            try:
                source = codegen_c.emit_kernel_source(name, params, ng.allocated, body)
                backend_kernel = codegen_c.CKernel(source, name, params)
            except (BackendUnavailableError, CompileError) as exc:
                if not resilience.fallback_enabled():
                    raise
                logger.warning(
                    "C backend failed for kernel %r (%s); falling back to the "
                    "Python backend (set %s=0 to fail instead)",
                    name, exc, resilience.ENV_BACKEND_FALLBACK,
                )
                backend_kernel = codegen_py.PyKernel(
                    name, params, ng.allocated, body,
                    vectorize=self.opt_level > 0 and not self.sanitize,
                    checked=bool(self.sanitize),
                )
                backend_used = "python"
        elif self.backend == "python":
            backend_kernel = codegen_py.PyKernel(
                name, params, ng.allocated, body, vectorize=self.vectorize,
                checked=bool(self.sanitize),
            )
        else:
            backend_kernel = InterpKernel(name, params, ng.allocated, body)
        kernel = Kernel(name, backend_kernel, params, specs, output, self.ops,
                        body, decls=ng.allocated)
        kernel.ws_dim = output.dims[-1] if workspace else None
        kernel.capacity_findings = findings

        if key is not None:
            kernel_cache.store(key, kernel)
            self._store_payload(key, kernel, body, backend_used)
        return self._attach_runtime(kernel, expr, specs, output, name, dims,
                                    key=key)

    def _attach_runtime(
        self,
        kernel: Kernel,
        expr: Expr,
        specs: Dict[str, Union[TensorInput, FunctionInput]],
        output: Optional[OutputSpec],
        name: str,
        attr_dims: Dict[str, int],
        key: Optional[str] = None,
    ) -> Kernel:
        """Stamp the rebuild recipe and shard-executor defaults.

        Runs on every return path of :meth:`build` (memo hit, payload
        restore, fresh build) so cache-restored kernels are just as
        shardable as fresh ones.  ``FunctionInput`` bindings hold
        arbitrary callables and cannot cross a process boundary, so
        such kernels get no recipe.
        """
        if kernel.recipe is None and all(
            isinstance(s, TensorInput) for s in specs.values()
        ):
            kernel.recipe = KernelRecipe(
                expr=expr,
                ctx=self.ctx,
                input_structure=tuple(
                    (var, specs[var].attrs, specs[var].formats)
                    for var in sorted(specs)
                ),
                output=output,
                semiring=self.ops.semiring,
                backend=self.backend,
                search=self.search,
                locate=self.locate,
                opt_level=self.opt_level,
                vectorize=self.vectorize,
                name=name,
                attr_dims=tuple(sorted(attr_dims.items())),
            )
        if key is not None:
            kernel.cache_key = key
        kernel.parallel = self.parallel
        kernel.workers = self.workers
        # like parallel/workers: the tune stamp reflects the *latest*
        # build call (an untuned rebuild of a memoized kernel clears
        # it; the tuned path re-sets it after this returns)
        kernel.tune_decision = self._tune_result
        return kernel

    # ------------------------------------------------------------------
    # disk tier (tier 2): emitted source + metadata, no re-lowering
    # ------------------------------------------------------------------
    def _from_payload(
        self,
        key: str,
        specs: Dict[str, Union[TensorInput, FunctionInput]],
        output: Optional[OutputSpec],
    ) -> Optional[Kernel]:
        if self.backend not in ("c", "python"):
            return None
        payload = kernel_cache.load_payload(key)
        if payload is None:
            return None
        # `backend` is what the stored source targets; `requested_backend`
        # is what the builder originally asked for (they differ when the
        # stored kernel was itself a logged C→Python fallback)
        requested = payload.get("requested_backend", payload.get("backend"))
        backend = payload.get("backend")
        if requested != self.backend or backend not in ("c", "python"):
            return None
        if backend == "python" and requested == "c" and resilience.toolchain_available(refresh=True):
            logger.info(
                "toolchain available again; rebuilding key %s... with the C "
                "backend instead of its cached fallback", key[:12],
            )
            return None
        try:
            name = payload["name"]
            params = [Param(n, k, t) for n, k, t in payload["params"]]
            source = payload["source"]
            if backend == "c":
                backend_kernel = codegen_c.CKernel(source, name, params)
            else:
                backend_kernel = codegen_py.PyKernel.from_source(name, params, source)
        except BackendUnavailableError as exc:
            # the payload is fine but the toolchain is gone: a fresh
            # build will go through the (logged) backend-fallback path
            logger.warning(
                "cached C kernel for key %s... not rebuildable (%s); "
                "re-lowering", key[:12], exc,
            )
            return None
        except Exception as exc:
            logger.warning(
                "corrupted kernel cache payload for key %s... (%s: %s); "
                "invalidating the entry and rebuilding",
                key[:12], type(exc).__name__, exc,
            )
            kernel_cache.invalidate_payload(key)
            return None
        kernel = Kernel(name, backend_kernel, params, specs, output, self.ops, None)
        kernel.ws_dim = payload.get("ws_dim")
        return kernel

    def _store_payload(
        self, key: str, kernel: Kernel, body, backend_used: Optional[str] = None
    ) -> None:
        backend_used = backend_used or self.backend
        if backend_used not in ("c", "python"):
            return
        ops: Dict[str, object] = {}
        codegen_py._collect_ops(body, ops)
        if ops:
            return  # user-defined op callables cannot be serialized
        kernel_cache.store_payload(
            key,
            {
                "backend": backend_used,
                "requested_backend": self.backend,
                "name": kernel.name,
                "params": [[p.name, p.kind, p.ctype] for p in kernel.params],
                "source": kernel.source,
                "ws_dim": kernel.ws_dim,
            },
        )


def _check_no_shadowing(name: str, params: Sequence[Param], ng: NameGen) -> None:
    """Compiled programs must keep compiler temporaries and user/source
    names in disjoint namespaces: every generated local carries the
    reserved ``NameGen.RESERVED_PREFIX`` and no parameter may collide
    with one.  A violation is a compiler bug, reported as a verifier
    error rather than silently shadowing."""
    param_names = {p.name for p in params}
    collisions = sorted(
        {v.name for v in ng.allocated} & param_names
    )
    if collisions:
        raise IRVerifyError(
            f"kernel {name!r}: generated temporaries shadow parameters: "
            f"{collisions}",
            violations=collisions,
        )
    reserved = sorted(
        n for n in param_names if n.startswith(NameGen.RESERVED_PREFIX)
    )
    if reserved:
        raise IRVerifyError(
            f"kernel {name!r}: parameter names {reserved} use the reserved "
            f"temporary prefix {NameGen.RESERVED_PREFIX!r}",
            violations=reserved,
        )


def _level_sequence(stream) -> list:
    """The full level labels of a lowered stream, dummy levels included."""
    seq = []
    s = stream
    while is_sstream(s):
        seq.append(s.attr)
        s = s.value
    return seq


def _workspace_needed(stream, output: Optional[OutputSpec]) -> bool:
    """Whether the last output level is revisited out of order.

    An output level receives in-order pushes as long as no contracted
    (dummy) level sits between it and the previous output level in the
    compiled loop nest; a dummy level in between re-runs the inner loop
    for the same slice (e.g. Σ_j above the k loop in matmul).  Dense
    outputs accumulate by random access and never need a workspace.
    """
    if output is None or all(f == "dense" for f in output.formats):
        return False
    seq = _level_sequence(stream)
    prev = -1
    revisited = []
    for attr in output.attrs:
        p = seq.index(attr)
        revisited.append(any(seq[k] is STAR for k in range(prev + 1, p)))
        prev = p
    if any(revisited[:-1]):
        raise ShapeError(
            "a non-innermost sparse output level is iterated out of order "
            f"(loop nest {seq}); materialize a temporary or choose a dense "
            "format for the upper output levels"
        )
    return revisited[-1]


def _build_dest(output: Optional[OutputSpec], ops: ScalarOps, ng: NameGen, workspace: bool = False):
    """Destination + output params + size bookkeeping for an OutputSpec."""
    vtype = ops.type
    if output is None:
        acc = ng.fresh("acc", vtype)
        dest = ScalarDest(ops, acc, out_array="out_vals")
        return dest, [Param("out_vals", "array", vtype)], PSeq()
    fmts = tuple(output.formats)
    if all(f == "dense" for f in fmts):
        dims = [EVar(f"out_dim{k}", TINT) for k in range(len(fmts))]
        dest = DenseDest(ops, "out_vals", dims)
        params = [Param(f"out_dim{k}", "scalar", TINT) for k in range(len(fmts))]
        params.append(Param("out_vals", "array", vtype))
        return dest, params, PSeq()

    ws_params = [
        Param("out_ws_vals", "array", vtype),
        Param("out_ws_mask", "array", TINT),
        Param("out_ws_list", "array", TINT),
    ]

    cap = EVar("out_cap", TINT)
    cap_params = [Param("out_cap", "scalar", TINT)]

    def leaf_dest(crd: str, counter):
        if workspace:
            return WorkspaceLeafDest(
                ops, ng, crd, "out_vals", counter,
                "out_ws_vals", "out_ws_mask", "out_ws_list", cap,
            )
        return SparseLeafDest(ops, crd, "out_vals", counter, cap)

    if fmts == ("sparse",):
        n = ng.fresh("on", TINT)
        dest = leaf_dest("out_crd0", n)
        params = [
            Param("out_crd0", "array", TINT),
            Param("out_vals", "array", vtype),
            Param("out_size", "array", TINT),
        ] + cap_params + (ws_params if workspace else [])
        return dest, params, PStore("out_size", ilit(0), n)
    if fmts == ("dense", "sparse"):
        n1 = ng.fresh("on", TINT)
        leaf = leaf_dest("out_crd1", n1)
        dest = DensePosDest(ops, ng, EVar("out_dim0", TINT), "out_pos1", leaf, n1)
        params = [
            Param("out_dim0", "scalar", TINT),
            Param("out_pos1", "array", TINT),
            Param("out_crd1", "array", TINT),
            Param("out_vals", "array", vtype),
            Param("out_size", "array", TINT),
        ] + cap_params + (ws_params if workspace else [])
        return dest, params, PStore("out_size", ilit(0), n1)
    if fmts == ("sparse", "sparse"):
        n1 = ng.fresh("on", TINT)
        n0 = ng.fresh("on", TINT)
        leaf = leaf_dest("out_crd1", n1)
        dest = SparseInnerDest(
            ops, ng, "out_crd0", n0, "out_pos1", leaf, n1,
            EVar("out_row_cap", TINT),
        )
        params = [
            Param("out_crd0", "array", TINT),
            Param("out_pos1", "array", TINT),
            Param("out_crd1", "array", TINT),
            Param("out_vals", "array", vtype),
            Param("out_size", "array", TINT),
        ] + cap_params + [Param("out_row_cap", "scalar", TINT)] + (
            ws_params if workspace else []
        )
        sizes = PSeq(
            PStore("out_size", ilit(0), n0),
            PStore("out_size", ilit(1), n1),
        )
        return dest, params, sizes
    raise ShapeError(f"unsupported output formats {fmts}")


def compile_kernel(
    expr: Expr,
    ctx: TypeContext,
    inputs: Mapping[str, InputLike],
    output: Optional[OutputSpec] = None,
    semiring: Optional[Semiring] = None,
    backend: str = "c",
    search: str = "linear",
    name: str = "kernel",
    attr_dims: Optional[Mapping[str, int]] = None,
    locate: bool = True,
    opt_level: int = DEFAULT_OPT_LEVEL,
    vectorize: Optional[bool] = None,
    cache: bool = True,
    verify: Optional[bool] = None,
    parallel: Optional[str] = None,
    workers: Optional[int] = None,
    stream_verify: Optional[bool] = None,
    tune: Optional[str] = None,
) -> Kernel:
    """One-call convenience wrapper around :class:`KernelBuilder`.

    ``tune="auto"`` routes the build through :mod:`repro.autotune`
    (search strategy, opt level, executor and shard count chosen by
    the cost model); ``tune="off"`` never does; None defers to the
    ``REPRO_TUNE`` environment knob (unset = off).
    """
    if semiring is None:
        for binding in inputs.values():
            if isinstance(binding, Tensor):
                semiring = binding.semiring
                break
        else:
            raise ValueError("semiring not given and not inferable from inputs")
    builder = KernelBuilder(ctx, semiring, backend=backend, search=search,
                            locate=locate, opt_level=opt_level,
                            vectorize=vectorize, cache=cache, verify=verify,
                            parallel=parallel, workers=workers,
                            stream_verify=stream_verify, tune=tune)
    return builder.build(expr, inputs, output, name=name, attr_dims=attr_dims)
