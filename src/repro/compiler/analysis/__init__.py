"""Static analysis over the imperative IR **P** / **E**.

The paper's central result (Theorem 6.1) is that fused compilation is
*correct*; the executable stand-ins in :mod:`repro.verification` check
stream semantics dynamically, test case by test case.  This package
adds the static half of that story:

* :mod:`~repro.compiler.analysis.dataflow` — a small dataflow
  framework over the structured IR: forward/backward fixpoint engines,
  reaching definitions, live variables, and def-use chains.  The
  structural helpers (``free_vars``/``stmt_effects``/``stmt_reads``)
  that the :mod:`repro.compiler.opt` passes previously each re-derived
  live here and are shared.
* :mod:`~repro.compiler.analysis.verifier` — a typed IR verifier:
  operator and ``Op`` arity/type checking, array element-type
  consistency, undefined-variable detection, and use-before-def via
  reaching definitions.  ``optimize(..., verify=True)`` (or
  ``REPRO_IR_VERIFY=1``) runs it after every optimization pass and
  raises :class:`~repro.errors.IRVerifyError` naming the offending
  pass — every existing test becomes a miscompilation detector.
* :mod:`~repro.compiler.analysis.intervals` — interval analysis for
  array subscripts and the bounds/capacity lint that checks stores
  against the destination capacity contracts declared in
  :mod:`repro.compiler.dest`, feeding ``Kernel.run(auto_grow=True)``
  a static "overflow-safe / needs guard" signal.
* :mod:`~repro.compiler.analysis.streamprops` — the *stream*-level
  analysis, one abstraction level above the IR: the paper's §6
  preservation lemmas as transfer rules assigning every ℒ node and
  stream combinator a property signature {lawful, monotone,
  strictly-monotone, bounded, ⊕-law obligations}, with blame naming
  the node that breaks a property.  Consumed by
  :meth:`KernelBuilder.prepare` (``REPRO_STREAM_VERIFY``, default on),
  the shard planner's split certificates, and the serving layer's
  admission lint (``python -m repro.lint``).

``python -m repro.compiler.analysis <kernel>`` prints the full
verification + lint report for a named example kernel.
"""

from repro.compiler.analysis.dataflow import (
    BackwardAnalysis,
    DefUse,
    ENTRY_PARAM,
    ENTRY_ZERO,
    ForwardAnalysis,
    LiveVariables,
    ReachingDefinitions,
    arrays_read,
    def_use_chains,
    expr_key,
    expr_uses,
    free_vars,
    live_transfer,
    run_backward,
    run_forward,
    stmt_effects,
    stmt_reads,
)
from repro.compiler.analysis.intervals import (
    ArrayContract,
    BoundsFinding,
    Interval,
    IntervalAnalysis,
    eval_interval,
    lint_bounds,
)
from repro.compiler.analysis.streamprops import (
    Blame,
    Obligation,
    PropertySignature,
    SplitCertificate,
    analyze_expr,
    analyze_stream,
    certify_split,
    infer_expr,
    infer_stream,
    refusal_reason,
    verify_expr,
    verify_stream,
)
from repro.compiler.analysis.verifier import (
    Issue,
    VerifyContext,
    check_program,
    verify_kernel,
    verify_program,
)
from repro.errors import IRVerifyError, StreamPropertyError

__all__ = [
    "ForwardAnalysis",
    "BackwardAnalysis",
    "ReachingDefinitions",
    "LiveVariables",
    "DefUse",
    "ENTRY_PARAM",
    "ENTRY_ZERO",
    "run_forward",
    "run_backward",
    "def_use_chains",
    "expr_uses",
    "expr_key",
    "free_vars",
    "arrays_read",
    "stmt_effects",
    "stmt_reads",
    "live_transfer",
    "Interval",
    "IntervalAnalysis",
    "eval_interval",
    "ArrayContract",
    "BoundsFinding",
    "lint_bounds",
    "Issue",
    "VerifyContext",
    "verify_program",
    "verify_kernel",
    "check_program",
    "IRVerifyError",
    "Blame",
    "Obligation",
    "PropertySignature",
    "SplitCertificate",
    "StreamPropertyError",
    "analyze_expr",
    "analyze_stream",
    "certify_split",
    "infer_expr",
    "infer_stream",
    "refusal_reason",
    "verify_expr",
    "verify_stream",
]
