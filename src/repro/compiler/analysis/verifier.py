"""The typed IR verifier for **P** / **E**.

Checks, statically, the invariants every well-compiled kernel body
must satisfy:

* **operator typing** — ``EBinop``/``EUnop``/``ECond`` operand and
  result types are consistent (arithmetic on ``int``/``float`` of one
  type, comparisons yield ``bool``, ``&&``/``||``/``!`` are boolean,
  ``%`` is integer-only);
* **Op applications** — an ``ECall``'s argument types match the
  ``Op.arg_types`` signature and its type is the ``Op.ret_type``
  (arity is already enforced at construction);
* **array consistency** — every array read or stored is a declared
  array parameter, accessed at its declared element type with an
  integer subscript;
* **variables** — every variable read or assigned is a parameter or a
  declared local, used at its declared type; scalar parameters are
  never assigned;
* **initialization** — via reaching definitions: a local read on some
  path before any assignment reaches it is flagged (both backends
  zero-initialize locals, so this is defined behavior — but in
  compiler output it means a pass deleted or reordered a live
  definition, which is exactly the DSE/LICM bug class).

:func:`verify_program` returns the list of :class:`Issue` findings;
:func:`check_program` raises :class:`~repro.errors.IRVerifyError` —
naming the offending pass when run inside the pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set

from repro.compiler.analysis.dataflow import (
    ENTRY_ZERO,
    ReachingDefinitions,
    run_forward,
)
from repro.compiler.ir import (
    E,
    EAccess,
    EBinop,
    ECall,
    ECond,
    ELit,
    EUnop,
    EVar,
    IR_TYPES,
    P,
    PAssign,
    PComment,
    PIf,
    PSeq,
    PSkip,
    PSort,
    PStore,
    PWhile,
    TBOOL,
    TFLOAT,
    TINT,
)
from repro.errors import IRVerifyError

_ARITH_OPS = ("+", "-", "*", "/")
_CMP_OPS = ("<", "<=", ">", ">=", "==", "!=")
_BOOL_OPS = ("&&", "||")
_MINMAX_OPS = ("min", "max")


@dataclass(frozen=True)
class Issue:
    """One verifier finding."""

    severity: str    # "error" | "warning"
    invariant: str   # short machine-readable tag, e.g. "operator-type"
    message: str
    stmt: str        # repr of the enclosing statement

    def __str__(self) -> str:
        return f"{self.severity}[{self.invariant}]: {self.message}  in  {self.stmt}"


@dataclass(frozen=True)
class VerifyContext:
    """What the verifier knows about a kernel's environment: the
    declared arrays (name → element type), scalar parameters
    (name → type), and declared locals (name → type)."""

    arrays: Mapping[str, str] = field(default_factory=dict)
    scalars: Mapping[str, str] = field(default_factory=dict)
    locals: Mapping[str, str] = field(default_factory=dict)

    @classmethod
    def from_params(
        cls, params: Sequence[object], decls: Sequence[EVar]
    ) -> "VerifyContext":
        """Build a context from kernel ``Param`` objects (anything with
        ``name``/``kind``/``ctype``) plus the NameGen-declared locals."""
        arrays: Dict[str, str] = {}
        scalars: Dict[str, str] = {}
        for p in params:
            name = getattr(p, "name")
            ctype = getattr(p, "ctype")
            if getattr(p, "kind") == "array":
                arrays[name] = ctype
            else:
                scalars[name] = ctype
        locals_: Dict[str, str] = {v.name: v.type for v in decls}
        return cls(arrays=arrays, scalars=scalars, locals=locals_)

    def var_type(self, name: str) -> Optional[str]:
        if name in self.scalars:
            return self.scalars[name]
        return self.locals.get(name)


class _Verifier:
    def __init__(self, ctx: VerifyContext) -> None:
        self.ctx = ctx
        self.issues: List[Issue] = []

    def error(self, invariant: str, message: str, stmt: str) -> None:
        self.issues.append(Issue("error", invariant, message, stmt))

    def warning(self, invariant: str, message: str, stmt: str) -> None:
        self.issues.append(Issue("warning", invariant, message, stmt))

    # ---------------- expressions ----------------
    def check_expr(self, e: E, stmt: str) -> Optional[str]:
        """Type-check ``e``; returns its type, or None if unverifiable
        (an issue has been recorded)."""
        if isinstance(e, EVar):
            declared = self.ctx.var_type(e.name)
            if declared is None:
                self.error(
                    "undefined-variable",
                    f"variable {e.name!r} is neither a parameter nor a "
                    "declared local",
                    stmt,
                )
                return None
            if declared != e.type:
                self.error(
                    "var-type",
                    f"variable {e.name!r} used at type {e.type!r} but "
                    f"declared {declared!r}",
                    stmt,
                )
                return None
            return e.type
        if isinstance(e, ELit):
            return self._check_lit(e, stmt)
        if isinstance(e, EAccess):
            self._check_subscript(e.array, e.index, e.type, stmt, store=False)
            return e.type
        if isinstance(e, EBinop):
            return self._check_binop(e, stmt)
        if isinstance(e, EUnop):
            return self._check_unop(e, stmt)
        if isinstance(e, ECond):
            ct = self.check_expr(e.cond, stmt)
            tt = self.check_expr(e.then, stmt)
            et = self.check_expr(e.els, stmt)
            if ct is not None and ct != TBOOL:
                self.error(
                    "operator-type",
                    f"conditional scrutinee has type {ct!r}, expected bool",
                    stmt,
                )
            if tt is not None and et is not None and tt != et:
                self.error(
                    "operator-type",
                    f"conditional branches disagree: {tt!r} vs {et!r}",
                    stmt,
                )
            if tt is not None and tt != e.type:
                self.error(
                    "operator-type",
                    f"conditional annotated {e.type!r} but branches have "
                    f"type {tt!r}",
                    stmt,
                )
            return e.type
        if isinstance(e, ECall):
            return self._check_call(e, stmt)
        self.error("unknown-node", f"unknown expression node {e!r}", stmt)
        return None

    def _check_lit(self, e: ELit, stmt: str) -> Optional[str]:
        if e.type not in IR_TYPES:
            self.error("literal-type", f"literal {e.value!r} has unknown type "
                       f"{e.type!r}", stmt)
            return None
        v = e.value
        ok = (
            (e.type == TBOOL and isinstance(v, bool))
            or (e.type == TINT and isinstance(v, int) and not isinstance(v, bool))
            or (
                e.type == TFLOAT
                and isinstance(v, (int, float))
                and not isinstance(v, bool)
            )
        )
        if not ok:
            self.error(
                "literal-type",
                f"literal {v!r} ({type(v).__name__}) inconsistent with "
                f"annotated type {e.type!r}",
                stmt,
            )
            return None
        return e.type

    def _check_subscript(
        self, array: str, index: E, elem_type: str, stmt: str, store: bool
    ) -> None:
        verb = "stored" if store else "read"
        declared = self.ctx.arrays.get(array)
        if declared is None:
            if array in self.ctx.scalars or array in self.ctx.locals:
                self.error(
                    "array-consistency",
                    f"{array!r} is a scalar but is {verb} as an array",
                    stmt,
                )
            else:
                self.error(
                    "undefined-array",
                    f"array {array!r} is not a declared parameter",
                    stmt,
                )
        elif declared != elem_type:
            self.error(
                "array-consistency",
                f"array {array!r} {verb} at element type {elem_type!r} but "
                f"declared {declared!r}",
                stmt,
            )
        it = self.check_expr(index, stmt)
        if it is not None and it != TINT:
            self.error(
                "subscript-type",
                f"subscript of {array!r} has type {it!r}, expected int",
                stmt,
            )

    def _check_binop(self, e: EBinop, stmt: str) -> Optional[str]:
        lt = self.check_expr(e.left, stmt)
        rt = self.check_expr(e.right, stmt)
        if lt is None or rt is None:
            return e.type
        if e.op in _BOOL_OPS:
            if lt != TBOOL or rt != TBOOL or e.type != TBOOL:
                self.error(
                    "operator-type",
                    f"{e.op!r} requires bool operands and result, got "
                    f"{lt!r} {e.op} {rt!r} : {e.type!r}",
                    stmt,
                )
            return TBOOL
        if e.op in _CMP_OPS:
            if lt != rt:
                self.error(
                    "operator-type",
                    f"comparison {e.op!r} on mismatched types {lt!r} vs {rt!r}",
                    stmt,
                )
            if e.type != TBOOL:
                self.error(
                    "operator-type",
                    f"comparison {e.op!r} annotated {e.type!r}, expected bool",
                    stmt,
                )
            return TBOOL
        if e.op == "%":
            if lt != TINT or rt != TINT or e.type != TINT:
                self.error(
                    "operator-type",
                    f"'%' is integer-only, got {lt!r} % {rt!r} : {e.type!r}",
                    stmt,
                )
            return TINT
        if e.op in _ARITH_OPS or e.op in _MINMAX_OPS:
            if lt != rt or e.type != lt:
                self.error(
                    "operator-type",
                    f"{e.op!r} requires matching operand/result types, got "
                    f"{lt!r} {e.op} {rt!r} : {e.type!r}",
                    stmt,
                )
            elif e.op in _ARITH_OPS and lt == TBOOL:
                self.error(
                    "operator-type",
                    f"arithmetic {e.op!r} on bool operands",
                    stmt,
                )
            return e.type
        self.error("operator-type", f"unknown binary operator {e.op!r}", stmt)
        return None

    def _check_unop(self, e: EUnop, stmt: str) -> Optional[str]:
        ot = self.check_expr(e.operand, stmt)
        if ot is None:
            return e.type
        if e.op == "!":
            if ot != TBOOL or e.type != TBOOL:
                self.error(
                    "operator-type",
                    f"'!' requires bool, got {ot!r} : {e.type!r}",
                    stmt,
                )
            return TBOOL
        if e.op == "-":
            if ot == TBOOL or ot != e.type:
                self.error(
                    "operator-type",
                    f"negation requires a numeric operand matching the "
                    f"result, got {ot!r} : {e.type!r}",
                    stmt,
                )
            return e.type
        self.error("operator-type", f"unknown unary operator {e.op!r}", stmt)
        return None

    def _check_call(self, e: ECall, stmt: str) -> Optional[str]:
        if len(e.args) != len(e.op.arg_types):
            self.error(
                "op-arity",
                f"op {e.op.name!r} expects {len(e.op.arg_types)} args, "
                f"got {len(e.args)}",
                stmt,
            )
        for k, (arg, want) in enumerate(zip(e.args, e.op.arg_types)):
            got = self.check_expr(arg, stmt)
            if got is not None and got != want:
                self.error(
                    "op-type",
                    f"op {e.op.name!r} argument {k} has type {got!r}, "
                    f"signature says {want!r}",
                    stmt,
                )
        if e.type != e.op.ret_type:
            self.error(
                "op-type",
                f"call to {e.op.name!r} annotated {e.type!r} but the op "
                f"returns {e.op.ret_type!r}",
                stmt,
            )
        return e.op.ret_type

    # ---------------- statements ----------------
    def check_stmt(self, p: P) -> None:
        if isinstance(p, (PSkip, PComment)):
            return
        if isinstance(p, PSeq):
            for item in p.items:
                self.check_stmt(item)
            return
        s = repr(p)
        if isinstance(p, PAssign):
            declared = self.ctx.var_type(p.var.name)
            if p.var.name in self.ctx.scalars:
                self.error(
                    "assign-to-param",
                    f"assignment to scalar parameter {p.var.name!r}",
                    s,
                )
            elif declared is None:
                self.error(
                    "undefined-variable",
                    f"assignment to undeclared variable {p.var.name!r}",
                    s,
                )
            elif declared != p.var.type:
                self.error(
                    "var-type",
                    f"variable {p.var.name!r} assigned at type "
                    f"{p.var.type!r} but declared {declared!r}",
                    s,
                )
            et = self.check_expr(p.expr, s)
            if et is not None and declared is not None and et != declared:
                self.error(
                    "assign-type",
                    f"assigning {et!r} expression to {declared!r} variable "
                    f"{p.var.name!r}",
                    s,
                )
            return
        if isinstance(p, PStore):
            it = self.check_expr(p.expr, s)
            declared = self.ctx.arrays.get(p.array)
            self._check_subscript(p.array, p.index, declared or (it or TINT), s,
                                  store=True)
            if it is not None and declared is not None and it != declared:
                self.error(
                    "array-consistency",
                    f"storing {it!r} value into {declared!r} array {p.array!r}",
                    s,
                )
            return
        if isinstance(p, PSort):
            declared = self.ctx.arrays.get(p.array)
            if declared is None:
                self.error(
                    "undefined-array",
                    f"sort of unknown array {p.array!r}",
                    s,
                )
            elif declared != TINT:
                self.error(
                    "array-consistency",
                    f"sort of non-integer array {p.array!r} ({declared!r})",
                    s,
                )
            ct = self.check_expr(p.count, s)
            if ct is not None and ct != TINT:
                self.error(
                    "subscript-type",
                    f"sort count has type {ct!r}, expected int",
                    s,
                )
            return
        if isinstance(p, PWhile):
            ct = self.check_expr(p.cond, s)
            if ct is not None and ct != TBOOL:
                self.error(
                    "condition-type",
                    f"while condition has type {ct!r}, expected bool",
                    s,
                )
            self.check_stmt(p.body)
            return
        if isinstance(p, PIf):
            ct = self.check_expr(p.cond, s)
            if ct is not None and ct != TBOOL:
                self.error(
                    "condition-type",
                    f"if condition has type {ct!r}, expected bool",
                    s,
                )
            self.check_stmt(p.then)
            if p.els is not None:
                self.check_stmt(p.els)
            return
        self.error("unknown-node", f"unknown statement node {p!r}", repr(p))

    # ---------------- initialization ----------------
    def check_init(self, body: P) -> None:
        """Use-before-def via reaching definitions: flag a *local* read
        some path reaches before any assignment does.  Reads of
        zero-initialized locals are defined behavior at runtime, so the
        finding is a warning — but in optimizer output it almost always
        means a live definition was deleted or reordered."""
        rd = ReachingDefinitions()
        params = list(self.ctx.scalars) + list(self.ctx.arrays)
        entry = ReachingDefinitions.entry_state(params, list(self.ctx.locals))
        run_forward(body, rd, entry)
        flagged: Set[str] = set()
        for (stmt_id, name), defs in rd.uses.items():
            if name not in self.ctx.locals:
                continue
            if defs and defs == frozenset((ENTRY_ZERO,)) and name not in flagged:
                flagged.add(name)
                self.warning(
                    "use-before-def",
                    f"local {name!r} is read before any assignment reaches "
                    "it (reads the zero initializer)",
                    rd.use_reprs[(stmt_id, name)],
                )


def verify_program(
    body: P, ctx: VerifyContext, *, check_init: bool = True
) -> List[Issue]:
    """Verify a kernel body against ``ctx``; returns all findings
    (errors first, then warnings), empty when the program is clean."""
    v = _Verifier(ctx)
    v.check_stmt(body)
    if check_init:
        v.check_init(body)
    return sorted(v.issues, key=lambda i: (i.severity != "error",))


def check_program(
    body: P,
    ctx: VerifyContext,
    *,
    pass_name: Optional[str] = None,
    strict: bool = False,
    check_init: bool = True,
) -> None:
    """Raise :class:`IRVerifyError` if ``body`` fails verification.

    ``strict=True`` promotes warnings (use-before-def) to failures —
    the mode the optimizer pipeline runs in, because a kernel fresh
    out of ``compile`` defines every local before reading it, so any
    warning appearing *after* a pass is that pass's bug.
    """
    issues = verify_program(body, ctx, check_init=check_init)
    bad = [i for i in issues if strict or i.severity == "error"]
    if not bad:
        return
    head = bad[0]
    raise IRVerifyError(
        f"{len(bad)} invariant violation(s); first: {head}",
        pass_name=pass_name,
        stmt=head.stmt,
        violations=bad,
    )


def verify_kernel(kernel: object, *, check_init: bool = True) -> List[Issue]:
    """Verify a built :class:`~repro.compiler.kernel.Kernel` (the
    oracle used by the opt-parity tests).  Kernels restored from the
    disk cache carry no IR (``loop_ir is None``) and verify vacuously.
    """
    body = getattr(kernel, "loop_ir", None)
    if body is None:
        return []
    decls: Sequence[EVar] = getattr(kernel, "decls", ()) or ()
    ctx = VerifyContext.from_params(getattr(kernel, "params"), decls)
    return verify_program(body, ctx, check_init=check_init)


__all__ = [
    "Issue",
    "VerifyContext",
    "verify_program",
    "verify_kernel",
    "check_program",
]
