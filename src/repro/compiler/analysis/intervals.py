"""Interval analysis for array subscripts, and the capacity lint.

The generated kernels bound every append into a sparse output by a
capacity guard (``counter < cap`` / ``counter <= cap`` — see
:mod:`repro.compiler.dest`), which is what makes ``run(auto_grow=True)``
safe: an overflowing run clamps its writes and only the size counters
run past the end.  :func:`lint_bounds` checks that property *statically*
on the optimized IR:

* an :class:`IntervalAnalysis` (an instance of the generic
  :class:`~repro.compiler.analysis.dataflow.ForwardAnalysis` engine,
  with widening) proves subscripts non-negative — counters start at 0
  and only increment;
* a symbolic walk collects the *dominating guard facts* at each store
  (conjuncts of enclosing ``if``/``while`` conditions, killed when a
  mentioned variable is reassigned, with ``v < B`` weakening to
  ``v <= B`` across the increment ``v = v + 1``) and a small symbolic
  environment that sees through optimizer temporaries
  (``_tcse0 = min(on0, out_cap - 1)``), then discharges the upper bound
  against each array's :class:`ArrayContract`.

Stores that cannot be proven in bounds come back as ``proven=False``
:class:`BoundsFinding`\\ s — the static "needs guard" signal consumed
by :meth:`Kernel.run(auto_grow=True) <repro.compiler.kernel.Kernel.run>`
and printed by ``python -m repro.compiler.analysis``.

Capacity parameters are assumed ``>= 1`` (the kernel wrapper never
allocates an empty output buffer); the entry state gives them the
interval ``[1, +inf)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.compiler.analysis.dataflow import (
    ForwardAnalysis,
    free_vars,
    run_forward,
    stmt_effects,
)
from repro.compiler.ir import (
    E,
    EAccess,
    EBinop,
    ECall,
    ECond,
    ELit,
    EUnop,
    EVar,
    P,
    PAssign,
    PIf,
    PSeq,
    PStore,
    PWhile,
    TBOOL,
    TINT,
    ilit,
)

_NEG = {"<": ">=", "<=": ">", ">": "<=", ">=": "<", "==": "!=", "!=": "=="}


# ----------------------------------------------------------------------
# the interval domain
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Interval:
    """A (possibly unbounded) integer interval; ``None`` = ±infinity."""

    lo: Optional[int]
    hi: Optional[int]

    def __str__(self) -> str:
        lo = "-inf" if self.lo is None else str(self.lo)
        hi = "+inf" if self.hi is None else str(self.hi)
        return f"[{lo}, {hi}]"

    @property
    def is_empty(self) -> bool:
        return self.lo is not None and self.hi is not None and self.lo > self.hi

    def join(self, other: "Interval") -> "Interval":
        if self.is_empty:
            return other
        if other.is_empty:
            return self
        lo = None if self.lo is None or other.lo is None else min(self.lo, other.lo)
        hi = None if self.hi is None or other.hi is None else max(self.hi, other.hi)
        return Interval(lo, hi)

    def meet(self, other: "Interval") -> "Interval":
        lo = other.lo if self.lo is None else (
            self.lo if other.lo is None else max(self.lo, other.lo)
        )
        hi = other.hi if self.hi is None else (
            self.hi if other.hi is None else min(self.hi, other.hi)
        )
        return Interval(lo, hi)

    def widen(self, newer: "Interval") -> "Interval":
        """Standard widening: a bound that moved outward goes to ∞."""
        lo = self.lo if (
            self.lo is not None and newer.lo is not None and newer.lo >= self.lo
        ) else None
        hi = self.hi if (
            self.hi is not None and newer.hi is not None and newer.hi <= self.hi
        ) else None
        return Interval(lo, hi)

    # -------------- arithmetic --------------
    def add(self, other: "Interval") -> "Interval":
        lo = None if self.lo is None or other.lo is None else self.lo + other.lo
        hi = None if self.hi is None or other.hi is None else self.hi + other.hi
        return Interval(lo, hi)

    def sub(self, other: "Interval") -> "Interval":
        lo = None if self.lo is None or other.hi is None else self.lo - other.hi
        hi = None if self.hi is None or other.lo is None else self.hi - other.lo
        return Interval(lo, hi)

    def neg(self) -> "Interval":
        return Interval(
            None if self.hi is None else -self.hi,
            None if self.lo is None else -self.lo,
        )

    def mul(self, other: "Interval") -> "Interval":
        def f(b: Optional[int], sign: int) -> float:
            return sign * math.inf if b is None else float(b)

        prods = []
        for a in (f(self.lo, -1), f(self.hi, +1)):
            for b in (f(other.lo, -1), f(other.hi, +1)):
                prods.append(0.0 if a == 0 or b == 0 else a * b)
        lo, hi = min(prods), max(prods)
        return Interval(
            None if lo == -math.inf else int(lo),
            None if hi == math.inf else int(hi),
        )

    def min_(self, other: "Interval") -> "Interval":
        lo = None if self.lo is None or other.lo is None else min(self.lo, other.lo)
        if self.hi is None:
            hi = other.hi
        elif other.hi is None:
            hi = self.hi
        else:
            hi = min(self.hi, other.hi)
        return Interval(lo, hi)

    def max_(self, other: "Interval") -> "Interval":
        if self.lo is None:
            lo = other.lo
        elif other.lo is None:
            lo = self.lo
        else:
            lo = max(self.lo, other.lo)
        hi = None if self.hi is None or other.hi is None else max(self.hi, other.hi)
        return Interval(lo, hi)


TOP = Interval(None, None)
BOOL01 = Interval(0, 1)

IntervalState = Dict[str, Interval]


def eval_interval(e: E, state: IntervalState) -> Interval:
    """The interval of ``e`` in ``state`` (absent variables are ⊤)."""
    if isinstance(e, ELit):
        if e.type == TBOOL:
            return Interval(int(bool(e.value)), int(bool(e.value)))
        if isinstance(e.value, (int, float)) and not isinstance(e.value, bool):
            v = int(e.value) if float(e.value).is_integer() else None
            if v is not None:
                return Interval(v, v)
        return TOP
    if isinstance(e, EVar):
        return state.get(e.name, TOP)
    if isinstance(e, EAccess):
        return TOP
    if isinstance(e, EUnop):
        if e.op == "-":
            return eval_interval(e.operand, state).neg()
        if e.op == "!":
            return BOOL01
        return TOP
    if isinstance(e, ECond):
        return eval_interval(e.then, state).join(eval_interval(e.els, state))
    if isinstance(e, EBinop):
        if e.op in ("<", "<=", ">", ">=", "==", "!=", "&&", "||"):
            return BOOL01
        l = eval_interval(e.left, state)
        r = eval_interval(e.right, state)
        if e.op == "+":
            return l.add(r)
        if e.op == "-":
            return l.sub(r)
        if e.op == "*":
            return l.mul(r)
        if e.op == "min":
            return l.min_(r)
        if e.op == "max":
            return l.max_(r)
        if e.op == "%":
            if (
                l.lo is not None and l.lo >= 0
                and r.lo is not None and r.lo >= 1
            ):
                return Interval(0, None if r.hi is None else r.hi - 1)
            return TOP
        if e.op == "/":
            if (
                l.lo is not None and l.lo >= 0
                and r.lo is not None and r.lo >= 1
            ):
                return Interval(0, l.hi)
            return TOP
        return TOP
    if isinstance(e, ECall):
        return TOP
    return TOP


def _negate(cond: E) -> Optional[E]:
    if isinstance(cond, EBinop) and cond.op in _NEG:
        return EBinop(_NEG[cond.op], cond.left, cond.right, TBOOL)
    if isinstance(cond, EUnop) and cond.op == "!":
        return cond.operand
    return None


class IntervalAnalysis(ForwardAnalysis[IntervalState]):
    """Forward interval analysis with branch refinement and widening.

    After :func:`~repro.compiler.analysis.dataflow.run_forward`,
    ``at`` maps ``id(stmt)`` of every leaf statement to the interval
    environment holding on entry to it.
    """

    def __init__(self) -> None:
        self.at: Dict[int, IntervalState] = {}

    @staticmethod
    def entry_state(
        params: Iterable[str] = (),
        decls: Iterable[str] = (),
        positive: Iterable[str] = (),
    ) -> IntervalState:
        """Params are unknown (⊤) except ``positive`` ones (``[1, +inf)``
        — capacities); declared locals start at the zero initializer."""
        state: IntervalState = {name: TOP for name in params}
        for name in positive:
            state[name] = Interval(1, None)
        for name in decls:
            state.setdefault(name, Interval(0, 0))
        return state

    def transfer(self, stmt: P, state: IntervalState) -> IntervalState:
        if isinstance(stmt, PAssign):
            new = dict(state)
            new[stmt.var.name] = eval_interval(stmt.expr, state)
            return new
        return state

    def join(self, a: IntervalState, b: IntervalState) -> IntervalState:
        return {
            k: a[k].join(b[k]) for k in a.keys() & b.keys()
        }

    def widen(self, older: IntervalState, newer: IntervalState) -> IntervalState:
        return {
            k: older[k].widen(newer[k]) if k in older else newer[k]
            for k in newer
        }

    def refine(self, cond: E, branch: bool, state: IntervalState) -> IntervalState:
        if not branch:
            neg = _negate(cond)
            return state if neg is None else self.refine(neg, True, state)
        if isinstance(cond, EBinop) and cond.op == "&&":
            return self.refine(
                cond.right, True, self.refine(cond.left, True, state)
            )
        if isinstance(cond, EUnop) and cond.op == "!":
            return self.refine(cond.operand, False, state)
        if not (isinstance(cond, EBinop) and cond.op in ("<", "<=", ">", ">=", "==")):
            return state
        out = dict(state)
        self._clamp(cond.op, cond.left, cond.right, out)
        flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "==": "=="}
        self._clamp(flipped[cond.op], cond.right, cond.left, out)
        return out

    @staticmethod
    def _clamp(op: str, left: E, right: E, state: IntervalState) -> None:
        if not isinstance(left, EVar):
            return
        cur = state.get(left.name, TOP)
        r = eval_interval(right, state)
        if op == "<":
            bound = Interval(None, None if r.hi is None else r.hi - 1)
        elif op == "<=":
            bound = Interval(None, r.hi)
        elif op == ">":
            bound = Interval(None if r.lo is None else r.lo + 1, None)
        elif op == ">=":
            bound = Interval(r.lo, None)
        else:  # ==
            bound = r
        new = cur.meet(bound)
        if not new.is_empty:
            state[left.name] = new

    def observe(self, stmt: P, state: IntervalState) -> None:
        self.at[id(stmt)] = dict(state)


# ----------------------------------------------------------------------
# the capacity lint
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ArrayContract:
    """Capacity contract for one output array: indices must stay within
    ``[0, cap - 1 + slack]`` (``slack=1`` for pos arrays, which are
    allocated with one extra slot)."""

    array: str
    cap: E
    slack: int = 0

    def describe(self) -> str:
        upper = repr(self.cap) if self.slack == 0 else f"{self.cap!r} + {self.slack}"
        return f"{self.array}[0 .. {upper} - 1]"


@dataclass(frozen=True)
class BoundsFinding:
    """The lint's verdict on one store into a contracted array."""

    array: str
    index: str      # repr of the subscript expression
    stmt: str       # repr of the store
    proven: bool
    reason: str     # how it was proven, or which bound failed

    def __str__(self) -> str:
        status = "proven " if self.proven else "NEEDS GUARD"
        return f"{status:11s} {self.array}[{self.index}]  ({self.reason})"


def _conjuncts(cond: E) -> List[E]:
    if isinstance(cond, EBinop) and cond.op == "&&":
        return _conjuncts(cond.left) + _conjuncts(cond.right)
    return [cond]


def _resolve(e: E, symenv: Dict[str, E], depth: int = 8) -> E:
    """Substitute straight-line temporary definitions into ``e`` —
    this is what lets the lint see ``min(on0, out_cap - 1)`` behind a
    CSE or LICM temporary."""
    if depth <= 0:
        return e
    if isinstance(e, EVar):
        sub = symenv.get(e.name)
        return e if sub is None else _resolve(sub, symenv, depth - 1)
    if isinstance(e, EBinop):
        return EBinop(
            e.op,
            _resolve(e.left, symenv, depth - 1),
            _resolve(e.right, symenv, depth - 1),
            e.type,
        )
    if isinstance(e, EUnop):
        return EUnop(e.op, _resolve(e.operand, symenv, depth - 1), e.type)
    return e


def _is_increment(stmt: PAssign) -> bool:
    e = stmt.expr
    v = stmt.var.name
    return (
        isinstance(e, EBinop)
        and e.op == "+"
        and (
            (isinstance(e.left, EVar) and e.left.name == v
             and isinstance(e.right, ELit) and e.right.value == 1)
            or (isinstance(e.right, EVar) and e.right.name == v
                and isinstance(e.left, ELit) and e.left.value == 1)
        )
    )


class _BoundsLinter:
    def __init__(
        self,
        contracts: Sequence[ArrayContract],
        intervals: IntervalAnalysis,
    ) -> None:
        self.contracts: Dict[str, ArrayContract] = {c.array: c for c in contracts}
        self.intervals = intervals
        self.findings: List[BoundsFinding] = []

    # -------------- flow state --------------
    def walk(self, p: P, facts: List[E], symenv: Dict[str, E]) -> None:
        if isinstance(p, PSeq):
            for item in p.items:
                self.walk(item, facts, symenv)
            return
        if isinstance(p, PIf):
            self.walk(p.then, facts + _conjuncts(p.cond), dict(symenv))
            if p.els is not None:
                neg = _negate(p.cond)
                self.walk(
                    p.els,
                    facts + ([neg] if neg is not None else []),
                    dict(symenv),
                )
            self._kill_assigned(p, facts, symenv)
            return
        if isinstance(p, PWhile):
            # conservative loop entry: facts/bindings about anything the
            # body reassigns do not survive the back edge
            self._kill_assigned(p.body, facts, symenv)
            self.walk(p.body, facts + _conjuncts(p.cond), dict(symenv))
            return
        if isinstance(p, PAssign):
            v = p.var.name
            if _is_increment(p):
                # v = v + 1 weakens v < B to v <= B; everything else
                # about v dies
                for k, f in enumerate(facts):
                    if v not in free_vars(f):
                        continue
                    if (
                        isinstance(f, EBinop)
                        and f.op == "<"
                        and isinstance(f.left, EVar)
                        and f.left.name == v
                        and v not in free_vars(f.right)
                    ):
                        facts[k] = EBinop("<=", f.left, f.right, TBOOL)
                    else:
                        facts[k] = ELit(True, TBOOL)  # dropped
            else:
                facts[:] = [f for f in facts if v not in free_vars(f)]
            for name in [
                n for n, e in symenv.items()
                if n == v or v in free_vars(e)
            ]:
                del symenv[name]
            if v not in free_vars(p.expr):
                symenv[v] = p.expr
            return
        if isinstance(p, PStore):
            contract = self.contracts.get(p.array)
            if contract is not None:
                self._check(p, contract, facts, symenv)
            return
        # PSort, PSkip, PComment: nothing to do

    def _kill_assigned(self, p: P, facts: List[E], symenv: Dict[str, E]) -> None:
        assigned, _ = stmt_effects(p)
        facts[:] = [f for f in facts if not (free_vars(f) & assigned)]
        for name in [
            n for n, e in symenv.items()
            if n in assigned or (free_vars(e) & assigned)
        ]:
            del symenv[name]

    # -------------- the proof obligations --------------
    def _check(
        self,
        store: PStore,
        contract: ArrayContract,
        facts: List[E],
        symenv: Dict[str, E],
    ) -> None:
        index = _resolve(store.index, symenv)
        reasons: List[str] = []
        lower = self._prove_lower(store, index, reasons)
        upper = self._prove_upper(index, contract, facts, symenv, reasons)
        self.findings.append(
            BoundsFinding(
                array=contract.array,
                index=repr(store.index),
                stmt=repr(store),
                proven=lower and upper,
                reason="; ".join(reasons),
            )
        )

    def _prove_lower(self, store: PStore, index: E, reasons: List[str]) -> bool:
        state = self.intervals.at.get(id(store), {})
        iv = eval_interval(index, state)
        if iv.lo is not None and iv.lo >= 0:
            reasons.append(f"index interval {iv} >= 0")
            return True
        reasons.append(f"lower bound unproven (index interval {iv})")
        return False

    def _prove_upper(
        self,
        index: E,
        contract: ArrayContract,
        facts: List[E],
        symenv: Dict[str, E],
        reasons: List[str],
    ) -> bool:
        cap_key = repr(_resolve(contract.cap, symenv))
        cap_minus_1 = repr(
            _resolve(EBinop("-", contract.cap, ilit(1), TINT), symenv)
        )
        # literal index: 0 <= i <= slack is within [0, cap-1+slack]
        # because capacities are >= 1
        if isinstance(index, ELit) and isinstance(index.value, int):
            if 0 <= index.value <= contract.slack:
                reasons.append(
                    f"constant index {index.value} <= slack {contract.slack}"
                )
                return True
            reasons.append(
                f"constant index {index.value} > slack {contract.slack}"
            )
            return False
        # structural clamp: min(_, cap - 1)
        if isinstance(index, EBinop) and index.op == "min":
            for side in (index.left, index.right):
                if repr(side) == cap_minus_1:
                    reasons.append(
                        f"clamped by min(..., {contract.cap!r} - 1)"
                    )
                    return True
        # a dominating guard: index < cap (or index <= cap with slack)
        index_key = repr(index)
        for f in facts:
            if not (isinstance(f, EBinop) and f.op in ("<", "<=")):
                continue
            if repr(_resolve(f.left, symenv)) != index_key:
                continue
            bound_key = repr(_resolve(f.right, symenv))
            if (
                (f.op == "<" and bound_key == cap_key)
                or (f.op == "<=" and bound_key == cap_key
                    and contract.slack >= 1)
                or (f.op == "<=" and bound_key == cap_minus_1)
            ):
                reasons.append(f"dominating guard {f!r}")
                return True
        reasons.append(f"no guard proves index within {contract.describe()}")
        return False


def lint_bounds(
    body: P,
    contracts: Sequence[ArrayContract],
    *,
    params: Iterable[str] = (),
    decls: Iterable[str] = (),
) -> List[BoundsFinding]:
    """Check every store into a contracted array; returns one
    :class:`BoundsFinding` per store (``proven=False`` means the store
    relies on runtime behavior the lint cannot see — the "needs guard"
    signal)."""
    if not contracts:
        return []
    positive: Set[str] = set()
    for c in contracts:
        positive |= free_vars(c.cap)
    ia = IntervalAnalysis()
    entry = IntervalAnalysis.entry_state(
        params=params, decls=decls, positive=positive
    )
    run_forward(body, ia, entry)
    linter = _BoundsLinter(contracts, ia)
    linter.walk(body, [], {})
    return linter.findings


__all__ = [
    "Interval",
    "IntervalAnalysis",
    "IntervalState",
    "TOP",
    "eval_interval",
    "ArrayContract",
    "BoundsFinding",
    "lint_bounds",
]
