"""Static stream-property inference (the paper's §6 lemmas as rules).

The Lean mechanization proves that every stream combinator *preserves*
the properties evaluation soundness depends on: lawfulness (§6.1),
monotonicity and strict monotonicity (§6.2, required for ``mul``), and
— via Theorem 6.1 — that contraction is a ⊕-reduction.  This module
turns those per-combinator preservation lemmas into *transfer rules*
over two syntaxes:

* ℒ expressions (:mod:`repro.lang.ast`), the compiler's front door —
  :func:`infer_expr` / :func:`verify_expr`, wired into
  :meth:`~repro.compiler.kernel.KernelBuilder.prepare` behind
  ``REPRO_STREAM_VERIFY`` (default on);
* runtime stream graphs (:mod:`repro.streams.combinators` over the
  sources of :mod:`repro.streams.sources`) — :func:`infer_stream` /
  :func:`verify_stream`, used by the verification suite and available
  to hand-written pipelines.

Each node gets a :class:`PropertySignature`; where a rule's side
condition fails, a :class:`Blame` record names the exact node.  Two
side conditions are not absolute but *semiring-law obligations*
(:class:`Obligation`): a contraction over a monotone-but-not-strict
level needs idempotent ⊕ (duplicate indices fold), and a sharded
contracted merge needs commutative ⊕ (partials complete out of range
order).  Obligations are discharged against the kernel's semiring by
:func:`resolve`; unmet ones become findings.

The transfer rules (sources are axioms — tensor levels are strictly
increasing by construction, function levels strictly increasing but
unbounded when no ``dims`` bound them)::

    node        lawful                monotone    strict      unbounded
    ----------- --------------------- ----------- ----------- ------------
    x · y       both ∧ both strict    both        both        ∩ (support)
    x + y       both ∧ both monotone  both        both        ∪
    Σ_a e       e lawful ∧ monotone   e           e           e − {a}
                [a unbounded → blame; e non-strict → idempotent-⊕ obligation]
    ⇑_a e       e                     e           e           e ∪ {a}?
                [a added unless a finite domain or dim bounds it]
    name_ρ e    e                     e           e           ρ(e)

:func:`certify_split` derives the shard-split legality certificate the
parallel planner consumes from the same source axioms: a split on ``a``
is mergeable exactly when ``a`` is a *strictly monotone outermost*
level (or absent) in every operand, and the merge kind follows from the
output — concatenation (``free``, exact in any semiring) when ``a`` is
the outermost output level, elementwise ⊕ (``contracted``, requiring
commutative ⊕) when ``a`` is contracted away.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    FrozenSet,
    List,
    Mapping,
    Optional,
    Tuple,
    Union,
)

from repro.compiler.formats import FunctionInput, TensorInput
from repro.errors import StreamPropertyError
from repro.lang.ast import Add, Expand, Expr, Lit, Mul, Rename, Sum, Var
from repro.lang.typing import TypeContext, elaborate
from repro.semirings.base import Semiring
from repro.streams.base import Stream
from repro.streams.combinators import (
    AddStream,
    ContractStream,
    MapStream,
    MulStream,
    RenameStream,
    SingletonContract,
)
from repro.streams.sources import (
    DenseStream,
    EmptyStream,
    FunctionStream,
    SingletonStream,
    SparseStream,
)

InputSpec = Union[TensorInput, FunctionInput]

#: the semiring laws an :class:`Obligation` may name
KNOWN_LAWS = ("idempotent-add", "commutative-add")


# ----------------------------------------------------------------------
# the signature lattice
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Blame:
    """One broken property, pinned to the node that broke it."""

    #: short name of the offending AST node / combinator (``Σ_i``,
    #: ``MulStream``, ``ReversedStream``, ...)
    node: str
    #: path from the root to the node (``expr/Σ_i/·/left``)
    path: str
    #: the transfer rule (preservation lemma) whose side condition failed
    rule: str
    #: the property that is lost (``lawful``/``monotone``/``terminating``)
    prop: str
    detail: str

    def as_dict(self) -> Dict[str, str]:
        return {
            "node": self.node,
            "path": self.path,
            "rule": self.rule,
            "property": self.prop,
            "detail": self.detail,
        }

    def __str__(self) -> str:
        return f"[{self.rule}] {self.node} at {self.path}: {self.detail}"


@dataclass(frozen=True)
class Obligation:
    """A semiring law the pipeline's soundness depends on."""

    law: str            # one of KNOWN_LAWS
    node: str           # the node that incurred the obligation
    path: str
    reason: str

    def __str__(self) -> str:
        return f"{self.node} at {self.path} requires {self.law}: {self.reason}"


@dataclass(frozen=True)
class PropertySignature:
    """The static verdict for one (sub)pipeline.

    ``lawful``/``monotone``/``strict`` are conjunctions over every
    level of the nested stream the node denotes; ``unbounded`` is the
    set of attributes whose support is not statically finite (iterating
    or contracting such a level may diverge).  ``obligations`` are
    semiring laws still to be discharged; ``blames`` are the
    unconditional violations found beneath this node.
    """

    lawful: bool = True
    monotone: bool = True
    strict: bool = True
    unbounded: FrozenSet[str] = frozenset()
    obligations: Tuple[Obligation, ...] = ()
    blames: Tuple[Blame, ...] = ()

    @property
    def bounded(self) -> bool:
        return not self.unbounded

    def describe(self) -> str:
        flags = [
            name
            for name, on in (
                ("lawful", self.lawful),
                ("monotone", self.monotone),
                ("strictly-monotone", self.strict),
                ("bounded", self.bounded),
            )
            if on
        ]
        parts = [", ".join(flags) if flags else "(no properties certified)"]
        if self.unbounded:
            parts.append(f"unbounded={{{', '.join(sorted(self.unbounded))}}}")
        if self.obligations:
            laws = sorted({ob.law for ob in self.obligations})
            parts.append(f"requires ⊕ laws: {', '.join(laws)}")
        return "; ".join(parts)


_AXIOM = PropertySignature()


# ----------------------------------------------------------------------
# shared transfer rules (one per combinator lemma)
# ----------------------------------------------------------------------
def _mul_rule(
    ls: PropertySignature, rs: PropertySignature, node: str, path: str
) -> PropertySignature:
    """§6.2: multiplication is sound only over strictly monotone
    operands (the intersection δ may otherwise skip live entries)."""
    blames = ls.blames + rs.blames
    for side, s in (("left", ls), ("right", rs)):
        if s.monotone and not s.strict:
            blames += (
                Blame(
                    node=node,
                    path=path,
                    rule="mul-strict",
                    prop="lawful",
                    detail=(
                        f"multiplication requires strictly monotone operands "
                        f"(§6.2); the {side} operand is monotone but not "
                        "strict, so the intersection skip may drop entries"
                    ),
                ),
            )
    return PropertySignature(
        lawful=ls.lawful and rs.lawful and ls.strict and rs.strict,
        monotone=ls.monotone and rs.monotone,
        strict=ls.strict and rs.strict,
        unbounded=ls.unbounded & rs.unbounded,
        obligations=ls.obligations + rs.obligations,
        blames=blames,
    )


def _add_rule(
    ls: PropertySignature, rs: PropertySignature, node: str, path: str
) -> PropertySignature:
    """Addition (sorted min-merge) preserves every property; it needs
    monotone operands for the merge not to drop entries, and its result
    is strict whenever both operands are (each index is emitted once,
    with the values combined)."""
    return PropertySignature(
        lawful=ls.lawful and rs.lawful and ls.monotone and rs.monotone,
        monotone=ls.monotone and rs.monotone,
        strict=ls.strict and rs.strict,
        unbounded=ls.unbounded | rs.unbounded,
        obligations=ls.obligations + rs.obligations,
        blames=ls.blames + rs.blames,
    )


def _contract_rule(
    inner: PropertySignature, attr: str, node: str, path: str
) -> PropertySignature:
    """Σ_a (Theorem 6.1: contraction is a ⊕-reduction).  Requires a
    lawful, monotone body; a contraction over an unbounded level never
    terminates (fatal); over a monotone-but-not-strict level it may
    fold duplicate indices, which is sound only for idempotent ⊕."""
    blames = inner.blames
    obligations = inner.obligations
    if attr in inner.unbounded:
        blames += (
            Blame(
                node=node,
                path=path,
                rule="sum-bounded",
                prop="terminating",
                detail=(
                    f"Σ_{attr} contracts a level with statically unbounded "
                    "support; the ⊕-reduction never terminates"
                ),
            ),
        )
    if inner.lawful and inner.monotone and not inner.strict:
        obligations += (
            Obligation(
                law="idempotent-add",
                node=node,
                path=path,
                reason=(
                    f"Σ_{attr} ranges over a monotone but not strictly "
                    "monotone level, which may emit an index more than "
                    "once; folding the duplicates with ⊕ is only sound "
                    "when ⊕ is idempotent"
                ),
            ),
        )
    return PropertySignature(
        lawful=inner.lawful and inner.monotone,
        monotone=inner.monotone,
        strict=inner.strict,
        unbounded=inner.unbounded - {attr},
        obligations=obligations,
        blames=blames,
    )


def _rename_rule(
    inner: PropertySignature, mapping: Mapping[str, str]
) -> PropertySignature:
    """name_ρ relabels attributes without touching the automaton."""
    return PropertySignature(
        lawful=inner.lawful,
        monotone=inner.monotone,
        strict=inner.strict,
        unbounded=frozenset(mapping.get(a, a) for a in inner.unbounded),
        obligations=inner.obligations,
        blames=inner.blames,
    )


def _conjoin(
    level: PropertySignature, children: List[PropertySignature]
) -> PropertySignature:
    """A level plus its nested value streams: properties conjoin."""
    sig = level
    for child in children:
        sig = PropertySignature(
            lawful=sig.lawful and child.lawful,
            monotone=sig.monotone and child.monotone,
            strict=sig.strict and child.strict,
            unbounded=sig.unbounded | child.unbounded,
            obligations=sig.obligations + child.obligations,
            blames=sig.blames + child.blames,
        )
    return sig


# ----------------------------------------------------------------------
# inference over ℒ expressions
# ----------------------------------------------------------------------
def infer_expr(
    expr: Expr,
    ctx: TypeContext,
    specs: Optional[Mapping[str, InputSpec]] = None,
    dims: Optional[Mapping[str, int]] = None,
) -> PropertySignature:
    """The property signature of an ℒ expression.

    ``specs`` binds variables to their input descriptions (tensor
    levels are strictly monotone axioms; function inputs are strict but
    unbounded at every level without a ``dims`` bound).  ``dims`` bounds
    expansion levels the schema leaves open (the builder passes its
    assembled ``attr_dims``).  Broadcast sugar is elaborated first, so
    inserted ⇑ nodes are analyzed like explicit ones.
    """
    core = elaborate(expr, ctx)
    bound: Dict[str, InputSpec] = dict(specs or {})
    known_dims: Dict[str, int] = dict(dims or {})
    return _infer_expr(core, ctx, bound, known_dims, "expr")


def _infer_expr(
    expr: Expr,
    ctx: TypeContext,
    specs: Dict[str, InputSpec],
    dims: Dict[str, int],
    path: str,
) -> PropertySignature:
    if isinstance(expr, Var):
        spec = specs.get(expr.name)
        if isinstance(spec, FunctionInput):
            unbounded = frozenset(
                a for a, d in zip(spec.attrs, spec.dims) if d is None
            )
            return PropertySignature(unbounded=unbounded)
        # a data structure: every level strictly increasing by
        # construction (SparseStream/DenseStream reject anything else)
        return _AXIOM
    if isinstance(expr, Lit):
        return _AXIOM
    if isinstance(expr, Mul):
        here = f"{path}/·"
        return _mul_rule(
            _infer_expr(expr.left, ctx, specs, dims, f"{here}/left"),
            _infer_expr(expr.right, ctx, specs, dims, f"{here}/right"),
            "·",
            here,
        )
    if isinstance(expr, Add):
        here = f"{path}/+"
        return _add_rule(
            _infer_expr(expr.left, ctx, specs, dims, f"{here}/left"),
            _infer_expr(expr.right, ctx, specs, dims, f"{here}/right"),
            "+",
            here,
        )
    if isinstance(expr, Sum):
        here = f"{path}/Σ_{expr.attr}"
        inner = _infer_expr(expr.body, ctx, specs, dims, here)
        return _contract_rule(inner, expr.attr, f"Σ_{expr.attr}", here)
    if isinstance(expr, Expand):
        here = f"{path}/⇑_{expr.attr}"
        inner = _infer_expr(expr.body, ctx, specs, dims, here)
        bounded = (
            dims.get(expr.attr) is not None
            or ctx.schema.attribute(expr.attr).finite
        )
        unbounded = inner.unbounded
        if not bounded:
            unbounded = unbounded | {expr.attr}
        # an expansion level iterates its (dense) domain in order:
        # strictly monotone and lawful by construction
        return PropertySignature(
            lawful=inner.lawful,
            monotone=inner.monotone,
            strict=inner.strict,
            unbounded=unbounded,
            obligations=inner.obligations,
            blames=inner.blames,
        )
    if isinstance(expr, Rename):
        here = f"{path}/name"
        inner = _infer_expr(expr.body, ctx, specs, dims, here)
        return _rename_rule(inner, expr.mapping)
    raise TypeError(f"not a core contraction expression: {expr!r}")


# ----------------------------------------------------------------------
# inference over runtime stream graphs
# ----------------------------------------------------------------------
def infer_stream(stream: object, path: str = "stream") -> PropertySignature:
    """The property signature of a runtime stream graph.

    Combinators follow the same transfer rules as the expression pass;
    sources are axioms backed by their constructor invariants.  Class
    dispatch is by *exact* type: a subclass may override any of the
    automaton methods and silently void the constructor invariant the
    axiom rests on, so an undeclared subclass is treated as unknown.
    A hand-written :class:`~repro.streams.base.Stream` subclass may
    declare its own signature via a ``static_properties`` class
    attribute (a mapping with any of ``lawful``/``monotone``/
    ``strict``/``bounded``); an undeclared unknown class cannot be
    certified and is blamed.
    """
    if not isinstance(stream, Stream):
        return _AXIOM  # a scalar leaf
    name = type(stream).__name__
    declared = getattr(type(stream), "static_properties", None)
    if isinstance(declared, Mapping):
        return _declared_signature(stream, declared, name, path)
    if type(stream) is MulStream:
        here = f"{path}/{name}"
        return _mul_rule(
            infer_stream(stream.x, f"{here}/left"),
            infer_stream(stream.y, f"{here}/right"),
            name,
            here,
        )
    if type(stream) is AddStream:
        here = f"{path}/{name}"
        return _add_rule(
            infer_stream(stream.x, f"{here}/left"),
            infer_stream(stream.y, f"{here}/right"),
            name,
            here,
        )
    if type(stream) is ContractStream:
        here = f"{path}/{name}"
        inner = infer_stream(stream.inner, here)
        return _contract_rule(inner, str(stream.inner.attr), name, here)
    if type(stream) is SingletonContract:
        here = f"{path}/{name}"
        return _conjoin(_AXIOM, [infer_stream(stream.value(0), here)])
    if type(stream) is RenameStream:
        here = f"{path}/{name}"
        return _rename_rule(infer_stream(stream.inner, here), stream.mapping)
    if type(stream) is MapStream:
        here = f"{path}/{name}"
        inner = infer_stream(stream.inner, here)
        if len(stream.shape) <= 1:
            # scalar-valued map: the level automaton is untouched
            return inner
        return PropertySignature(
            lawful=False,
            monotone=inner.monotone,
            strict=inner.strict,
            unbounded=inner.unbounded,
            obligations=inner.obligations,
            blames=inner.blames
            + (
                Blame(
                    node=name,
                    path=here,
                    rule="map-opaque",
                    prop="lawful",
                    detail=(
                        "a nested-valued MapStream applies an opaque "
                        "function to whole substreams; the analysis cannot "
                        "certify the transformed values"
                    ),
                ),
            ),
        )
    if type(stream) in (SparseStream, DenseStream):
        # constructor invariant: indices/domain strictly increase
        children = [
            infer_stream(v, f"{path}/{name}/vals[{k}]")
            for k, v in enumerate(stream.vals)
            if isinstance(v, Stream)
        ]
        return _conjoin(_AXIOM, children)
    if type(stream) is FunctionStream:
        here = f"{path}/{name}"
        unbounded: FrozenSet[str] = frozenset()
        if stream.domain is None:
            unbounded = frozenset({str(stream.attr)})
        if len(stream.shape) > 1:
            return PropertySignature(
                lawful=False,
                unbounded=unbounded,
                blames=(
                    Blame(
                        node=name,
                        path=here,
                        rule="function-opaque",
                        prop="lawful",
                        detail=(
                            "a FunctionStream computing nested substreams is "
                            "opaque to the analysis; only scalar-valued "
                            "function levels are certified"
                        ),
                    ),
                ),
            )
        return PropertySignature(unbounded=unbounded)
    if type(stream) is SingletonStream:
        here = f"{path}/{name}"
        return _conjoin(_AXIOM, [infer_stream(stream.value(0), here)])
    if type(stream) is EmptyStream:
        return _AXIOM
    return PropertySignature(
        lawful=False,
        monotone=False,
        strict=False,
        blames=(
            Blame(
                node=name,
                path=f"{path}/{name}",
                rule="unknown-source",
                prop="lawful",
                detail=(
                    f"stream class {name!r} is not a known source or "
                    "combinator and declares no `static_properties`; the "
                    "analysis cannot certify it"
                ),
            ),
        ),
    )


def _declared_signature(
    stream: Stream,
    declared: Mapping[str, object],
    name: str,
    path: str,
) -> PropertySignature:
    here = f"{path}/{name}"
    monotone = bool(declared.get("monotone", True))
    lawful = bool(declared.get("lawful", True)) and monotone
    strict = bool(declared.get("strict", True)) and monotone
    bounded = bool(declared.get("bounded", True))
    blames: Tuple[Blame, ...] = ()
    for prop, ok in (("monotone", monotone), ("lawful", lawful)):
        if not ok:
            blames += (
                Blame(
                    node=name,
                    path=here,
                    rule="declared",
                    prop=prop,
                    detail=(
                        f"source {name} declares {prop}=False; evaluation "
                        "of such a stream is outside the guarantees of "
                        "Theorem 6.1"
                    ),
                ),
            )
            break  # one blame per source is enough
    unbounded: FrozenSet[str] = frozenset()
    if not bounded:
        unbounded = frozenset({str(stream.attr)})
    return PropertySignature(
        lawful=lawful,
        monotone=monotone,
        strict=strict,
        unbounded=unbounded,
        blames=blames,
    )


# ----------------------------------------------------------------------
# obligation resolution and the verification entry points
# ----------------------------------------------------------------------
def semiring_satisfies(semiring: Semiring, law: str) -> bool:
    """Whether ``semiring``'s ⊕ provides the named law."""
    if law == "idempotent-add":
        return bool(semiring.idempotent_add)
    if law == "commutative-add":
        return bool(getattr(semiring, "commutative_add", True))
    raise ValueError(f"unknown semiring law {law!r}; known: {KNOWN_LAWS}")


def resolve(sig: PropertySignature, semiring: Semiring) -> List[Blame]:
    """Blames plus every obligation ``semiring`` fails to discharge."""
    findings = list(sig.blames)
    for ob in sig.obligations:
        if not semiring_satisfies(semiring, ob.law):
            findings.append(
                Blame(
                    node=ob.node,
                    path=ob.path,
                    rule=f"semiring-law:{ob.law}",
                    prop="lawful",
                    detail=(
                        f"{ob.reason} — ⊕ of semiring {semiring.name!r} "
                        f"does not provide {ob.law}"
                    ),
                )
            )
    return findings


def analyze_expr(
    expr: Expr,
    ctx: TypeContext,
    specs: Optional[Mapping[str, InputSpec]] = None,
    semiring: Optional[Semiring] = None,
    dims: Optional[Mapping[str, int]] = None,
) -> Tuple[PropertySignature, List[Blame]]:
    """Infer and (when a semiring is given) resolve obligations."""
    sig = infer_expr(expr, ctx, specs, dims)
    findings = resolve(sig, semiring) if semiring is not None else list(sig.blames)
    return sig, findings


def analyze_stream(
    stream: object, semiring: Optional[Semiring] = None
) -> Tuple[PropertySignature, List[Blame]]:
    sig = infer_stream(stream)
    if semiring is None and isinstance(stream, Stream):
        semiring = stream.semiring
    findings = resolve(sig, semiring) if semiring is not None else list(sig.blames)
    return sig, findings


def _raise_findings(
    findings: List[Blame], kernel: Optional[str]
) -> None:
    first = findings[0]
    raise StreamPropertyError(
        f"stream-property verification failed with {len(findings)} "
        f"finding(s); first: {first}",
        kernel=kernel,
        findings=findings,
    )


def verify_expr(
    expr: Expr,
    ctx: TypeContext,
    specs: Optional[Mapping[str, InputSpec]] = None,
    semiring: Optional[Semiring] = None,
    dims: Optional[Mapping[str, int]] = None,
    kernel: Optional[str] = None,
) -> PropertySignature:
    """:func:`analyze_expr`, raising :class:`StreamPropertyError` on any
    finding.  Returns the (clean) signature otherwise."""
    sig, findings = analyze_expr(expr, ctx, specs, semiring, dims)
    if findings:
        _raise_findings(findings, kernel)
    return sig


def verify_stream(
    stream: object,
    semiring: Optional[Semiring] = None,
    kernel: Optional[str] = None,
) -> PropertySignature:
    """:func:`analyze_stream`, raising on any finding."""
    sig, findings = analyze_stream(stream, semiring)
    if findings:
        _raise_findings(findings, kernel)
    return sig


# ----------------------------------------------------------------------
# the planner's shard-split certificate
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SplitCertificate:
    """Why a shard split is sound, as a checkable statement.

    Derived by :func:`certify_split` from the source axioms of the
    analysis: every operand either ignores ``split_attr`` or carries it
    as a strictly monotone *outermost* level (so contiguous windows of
    its range are themselves well-formed streams and partition the
    operand's support).  ``kind`` names the merge Theorem 6.1 licenses —
    ``"free"`` (the output's outermost level: concatenation, exact in
    any semiring) or ``"contracted"`` (Σ over the split attribute:
    elementwise ⊕ of partials, requiring the laws in ``requires``).

    :meth:`check` re-validates the law requirements against the
    semiring actually used at merge time; ``merge_partials`` asserts it
    before any contracted ⊕-merge.
    """

    split_attr: str
    kind: str                       # "free" | "contracted"
    #: operands row-block sliced on the split attribute (the rest pass
    #: through whole)
    outer_operands: Tuple[str, ...]
    #: semiring laws the merge relies on (⊆ KNOWN_LAWS)
    requires: Tuple[str, ...]
    #: name of the semiring the certificate was issued against
    semiring: str

    def check(self, semiring: Semiring) -> None:
        """Raise :class:`StreamPropertyError` when ``semiring`` cannot
        discharge a law this certificate's merge relies on."""
        for law in self.requires:
            if not semiring_satisfies(semiring, law):
                raise StreamPropertyError(
                    f"shard merge for split on {self.split_attr!r} "
                    f"({self.kind}) requires {law}, which semiring "
                    f"{semiring.name!r} does not provide",
                    findings=[
                        Blame(
                            node=f"merge[{self.split_attr}]",
                            path="shard-merge",
                            rule=f"semiring-law:{law}",
                            prop="lawful",
                            detail=(
                                f"the {self.kind} merge ⊕-combines shard "
                                f"partials; {law} is required but "
                                f"{semiring.name!r} does not declare it"
                            ),
                        )
                    ],
                )


def refusal_reason(kernel: Any, attr: str) -> Optional[str]:
    """Why ``attr`` is not a certifiable split for ``kernel`` (None when
    it is).  The planner quotes this in its explicit-split error."""
    any_outer = False
    for name, spec in kernel.input_specs.items():
        kind = spec.split_kind(attr)
        if kind is None:
            if isinstance(spec, FunctionInput):
                return (
                    f"function input {name!r} evaluates {attr!r} at absolute "
                    "indices; slicing would rebase them"
                )
            return (
                f"operand {name!r} carries {attr!r} at an inner level; "
                "windows of an inner level are not streams"
            )
        if kind == "outer":
            any_outer = True
    if not any_outer:
        return (
            f"no operand is partitioned by {attr!r}; every shard would "
            "recompute the whole problem"
        )
    out = kernel.output
    sr = kernel.ops.semiring
    if out is None or attr not in out.attrs:
        if not semiring_satisfies(sr, "commutative-add"):
            return (
                f"the contracted merge on {attr!r} ⊕-combines partials out "
                f"of range order, but ⊕ of {sr.name!r} is not commutative"
            )
        return None
    if out.attrs[0] == attr:
        return None
    return (
        f"{attr!r} sits at an inner level of the output; neither "
        "concatenation nor ⊕-merge reassembles it"
    )


def certify_split(kernel: Any, attr: str) -> Optional[SplitCertificate]:
    """Derive the shard-split certificate for ``attr``, or None.

    Legality comes from the analysis' source axioms: tensor levels are
    strictly monotone by construction, so an *outermost* occurrence of
    ``attr`` may be windowed; a function input mentioning ``attr``
    refuses (absolute-index rebasing); the merge kind follows from the
    output placement, and a contracted merge additionally needs the
    kernel's ⊕ to be commutative (checked here, so an uncertifiable
    split never reaches the executor)."""
    if refusal_reason(kernel, attr) is not None:
        return None
    outer = tuple(
        name
        for name, spec in kernel.input_specs.items()
        if spec.split_kind(attr) == "outer"
    )
    out = kernel.output
    sr = kernel.ops.semiring
    if out is None or attr not in out.attrs:
        kind = "contracted"
        requires: Tuple[str, ...] = ("commutative-add",)
    else:
        kind = "free"
        requires = ()
    return SplitCertificate(
        split_attr=attr,
        kind=kind,
        outer_operands=outer,
        requires=requires,
        semiring=str(sr.name),
    )


__all__ = [
    "Blame",
    "Obligation",
    "PropertySignature",
    "SplitCertificate",
    "StreamPropertyError",
    "KNOWN_LAWS",
    "analyze_expr",
    "analyze_stream",
    "certify_split",
    "infer_expr",
    "infer_stream",
    "refusal_reason",
    "resolve",
    "semiring_satisfies",
    "verify_expr",
    "verify_stream",
]
