"""Command-line verification/lint report for example kernels.

Usage::

    python -m repro.compiler.analysis <kernel> [<kernel> ...]
    python -m repro.compiler.analysis --all

Each named kernel (``spmv``, ``matmul``, ``dot``, ``vadd``, ``sddmm``)
is compiled with the interpreter backend (no toolchain needed), then
the report prints the typed-IR verification issues, the capacity
lint's verdict on every store into a capacity-managed output array,
and the stream-level property signature (lawfulness, monotonicity,
boundedness, ⊕-law obligations) inferred by
:mod:`repro.compiler.analysis.streamprops` — the IR-level and
stream-level verdicts in one report.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.compiler.analysis.streamprops import analyze_expr
from repro.compiler.analysis.verifier import verify_kernel
from repro.compiler.formats import TensorInput
from repro.compiler.kernel import Kernel, OutputSpec, compile_kernel
from repro.data.tensor import Tensor
from repro.krelation.schema import Schema
from repro.lang.ast import Sum, Var
from repro.lang.typing import TypeContext
from repro.semirings.instances import FLOAT

N = 8


def _vec(attr: str) -> Tensor:
    entries = {(i,): float(i + 1) for i in range(N)}
    return Tensor.from_entries((attr,), ("dense",), (N,), entries, FLOAT)


def _mat(attrs: Tuple[str, str], formats=("dense", "sparse")) -> Tensor:
    entries = {
        (r, c): float(1 + (r + c) % 5)
        for r in range(N)
        for c in range(N)
        if (r * 31 + c * 17) % 3 == 0
    }
    return Tensor.from_entries(attrs, formats, (N, N), entries, FLOAT)


def _build_spmv() -> Kernel:
    schema = Schema.of(i=range(N), j=range(N))
    ctx = TypeContext(schema, {"A": {"i", "j"}, "v": {"j"}})
    return compile_kernel(
        Sum("j", Var("A") * Var("v")), ctx,
        {"A": _mat(("i", "j")), "v": _vec("j")},
        OutputSpec(("i",), ("dense",), (N,)),
        backend="interp", cache=False, name="cli_spmv",
    )


def _build_matmul() -> Kernel:
    schema = Schema.of(i=range(N), k=range(N), j=range(N))
    ctx = TypeContext(schema, {"A": {"i", "k"}, "B": {"k", "j"}})
    return compile_kernel(
        Sum("k", Var("A") * Var("B")), ctx,
        {"A": _mat(("i", "k")), "B": _mat(("k", "j"))},
        OutputSpec(("i", "j"), ("dense", "sparse"), (N, N)),
        backend="interp", cache=False, name="cli_matmul",
    )


def _build_dot() -> Kernel:
    schema = Schema.of(i=range(N))
    ctx = TypeContext(schema, {"x": {"i"}, "y": {"i"}})
    return compile_kernel(
        Sum("i", Var("x") * Var("y")), ctx,
        {"x": _vec("i"), "y": _vec("i")},
        None, backend="interp", cache=False, name="cli_dot",
    )


def _build_vadd() -> Kernel:
    schema = Schema.of(i=range(N))
    ctx = TypeContext(schema, {"x": {"i"}, "y": {"i"}})
    x = Tensor.from_entries(
        ("i",), ("sparse",), (N,), {(i,): float(i) for i in range(0, N, 2)}, FLOAT
    )
    y = Tensor.from_entries(
        ("i",), ("sparse",), (N,), {(i,): float(i) for i in range(1, N, 3)}, FLOAT
    )
    return compile_kernel(
        Var("x") + Var("y"), ctx, {"x": x, "y": y},
        OutputSpec(("i",), ("sparse",), (N,)),
        backend="interp", cache=False, name="cli_vadd",
    )


def _build_sddmm() -> Kernel:
    schema = Schema.of(i=range(N), j=range(N), k=range(N))
    ctx = TypeContext(
        schema, {"S": {"i", "j"}, "A": {"i", "k"}, "B": {"j", "k"}}
    )
    return compile_kernel(
        Sum("k", Var("S") * Var("A") * Var("B")), ctx,
        {"S": _mat(("i", "j")), "A": _mat(("i", "k"), ("dense", "dense")),
         "B": _mat(("j", "k"), ("dense", "dense"))},
        OutputSpec(("i", "j"), ("dense", "sparse"), (N, N)),
        backend="interp", cache=False, name="cli_sddmm",
    )


KERNELS: Dict[str, Callable[[], Kernel]] = {
    "spmv": _build_spmv,
    "matmul": _build_matmul,
    "dot": _build_dot,
    "vadd": _build_vadd,
    "sddmm": _build_sddmm,
}


def report(name: str, kernel: Kernel) -> int:
    """Print the verification + lint report; return the error count."""
    print(f"== kernel {name!r} ({kernel.name}) " + "=" * max(0, 40 - len(name)))
    print(f"   params: {', '.join(f'{p.name}:{p.ctype}' for p in kernel.params)}")
    print(f"   locals: {len(kernel.decls)} compiler temporaries")

    issues = verify_kernel(kernel)
    errors = [i for i in issues if i.severity == "error"]
    warnings = [i for i in issues if i.severity != "error"]
    if not issues:
        print("   verifier: clean (no issues)")
    for issue in issues:
        print(f"   verifier: {issue.severity}[{issue.invariant}] {issue.message}")

    findings = kernel.capacity_findings
    if not findings:
        print("   bounds lint: no capacity-managed stores (dense/scalar output)")
    for f in findings:
        print(f"   bounds lint: {f}")
    unproven = [f for f in findings if not f.proven]

    stream_errors = 0
    recipe = kernel.recipe
    if recipe is None:
        print("   stream properties: (no recipe; not analyzable post-hoc)")
    else:
        specs = {
            var: TensorInput(var, attrs, formats, kernel.ops)
            for var, attrs, formats in recipe.input_structure
        }
        sig, stream_findings = analyze_expr(
            recipe.expr, recipe.ctx, specs, recipe.semiring,
            dims=dict(recipe.attr_dims),
        )
        print(f"   stream properties: {sig.describe()}")
        for b in stream_findings:
            print(f"   stream properties: FINDING {b}")
        stream_errors = len(stream_findings)

    verdict = "NEEDS GUARD" if unproven else "ok"
    print(
        f"   summary: {len(errors)} error(s), {len(warnings)} warning(s), "
        f"{stream_errors} stream finding(s), "
        f"{len(findings) - len(unproven)}/{len(findings)} store(s) proven "
        f"in-bounds -> {verdict}"
    )
    return len(errors) + stream_errors


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.compiler.analysis",
        description="verify and bounds-lint example kernels",
    )
    parser.add_argument(
        "kernels", nargs="*", metavar="kernel",
        help=f"kernel name(s): {', '.join(sorted(KERNELS))}",
    )
    parser.add_argument("--all", action="store_true", help="report on every kernel")
    args = parser.parse_args(argv)

    names = sorted(KERNELS) if args.all or not args.kernels else args.kernels
    errors = 0
    for name in names:
        build = KERNELS.get(name)
        if build is None:
            parser.error(f"unknown kernel {name!r}; choose from {sorted(KERNELS)}")
        errors += report(name, build())
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
