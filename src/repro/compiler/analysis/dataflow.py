"""A small dataflow framework over the structured IR **P**.

**P** has no goto, so analyses run directly on the statement tree: a
:class:`ForwardAnalysis` is folded over sequences, joined across
branches, and iterated to a fixpoint around ``while`` loops (with a
``widen`` hook for infinite-height domains); a
:class:`BackwardAnalysis` is the mirror image.  Two classic instances
are provided — :class:`ReachingDefinitions` and
:class:`LiveVariables` — plus :func:`def_use_chains` built on the
former.

The structural helpers at the top (:func:`expr_uses`,
:func:`free_vars`, :func:`arrays_read`, :func:`stmt_effects`,
:func:`stmt_reads`, :func:`live_transfer`) are the single shared
implementation used by the optimizer passes in
:mod:`repro.compiler.opt`, the vectorizer in
:mod:`repro.compiler.codegen_py`, and the verifier — previously each
site carried its own ad-hoc copy.
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Generic,
    List,
    Optional,
    Set,
    Tuple,
    TypeVar,
)

from repro.compiler.ir import (
    E,
    EAccess,
    EBinop,
    ECall,
    ECond,
    EUnop,
    EVar,
    P,
    PAssign,
    PIf,
    PSeq,
    PSort,
    PStore,
    PWhile,
)

S = TypeVar("S")


# ----------------------------------------------------------------------
# structural helpers (shared by opt, codegen_py, verifier, intervals)
# ----------------------------------------------------------------------
def expr_key(e: E) -> str:
    """A structural identity key (E reprs are deterministic and total)."""
    return repr(e)


def expr_uses(e: E, vars_out: Set[str], arrays_out: Set[str]) -> None:
    """Collect variable names read and arrays read by ``e``."""
    if isinstance(e, EVar):
        vars_out.add(e.name)
    elif isinstance(e, EAccess):
        arrays_out.add(e.array)
        expr_uses(e.index, vars_out, arrays_out)
    elif isinstance(e, EBinop):
        expr_uses(e.left, vars_out, arrays_out)
        expr_uses(e.right, vars_out, arrays_out)
    elif isinstance(e, EUnop):
        expr_uses(e.operand, vars_out, arrays_out)
    elif isinstance(e, ECond):
        expr_uses(e.cond, vars_out, arrays_out)
        expr_uses(e.then, vars_out, arrays_out)
        expr_uses(e.els, vars_out, arrays_out)
    elif isinstance(e, ECall):
        for a in e.args:
            expr_uses(a, vars_out, arrays_out)


def free_vars(e: E) -> Set[str]:
    vs: Set[str] = set()
    expr_uses(e, vs, set())
    return vs


def arrays_read(e: E) -> Set[str]:
    arrs: Set[str] = set()
    expr_uses(e, set(), arrs)
    return arrs


def stmt_effects(p: P) -> Tuple[Set[str], Set[str]]:
    """(variables assigned, arrays stored) anywhere inside ``p``."""
    assigned: Set[str] = set()
    stored: Set[str] = set()

    def walk(s: P) -> None:
        if isinstance(s, PSeq):
            for item in s.items:
                walk(item)
        elif isinstance(s, PAssign):
            assigned.add(s.var.name)
        elif isinstance(s, PStore):
            stored.add(s.array)
        elif isinstance(s, PSort):
            stored.add(s.array)
        elif isinstance(s, PWhile):
            walk(s.body)
        elif isinstance(s, PIf):
            walk(s.then)
            if s.els is not None:
                walk(s.els)

    walk(p)
    return assigned, stored


def stmt_reads(p: P) -> Set[str]:
    """Every variable *read* anywhere inside ``p``."""
    out: Set[str] = set()

    def walk(s: P) -> None:
        if isinstance(s, PSeq):
            for item in s.items:
                walk(item)
        elif isinstance(s, PAssign):
            out.update(free_vars(s.expr))
        elif isinstance(s, PStore):
            out.update(free_vars(s.index))
            out.update(free_vars(s.expr))
        elif isinstance(s, PSort):
            out.update(free_vars(s.count))
        elif isinstance(s, PWhile):
            out.update(free_vars(s.cond))
            walk(s.body)
        elif isinstance(s, PIf):
            out.update(free_vars(s.cond))
            walk(s.then)
            if s.els is not None:
                walk(s.els)

    walk(p)
    return out


def live_transfer(p: P, live: Set[str]) -> Set[str]:
    """The backward liveness transfer for one *leaf* statement: kill the
    assigned variable, then gen everything the statement reads.  Shared
    by :class:`LiveVariables` and the dead-store-elimination pass."""
    if isinstance(p, PAssign):
        return (live - {p.var.name}) | free_vars(p.expr)
    if isinstance(p, PStore):
        return live | free_vars(p.index) | free_vars(p.expr)
    if isinstance(p, PSort):
        return live | free_vars(p.count)
    return live


# ----------------------------------------------------------------------
# the fixpoint engines
# ----------------------------------------------------------------------
class ForwardAnalysis(Generic[S]):
    """A forward analysis: state flows top-to-bottom through the tree.

    Subclasses implement ``transfer`` (leaf statements only — the
    engine handles sequencing, branching, and loops), ``join``, and
    optionally ``refine`` (branch-condition refinement, used by the
    interval domain) and ``widen`` (for infinite-height domains).
    ``observe`` is called with the *in*-state of every leaf statement
    and every condition on a final post-fixpoint pass, which is where
    instances record their per-program-point results.
    """

    #: iteration bound before ``widen`` is forced (loops)
    max_iter: int = 16

    def transfer(self, stmt: P, state: S) -> S:
        raise NotImplementedError

    def join(self, a: S, b: S) -> S:
        raise NotImplementedError

    def eq(self, a: S, b: S) -> bool:
        return bool(a == b)

    def widen(self, older: S, newer: S) -> S:
        return newer

    def refine(self, cond: E, branch: bool, state: S) -> S:
        return state

    def observe(self, stmt: P, state: S) -> None:
        pass

    def observe_cond(self, owner: P, cond: E, state: S) -> None:
        pass


def run_forward(p: P, analysis: ForwardAnalysis[S], state: S) -> S:
    """Run ``analysis`` over ``p`` from ``state``; returns the exit
    state.  Observation hooks fire exactly once per program point."""
    return _forward(p, analysis, state, observe=True)


def _forward(p: P, an: ForwardAnalysis[S], state: S, observe: bool) -> S:
    if isinstance(p, PSeq):
        for item in p.items:
            state = _forward(item, an, state, observe)
        return state
    if isinstance(p, PIf):
        if observe:
            an.observe_cond(p, p.cond, state)
        t = _forward(p.then, an, an.refine(p.cond, True, state), observe)
        if p.els is not None:
            e = _forward(p.els, an, an.refine(p.cond, False, state), observe)
        else:
            e = an.refine(p.cond, False, state)
        return an.join(t, e)
    if isinstance(p, PWhile):
        head = state
        for iteration in range(an.max_iter):
            out = _forward(p.body, an, an.refine(p.cond, True, head), False)
            joined = an.join(head, out)
            if an.eq(joined, head):
                break
            head = an.widen(head, joined) if iteration >= 2 else joined
        else:  # pragma: no cover - widening guarantees convergence
            raise RuntimeError("dataflow fixpoint did not converge")
        if observe:
            an.observe_cond(p, p.cond, head)
            _forward(p.body, an, an.refine(p.cond, True, head), True)
        return an.refine(p.cond, False, head)
    # leaf statements: PAssign, PStore, PSort, PSkip, PComment
    if observe:
        an.observe(p, state)
    return an.transfer(p, state)


class BackwardAnalysis(Generic[S]):
    """A backward analysis: state flows bottom-to-top (e.g. liveness)."""

    max_iter: int = 16

    def transfer(self, stmt: P, state: S) -> S:
        raise NotImplementedError

    def transfer_cond(self, cond: E, state: S) -> S:
        return state

    def join(self, a: S, b: S) -> S:
        raise NotImplementedError

    def eq(self, a: S, b: S) -> bool:
        return bool(a == b)

    def observe(self, stmt: P, state: S) -> None:
        pass


def run_backward(p: P, analysis: BackwardAnalysis[S], state: S) -> S:
    """Run ``analysis`` over ``p`` from exit state ``state``; returns
    the entry state."""
    return _backward(p, analysis, state, observe=True)


def _backward(p: P, an: BackwardAnalysis[S], state: S, observe: bool) -> S:
    if isinstance(p, PSeq):
        for item in reversed(p.items):
            state = _backward(item, an, state, observe)
        return state
    if isinstance(p, PIf):
        t = _backward(p.then, an, state, observe)
        e = _backward(p.els, an, state, observe) if p.els is not None else state
        return an.transfer_cond(p.cond, an.join(t, e))
    if isinstance(p, PWhile):
        # entry state L satisfies L = cond ⊔ exit ⊔ body-entry(L)
        head = an.transfer_cond(p.cond, state)
        for _ in range(an.max_iter):
            body_in = _backward(p.body, an, head, False)
            joined = an.join(head, an.transfer_cond(p.cond, an.join(state, body_in)))
            if an.eq(joined, head):
                break
            head = joined
        else:  # pragma: no cover - finite domains converge
            raise RuntimeError("dataflow fixpoint did not converge")
        if observe:
            _backward(p.body, an, head, True)
        return head
    if observe:
        an.observe(p, state)
    return an.transfer(p, state)


# ----------------------------------------------------------------------
# reaching definitions
# ----------------------------------------------------------------------
#: pseudo-definition labels for the state at kernel entry
ENTRY_PARAM = "<param>"
ENTRY_ZERO = "<zero-init>"

RDState = Dict[str, FrozenSet[str]]


def _def_label(stmt: PAssign) -> str:
    return f"def@{id(stmt):x}:{stmt.var.name}"


class ReachingDefinitions(ForwardAnalysis[RDState]):
    """Which definitions of each variable may reach each program point.

    The entry state maps parameters to :data:`ENTRY_PARAM` and declared
    locals to :data:`ENTRY_ZERO` (both backends zero-initialize every
    declared local at kernel entry).  After :func:`run_forward`,
    ``uses`` maps each (statement, variable) use to the set of def
    labels that reach it — the raw material for use-before-def
    checking and def-use chains.
    """

    def __init__(self) -> None:
        #: (id(stmt), var) -> reaching def labels at that use
        self.uses: Dict[Tuple[int, str], FrozenSet[str]] = {}
        #: def label -> the defining statement's repr (diagnostics)
        self.def_reprs: Dict[str, str] = {}
        #: (id(stmt), var) -> repr of the reading statement
        self.use_reprs: Dict[Tuple[int, str], str] = {}

    @staticmethod
    def entry_state(params: List[str], decls: List[str]) -> RDState:
        state: RDState = {name: frozenset((ENTRY_PARAM,)) for name in params}
        for name in decls:
            state.setdefault(name, frozenset((ENTRY_ZERO,)))
        return state

    def transfer(self, stmt: P, state: RDState) -> RDState:
        if isinstance(stmt, PAssign):
            label = _def_label(stmt)
            self.def_reprs[label] = repr(stmt)
            new = dict(state)
            new[stmt.var.name] = frozenset((label,))
            return new
        return state

    def join(self, a: RDState, b: RDState) -> RDState:
        out = dict(a)
        for k, v in b.items():
            out[k] = out.get(k, frozenset()) | v
        return out

    def _record(self, stmt: P, e: E, state: RDState) -> None:
        for name in free_vars(e):
            key = (id(stmt), name)
            self.uses[key] = self.uses.get(key, frozenset()) | state.get(
                name, frozenset()
            )
            self.use_reprs[key] = repr(stmt)

    def observe(self, stmt: P, state: RDState) -> None:
        if isinstance(stmt, PAssign):
            self._record(stmt, stmt.expr, state)
        elif isinstance(stmt, PStore):
            self._record(stmt, stmt.index, state)
            self._record(stmt, stmt.expr, state)
        elif isinstance(stmt, PSort):
            self._record(stmt, stmt.count, state)

    def observe_cond(self, owner: P, cond: E, state: RDState) -> None:
        self._record(owner, cond, state)


class DefUse:
    """Def-use chains: for every definition, the uses it may reach."""

    def __init__(self, rd: ReachingDefinitions) -> None:
        self.rd = rd
        #: def label -> set of (id(stmt), var) uses it reaches
        self.uses_of_def: Dict[str, Set[Tuple[int, str]]] = {}
        for use, defs in rd.uses.items():
            for label in defs:
                self.uses_of_def.setdefault(label, set()).add(use)

    def dead_defs(self) -> List[str]:
        """Def labels (real assignments, not entry pseudo-defs) that
        reach no use — dead stores a DSE pass should have removed."""
        return [
            label
            for label in self.rd.def_reprs
            if label not in self.uses_of_def
        ]


def def_use_chains(
    body: P, params: List[str], decls: List[str]
) -> DefUse:
    """Compute def-use chains for a kernel body."""
    rd = ReachingDefinitions()
    run_forward(body, rd, ReachingDefinitions.entry_state(params, decls))
    return DefUse(rd)


# ----------------------------------------------------------------------
# live variables
# ----------------------------------------------------------------------
LVState = FrozenSet[str]


class LiveVariables(BackwardAnalysis[LVState]):
    """Classic backward liveness; ``live_in`` records the live set
    *before* each leaf statement (keyed by ``id``)."""

    def __init__(self) -> None:
        self.live_in: Dict[int, LVState] = {}

    def transfer(self, stmt: P, state: LVState) -> LVState:
        result = frozenset(live_transfer(stmt, set(state)))
        self.live_in[id(stmt)] = result
        return result

    def transfer_cond(self, cond: E, state: LVState) -> LVState:
        return state | frozenset(free_vars(cond))

    def join(self, a: LVState, b: LVState) -> LVState:
        return a | b


def liveness(body: P, live_out: Optional[Set[str]] = None) -> LiveVariables:
    """Run liveness over a kernel body; ``live_out`` is the set of
    variables read after the body (e.g. none for a full kernel)."""
    lv = LiveVariables()
    run_backward(body, lv, frozenset(live_out or ()))
    return lv


#: re-exported for callers that want the module as one namespace
__all__ = [
    "ForwardAnalysis",
    "BackwardAnalysis",
    "ReachingDefinitions",
    "LiveVariables",
    "DefUse",
    "ENTRY_PARAM",
    "ENTRY_ZERO",
    "RDState",
    "LVState",
    "run_forward",
    "run_backward",
    "def_use_chains",
    "liveness",
    "expr_key",
    "expr_uses",
    "free_vars",
    "arrays_read",
    "stmt_effects",
    "stmt_reads",
    "live_transfer",
]
