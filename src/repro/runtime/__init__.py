"""Sharded parallel execution runtime.

Contraction programs are semiring homomorphisms (Theorem 6.1): a
contraction over an index ``i`` is a ⊕-reduction, so evaluating the
same kernel on a partition of ``i``'s range and combining the partial
results with ⊕ (for contracted indices) or concatenation (for free
indices) is exact — not an approximation — in every semiring.  This
package exploits that:

- :mod:`repro.runtime.planner` picks a split index and nnz-balanced
  range boundaries from the operands' position arrays;
- :mod:`repro.runtime.executor` runs shard tasks on one of three
  backends (``serial`` | ``thread`` | ``process``) behind a single
  futures API with a bounded task queue;
- :mod:`repro.runtime.merge` combines the partial outputs
  semiring-correctly;
- :mod:`repro.runtime.api` glues them under
  :meth:`repro.compiler.kernel.Kernel.run_sharded` and the
  ``REPRO_PARALLEL`` / ``REPRO_WORKERS`` environment knobs.
"""

from repro.runtime.api import run_batch, run_sharded
from repro.runtime.executor import (
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    discard_shared_executor,
    get_executor,
    get_shared_executor,
    shutdown_shared_executors,
)
from repro.runtime.merge import merge_partials
from repro.runtime.planner import ShardPlan, plan_shards, slice_operands

__all__ = [
    "Executor",
    "ProcessExecutor",
    "SerialExecutor",
    "ShardPlan",
    "ThreadExecutor",
    "discard_shared_executor",
    "get_executor",
    "get_shared_executor",
    "merge_partials",
    "plan_shards",
    "run_batch",
    "run_sharded",
    "shutdown_shared_executors",
    "slice_operands",
]
