"""Sharded parallel execution runtime.

Contraction programs are semiring homomorphisms (Theorem 6.1): a
contraction over an index ``i`` is a ⊕-reduction, so evaluating the
same kernel on a partition of ``i``'s range and combining the partial
results with ⊕ (for contracted indices) or concatenation (for free
indices) is exact — not an approximation — in every semiring.  This
package exploits that:

- :mod:`repro.runtime.planner` picks a split index and nnz-balanced
  range boundaries from the operands' position arrays;
- :mod:`repro.runtime.executor` runs shard tasks on one of three
  backends (``serial`` | ``thread`` | ``process``) behind a single
  futures API with a bounded task queue;
- :mod:`repro.runtime.merge` combines the partial outputs
  semiring-correctly;
- :mod:`repro.runtime.api` glues them under
  :meth:`repro.compiler.kernel.Kernel.run_sharded` and the
  ``REPRO_PARALLEL`` / ``REPRO_WORKERS`` environment knobs;
- :mod:`repro.runtime.supervisor` contains one kernel invocation in a
  resource-capped child process (``REPRO_SUPERVISE``,
  ``REPRO_KERNEL_DEADLINE``, ``REPRO_KERNEL_MEM_MB``) so a segfault or
  runaway loop becomes a typed error instead of host death;
- :mod:`repro.runtime.breaker` quarantines kernels that keep dying
  under supervision behind a circuit breaker that serves the
  pure-Python backend until a backoff re-probe succeeds.
"""

from repro.runtime.api import ShardStat, run_batch, run_sharded
# the process-wide instance is re-exported as `circuit_breaker`: the
# plain name would shadow the `repro.runtime.breaker` submodule
from repro.runtime.breaker import CircuitBreaker, breaker as circuit_breaker
from repro.runtime.executor import (
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    discard_shared_executor,
    get_executor,
    get_shared_executor,
    shutdown_shared_executors,
)
from repro.runtime.merge import merge_partials
from repro.runtime.planner import ShardPlan, plan_shards, slice_operands
from repro.runtime.supervisor import can_supervise, run_supervised

__all__ = [
    "CircuitBreaker",
    "Executor",
    "ProcessExecutor",
    "SerialExecutor",
    "ShardPlan",
    "ShardStat",
    "ThreadExecutor",
    "can_supervise",
    "circuit_breaker",
    "discard_shared_executor",
    "get_executor",
    "get_shared_executor",
    "merge_partials",
    "plan_shards",
    "run_batch",
    "run_sharded",
    "run_supervised",
    "shutdown_shared_executors",
    "slice_operands",
]
