"""Sharded parallel execution runtime.

Contraction programs are semiring homomorphisms (Theorem 6.1): a
contraction over an index ``i`` is a ⊕-reduction, so evaluating the
same kernel on a partition of ``i``'s range and combining the partial
results with ⊕ (for contracted indices) or concatenation (for free
indices) is exact — not an approximation — in every semiring.  This
package exploits that:

- :mod:`repro.runtime.planner` picks a split index and nnz-balanced
  range boundaries from the operands' position arrays;
- :mod:`repro.runtime.executor` runs shard tasks on one of four
  backends (``serial`` | ``thread`` | ``process`` | ``pool``) behind a
  single futures API with a bounded task queue;
- :mod:`repro.runtime.merge` combines the partial outputs
  semiring-correctly;
- :mod:`repro.runtime.api` glues them under
  :meth:`repro.compiler.kernel.Kernel.run_sharded` and the
  ``REPRO_PARALLEL`` / ``REPRO_WORKERS`` environment knobs;
- :mod:`repro.runtime.supervisor` contains one kernel invocation in a
  resource-capped child process (``REPRO_SUPERVISE``,
  ``REPRO_KERNEL_DEADLINE``, ``REPRO_KERNEL_MEM_MB``) so a segfault or
  runaway loop becomes a typed error instead of host death;
- :mod:`repro.runtime.breaker` quarantines kernels that keep dying
  under supervision behind a circuit breaker that serves the
  pure-Python backend until a backoff re-probe succeeds;
- :mod:`repro.runtime.pool` keeps a persistent, pre-warmed set of
  worker processes holding compiled kernels resident
  (``REPRO_POOL_WORKERS``, ``REPRO_POOL_WARM``,
  ``REPRO_POOL_IDLE_TTL``), with supervision amortized inside the
  workers (``REPRO_POOL``);
- :mod:`repro.runtime.shm` is the zero-copy data plane under it:
  operands and results cross the process boundary as shared-memory
  descriptors, not pickles (``REPRO_SHM_THRESHOLD``);
- :mod:`repro.runtime.jobs` checkpoints completed shard partials to an
  atomic, checksummed on-disk journal keyed by a deterministic job
  signature (``REPRO_DURABLE``, ``REPRO_JOB_DIR``), so a run killed
  mid-job resumes instead of restarting;
- :mod:`repro.runtime.governor` bounds resident partial memory
  (``REPRO_MEM_BUDGET_MB``) by spilling to the journal and merging
  with a streaming incremental ⊕-fold — larger-than-RAM contractions.
"""

from repro.runtime.api import ShardStat, run_batch, run_sharded
# the process-wide instance is re-exported as `circuit_breaker`: the
# plain name would shadow the `repro.runtime.breaker` submodule
from repro.runtime.breaker import CircuitBreaker, breaker as circuit_breaker
from repro.runtime.executor import (
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    discard_shared_executor,
    get_executor,
    get_shared_executor,
    shutdown_shared_executors,
)
from repro.runtime.executor import (
    PoolExecutor,
    register_runtime_shutdown,
    shutdown_shared_runtime,
)
from repro.runtime.governor import PartialAccumulator, partial_nbytes
from repro.runtime.jobs import (
    JobJournal,
    fingerprint_tensor,
    gc_jobs,
    job_root,
    job_signature,
)
from repro.runtime.merge import merge_partials
from repro.runtime.planner import ShardPlan, plan_shards, slice_operands
from repro.runtime.pool import (
    PoolStats,
    PoolUnavailableError,
    WorkerPool,
    get_shared_pool,
    pool_key,
    run_pooled,
    shutdown_shared_pool,
)
from repro.runtime.supervisor import can_supervise, run_supervised

__all__ = [
    "CircuitBreaker",
    "Executor",
    "JobJournal",
    "PartialAccumulator",
    "PoolExecutor",
    "PoolStats",
    "PoolUnavailableError",
    "ProcessExecutor",
    "SerialExecutor",
    "ShardPlan",
    "ShardStat",
    "ThreadExecutor",
    "WorkerPool",
    "can_supervise",
    "circuit_breaker",
    "discard_shared_executor",
    "fingerprint_tensor",
    "gc_jobs",
    "get_executor",
    "get_shared_executor",
    "get_shared_pool",
    "job_root",
    "job_signature",
    "merge_partials",
    "partial_nbytes",
    "plan_shards",
    "pool_key",
    "register_runtime_shutdown",
    "run_batch",
    "run_pooled",
    "run_sharded",
    "run_supervised",
    "shutdown_shared_executors",
    "shutdown_shared_pool",
    "shutdown_shared_runtime",
    "slice_operands",
]
