"""Durable job journal: crash-safe checkpoints for sharded execution.

A *job* is one ``run_sharded`` invocation, identified by a
deterministic signature over everything that decides its result: the
kernel's content-addressed cache key, the shard plan (split attribute,
kind, ranges), and a fingerprint of every operand tensor's raw storage
arrays.  Re-running the same contraction on the same inputs therefore
computes the same ``job_id`` — which is the whole resume story: a
process killed mid-job leaves its journal behind, and the next run with
the same signature loads the journaled shard partials instead of
re-executing them.

Each completed shard partial is published with the PR 2 crash-safe
primitives: serialized, framed with a SHA-256 checksum header, written
via :func:`~repro.compiler.resilience.atomic_write_bytes` under a
:func:`~repro.compiler.resilience.file_lock` — so a SIGKILL at any
instant leaves either a fully verifiable shard file or nothing, never a
torn write.  A shard file whose checksum fails on load is quarantined
(kept as ``.corrupt`` for post-mortem) and its shard simply re-executes.

Journal writes are *best effort*: a full disk or read-only journal
directory degrades durability (the run completes from RAM exactly as a
non-durable run would), it never fails the computation.

Values round-trip bit-identically: a :class:`~repro.data.tensor.Tensor`
is journaled as its raw ``pos``/``crd``/``vals`` numpy arrays, and
numpy arrays pickle exactly — so a resumed merge sees the *same bytes*
an uninterrupted run would have merged.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import shutil
import time
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Set

import numpy as np

from repro.compiler import resilience
from repro.compiler.cache import default_cache_dir
from repro.compiler.resilience import (
    atomic_write_bytes,
    atomic_write_text,
    file_lock,
    logger,
    quarantine,
    usable_cache_dir,
)
from repro.data.tensor import Tensor

#: shard files use a fixed-width index so directory listings sort
_SHARD_FMT = "shard_{:05d}.bin"
#: journal directories untouched past this many seconds are GC'd
DEFAULT_JOB_TTL = 7 * 24 * 3600.0


def job_root() -> Path:
    """The directory job journals live under (``REPRO_JOB_DIR``,
    default ``<kernel cache dir>/jobs``), created on demand with the
    same unusable-directory fallback as the kernel cache."""
    env = resilience.job_dir_env()
    preferred = Path(env) if env else default_cache_dir() / "jobs"
    return Path(usable_cache_dir(preferred))


def fingerprint_tensor(t: Tensor) -> str:
    """Content digest of one operand: structure plus raw array bytes."""
    h = hashlib.sha256()
    h.update(repr((t.attrs, t.formats, t.dims)).encode())
    h.update(np.ascontiguousarray(t.vals).tobytes())
    for k in sorted(t.pos):
        h.update(b"pos%d" % k)
        h.update(np.ascontiguousarray(t.pos[k]).tobytes())
    for k in sorted(t.crd):
        h.update(b"crd%d" % k)
        h.update(np.ascontiguousarray(t.crd[k]).tobytes())
    return h.hexdigest()


def job_signature(kernel, plan, tensors: Mapping[str, Tensor]) -> str:
    """Deterministic identity of one sharded run.

    Everything that decides the result participates: the kernel's
    content-addressed cache key (its recipe digest; ``uncached:<name>``
    when caching is off — resume across processes then relies on the
    name being stable), the shard plan geometry, and each operand's
    content fingerprint.  Two processes computing the same contraction
    over the same inputs with the same plan agree on the signature —
    which is what lets a restarted server adopt a dead worker's journal.
    """
    payload = {
        "kernel": getattr(kernel, "cache_key", None) or f"uncached:{kernel.name}",
        "split_attr": plan.split_attr,
        "kind": plan.kind,
        "dim": plan.dim,
        "ranges": [[int(lo), int(hi)] for lo, hi in plan.ranges],
        "operands": sorted(
            (name, fingerprint_tensor(t)) for name, t in tensors.items()
        ),
    }
    blob = json.dumps(payload, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()


def _encode_partial(result: Any) -> bytes:
    """Serialize one shard partial (Tensor or semiring scalar)."""
    if isinstance(result, Tensor):
        payload = {
            "kind": "tensor",
            "attrs": result.attrs,
            "formats": result.formats,
            "dims": result.dims,
            "pos": dict(result.pos),
            "crd": dict(result.crd),
            "vals": result.vals,
        }
    else:
        payload = {"kind": "scalar", "value": result}
    return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)


def _decode_partial(blob: bytes, semiring) -> Any:
    payload = pickle.loads(blob)
    if payload["kind"] == "scalar":
        return payload["value"]
    return Tensor(
        payload["attrs"], payload["formats"], payload["dims"],
        payload["pos"], payload["crd"], payload["vals"], semiring,
    )


class JobJournal:
    """The on-disk checkpoint directory of one sharded run.

    Layout::

        <job root>/job_<sig[:24]>/
            manifest.json        # signature, plan geometry, timestamps
            shard_00007.bin      # checksum header + pickled partial

    Shard files are framed as one JSON header line
    (``{"sha256": ..., "len": ...}``) followed by the payload bytes, so
    a reader can verify integrity before unpickling anything.
    """

    def __init__(self, signature: str, root: Optional[Path] = None) -> None:
        self.signature = signature
        self.job_id = f"job_{signature[:24]}"
        self.dir = (root if root is not None else job_root()) / self.job_id
        self.writable = True

    # ------------------------------------------------------------------
    def _shard_path(self, index: int) -> Path:
        return self.dir / _SHARD_FMT.format(index)

    def ensure(self, plan=None) -> None:
        """Create the journal directory and publish its manifest."""
        try:
            self.dir.mkdir(parents=True, exist_ok=True)
            manifest = self.dir / "manifest.json"
            if not manifest.exists():
                body = {
                    "signature": self.signature,
                    "created": time.time(),
                    "shards": plan.shards if plan is not None else None,
                    "split_attr": plan.split_attr if plan is not None else None,
                    "kind": plan.kind if plan is not None else None,
                }
                atomic_write_text(manifest, json.dumps(body, indent=2) + "\n")
        except OSError as exc:
            logger.warning(
                "job journal %s unusable (%s); running without durability",
                self.dir, exc,
            )
            self.writable = False

    def touch(self) -> None:
        """Refresh the journal's mtime so the TTL GC sees it as live."""
        try:
            os.utime(self.dir)
        except OSError:
            pass

    # ------------------------------------------------------------------
    def completed(self) -> Set[int]:
        """Indices of shards with a journaled partial on disk."""
        done: Set[int] = set()
        try:
            names = os.listdir(self.dir)
        except OSError:
            return done
        for name in names:
            if name.startswith("shard_") and name.endswith(".bin"):
                try:
                    done.add(int(name[len("shard_"):-len(".bin")]))
                except ValueError:
                    continue
        return done

    def write_shard(self, index: int, result: Any) -> bool:
        """Atomically publish one completed shard partial.

        Best effort: an OSError (disk full, directory vanished) logs
        and returns False — the run keeps its in-RAM partial and loses
        only durability for this shard.
        """
        if not self.writable:
            return False
        path = self._shard_path(index)
        try:
            blob = _encode_partial(result)
            header = json.dumps(
                {"sha256": hashlib.sha256(blob).hexdigest(), "len": len(blob)}
            ).encode() + b"\n"
            with file_lock(path, timeout=10.0):
                atomic_write_bytes(path, header + blob)
            return True
        except OSError as exc:
            logger.warning(
                "could not journal shard %d of %s (%s); continuing in RAM",
                index, self.job_id, exc,
            )
            return False

    def load_shard(self, index: int, semiring) -> Any:
        """Load and verify one journaled partial, or None.

        A missing file returns None (the shard just executes); a file
        that fails its checksum or does not unpickle is quarantined to
        ``.corrupt`` and also returns None — corruption costs a
        re-execution, never a wrong answer.
        """
        path = self._shard_path(index)
        try:
            raw = path.read_bytes()
        except OSError:
            return None
        try:
            nl = raw.index(b"\n")
            header = json.loads(raw[:nl])
            blob = raw[nl + 1:]
            if len(blob) != header["len"]:
                raise ValueError("length mismatch")
            if hashlib.sha256(blob).hexdigest() != header["sha256"]:
                raise ValueError("checksum mismatch")
            return _decode_partial(blob, semiring)
        except Exception as exc:
            logger.warning(
                "journaled shard %d of %s is corrupt (%s); quarantining "
                "and re-executing", index, self.job_id, exc,
            )
            quarantine(path)
            return None

    # ------------------------------------------------------------------
    def discard(self) -> None:
        """Remove the journal after a successful merge."""
        shutil.rmtree(self.dir, ignore_errors=True)


def gc_jobs(ttl: float = DEFAULT_JOB_TTL, root: Optional[Path] = None) -> List[str]:
    """Sweep journal directories untouched for more than ``ttl`` seconds.

    Returns the swept job ids.  Called from the serve lifecycle on boot;
    safe to call any time — a live job refreshes its directory mtime on
    every shard write.
    """
    base = root if root is not None else job_root()
    swept: List[str] = []
    try:
        entries: Iterable[os.DirEntry] = os.scandir(base)
    except OSError:
        return swept
    cutoff = time.time() - ttl
    for entry in entries:
        if not entry.name.startswith("job_"):
            continue
        try:
            if not entry.is_dir() or entry.stat().st_mtime >= cutoff:
                continue
        except OSError:
            continue
        shutil.rmtree(entry.path, ignore_errors=True)
        swept.append(entry.name)
    if swept:
        logger.info("job GC swept %d stale journal(s): %s",
                    len(swept), ", ".join(sorted(swept)))
    return swept


__all__ = [
    "DEFAULT_JOB_TTL",
    "JobJournal",
    "fingerprint_tensor",
    "gc_jobs",
    "job_root",
    "job_signature",
]
