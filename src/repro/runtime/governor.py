"""Memory governor: budgeted accumulation and streaming ⊕-merge.

``run_sharded`` historically held every shard partial resident until
the final ``merge_partials`` call — fine when partials are small,
fatal when a contracted split produces ``shards`` full-shape partials
of a large output.  The governor bounds that residency:
:class:`PartialAccumulator` collects partials as they complete, and
whenever the resident set would exceed ``REPRO_MEM_BUDGET_MB`` it
spills the excess to the job journal (each spill is the same atomic,
checksummed shard file a durable run writes anyway) and later merges
with a *streaming* incremental ⊕-fold that loads one spilled partial
at a time.

Correctness rests on Theorem 6.1 exactly as the eager merge does: a
contracted split's merge is ``functools.reduce(⊕, partials)`` — a left
fold in shard-index order — and the streaming fold below performs the
*same* left fold in the *same* order, just interleaving loads with
combines.  The result is therefore bit-identical to the in-RAM path,
floating point included.  Free splits concatenate rather than combine;
the concatenation output must exist in full, so a free merge's floor is
the output size — the governor still bounds the *partial* overhead by
loading spilled windows only at merge time.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.compiler.resilience import logger
from repro.data.tensor import Tensor
from repro.errors import CacheCorruptionError, StreamPropertyError
from repro.runtime.jobs import JobJournal
from repro.runtime.merge import _merge_free, merge_partials

#: accounting size of a scalar partial (a Python number)
_SCALAR_BYTES = 32


def partial_nbytes(result: Any) -> int:
    """Resident footprint of one shard partial, in bytes."""
    if not isinstance(result, Tensor):
        return _SCALAR_BYTES
    total = int(result.vals.nbytes)
    total += sum(int(a.nbytes) for a in result.pos.values())
    total += sum(int(a.nbytes) for a in result.crd.values())
    return total


class PartialAccumulator:
    """Collects shard partials under a resident-memory budget.

    ``budget_bytes=None`` keeps everything resident — :meth:`merge`
    then delegates to the eager :func:`merge_partials` verbatim, so
    the non-governed path is bit-for-bit the existing behaviour.  With
    a budget, partials past the limit are spilled to ``journal``
    (lowest shard index first, so the streaming fold replays the same
    left-to-right order) and the merge streams them back one at a time.
    """

    def __init__(
        self,
        kernel,
        plan,
        journal: Optional[JobJournal],
        budget_bytes: Optional[float] = None,
    ) -> None:
        self.kernel = kernel
        self.plan = plan
        self.journal = journal
        self.budget_bytes = budget_bytes
        self._resident: Dict[int, Any] = {}
        self._sizes: Dict[int, int] = {}
        self._journaled: set = set()   # indices with a valid shard file
        self._disk_only: set = set()   # journaled and evicted from RAM
        self._pinned: set = set()      # spill failed; keep resident
        #: spill events (evictions), for stats and tests
        self.spills = 0
        #: high-water mark of resident partial bytes
        self.peak_resident = 0

    # ------------------------------------------------------------------
    @property
    def resident_bytes(self) -> int:
        return sum(self._sizes.values())

    def add(self, index: int, result: Any, journaled: bool = False) -> None:
        """Accept one completed shard partial (``journaled=True`` when a
        valid shard file for it already exists on disk)."""
        self._resident[index] = result
        self._sizes[index] = partial_nbytes(result)
        if journaled:
            self._journaled.add(index)
        self.peak_resident = max(self.peak_resident, self.resident_bytes)
        self._enforce()

    def spilled_indices(self) -> set:
        return set(self._disk_only)

    # ------------------------------------------------------------------
    def _enforce(self) -> None:
        """Evict resident partials (lowest index first) while over budget.

        A partial not yet journaled is written to the journal first; a
        failed write pins it resident (durability degraded, never a
        lost result).  At least one partial always stays evictable —
        the last resident one is kept so the merge has a starting
        accumulator without an immediate re-load.
        """
        if self.budget_bytes is None or self.journal is None:
            return
        while self.resident_bytes > self.budget_bytes:
            victims = [i for i in sorted(self._resident)
                       if i not in self._pinned]
            if len(victims) <= 1:
                return
            victim = victims[0]
            if victim not in self._journaled:
                if self.journal.write_shard(victim, self._resident[victim]):
                    self._journaled.add(victim)
                else:
                    self._pinned.add(victim)
                    continue
            del self._resident[victim]
            del self._sizes[victim]
            self._disk_only.add(victim)
            self.spills += 1
            logger.debug(
                "memory governor: spilled shard %d partial of kernel %r "
                "(%d resident bytes left)",
                victim, self.kernel.name, self.resident_bytes,
            )

    # ------------------------------------------------------------------
    def _take(self, index: int):
        """Shard ``index``'s partial, from RAM or the journal, consumed."""
        if index in self._resident:
            result = self._resident.pop(index)
            self._sizes.pop(index, None)
            return result
        result = self.journal.load_shard(
            index, self.kernel.ops.semiring
        ) if self.journal is not None else None
        if result is None:
            raise CacheCorruptionError(
                f"spilled shard {index} partial of kernel "
                f"{self.kernel.name!r} is missing or corrupt; re-run to "
                "recompute it",
                path=str(self.journal._shard_path(index))
                if self.journal is not None else None,
            )
        return result

    def merge(self) -> Any:
        """Combine all accumulated partials, streaming spilled ones.

        With nothing spilled this is exactly the eager merge.  With
        spills, the fold runs in shard-index order — the identical left
        fold :func:`repro.runtime.merge._merge_contracted` performs —
        loading each disk-only partial just-in-time and releasing each
        resident one as it is consumed.
        """
        plan = self.plan
        indices = sorted(set(self._resident) | self._disk_only)
        if not self._disk_only:
            partials = [self._resident[i] for i in indices]
            return merge_partials(self.kernel, plan, partials)

        # the streaming path re-checks the plan certificate exactly as
        # merge_partials does — spilling must not skip the soundness gate
        sr = self.kernel.ops.semiring
        if plan.certificate is not None:
            plan.certificate.check(sr)
        elif plan.kind == "contracted" and not getattr(sr, "commutative_add", True):
            raise StreamPropertyError(
                f"uncertified contracted merge on {plan.split_attr!r}: ⊕ of "
                f"semiring {sr.name!r} is not commutative, so ⊕-combining "
                "shard partials out of range order is unsound"
            )
        if plan.kind == "free":
            # concatenation needs every window at once; the output-sized
            # allocation is the floor for any free merge
            partials = [self._take(i) for i in indices]
            return _merge_free(self.kernel, plan, partials)
        return self._merge_contracted_streaming(indices, sr)

    def _merge_contracted_streaming(self, indices: List[int], sr) -> Any:
        out = self.kernel.output
        first = self._take(indices[0])
        if out is None:
            acc = first
            for i in indices[1:]:
                acc = sr.add(acc, self._take(i))
            return acc
        if all(f == "dense" for f in out.formats):
            acc_vals = first.vals
            for i in indices[1:]:
                acc_vals = sr.elementwise_add(acc_vals, self._take(i).vals)
            return Tensor(out.attrs, out.formats, out.dims, {}, {},
                          acc_vals, sr)
        # sparse levels: the eager merge folds every partial's coordinate
        # dict left to right into one dict — replayed here one partial at
        # a time, same order, same dict, same dtype rule (first partial)
        dtype = first.vals.dtype
        merged: Dict = {}
        for coord, v in first.to_dict().items():
            merged[coord] = v
        for i in indices[1:]:
            for coord, v in self._take(i).to_dict().items():
                merged[coord] = sr.add(merged[coord], v) if coord in merged else v
        entries = {c: v for c, v in merged.items() if not sr.is_zero(v)}
        return Tensor.from_entries(
            out.attrs, out.formats, out.dims, entries, sr, dtype=dtype,
        )


__all__ = ["PartialAccumulator", "partial_nbytes"]
