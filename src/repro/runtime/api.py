"""Sharded execution: plan → schedule → merge.

:func:`run_sharded` is the engine behind
:meth:`repro.compiler.kernel.Kernel.run_sharded` and the
``REPRO_PARALLEL`` environment routing; :func:`run_batch` runs one
kernel over many independent input bindings (the many-small-kernels
case where sharding a single run is not worth it but the pool is).

Per-shard resilience mirrors the build-time story of
:mod:`repro.compiler.resilience`: a shard that fails on its executor
(a crashed worker process, an unpicklable surprise, a transient OS
error) is retried once in the parent on the serial path, with a logged
warning — the parallel runtime degrades toward the oracle rather than
failing the whole run.  Genuine kernel errors (shape mismatches,
capacity exhaustion with ``auto_grow`` off) reproduce identically on
the retry and surface to the caller as they would on a serial run.
"""

from __future__ import annotations

import time
from concurrent.futures import BrokenExecutor, Future
from dataclasses import dataclass, replace
from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.compiler import resilience
from repro.compiler.resilience import logger
from repro.data.tensor import Tensor
from repro.errors import (
    KernelCrashError,
    KernelTimeoutError,
    ReproError,
    is_retryable,
)
from repro.runtime import worker as worker_mod
from repro.runtime.executor import discard_shared_executor, get_shared_executor
from repro.runtime.governor import PartialAccumulator
from repro.runtime.jobs import JobJournal, job_signature
from repro.runtime.planner import plan_shards, slice_operands


@dataclass(frozen=True)
class ShardStat:
    """Timing/volume record for one shard (or one batch item)."""

    index: int
    lo: int
    hi: int
    seconds: float
    bytes_in: int
    worker: Union[int, str]     # pid (process) or a backend tag
    retried: bool = False
    #: this shard's supervised run crashed/timed out and the result was
    #: served by the pure-Python fallback instead
    failover: bool = False
    #: the partial came from a prior run's job journal; not re-executed
    skipped: bool = False
    #: the partial was evicted to the journal by the memory governor
    spilled: bool = False


def _operand_bytes(tensors: Mapping[str, Tensor]) -> int:
    total = 0
    for t in tensors.values():
        total += int(t.vals.nbytes)
        total += sum(int(a.nbytes) for a in t.pos.values())
        total += sum(int(a.nbytes) for a in t.crd.values())
    return total


def _local_task(kernel, tensors, capacity, auto_grow, max_capacity,
                supervised=None, deadline=None):
    start = time.perf_counter()
    result = kernel._run_guarded(
        tensors, capacity, auto_grow=auto_grow, max_capacity=max_capacity,
        supervised=supervised, deadline=deadline,
    )
    return result, time.perf_counter() - start, "local"


def _failover_task(kernel, tensors, capacity, auto_grow, max_capacity, cause):
    """Serve one crashed/timed-out shard from the Python fallback."""
    start = time.perf_counter()
    result = kernel._run_fallback(
        tensors, capacity, auto_grow=auto_grow, max_capacity=max_capacity,
        cause=cause,
    )
    return result, time.perf_counter() - start, "fallback"


def _submit(ex, fn, *args) -> Future:
    """Submit, turning a submit-time failure into a pre-failed future.

    A pool can be broken *before* any task runs (a worker killed under a
    previous call leaves :class:`BrokenExecutor` raising from ``submit``
    itself); routing the failure through a future lets the collection
    loop's per-shard retry handle it like any worker-side crash.
    """
    try:
        return ex.submit(fn, *args)
    except Exception as exc:
        future: Future = Future()
        future.set_exception(exc)
        return future


def _maybe_discard(ex, exc: Exception) -> None:
    if isinstance(exc, BrokenExecutor):
        logger.warning(
            "the shared %s pool is broken; discarding it (a fresh pool "
            "is built on next use)", ex.name,
        )
        discard_shared_executor(ex)


def _resolve_executor(kernel, executor: str) -> str:
    """Downgrade ``process``/``pool`` when the kernel cannot cross a
    process boundary (no recipe: a FunctionInput binding holds an
    arbitrary callable)."""
    if executor in ("process", "pool") and kernel.recipe is None:
        logger.warning(
            "kernel %r has no rebuild recipe (function-valued input); "
            "downgrading the %s executor to threads", kernel.name, executor,
        )
        return "thread"
    return executor


def _pool_deadline(kernel, supervised, deadline=None) -> Optional[float]:
    """Wall deadline for pooled calls: pooled workers are always
    crash-isolated, but the deadline kill is only armed when the
    supervision policy asks for it (matching the fork supervisor).
    An explicit caller ``deadline`` — a request budget handed down by
    the serving layer — always arms the kill, supervised or not: the
    worker is already isolated and the caller has a clock to keep."""
    if deadline is not None:
        return deadline
    if kernel._resolve_supervised(supervised):
        return resilience.kernel_deadline()
    return None


def _pool_dispatch(ex, pool_mod, shm, kernel, shard_inputs, shard_dims,
                   tensors, capacity, auto_grow, max_capacity, deadline):
    """Submit every shard to the worker pool as shm descriptors.

    Base operand tensors are exported once (memoized on the tensor);
    each shard's views are described as byte windows into those
    segments, so the per-shard pipe payload is a few hundred bytes of
    descriptor regardless of operand size.
    """
    pool = pool_mod.get_shared_pool(ex.workers)
    key = pool_mod.pool_key(kernel)
    pool.register_recipe(key, kernel.recipe)
    threshold = resilience.shm_threshold()
    exports = {
        name: shm.export_tensor(t, threshold) for name, t in tensors.items()
    }
    futures = []
    for st, dims in zip(shard_inputs, shard_dims):
        refs = {
            name: shm.describe_tensor(t, exports.get(name))
            for name, t in st.items()
        }
        futures.append(_submit(
            ex, pool.run_call, key, refs, dims, capacity, auto_grow,
            max_capacity, deadline, threshold,
        ))
    return futures


def run_sharded(
    kernel,
    tensors: Mapping[str, Tensor],
    *,
    capacity: Optional[int] = None,
    auto_grow: bool = False,
    max_capacity: Optional[int] = None,
    executor: str = "serial",
    workers: Optional[int] = None,
    shards: Optional[int] = None,
    split_attr: Optional[str] = None,
    supervised: Optional[bool] = None,
    stats_out: Optional[List[ShardStat]] = None,
    deadline: Optional[float] = None,
    durable: Optional[bool] = None,
    resume: Optional[str] = None,
    job_out: Optional[Dict[str, object]] = None,
):
    """Partition one kernel run into shards, execute, and ⊕-merge.

    Degrades to the plain single run when no split index qualifies or
    the plan collapses to one shard; an explicit ``split_attr`` that is
    not splittable raises instead.  ``shards`` defaults to the worker
    count.  Per-shard stats land on ``kernel.last_shard_stats`` (and in
    ``stats_out`` when given — the race-free channel under concurrent
    calls).

    A shard whose *supervised* run dies (crash or deadline) is not
    retried in-process — re-running a segfaulting kernel in the host
    defeats the supervision — but failed over to the pure-Python
    backend for that shard alone, marked ``failover=True`` /
    ``worker="fallback"`` in the stats.

    ``durable=True`` (or ``REPRO_DURABLE=1``) journals every completed
    shard partial to an on-disk job keyed by the run's deterministic
    signature; a run killed mid-job resumes on the next identical
    invocation by loading journaled shards (``skipped=True`` in the
    stats) instead of re-executing them.  ``resume`` optionally pins
    the expected job id — a mismatch against the computed signature
    raises ``ValueError`` rather than silently starting a fresh job.
    ``REPRO_MEM_BUDGET_MB`` arms the memory governor: accumulated
    partials over the budget spill to the same journal and the merge
    streams them back one at a time (``spilled=True`` in the stats).
    With neither knob set, this path is bit-for-bit the historical
    hold-everything-in-RAM behaviour.  ``job_out``, when given, is
    filled with ``job_id`` / ``resumed_shards`` / ``spills``.
    """
    n_workers = resilience.worker_count(workers)
    n_shards = int(shards) if shards is not None else n_workers
    plan = plan_shards(kernel, tensors, n_shards, split_attr=split_attr)
    if plan is None or plan.shards <= 1:
        logger.debug(
            "kernel %r: no multi-shard plan (%s); running unsharded",
            kernel.name,
            "no splittable index" if plan is None else "single shard",
        )
        return kernel._run_guarded(
            tensors, capacity, auto_grow=auto_grow, max_capacity=max_capacity,
            supervised=supervised, deadline=deadline,
        )

    if durable is None:
        durable = resume is not None or resilience.durable_enabled()
    budget_mb = resilience.mem_budget_mb()
    journal: Optional[JobJournal] = None
    if durable or budget_mb is not None:
        journal = JobJournal(job_signature(kernel, plan, tensors))
        if resume is not None and resume != journal.job_id:
            raise ValueError(
                f"resume job id {resume!r} does not match this run's "
                f"signature {journal.job_id!r}: the kernel, shard plan, or "
                "operands differ from the journaled job"
            )
        journal.ensure(plan)
        if job_out is not None:
            job_out["job_id"] = journal.job_id
            job_out["job_dir"] = str(journal.dir)
    acc = PartialAccumulator(
        kernel, plan, journal,
        budget_bytes=budget_mb * 1024 * 1024 if budget_mb is not None else None,
    )

    # adopt journaled shards from a prior (killed) run of the same job:
    # they are loaded, checksum-verified, and never re-executed
    skipped: Dict[int, ShardStat] = {}
    if durable and journal is not None and journal.writable:
        for i in sorted(journal.completed()):
            if i >= plan.shards:
                continue
            prior = journal.load_shard(i, kernel.ops.semiring)
            if prior is None:
                continue  # corrupt: quarantined, shard re-executes
            lo, hi = plan.ranges[i]
            acc.add(i, prior, journaled=True)
            skipped[i] = ShardStat(
                index=i, lo=lo, hi=hi, seconds=0.0, bytes_in=0,
                worker="journal", skipped=True,
            )
    if skipped:
        logger.info(
            "kernel %r: resuming %s — %d/%d shard(s) adopted from the "
            "journal", kernel.name, journal.job_id, len(skipped), plan.shards,
        )

    executor = _resolve_executor(kernel, executor)
    out = kernel.output
    pending: List[int] = [i for i in range(plan.shards) if i not in skipped]
    shard_inputs: List[Mapping[str, Tensor]] = []
    shard_kernels: List[object] = []
    shard_dims: List[Optional[Sequence[int]]] = []
    for i in pending:
        lo, hi = plan.ranges[i]
        shard_inputs.append(slice_operands(kernel, tensors, plan, lo, hi))
        if plan.kind == "free":
            dims = (hi - lo,) + tuple(out.dims[1:])
            shard_dims.append(dims)
            shard_kernels.append(kernel.with_output_dims(dims))
        else:
            shard_dims.append(None)
            shard_kernels.append(kernel)

    stats: Dict[int, ShardStat] = dict(skipped)
    ex = get_shared_executor(executor, n_workers)
    if ex.name == "pool":
        from repro.runtime import pool as pool_mod, shm

        futures = _pool_dispatch(
            ex, pool_mod, shm, kernel, shard_inputs, shard_dims, tensors,
            capacity, auto_grow, max_capacity,
            _pool_deadline(kernel, supervised, deadline),
        )
    else:
        futures = []
        for sk, st, dims in zip(shard_kernels, shard_inputs, shard_dims):
            if ex.name == "process":
                futures.append(_submit(
                    ex, worker_mod.run_shard_task, kernel.recipe, st, dims,
                    capacity, auto_grow, max_capacity,
                ))
            else:
                futures.append(_submit(
                    ex, _local_task, sk, st, capacity, auto_grow, max_capacity,
                    supervised, deadline,
                ))
    for k, (fut, i) in enumerate(zip(futures, pending)):
        lo, hi = plan.ranges[i]
        retried = False
        failover = False
        try:
            result, seconds, who = fut.result()
        except (KernelCrashError, KernelTimeoutError) as exc:
            logger.warning(
                "shard %d/%d of kernel %r died under supervision (%s: %s); "
                "failing over to the Python backend for this shard",
                i + 1, plan.shards, kernel.name, type(exc).__name__, exc,
            )
            retried = failover = True
            result, seconds, who = _failover_task(
                shard_kernels[k], shard_inputs[k],
                capacity, auto_grow, max_capacity, exc,
            )
        except Exception as exc:
            if isinstance(exc, ReproError) and not is_retryable(exc):
                # deterministic kernel errors (shape mismatch, capacity
                # exhaustion, source-level CompileError) reproduce
                # identically on a retry — surface them as a serial run
                # would instead of burning a second execution
                raise
            logger.warning(
                "shard %d/%d of kernel %r failed on the %s executor "
                "(%s: %s); retrying in-process",
                i + 1, plan.shards, kernel.name, executor,
                type(exc).__name__, exc,
            )
            _maybe_discard(ex, exc)
            retried = True
            result, seconds, who = _local_task(
                shard_kernels[k], shard_inputs[k],
                capacity, auto_grow, max_capacity, supervised, deadline,
            )
        journaled = False
        if durable and journal is not None:
            journaled = journal.write_shard(i, result)
            journal.touch()
        # chaos hook: fires *after* the partial is journaled, so a
        # SIGKILL here models dying between checkpoint and next shard
        resilience.fault_point("shard")
        acc.add(i, result, journaled=journaled)
        stats[i] = ShardStat(
            index=i, lo=lo, hi=hi, seconds=seconds,
            bytes_in=_operand_bytes(shard_inputs[k]),
            worker=who, retried=retried, failover=failover,
        )
    for i in acc.spilled_indices():
        stats[i] = replace(stats[i], spilled=True)
    ordered = [stats[i] for i in sorted(stats)]
    kernel.last_shard_stats = ordered
    if stats_out is not None:
        stats_out.extend(ordered)
    if job_out is not None and journal is not None:
        job_out["resumed_shards"] = len(skipped)
        job_out["spills"] = acc.spills
    logger.debug(
        "kernel %r: %d shard(s) on %s over split %r (%s); %.1f ms total "
        "shard time; %d resumed, %d spilled",
        kernel.name, plan.shards, executor, plan.split_attr, plan.kind,
        sum(s.seconds for s in ordered) * 1e3, len(skipped), acc.spills,
    )
    # chaos hook: all shards journaled, merge not yet run — a kill here
    # must resume into a pure-merge job
    resilience.fault_point("merge")
    merged = acc.merge()
    if journal is not None:
        journal.discard()
    return merged


def run_batch(
    kernel,
    runs: Sequence[Mapping[str, Tensor]],
    *,
    capacity: Optional[int] = None,
    auto_grow: bool = False,
    max_capacity: Optional[int] = None,
    executor: Optional[str] = None,
    workers: Optional[int] = None,
    deadline: Optional[float] = None,
) -> List[object]:
    """Run ``kernel`` over many independent input bindings, pool-parallel.

    Results come back in input order.  ``executor=None`` follows
    ``REPRO_PARALLEL`` and falls back to ``serial``.  ``deadline``
    bounds each *item* (not the whole batch) wherever execution is
    crash-isolated.
    """
    if executor is None:
        executor = (
            kernel.parallel or resilience.parallel_backend() or "serial"
        )
    executor = _resolve_executor(kernel, executor)
    n_workers = resilience.worker_count(workers)
    results: List[object] = []
    stats: List[ShardStat] = []
    ex = get_shared_executor(executor, n_workers)
    futures = []
    if ex.name == "pool":
        from repro.runtime import pool as pool_mod, shm

        pool = pool_mod.get_shared_pool(ex.workers)
        key = pool_mod.pool_key(kernel)
        pool.register_recipe(key, kernel.recipe)
        threshold = resilience.shm_threshold()
        deadline = _pool_deadline(kernel, None, deadline)
        for tensors in runs:
            refs = {
                name: shm.describe_tensor(
                    t, shm.export_tensor(t, threshold))
                for name, t in tensors.items()
            }
            futures.append(_submit(
                ex, pool.run_call, key, refs, None, capacity, auto_grow,
                max_capacity, deadline, threshold,
            ))
    else:
        for tensors in runs:
            if ex.name == "process":
                futures.append(_submit(
                    ex, worker_mod.run_shard_task, kernel.recipe, tensors,
                    None, capacity, auto_grow, max_capacity,
                ))
            else:
                futures.append(_submit(
                    ex, _local_task, kernel, tensors,
                    capacity, auto_grow, max_capacity, None, deadline,
                ))
    for i, (fut, tensors) in enumerate(zip(futures, runs)):
        retried = False
        try:
            result, seconds, who = fut.result()
        except Exception as exc:
            if isinstance(exc, ReproError) and not is_retryable(exc):
                raise  # deterministic: replaying cannot change the outcome
            logger.warning(
                "batch item %d/%d of kernel %r failed on the %s executor "
                "(%s: %s); retrying in-process",
                i + 1, len(runs), kernel.name, executor,
                type(exc).__name__, exc,
            )
            _maybe_discard(ex, exc)
            retried = True
            result, seconds, who = _local_task(
                kernel, tensors, capacity, auto_grow, max_capacity,
                None, deadline,
            )
        results.append(result)
        stats.append(ShardStat(
            index=i, lo=0, hi=0, seconds=seconds,
            bytes_in=_operand_bytes(tensors), worker=who, retried=retried,
        ))
    kernel.last_shard_stats = stats
    return results
