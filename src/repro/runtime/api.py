"""Sharded execution: plan → schedule → merge.

:func:`run_sharded` is the engine behind
:meth:`repro.compiler.kernel.Kernel.run_sharded` and the
``REPRO_PARALLEL`` environment routing; :func:`run_batch` runs one
kernel over many independent input bindings (the many-small-kernels
case where sharding a single run is not worth it but the pool is).

Per-shard resilience mirrors the build-time story of
:mod:`repro.compiler.resilience`: a shard that fails on its executor
(a crashed worker process, an unpicklable surprise, a transient OS
error) is retried once in the parent on the serial path, with a logged
warning — the parallel runtime degrades toward the oracle rather than
failing the whole run.  Genuine kernel errors (shape mismatches,
capacity exhaustion with ``auto_grow`` off) reproduce identically on
the retry and surface to the caller as they would on a serial run.
"""

from __future__ import annotations

import time
from concurrent.futures import BrokenExecutor, Future
from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence, Union

from repro.compiler import resilience
from repro.compiler.resilience import logger
from repro.data.tensor import Tensor
from repro.errors import (
    KernelCrashError,
    KernelTimeoutError,
    ReproError,
    is_retryable,
)
from repro.runtime import worker as worker_mod
from repro.runtime.executor import discard_shared_executor, get_shared_executor
from repro.runtime.merge import merge_partials
from repro.runtime.planner import plan_shards, slice_operands


@dataclass(frozen=True)
class ShardStat:
    """Timing/volume record for one shard (or one batch item)."""

    index: int
    lo: int
    hi: int
    seconds: float
    bytes_in: int
    worker: Union[int, str]     # pid (process) or a backend tag
    retried: bool = False
    #: this shard's supervised run crashed/timed out and the result was
    #: served by the pure-Python fallback instead
    failover: bool = False


def _operand_bytes(tensors: Mapping[str, Tensor]) -> int:
    total = 0
    for t in tensors.values():
        total += int(t.vals.nbytes)
        total += sum(int(a.nbytes) for a in t.pos.values())
        total += sum(int(a.nbytes) for a in t.crd.values())
    return total


def _local_task(kernel, tensors, capacity, auto_grow, max_capacity,
                supervised=None, deadline=None):
    start = time.perf_counter()
    result = kernel._run_guarded(
        tensors, capacity, auto_grow=auto_grow, max_capacity=max_capacity,
        supervised=supervised, deadline=deadline,
    )
    return result, time.perf_counter() - start, "local"


def _failover_task(kernel, tensors, capacity, auto_grow, max_capacity, cause):
    """Serve one crashed/timed-out shard from the Python fallback."""
    start = time.perf_counter()
    result = kernel._run_fallback(
        tensors, capacity, auto_grow=auto_grow, max_capacity=max_capacity,
        cause=cause,
    )
    return result, time.perf_counter() - start, "fallback"


def _submit(ex, fn, *args) -> Future:
    """Submit, turning a submit-time failure into a pre-failed future.

    A pool can be broken *before* any task runs (a worker killed under a
    previous call leaves :class:`BrokenExecutor` raising from ``submit``
    itself); routing the failure through a future lets the collection
    loop's per-shard retry handle it like any worker-side crash.
    """
    try:
        return ex.submit(fn, *args)
    except Exception as exc:
        future: Future = Future()
        future.set_exception(exc)
        return future


def _maybe_discard(ex, exc: Exception) -> None:
    if isinstance(exc, BrokenExecutor):
        logger.warning(
            "the shared %s pool is broken; discarding it (a fresh pool "
            "is built on next use)", ex.name,
        )
        discard_shared_executor(ex)


def _resolve_executor(kernel, executor: str) -> str:
    """Downgrade ``process``/``pool`` when the kernel cannot cross a
    process boundary (no recipe: a FunctionInput binding holds an
    arbitrary callable)."""
    if executor in ("process", "pool") and kernel.recipe is None:
        logger.warning(
            "kernel %r has no rebuild recipe (function-valued input); "
            "downgrading the %s executor to threads", kernel.name, executor,
        )
        return "thread"
    return executor


def _pool_deadline(kernel, supervised, deadline=None) -> Optional[float]:
    """Wall deadline for pooled calls: pooled workers are always
    crash-isolated, but the deadline kill is only armed when the
    supervision policy asks for it (matching the fork supervisor).
    An explicit caller ``deadline`` — a request budget handed down by
    the serving layer — always arms the kill, supervised or not: the
    worker is already isolated and the caller has a clock to keep."""
    if deadline is not None:
        return deadline
    if kernel._resolve_supervised(supervised):
        return resilience.kernel_deadline()
    return None


def _pool_dispatch(ex, pool_mod, shm, kernel, shard_inputs, shard_dims,
                   tensors, capacity, auto_grow, max_capacity, deadline):
    """Submit every shard to the worker pool as shm descriptors.

    Base operand tensors are exported once (memoized on the tensor);
    each shard's views are described as byte windows into those
    segments, so the per-shard pipe payload is a few hundred bytes of
    descriptor regardless of operand size.
    """
    pool = pool_mod.get_shared_pool(ex.workers)
    key = pool_mod.pool_key(kernel)
    pool.register_recipe(key, kernel.recipe)
    threshold = resilience.shm_threshold()
    exports = {
        name: shm.export_tensor(t, threshold) for name, t in tensors.items()
    }
    futures = []
    for st, dims in zip(shard_inputs, shard_dims):
        refs = {
            name: shm.describe_tensor(t, exports.get(name))
            for name, t in st.items()
        }
        futures.append(_submit(
            ex, pool.run_call, key, refs, dims, capacity, auto_grow,
            max_capacity, deadline, threshold,
        ))
    return futures


def run_sharded(
    kernel,
    tensors: Mapping[str, Tensor],
    *,
    capacity: Optional[int] = None,
    auto_grow: bool = False,
    max_capacity: Optional[int] = None,
    executor: str = "serial",
    workers: Optional[int] = None,
    shards: Optional[int] = None,
    split_attr: Optional[str] = None,
    supervised: Optional[bool] = None,
    stats_out: Optional[List[ShardStat]] = None,
    deadline: Optional[float] = None,
):
    """Partition one kernel run into shards, execute, and ⊕-merge.

    Degrades to the plain single run when no split index qualifies or
    the plan collapses to one shard; an explicit ``split_attr`` that is
    not splittable raises instead.  ``shards`` defaults to the worker
    count.  Per-shard stats land on ``kernel.last_shard_stats`` (and in
    ``stats_out`` when given — the race-free channel under concurrent
    calls).

    A shard whose *supervised* run dies (crash or deadline) is not
    retried in-process — re-running a segfaulting kernel in the host
    defeats the supervision — but failed over to the pure-Python
    backend for that shard alone, marked ``failover=True`` /
    ``worker="fallback"`` in the stats.
    """
    n_workers = resilience.worker_count(workers)
    n_shards = int(shards) if shards is not None else n_workers
    plan = plan_shards(kernel, tensors, n_shards, split_attr=split_attr)
    if plan is None or plan.shards <= 1:
        logger.debug(
            "kernel %r: no multi-shard plan (%s); running unsharded",
            kernel.name,
            "no splittable index" if plan is None else "single shard",
        )
        return kernel._run_guarded(
            tensors, capacity, auto_grow=auto_grow, max_capacity=max_capacity,
            supervised=supervised, deadline=deadline,
        )

    executor = _resolve_executor(kernel, executor)
    out = kernel.output
    shard_inputs: List[Mapping[str, Tensor]] = []
    shard_kernels: List[object] = []
    shard_dims: List[Optional[Sequence[int]]] = []
    for lo, hi in plan.ranges:
        shard_inputs.append(slice_operands(kernel, tensors, plan, lo, hi))
        if plan.kind == "free":
            dims = (hi - lo,) + tuple(out.dims[1:])
            shard_dims.append(dims)
            shard_kernels.append(kernel.with_output_dims(dims))
        else:
            shard_dims.append(None)
            shard_kernels.append(kernel)

    partials: List[object] = []
    stats: List[ShardStat] = []
    ex = get_shared_executor(executor, n_workers)
    if ex.name == "pool":
        from repro.runtime import pool as pool_mod, shm

        futures = _pool_dispatch(
            ex, pool_mod, shm, kernel, shard_inputs, shard_dims, tensors,
            capacity, auto_grow, max_capacity,
            _pool_deadline(kernel, supervised, deadline),
        )
    else:
        futures = []
        for sk, st, dims in zip(shard_kernels, shard_inputs, shard_dims):
            if ex.name == "process":
                futures.append(_submit(
                    ex, worker_mod.run_shard_task, kernel.recipe, st, dims,
                    capacity, auto_grow, max_capacity,
                ))
            else:
                futures.append(_submit(
                    ex, _local_task, sk, st, capacity, auto_grow, max_capacity,
                    supervised, deadline,
                ))
    for i, (fut, (lo, hi)) in enumerate(zip(futures, plan.ranges)):
        retried = False
        failover = False
        try:
            result, seconds, who = fut.result()
        except (KernelCrashError, KernelTimeoutError) as exc:
            logger.warning(
                "shard %d/%d of kernel %r died under supervision (%s: %s); "
                "failing over to the Python backend for this shard",
                i + 1, plan.shards, kernel.name, type(exc).__name__, exc,
            )
            retried = failover = True
            result, seconds, who = _failover_task(
                shard_kernels[i], shard_inputs[i],
                capacity, auto_grow, max_capacity, exc,
            )
        except Exception as exc:
            if isinstance(exc, ReproError) and not is_retryable(exc):
                # deterministic kernel errors (shape mismatch, capacity
                # exhaustion, source-level CompileError) reproduce
                # identically on a retry — surface them as a serial run
                # would instead of burning a second execution
                raise
            logger.warning(
                "shard %d/%d of kernel %r failed on the %s executor "
                "(%s: %s); retrying in-process",
                i + 1, plan.shards, kernel.name, executor,
                type(exc).__name__, exc,
            )
            _maybe_discard(ex, exc)
            retried = True
            result, seconds, who = _local_task(
                shard_kernels[i], shard_inputs[i],
                capacity, auto_grow, max_capacity, supervised, deadline,
            )
        partials.append(result)
        stats.append(ShardStat(
            index=i, lo=lo, hi=hi, seconds=seconds,
            bytes_in=_operand_bytes(shard_inputs[i]),
            worker=who, retried=retried, failover=failover,
        ))
    kernel.last_shard_stats = stats
    if stats_out is not None:
        stats_out.extend(stats)
    logger.debug(
        "kernel %r: %d shard(s) on %s over split %r (%s); %.1f ms total "
        "shard time",
        kernel.name, plan.shards, executor, plan.split_attr, plan.kind,
        sum(s.seconds for s in stats) * 1e3,
    )
    return merge_partials(kernel, plan, partials)


def run_batch(
    kernel,
    runs: Sequence[Mapping[str, Tensor]],
    *,
    capacity: Optional[int] = None,
    auto_grow: bool = False,
    max_capacity: Optional[int] = None,
    executor: Optional[str] = None,
    workers: Optional[int] = None,
    deadline: Optional[float] = None,
) -> List[object]:
    """Run ``kernel`` over many independent input bindings, pool-parallel.

    Results come back in input order.  ``executor=None`` follows
    ``REPRO_PARALLEL`` and falls back to ``serial``.  ``deadline``
    bounds each *item* (not the whole batch) wherever execution is
    crash-isolated.
    """
    if executor is None:
        executor = (
            kernel.parallel or resilience.parallel_backend() or "serial"
        )
    executor = _resolve_executor(kernel, executor)
    n_workers = resilience.worker_count(workers)
    results: List[object] = []
    stats: List[ShardStat] = []
    ex = get_shared_executor(executor, n_workers)
    futures = []
    if ex.name == "pool":
        from repro.runtime import pool as pool_mod, shm

        pool = pool_mod.get_shared_pool(ex.workers)
        key = pool_mod.pool_key(kernel)
        pool.register_recipe(key, kernel.recipe)
        threshold = resilience.shm_threshold()
        deadline = _pool_deadline(kernel, None, deadline)
        for tensors in runs:
            refs = {
                name: shm.describe_tensor(
                    t, shm.export_tensor(t, threshold))
                for name, t in tensors.items()
            }
            futures.append(_submit(
                ex, pool.run_call, key, refs, None, capacity, auto_grow,
                max_capacity, deadline, threshold,
            ))
    else:
        for tensors in runs:
            if ex.name == "process":
                futures.append(_submit(
                    ex, worker_mod.run_shard_task, kernel.recipe, tensors,
                    None, capacity, auto_grow, max_capacity,
                ))
            else:
                futures.append(_submit(
                    ex, _local_task, kernel, tensors,
                    capacity, auto_grow, max_capacity, None, deadline,
                ))
    for i, (fut, tensors) in enumerate(zip(futures, runs)):
        retried = False
        try:
            result, seconds, who = fut.result()
        except Exception as exc:
            if isinstance(exc, ReproError) and not is_retryable(exc):
                raise  # deterministic: replaying cannot change the outcome
            logger.warning(
                "batch item %d/%d of kernel %r failed on the %s executor "
                "(%s: %s); retrying in-process",
                i + 1, len(runs), kernel.name, executor,
                type(exc).__name__, exc,
            )
            _maybe_discard(ex, exc)
            retried = True
            result, seconds, who = _local_task(
                kernel, tensors, capacity, auto_grow, max_capacity,
                None, deadline,
            )
        results.append(result)
        stats.append(ShardStat(
            index=i, lo=0, hi=0, seconds=seconds,
            bytes_in=_operand_bytes(tensors), worker=who, retried=retried,
        ))
    kernel.last_shard_stats = stats
    return results
