"""Semiring-correct combination of per-shard partial outputs.

Free splits (the split attribute is the output's outermost level)
partition the *result*: each shard owns the output window over its
coordinate range, and the merge concatenates — dense value blocks
back-to-back, sparse levels by rebasing the outer coordinates to the
global frame (``+ lo``) and splicing position arrays with cumulative
nnz offsets.  No value is ever combined with another, so this merge is
exact in any semiring, floating point included.

Contracted splits (the split attribute is summed away) partition the
*reduction*: each shard produces a full-shape partial and the merge is
elementwise ⊕, taken from :class:`repro.semirings.base.Semiring`
(``np_add`` when the instance exposes a ufunc, the generic scalar
fallback otherwise).  By Theorem 6.1 the contraction is a ⊕-reduction,
so re-associating it over shards is exact in every semiring; only
float ⊕ is merely associative-up-to-rounding, exactly as the paper
(and TACO) accept.
"""

from __future__ import annotations

import functools
from typing import Any, Dict, Sequence, Tuple

import numpy as np

from repro.data.tensor import Tensor
from repro.errors import ShapeError, StreamPropertyError
from repro.runtime.planner import ShardPlan


def merge_partials(kernel, plan: ShardPlan, partials: Sequence[Any]):
    """Combine shard results per the plan's split kind.

    Asserts the plan's :class:`SplitCertificate` against the semiring
    actually executing the merge — the certificate was issued at plan
    time, and re-checking here makes the ⊕-law dependence of the
    contracted merge (commutativity: partials complete out of range
    order) a loud :class:`StreamPropertyError` instead of a silent
    wrong answer, even for hand-constructed plans.
    """
    sr = kernel.ops.semiring
    if plan.certificate is not None:
        plan.certificate.check(sr)
    elif plan.kind == "contracted" and not getattr(sr, "commutative_add", True):
        raise StreamPropertyError(
            f"uncertified contracted merge on {plan.split_attr!r}: ⊕ of "
            f"semiring {sr.name!r} is not commutative, so ⊕-combining "
            "shard partials out of range order is unsound"
        )
    if plan.kind == "free":
        return _merge_free(kernel, plan, partials)
    return _merge_contracted(kernel, partials)


# ----------------------------------------------------------------------
# free split: concatenation along the outermost output level
# ----------------------------------------------------------------------
def _merge_free(kernel, plan: ShardPlan, partials: Sequence[Tensor]) -> Tensor:
    out = kernel.output
    if out is None:
        raise ShapeError("free split is impossible for a scalar output")
    sr = kernel.ops.semiring
    fmts = out.formats
    if all(f == "dense" for f in fmts):
        # row-major storage: the outer level is the slowest-varying
        # index, so shard value blocks concatenate directly
        vals = np.concatenate([p.vals for p in partials])
        return Tensor(out.attrs, fmts, out.dims, {}, {}, vals, sr)
    if fmts == ("sparse",):
        crd = np.concatenate(
            [p.crd[0] + lo for p, (lo, _) in zip(partials, plan.ranges)]
        )
        vals = np.concatenate([p.vals for p in partials])
        pos = {0: np.array([0, len(crd)], dtype=np.int64)}
        return Tensor(out.attrs, fmts, out.dims, pos, {0: crd}, vals, sr)
    if fmts == ("dense", "sparse"):
        pos1 = [np.zeros(1, dtype=np.int64)]
        offset = 0
        for p in partials:
            pos1.append(p.pos[1][1:] + offset)
            offset += int(p.pos[1][-1])
        crd1 = np.concatenate([p.crd[1] for p in partials])
        vals = np.concatenate([p.vals for p in partials])
        return Tensor(
            out.attrs, fmts, out.dims,
            {1: np.concatenate(pos1)}, {1: crd1}, vals, sr,
        )
    if fmts == ("sparse", "sparse"):
        crd0 = np.concatenate(
            [p.crd[0] + lo for p, (lo, _) in zip(partials, plan.ranges)]
        )
        pos1 = [np.zeros(1, dtype=np.int64)]
        offset = 0
        for p in partials:
            pos1.append(p.pos[1][1:] + offset)
            offset += int(p.pos[1][-1])
        crd1 = np.concatenate([p.crd[1] for p in partials])
        vals = np.concatenate([p.vals for p in partials])
        pos = {
            0: np.array([0, len(crd0)], dtype=np.int64),
            1: np.concatenate(pos1),
        }
        return Tensor(out.attrs, fmts, out.dims, pos, {0: crd0, 1: crd1}, vals, sr)
    raise ShapeError(f"unsupported output formats {fmts} for shard merge")


# ----------------------------------------------------------------------
# contracted split: elementwise ⊕ of full-shape partials
# ----------------------------------------------------------------------
def _merge_contracted(kernel, partials: Sequence[Any]):
    sr = kernel.ops.semiring
    out = kernel.output
    if out is None:
        return functools.reduce(sr.add, partials)
    if all(f == "dense" for f in out.formats):
        vals = functools.reduce(sr.elementwise_add, [p.vals for p in partials])
        return Tensor(out.attrs, out.formats, out.dims, {}, {}, vals, sr)
    # sparse output levels: shard partials can have different coordinate
    # sets, so splice via the coordinate dictionary and rebuild
    merged: Dict[Tuple[int, ...], Any] = {}
    for p in partials:
        for coord, v in p.to_dict().items():
            merged[coord] = sr.add(merged[coord], v) if coord in merged else v
    entries = {c: v for c, v in merged.items() if not sr.is_zero(v)}
    return Tensor.from_entries(
        out.attrs, out.formats, out.dims, entries, sr,
        dtype=partials[0].vals.dtype,
    )
