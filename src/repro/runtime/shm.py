"""Zero-copy operand/result transport over POSIX shared memory.

The sharded runtime's process boundary used to be pickle: every shard
call serialized its operand arrays into the pipe and the worker
deserialized fresh copies.  This module replaces that with
:class:`multiprocessing.shared_memory.SharedMemory` segments plus small
picklable *descriptors*:

* the parent exports a tensor's backing arrays **once** into one
  segment (:func:`export_tensor`, cached on the tensor object);
* per-shard operand views are described, not copied —
  :func:`describe_tensor` maps each numpy view onto a byte window of
  the already-exported base segment (``slice_outer`` returns views of
  the base arrays, so the window is just an offset shift); only the
  O(shards) rebased outer ``pos``/``crd`` arrays travel inline;
* the worker reconstructs the tensor as ``np.frombuffer`` views over
  the attached segment (:func:`open_ref`) — no copy on that side
  either;
* large results come back the same way: the worker packs them into a
  segment whose name the *parent* chose up front
  (:func:`export_result`), so the parent can clean up deterministically
  even when the worker is killed mid-call.

Ownership rules (the reason no segment ever leaks):

* every segment has exactly one *unlink owner* — the parent process.
  Operand segments are unlinked when their tensor is garbage collected
  (a ``weakref.finalize`` on the tensor) and swept again at interpreter
  exit; result segments are unlinked by the parent immediately after
  attaching (POSIX keeps the mapping valid until the last ``close``),
  or on the error path by name;
* workers only ever ``close`` their attachments, never unlink;
* fork and spawn children share the parent's ``resource_tracker``
  (multiprocessing passes the tracker fd), so the create-side
  registration is balanced by the single parent-side unlink — a dying
  worker cannot trigger a tracker sweep of live segments.

``close()`` raises :class:`BufferError` while numpy views still export
the mapped buffer; every close in this module tolerates that — the
mapping then lives exactly as long as the views, which is the point.
"""

from __future__ import annotations

import atexit
import os
import threading
import weakref
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.compiler import resilience
from repro.data.tensor import Tensor

#: alignment of each packed array inside a segment (cache-line)
_ALIGN = 64

#: attribute under which a tensor memoizes its export
_EXPORT_ATTR = "_repro_shm_export"

#: worker-side attachment cache bound — oldest attachments are closed
#: (tolerantly) once more names than this have been seen
_ATTACH_BOUND = 128

_seq_lock = threading.Lock()
_seq = 0


def _fresh_name(tag: str = "") -> str:
    """A segment name unique within this process's lifetime."""
    global _seq
    with _seq_lock:
        _seq += 1
        n = _seq
    return f"repro_{os.getpid()}_{tag}{n}"


def _close_quiet(seg: shared_memory.SharedMemory) -> None:
    try:
        seg.close()
    except BufferError:
        # numpy views still export the buffer: the mapping must outlive
        # them.  Disarm the segment object so its __del__ cannot re-raise
        # at GC time — the views hold their own reference to the
        # memoryview/mmap chain, which releases the mapping when the
        # last view dies; only the fd is closed here.
        seg._buf = None
        seg._mmap = None
        fd = getattr(seg, "_fd", -1)
        if fd >= 0:
            try:
                os.close(fd)
            except OSError:
                pass
            seg._fd = -1
    except OSError:
        pass


def _unlink_quiet(seg: shared_memory.SharedMemory) -> None:
    try:
        seg.unlink()
    except FileNotFoundError:
        pass
    except OSError:
        pass


# ----------------------------------------------------------------------
# descriptors: what actually crosses the pipe
# ----------------------------------------------------------------------
@dataclass
class ArrayRef:
    """One array of a tensor: either a byte window into a segment
    (``offset >= 0``) or an inline numpy payload."""

    dtype: str
    length: int
    offset: int = -1
    data: Optional[np.ndarray] = None


@dataclass
class TensorRef:
    """A picklable description of a tensor whose big arrays live in a
    shared-memory segment."""

    attrs: Tuple[str, ...]
    formats: Tuple[str, ...]
    dims: Tuple[int, ...]
    semiring: object
    segment: Optional[str]
    vals: ArrayRef = None  # type: ignore[assignment]
    pos: Dict[int, ArrayRef] = field(default_factory=dict)
    crd: Dict[int, ArrayRef] = field(default_factory=dict)

    def nbytes_window(self) -> int:
        """Bytes referenced through the segment (0 when fully inline)."""
        total = 0
        for ref in [self.vals, *self.pos.values(), *self.crd.values()]:
            if ref.offset >= 0:
                total += np.dtype(ref.dtype).itemsize * ref.length
        return total


# ----------------------------------------------------------------------
# parent side: export base tensors, describe shard views
# ----------------------------------------------------------------------
@dataclass
class _Span:
    """Where one source array was copied to: its original address range
    (for window detection on views) and its offset in the segment."""

    base_addr: int
    nbytes: int
    dtype: str
    seg_offset: int


class TensorExport:
    """One tensor's arrays packed into one shared-memory segment.

    Created by :func:`export_tensor` and memoized on the tensor; the
    parent is the unlink owner (tensor finalizer + atexit sweep).
    """

    def __init__(self, tensor: Tensor) -> None:
        arrays = _tensor_arrays(tensor)
        offsets: List[int] = []
        total = 0
        for _key, arr in arrays:
            total = _aligned(total)
            offsets.append(total)
            total += arr.nbytes
        self.name = _fresh_name()
        self.segment = shared_memory.SharedMemory(
            name=self.name, create=True, size=max(1, total)
        )
        self.spans: List[_Span] = []
        for (key, arr), off in zip(arrays, offsets):
            dst = np.frombuffer(
                self.segment.buf, dtype=arr.dtype, count=arr.size, offset=off
            )
            dst[:] = arr
            self.spans.append(_Span(
                base_addr=_addr(arr), nbytes=arr.nbytes,
                dtype=np.dtype(arr.dtype).str, seg_offset=off,
            ))
        self._released = False

    def locate(self, arr: np.ndarray) -> Optional[int]:
        """Segment offset of a view into one of the exported source
        arrays, or None when ``arr`` is not such a view."""
        if arr.size and not arr.flags["C_CONTIGUOUS"]:
            return None
        addr, nbytes, dt = _addr(arr), arr.nbytes, np.dtype(arr.dtype).str
        for span in self.spans:
            if (span.dtype == dt and span.base_addr <= addr
                    and addr + nbytes <= span.base_addr + span.nbytes):
                return span.seg_offset + (addr - span.base_addr)
        return None

    def release(self) -> None:
        """Unlink and close; idempotent."""
        if self._released:
            return
        self._released = True
        _EXPORTS.pop(self.name, None)
        _unlink_quiet(self.segment)
        _close_quiet(self.segment)


def _tensor_arrays(t: Tensor) -> List[Tuple[str, np.ndarray]]:
    out: List[Tuple[str, np.ndarray]] = [("vals", t.vals)]
    for k in sorted(t.pos):
        out.append((f"pos{k}", t.pos[k]))
    for k in sorted(t.crd):
        out.append((f"crd{k}", t.crd[k]))
    return out


def _aligned(off: int) -> int:
    return (off + _ALIGN - 1) & ~(_ALIGN - 1)


def _addr(arr: np.ndarray) -> int:
    return arr.__array_interface__["data"][0]


def tensor_bytes(t: Tensor) -> int:
    """Total backing-array bytes of a tensor (the shm-threshold gauge)."""
    return sum(int(a.nbytes) for _k, a in _tensor_arrays(t))


#: live exports by segment name, for the atexit sweep
_EXPORTS: Dict[str, TensorExport] = {}


def export_tensor(tensor: Tensor, threshold: Optional[int] = None,
                  ) -> Optional[TensorExport]:
    """Export a tensor's arrays into one segment, memoized on the
    tensor.

    Returns None when the tensor is smaller than the shm threshold
    (``REPRO_SHM_THRESHOLD``) — small operands pickle faster than they
    map.  The export assumes the tensor's arrays are not mutated
    afterwards, which holds for every tensor this package builds.
    """
    cached = getattr(tensor, _EXPORT_ATTR, None)
    if cached is not None and not cached._released:
        return cached
    threshold = resilience.shm_threshold() if threshold is None else threshold
    if tensor_bytes(tensor) < threshold:
        return None
    export = TensorExport(tensor)
    _EXPORTS[export.name] = export
    setattr(tensor, _EXPORT_ATTR, export)
    weakref.finalize(tensor, TensorExport.release, export)
    return export


def describe_tensor(tensor: Tensor,
                    export: Optional[TensorExport]) -> TensorRef:
    """A picklable ref for a tensor (typically a ``slice_outer`` shard
    view of an exported base tensor).

    Arrays that are views into the export's source arrays become byte
    windows; everything else (the small rebased outer ``pos``/``crd``,
    or all arrays when ``export`` is None) travels inline.
    """
    used_segment = False

    def ref(arr: np.ndarray) -> ArrayRef:
        nonlocal used_segment
        dt = np.dtype(arr.dtype).str
        if export is not None:
            off = export.locate(arr)
            if off is not None:
                used_segment = True
                return ArrayRef(dtype=dt, length=int(arr.size), offset=off)
        return ArrayRef(dtype=dt, length=int(arr.size),
                        data=np.ascontiguousarray(arr))
    vals = ref(tensor.vals)
    pos = {k: ref(a) for k, a in tensor.pos.items()}
    crd = {k: ref(a) for k, a in tensor.crd.items()}
    return TensorRef(
        attrs=tensor.attrs, formats=tensor.formats, dims=tensor.dims,
        semiring=tensor.semiring,
        segment=export.name if (export is not None and used_segment) else None,
        vals=vals, pos=pos, crd=crd,
    )


# ----------------------------------------------------------------------
# worker side: reconstruct tensors as views, export results
# ----------------------------------------------------------------------
_attached: Dict[str, shared_memory.SharedMemory] = {}
_attach_lock = threading.Lock()


def _attach(name: str) -> shared_memory.SharedMemory:
    with _attach_lock:
        seg = _attached.get(name)
        if seg is None:
            seg = shared_memory.SharedMemory(name=name)
            _attached[name] = seg
            while len(_attached) > _ATTACH_BOUND:
                old_name, old = next(iter(_attached.items()))
                del _attached[old_name]
                _close_quiet(old)
        return seg


def open_ref(ref: TensorRef) -> Tensor:
    """Reconstruct a tensor from its ref — windows become views over
    the attached segment, nothing is copied."""
    seg = _attach(ref.segment) if ref.segment is not None else None

    def arr(aref: ArrayRef) -> np.ndarray:
        if aref.offset < 0:
            return aref.data
        return np.frombuffer(
            seg.buf, dtype=np.dtype(aref.dtype), count=aref.length,
            offset=aref.offset,
        )
    return Tensor(
        ref.attrs, ref.formats, ref.dims,
        {k: arr(a) for k, a in ref.pos.items()},
        {k: arr(a) for k, a in ref.crd.items()},
        arr(ref.vals), ref.semiring,
    )


def close_attachments() -> None:
    """Drop the attachment cache (worker exit path)."""
    with _attach_lock:
        for seg in _attached.values():
            _close_quiet(seg)
        _attached.clear()


ResultPayload = Tuple[str, object]  # ("val", obj) | ("ref", TensorRef)


def export_result(result: object, name: str,
                  threshold: int) -> ResultPayload:
    """Worker side: pack a large tensor result into the parent-named
    segment ``name``; small results and scalars return inline."""
    if not isinstance(result, Tensor) or tensor_bytes(result) < threshold:
        return ("val", result)
    arrays = _tensor_arrays(result)
    offsets: List[int] = []
    total = 0
    for _key, arr in arrays:
        total = _aligned(total)
        offsets.append(total)
        total += arr.nbytes
    seg = shared_memory.SharedMemory(name=name, create=True,
                                     size=max(1, total))
    refs: Dict[str, ArrayRef] = {}
    for (key, arr), off in zip(arrays, offsets):
        dst = np.frombuffer(seg.buf, dtype=arr.dtype, count=arr.size,
                            offset=off)
        dst[:] = arr.ravel()
        refs[key] = ArrayRef(dtype=np.dtype(arr.dtype).str,
                             length=int(arr.size), offset=off)
    _close_quiet(seg)  # the parent holds the unlink; our mapping is done
    tref = TensorRef(
        attrs=result.attrs, formats=result.formats, dims=result.dims,
        semiring=result.semiring, segment=name,
        vals=refs["vals"],
        pos={k: refs[f"pos{k}"] for k in result.pos},
        crd={k: refs[f"crd{k}"] for k in result.crd},
    )
    return ("ref", tref)


def adopt_result(payload: ResultPayload) -> object:
    """Parent side: materialize a worker's result payload.

    Inline values pass through.  Segment-backed results are attached,
    wrapped as numpy views, and the segment is unlinked *immediately* —
    the POSIX mapping stays valid until the last close, and a finalizer
    on the tensor closes our mapping when the result dies.
    """
    kind, value = payload
    if kind == "val":
        return value
    ref: TensorRef = value
    seg = shared_memory.SharedMemory(name=ref.segment)
    _unlink_quiet(seg)

    def arr(aref: ArrayRef) -> np.ndarray:
        if aref.offset < 0:
            return aref.data
        return np.frombuffer(
            seg.buf, dtype=np.dtype(aref.dtype), count=aref.length,
            offset=aref.offset,
        )
    tensor = Tensor(
        ref.attrs, ref.formats, ref.dims,
        {k: arr(a) for k, a in ref.pos.items()},
        {k: arr(a) for k, a in ref.crd.items()},
        arr(ref.vals), ref.semiring,
    )
    weakref.finalize(tensor, _close_quiet, seg)
    return tensor


def unlink_by_name(name: str) -> bool:
    """Best-effort unlink of a segment by name (crash/timeout cleanup
    of a result the worker may or may not have created).  Returns
    whether a segment existed."""
    try:
        seg = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    except OSError:
        return False
    _unlink_quiet(seg)
    _close_quiet(seg)
    return True


def result_name() -> str:
    """A parent-chosen name for one call's result segment."""
    return _fresh_name("r")


def live_export_count() -> int:
    """Number of operand exports this process still owns (tests)."""
    return len(_EXPORTS)


def release_all_exports() -> None:
    """Unlink every live operand export (interpreter-exit sweep; also
    the big hammer for tests that assert ``/dev/shm`` cleanliness)."""
    for export in list(_EXPORTS.values()):
        export.release()


atexit.register(release_all_exports)

__all__ = [
    "ArrayRef",
    "TensorRef",
    "TensorExport",
    "adopt_result",
    "close_attachments",
    "describe_tensor",
    "export_result",
    "export_tensor",
    "live_export_count",
    "open_ref",
    "release_all_exports",
    "result_name",
    "tensor_bytes",
    "unlink_by_name",
]
