"""A per-kernel circuit breaker over supervised execution failures.

A kernel that keeps segfaulting or timing out under supervision is not
worth forking for on every request: after ``REPRO_BREAKER_THRESHOLD``
consecutive crash/timeout failures the breaker *opens* and
``Kernel.run`` transparently degrades to the pure-Python backend (a
rebuild from the kernel's recipe — memory-safe, slower, numerically
identical).  An open breaker re-probes the real kernel with exponential
backoff plus jitter: after ``REPRO_BREAKER_BACKOFF`` seconds (doubled
per failed probe, ±50% jitter) exactly one call runs the supervised
kernel again (*half-open*); success closes the breaker, failure
re-opens it with a longer delay.

::

                 failure × N                    backoff elapsed
      CLOSED ──────────────────► OPEN ──────────────────────► HALF-OPEN
        ▲                          ▲                              │
        │ probe succeeds           │ probe fails (backoff ×2)     │
        └──────────────────────────┴──────────────────────────────┘

Breaker state is keyed by the kernel's canonical cache key, held in
memory, and mirrored to ``kbrk_<key>.json`` records in the kernel cache
directory (atomic writes under the per-key file lock, the PR 2
machinery) so that a service restarting — or a sibling worker process —
does not have to re-crash its way to the same conclusion.  Every
transition is logged through the ``repro`` logger; degradation is never
silent.
"""

from __future__ import annotations

import json
import random
import threading
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, Optional

from repro.compiler import resilience
from repro.compiler.resilience import logger

#: ceiling for the exponential re-probe delay
MAX_BACKOFF = 600.0

#: states reported by :meth:`CircuitBreaker.decide`
CLOSED, OPEN, HALF_OPEN = "closed", "open", "half_open"


def _now() -> float:
    """Wall-clock seconds (module-level so tests can monkeypatch time)."""
    return time.time()


@dataclass
class BreakerRecord:
    """Persistent per-key breaker state."""

    failures: int = 0
    opened_at: Optional[float] = None
    probes: int = 0

    @property
    def is_open(self) -> bool:
        return self.opened_at is not None


class CircuitBreaker:
    """Threshold/backoff bookkeeping for supervised kernels. Thread-safe."""

    def __init__(self, persist: bool = True) -> None:
        self._lock = threading.Lock()
        self._records: Dict[str, BreakerRecord] = {}
        self._persist = persist
        #: directories already TTL-swept by this instance (once per dir
        #: per process is plenty — the sweep is about unbounded growth
        #: across service lifetimes, not real-time accuracy)
        self._swept: set = set()
        #: keys whose half-open probe is currently in flight — exactly
        #: one caller may hold the claim; everyone else sees ``open``
        #: until the probe reports back (``record_success`` /
        #: ``record_failure`` with ``probe=True`` releases it)
        self._probing: set = set()

    # -- state machine -------------------------------------------------
    def decide(self, key: str) -> str:
        """``closed`` (run normally), ``open`` (serve the fallback), or
        ``half_open`` (a re-probe is due).  Read-only: deciding never
        claims the probe — callers that intend to *run* the probe go
        through :meth:`try_probe`."""
        with self._lock:
            return self._state_locked(key)

    def _state_locked(self, key: str) -> str:
        rec = self._load(key)
        if not rec.is_open:
            return CLOSED
        if key in self._probing:
            return OPEN
        if _now() >= self._reprobe_at(key, rec):
            return HALF_OPEN
        return OPEN

    def try_probe(self, key: str) -> str:
        """Like :meth:`decide`, but a ``half_open`` verdict *claims*
        the probe: exactly one concurrent caller per key is told to
        re-run the supervised kernel; everyone else sees ``open`` until
        that probe reports back through ``record_success`` /
        ``record_failure`` (``probe=True`` releases the claim).

        Without the claim, N threads deciding inside the same backoff
        window would all probe a kernel the breaker believes is
        crashing — N crashes instead of one.
        """
        with self._lock:
            state = self._state_locked(key)
            if state == HALF_OPEN:
                self._probing.add(key)
            return state

    def record_failure(self, key: str, name: str = "?", probe: bool = False) -> bool:
        """Count one supervised crash/timeout; returns True when this
        failure opened (or re-opened) the breaker."""
        with self._lock:
            if probe:
                self._probing.discard(key)
            rec = self._load(key)
            rec.failures += 1
            opened = False
            if probe and rec.is_open:
                rec.probes += 1
                rec.opened_at = _now()
                opened = True
                logger.warning(
                    "kernel %r: re-probe failed (probe #%d); circuit stays "
                    "open, next probe in ~%.0fs",
                    name, rec.probes, self._backoff(rec),
                )
            elif not rec.is_open and rec.failures >= resilience.breaker_threshold():
                rec.opened_at = _now()
                rec.probes = 0
                opened = True
                logger.warning(
                    "kernel %r: %d supervised failure(s) — circuit breaker "
                    "OPEN; serving the Python-backend fallback, first "
                    "re-probe in ~%.0fs",
                    name, rec.failures, self._backoff(rec),
                )
            self._store(key, rec)
            return opened

    def record_success(self, key: str, name: str = "?", probe: bool = False) -> None:
        """A supervised run completed: close (and forget) the breaker."""
        with self._lock:
            if probe:
                self._probing.discard(key)
            rec = self._records.get(key)
            was_open = rec.is_open if rec is not None else False
            self._records[key] = BreakerRecord()
            self._erase(key)
            if was_open:
                logger.warning(
                    "kernel %r: re-probe succeeded; circuit breaker CLOSED "
                    "(native execution restored)", name,
                )

    def release_probe(self, key: str) -> None:
        """Hand back an unused probe claim.

        A claimed probe that neither crashed nor succeeded (the child
        raised a typed kernel error — a :class:`CapacityError`, say —
        which says nothing about crash-worthiness) must not leave the
        key wedged in its in-flight state forever.
        """
        with self._lock:
            self._probing.discard(key)

    def state(self, key: str) -> str:
        return self.decide(key)

    def is_open(self, key: str) -> bool:
        """Whether the breaker currently refuses native execution for
        this key (open, including a claimed in-flight probe)."""
        return self.state(key) != CLOSED

    def retry_after(self, key: str) -> Optional[float]:
        """Seconds until the next half-open probe could run — the
        honest ``Retry-After`` for a load-shedding server rejecting an
        open-breaker kernel at admission.

        ``None`` when the breaker is closed (nothing to wait for);
        ``0.0`` when a probe is already due (or in flight — its result
        lands within one kernel deadline, not one backoff).
        """
        with self._lock:
            rec = self._load(key)
            if not rec.is_open:
                return None
            return max(0.0, self._reprobe_at(key, rec) - _now())

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Current per-key state, for observability surfaces (the
        worker pool's :meth:`~repro.runtime.pool.WorkerPool.snapshot`
        reports this next to its own per-key failure counters — the
        breaker and the pool key off the same failures)."""
        with self._lock:
            out: Dict[str, Dict[str, object]] = {}
            for key, rec in self._records.items():
                out[key] = {
                    "failures": rec.failures,
                    "probes": rec.probes,
                    "open": rec.is_open,
                    "probing": key in self._probing,
                }
            return out

    def reset(self) -> None:
        """Forget everything (tests)."""
        with self._lock:
            for key in list(self._records):
                self._erase(key)
            self._records.clear()
            self._probing.clear()

    # -- timing --------------------------------------------------------
    def _backoff(self, rec: BreakerRecord) -> float:
        return min(
            MAX_BACKOFF, resilience.breaker_backoff() * (2.0 ** rec.probes)
        )

    def _reprobe_at(self, key: str, rec: BreakerRecord) -> float:
        """The earliest wall-clock time of the next half-open probe.

        Jitter is deterministic per (key, probe count) — re-deciding
        must not re-roll the dice — and spreads a fleet of processes
        that opened together over 1.0–1.5× the base delay so their
        probes do not stampede the moment the backoff elapses.
        """
        assert rec.opened_at is not None
        jitter = 1.0 + 0.5 * random.Random(f"{key}:{rec.probes}").random()
        return rec.opened_at + self._backoff(rec) * jitter

    # -- persistence (kernel cache dir, atomic + per-key flock) --------
    def _path(self, key: str) -> Optional[Path]:
        if not self._persist:
            return None
        try:
            from repro.compiler.cache import default_cache_dir

            return default_cache_dir() / f"kbrk_{key[:24]}.json"
        except Exception:  # pragma: no cover - cache layer unavailable
            return None

    def _sweep(self, directory: Path) -> None:
        """GC stale persisted breaker records, once per directory.

        ``kbrk_*.json`` files otherwise accumulate forever: every
        kernel that ever tripped a failure leaves one behind, and cache
        keys are content-addressed so old kernel versions never get
        theirs overwritten.  A record both *closed* (``opened_at`` is
        null — an open breaker is live state, never swept) and
        untouched for ``REPRO_BREAKER_TTL`` seconds (default 7 days) is
        deleted; an unreadable record past the TTL is junk and goes
        too.  ``REPRO_BREAKER_TTL=0`` disables the sweep.
        """
        if directory in self._swept:
            return
        self._swept.add(directory)
        ttl = resilience.breaker_ttl()
        if ttl is None:
            return
        cutoff = _now() - ttl
        try:
            candidates = list(directory.glob("kbrk_*.json"))
        except OSError:
            return
        swept = 0
        for p in candidates:
            try:
                if p.stat().st_mtime >= cutoff:
                    continue
            except OSError:
                continue
            try:
                if json.loads(p.read_text()).get("opened_at") is not None:
                    continue  # open breaker: live state
            except (OSError, ValueError, TypeError):
                pass  # unreadable + stale: sweep it
            try:
                p.unlink()
                swept += 1
            except OSError:
                continue
        if swept:
            logger.info("breaker GC swept %d stale record(s) under %s",
                        swept, directory)

    def _load(self, key: str) -> BreakerRecord:
        rec = self._records.get(key)
        if rec is not None:
            return rec
        rec = BreakerRecord()
        path = self._path(key)
        if path is not None:
            self._sweep(path.parent)
        if path is not None:
            try:
                data = json.loads(path.read_text())
                rec = BreakerRecord(
                    failures=int(data["failures"]),
                    opened_at=data["opened_at"],
                    probes=int(data["probes"]),
                )
            except FileNotFoundError:
                pass
            except (OSError, ValueError, TypeError, KeyError) as exc:
                logger.debug("unreadable breaker record %s (%s)", path, exc)
        self._records[key] = rec
        return rec

    def _store(self, key: str, rec: BreakerRecord) -> None:
        self._records[key] = rec
        path = self._path(key)
        if path is None:
            return
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            with resilience.file_lock(path):
                resilience.atomic_write_text(path, json.dumps(asdict(rec)))
        except OSError as exc:
            logger.debug("could not persist breaker record %s (%s)", path, exc)

    def _erase(self, key: str) -> None:
        path = self._path(key)
        if path is None:
            return
        try:
            path.unlink()
        except OSError:
            pass


#: the process-wide breaker consulted by ``Kernel.run``
breaker = CircuitBreaker()

__all__ = [
    "CircuitBreaker",
    "BreakerRecord",
    "breaker",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "MAX_BACKOFF",
]
