"""Persistent, pre-warmed kernel worker pool.

The classic ``process`` executor pays a worker spawn plus a recipe +
operand pickle on *every* call — BENCH_PR4/BENCH_PR5 measured that at
3–30× the kernel's own runtime.  This pool keeps a fixed set of worker
processes resident (pre-forked at construction), holds each compiled
kernel loaded in the workers under its cache key (warmed once: the
recipe crosses the pipe one time, the ``.so`` is dlopen'd one time,
then reused for thousands of calls), and moves operand/result arrays
through the :mod:`repro.runtime.shm` zero-copy data plane instead of
pickle.

Supervision moves *inside* the pool: workers run under ``RLIMIT_AS``
applied once at start, the parent enforces per-call wall deadlines on
the reply pipe, and death-by-signal is decoded from the exit status —
the same typed-error contract as :mod:`repro.runtime.supervisor`, at a
fraction of the per-call cost.  A dead worker never kills the pool:
the call that observed the death raises its typed error and a fresh
replacement (re-warmed with every recipe the pool has seen) takes the
dead worker's slot.

Worker lifecycle state machine::

    spawn ──▶ idle ──acquire──▶ busy ──release──▶ idle
               │                 │
               │ idle > TTL      │ crash / deadline
               ▼                 ▼
             evict            kill + replace ──▶ idle (fresh worker)

Health checks: acquisition re-verifies liveness (a worker that died
idle is replaced before it is ever handed out), and :meth:`
WorkerPool.health_check` pings every idle worker on demand.  The
circuit breaker of :mod:`repro.runtime.breaker` keys off the same
failures this pool observes — :meth:`WorkerPool.stats` exposes the
per-key counters next to the breaker's state snapshot.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import pickle
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.compiler import resilience
from repro.compiler.resilience import logger
from repro.errors import KernelCrashError, KernelTimeoutError
from repro.runtime import shm


class PoolUnavailableError(RuntimeError):
    """The pool cannot serve calls (failed spawn, closed pool) — the
    caller should degrade to a non-pooled path."""


def pool_key(kernel) -> str:
    """The worker-side memo key for a kernel: its content-addressed
    cache key, else a digest of the recipe itself (cache disabled)."""
    key = getattr(kernel, "cache_key", None)
    if key:
        return key
    recipe = getattr(kernel, "recipe", None)
    if recipe is None:
        raise PoolUnavailableError(
            f"kernel {getattr(kernel, 'name', '?')!r} has no rebuild "
            "recipe; it cannot cross the pool boundary"
        )
    return "recipe:" + hashlib.sha1(pickle.dumps(recipe)).hexdigest()


@dataclass
class PoolStats:
    """Counters the circuit breaker and benchmarks key off."""

    spawned: int = 0
    replaced: int = 0
    evicted: int = 0
    calls: int = 0
    crashes: int = 0
    timeouts: int = 0
    #: cumulative pool machinery overhead: wall time inside
    #: :meth:`WorkerPool.run_call` minus the worker-reported kernel
    #: seconds (worker acquisition, pipe round-trip, shm adoption) —
    #: the *measured* per-dispatch cost the autotuner's calibration
    #: prices shard plans with
    overhead_s: float = 0.0
    #: typed failures per pool key — same keying as the circuit breaker
    failures: Dict[str, int] = field(default_factory=dict)

    def record_failure(self, key: str, *, timeout: bool) -> None:
        self.failures[key] = self.failures.get(key, 0) + 1
        if timeout:
            self.timeouts += 1
        else:
            self.crashes += 1

    @property
    def avg_overhead_s(self) -> float:
        """Mean dispatch overhead per completed call (0.0 before any)."""
        return self.overhead_s / self.calls if self.calls else 0.0


class _Worker:
    """One resident worker process and its duplex pipe."""

    __slots__ = ("proc", "conn", "warmed", "last_used", "wid")

    def __init__(self, proc, conn, wid: int) -> None:
        self.proc = proc
        self.conn = conn
        self.warmed: set = set()
        self.last_used = time.monotonic()
        self.wid = wid


class WorkerPool:
    """A fixed-size pool of resident kernel workers.

    ``workers`` defaults to ``REPRO_POOL_WORKERS`` (else
    ``REPRO_WORKERS``, else the CPU count); the start method follows
    ``REPRO_MP_START``; ``mem_mb`` (default ``REPRO_KERNEL_MEM_MB``)
    caps each worker's address space once, at spawn.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        *,
        start_method: Optional[str] = None,
        mem_mb: Optional[int] = None,
        warm: Optional[bool] = None,
    ) -> None:
        # an explicit size wins; the env knobs only fill the default
        self.max_workers = (
            workers if workers is not None else resilience.pool_workers()
        )
        self._ctx = multiprocessing.get_context(
            start_method or resilience.mp_start_method()
        )
        self._mem_mb = mem_mb if mem_mb is not None else resilience.kernel_mem_mb()
        self._warm = (
            warm if warm is not None else resilience.pool_warm_enabled()
        )
        self._lock = threading.Lock()
        self._have_idle = threading.Condition(self._lock)
        self._idle: List[_Worker] = []
        self._busy: set = set()
        self._recipes: Dict[str, object] = {}
        self._next_wid = 0
        self._closed = False
        self.stats = PoolStats()
        from repro.compiler.cache import default_cache_dir

        self._cache_dir = str(default_cache_dir())
        self._env = {
            k: v for k, v in os.environ.items() if k.startswith("REPRO_")
        }
        # pre-fork the full complement so first calls find warm pipes
        with self._lock:
            for _ in range(self.max_workers):
                self._idle.append(self._spawn())

    # ------------------------------------------------------------------
    # worker lifecycle
    # ------------------------------------------------------------------
    def _spawn(self) -> _Worker:
        """Start one worker (caller holds the lock); re-warm it with
        every recipe the pool has seen when warming is on."""
        from repro.runtime import worker as worker_mod

        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        try:
            proc = self._ctx.Process(
                target=worker_mod.pool_worker_main,
                args=(child_conn, self._cache_dir, self._env, self._mem_mb),
                daemon=True,
                name=f"repro-pool-{self._next_wid}",
            )
            proc.start()
        except Exception as exc:
            parent_conn.close()
            raise PoolUnavailableError(f"could not spawn pool worker: {exc}")
        finally:
            child_conn.close()
        w = _Worker(proc, parent_conn, self._next_wid)
        self._next_wid += 1
        self.stats.spawned += 1
        if self._warm:
            for key, recipe in self._recipes.items():
                if not self._warm_one(w, key, recipe):
                    break
        return w

    def _warm_one(self, w: _Worker, key: str, recipe) -> bool:
        """Ship one recipe to one worker and await the ack."""
        try:
            w.conn.send(("warm", key, recipe))
            reply = w.conn.recv()
        except (EOFError, OSError, BrokenPipeError):
            return False
        if reply[0] == "warmed":
            w.warmed.add(key)
            return True
        logger.warning(
            "pool worker %d could not warm kernel key %.24s…: %s",
            w.wid, key, reply[1],
        )
        return True  # worker is healthy, the build just failed

    def _destroy(self, w: _Worker, *, replace: bool) -> None:
        """Kill one worker and optionally put a replacement on the idle
        list (caller holds the lock)."""
        try:
            w.conn.close()
        except Exception:
            pass
        if w.proc.is_alive():
            w.proc.kill()
        w.proc.join(5.0)
        self._busy.discard(w)
        if w in self._idle:
            self._idle.remove(w)
        if replace and not self._closed:
            self.stats.replaced += 1
            try:
                self._idle.append(self._spawn())
                self._have_idle.notify()
            except PoolUnavailableError as exc:
                logger.warning("pool replacement spawn failed: %s", exc)

    def _acquire(self, timeout: Optional[float] = None) -> _Worker:
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            while True:
                if self._closed:
                    raise PoolUnavailableError("worker pool is shut down")
                while self._idle:
                    w = self._idle.pop()  # LIFO keeps hot workers hot
                    if w.proc.is_alive():
                        self._busy.add(w)
                        return w
                    # died while idle: replace before handing anything out
                    self._destroy(w, replace=True)
                if len(self._busy) < self.max_workers:
                    w = self._spawn()
                    self._busy.add(w)
                    return w
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    raise PoolUnavailableError(
                        "no pool worker became available in time"
                    )
                self._have_idle.wait(
                    0.1 if remaining is None else min(remaining, 0.1)
                )

    def _release(self, w: _Worker) -> None:
        with self._lock:
            self._busy.discard(w)
            if self._closed:
                self._destroy(w, replace=False)
                return
            w.last_used = time.monotonic()
            self._idle.append(w)
            self._have_idle.notify()
            self._evict_stale()

    def _evict_stale(self) -> None:
        """Drop idle workers beyond the TTL, always keeping one warm
        (caller holds the lock).  ``_idle`` is LIFO — the front of the
        list is the coldest worker."""
        ttl = resilience.pool_idle_ttl()
        if ttl is None:
            return
        now = time.monotonic()
        while len(self._idle) > 1 and now - self._idle[0].last_used > ttl:
            w = self._idle.pop(0)
            self._retire(w)
            self.stats.evicted += 1

    def _retire(self, w: _Worker) -> None:
        """Polite shutdown of one worker: exit message, then join."""
        try:
            w.conn.send(("exit",))
        except Exception:
            pass
        try:
            w.conn.close()
        except Exception:
            pass
        w.proc.join(2.0)
        if w.proc.is_alive():
            w.proc.kill()
            w.proc.join(5.0)

    # ------------------------------------------------------------------
    # the public call surface
    # ------------------------------------------------------------------
    def register_recipe(self, key: str, recipe) -> None:
        """Record a recipe for warm-up; broadcast it to idle workers
        when proactive warming is on."""
        with self._lock:
            if key in self._recipes:
                return
            self._recipes[key] = recipe
            if not self._warm:
                return
            for w in list(self._idle):
                if key not in w.warmed and not self._warm_one(w, key, recipe):
                    self._destroy(w, replace=True)

    def run_call(
        self,
        key: str,
        refs: Mapping[str, shm.TensorRef],
        output_dims: Optional[Sequence[int]],
        capacity: Optional[int],
        auto_grow: bool,
        max_capacity: Optional[int],
        deadline: Optional[float] = None,
        threshold: Optional[int] = None,
    ) -> Tuple[object, float, int]:
        """Run one warmed kernel call on a pool worker.

        Returns ``(result, seconds, pid)`` like the classic shard task.
        Raises the worker's typed kernel error, or
        :class:`~repro.errors.KernelTimeoutError` /
        :class:`~repro.errors.KernelCrashError` after killing and
        replacing the worker.
        """
        threshold = (
            resilience.shm_threshold() if threshold is None else threshold
        )
        t_enter = time.monotonic()
        w = self._acquire()
        self.stats.calls += 1
        rname = shm.result_name()
        dead = False
        try:
            recipe = None if key in w.warmed else self._recipes.get(key)
            try:
                w.conn.send((
                    "run", key, recipe, dict(refs), output_dims, capacity,
                    auto_grow, max_capacity, rname, threshold,
                ))
            except (OSError, BrokenPipeError) as exc:
                dead = True
                raise self._worker_died(w, key, rname, cause=str(exc))
            try:
                reply = self._await_reply(w, deadline, key, rname)
            except (KernelCrashError, KernelTimeoutError):
                dead = True
                raise
            if reply[0] == "ok":
                _tag, payload, seconds, pid = reply
                w.warmed.add(key)
                result = shm.adopt_result(payload)
                self.stats.overhead_s += max(
                    0.0, (time.monotonic() - t_enter) - seconds
                )
                return result, seconds, pid
            _tag, exc, _seconds = reply
            shm.unlink_by_name(rname)
            raise exc
        finally:
            if not dead:
                self._release(w)

    def _await_reply(self, w: _Worker, deadline: Optional[float],
                     key: str, rname: str):
        """Poll the worker's pipe; decode deadline/crash exactly like
        the fork-per-call supervisor, then kill + replace."""
        limit = None if deadline is None else time.monotonic() + deadline
        while True:
            if limit is not None and time.monotonic() >= limit:
                with self._lock:
                    self._destroy(w, replace=True)
                shm.unlink_by_name(rname)
                self.stats.record_failure(key, timeout=True)
                raise KernelTimeoutError(
                    f"pooled kernel call missed its {deadline:.1f}s "
                    f"deadline; worker {w.wid} was killed and replaced",
                    deadline=deadline,
                )
            try:
                if w.conn.poll(0.05):
                    return w.conn.recv()
            except (EOFError, OSError):
                raise self._worker_died(w, key, rname)
            if not w.proc.is_alive():
                # drain a reply that raced the exit
                try:
                    if w.conn.poll(0.05):
                        return w.conn.recv()
                except (EOFError, OSError):
                    pass
                raise self._worker_died(w, key, rname)

    def _worker_died(
        self, w: _Worker, key: Optional[str], rname: Optional[str],
        cause: Optional[str] = None,
    ) -> KernelCrashError:
        """Decode a worker death into a typed error; kill + replace."""
        w.proc.join(2.0)
        code = w.proc.exitcode
        with self._lock:
            self._destroy(w, replace=True)
        if rname is not None:
            shm.unlink_by_name(rname)
        self.stats.record_failure(key or "<unknown>", timeout=False)
        if code is not None and code < 0:
            return KernelCrashError(
                f"pool worker {w.wid} died running a kernel",
                signal=-code, exitcode=code,
            )
        detail = f" ({cause})" if cause else ""
        return KernelCrashError(
            f"pool worker {w.wid} exited (status {code}) without "
            f"reporting a result{detail}",
            exitcode=code,
        )

    # ------------------------------------------------------------------
    # health & stats
    # ------------------------------------------------------------------
    def health_check(self) -> Dict[int, bool]:
        """Ping every idle worker; dead ones are replaced.  Returns
        ``{worker id: alive}`` for the workers checked."""
        report: Dict[int, bool] = {}
        with self._lock:
            for w in list(self._idle):
                ok = False
                try:
                    w.conn.send(("ping", w.wid))
                    if w.conn.poll(5.0):
                        reply = w.conn.recv()
                        ok = reply[0] == "pong" and reply[1] == w.wid
                except (EOFError, OSError, BrokenPipeError):
                    ok = False
                report[w.wid] = ok
                if not ok:
                    self._destroy(w, replace=True)
        return report

    def snapshot(self) -> Dict[str, object]:
        """Pool + breaker state for observability; the breaker keys off
        the same per-key failure counters recorded here."""
        from repro.runtime import breaker as breaker_mod

        with self._lock:
            idle = len(self._idle)
            busy = len(self._busy)
            warmed = {w.wid: len(w.warmed) for w in self._idle}
        return {
            "max_workers": self.max_workers,
            "idle": idle,
            "busy": busy,
            "warmed_keys_per_idle_worker": warmed,
            "recipes": len(self._recipes),
            "stats": self.stats,
            "avg_dispatch_overhead_s": self.stats.avg_overhead_s,
            "breaker": breaker_mod.breaker.snapshot(),
        }

    # ------------------------------------------------------------------
    def grow(self, workers: int) -> None:
        """Raise the pool size (never shrinks below current)."""
        with self._lock:
            if self._closed or workers <= self.max_workers:
                return
            extra = workers - self.max_workers
            self.max_workers = workers
            for _ in range(extra):
                try:
                    self._idle.append(self._spawn())
                except PoolUnavailableError as exc:
                    logger.warning("pool growth spawn failed: %s", exc)
                    break
            self._have_idle.notify_all()

    @property
    def closed(self) -> bool:
        return self._closed

    def shutdown(self, *, wait: float = 5.0) -> None:
        """Drain and join every worker; idempotent.

        Idle workers get a polite ``exit`` and a join; busy workers are
        given ``wait`` seconds to come home, then killed.  After this
        the pool raises :class:`PoolUnavailableError` on use.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            idle = list(self._idle)
            self._idle.clear()
        for w in idle:
            self._retire(w)
        limit = time.monotonic() + wait
        while True:
            with self._lock:
                busy = list(self._busy)
            if not busy or time.monotonic() >= limit:
                break
            time.sleep(0.02)
        with self._lock:
            for w in list(self._busy):
                self._destroy(w, replace=False)
            self._have_idle.notify_all()


def run_pooled(
    kernel,
    tensors,
    capacity: Optional[int] = None,
    *,
    auto_grow: bool = False,
    max_capacity: Optional[int] = None,
    deadline: Optional[float] = None,
) -> object:
    """One supervised kernel run on the shared pool — the amortized
    twin of :func:`repro.runtime.supervisor.run_supervised`.

    Same typed-error contract (``KernelTimeoutError`` on the deadline,
    ``KernelCrashError`` on death by signal, the kernel's own typed
    errors re-raised), but the sandbox — resident worker, rlimits at
    spawn, warmed kernel, shm operands — is paid once, not per call.
    """
    pool = get_shared_pool()
    key = pool_key(kernel)
    recipe = getattr(kernel, "recipe", None)
    if recipe is None:
        raise PoolUnavailableError(
            f"kernel {kernel.name!r} has no rebuild recipe"
        )
    pool.register_recipe(key, recipe)
    threshold = resilience.shm_threshold()
    refs: Dict[str, shm.TensorRef] = {}
    for name, t in tensors.items():
        export = shm.export_tensor(t, threshold)
        refs[name] = shm.describe_tensor(t, export)
    dims = tuple(kernel.output.dims) if kernel.output is not None else None
    deadline = resilience.kernel_deadline() if deadline is None else deadline
    result, _seconds, _pid = pool.run_call(
        key, refs, dims, capacity, auto_grow, max_capacity,
        deadline=deadline, threshold=threshold,
    )
    return result


# ----------------------------------------------------------------------
# the process-wide shared pool
# ----------------------------------------------------------------------
_shared: Optional[WorkerPool] = None
_shared_lock = threading.Lock()


def get_shared_pool(workers: Optional[int] = None) -> WorkerPool:
    """The process-wide pool, created on first use.

    A later request for more workers grows the existing pool rather
    than building a second one — warmed kernels live in the workers, so
    one pool concentrates the warmth.
    """
    global _shared
    from repro.runtime import executor as executor_mod

    with _shared_lock:
        if _shared is None or _shared.closed:
            _shared = WorkerPool(workers)
            executor_mod.register_runtime_shutdown()
        elif workers is not None and workers > _shared.max_workers:
            _shared.grow(workers)
        return _shared


def shutdown_shared_pool() -> None:
    """Tear down the shared pool (tests; interpreter exit)."""
    global _shared
    with _shared_lock:
        pool, _shared = _shared, None
    if pool is not None:
        pool.shutdown()


__all__ = [
    "PoolStats",
    "PoolUnavailableError",
    "WorkerPool",
    "get_shared_pool",
    "pool_key",
    "run_pooled",
    "shutdown_shared_pool",
]
