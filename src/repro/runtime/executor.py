"""Executor backends behind one futures API.

Four interchangeable backends run shard tasks:

``serial``
    Runs every task inline at submit time.  The debug oracle: identical
    scheduling semantics, zero concurrency, deterministic logs.  The
    parity suite uses it as the reference the parallel backends must
    match exactly.

``thread``
    A :class:`~concurrent.futures.ThreadPoolExecutor`.  Compiled C
    kernels are ctypes foreign calls, which release the GIL for the
    duration of the loop nest — threads give genuine parallelism for
    the C backend at zero serialization cost (operands are shared, not
    pickled).

``process``
    A spawn-based :class:`~concurrent.futures.ProcessPoolExecutor` for
    the Python backend (GIL-bound) or isolation-sensitive runs.  Tasks
    must be picklable module-level callables; kernels cross the
    boundary as :class:`~repro.compiler.kernel.KernelRecipe`, never as
    compiled handles (see :mod:`repro.runtime.worker`).

``pool``
    The persistent pre-warmed :class:`~repro.runtime.pool.WorkerPool`
    behind a thread front-end: each submitted task is a blocking
    pipe round-trip to a resident worker (pipe waits release the GIL),
    kernels stay loaded in the workers across calls, and operands
    travel through the :mod:`repro.runtime.shm` zero-copy data plane.

All backends bound their task queue: ``submit`` blocks once
``queue_bound`` tasks are in flight, so a large batch cannot marshal
every operand set into memory at once.

Teardown ordering: shared pools must drain and join their workers
*before* interpreter shutdown tears the threading machinery down —
a plain ``atexit`` hook runs after ``concurrent.futures`` has already
broken its pools, which used to leave ``BrokenProcessPool`` noise and
leaked-semaphore warnings behind.  :func:`register_runtime_shutdown`
therefore registers :func:`shutdown_shared_runtime` via
``threading._register_atexit`` — those callbacks run when the main
thread finishes, before ``concurrent.futures`` reaps anything — with
the ordinary ``atexit`` hook kept as an idempotent fallback.
"""

from __future__ import annotations

import atexit
import os
import threading
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Optional

from repro.compiler import resilience
from repro.compiler.resilience import logger


class Executor:
    """The common surface: ``submit`` → :class:`Future`, ``shutdown``.

    Also a context manager (``with get_executor(...) as ex:``) so error
    paths cannot leak worker pools.
    """

    name = "base"

    def __init__(self, workers: int, queue_bound: Optional[int] = None) -> None:
        self.workers = max(1, int(workers))
        self.queue_bound = (
            int(queue_bound) if queue_bound is not None else self.workers * 4
        )
        self._slots = threading.BoundedSemaphore(self.queue_bound)

    def submit(self, fn: Callable, *args, **kwargs) -> Future:
        """Schedule ``fn(*args, **kwargs)``; blocks while the bounded
        queue is full."""
        self._slots.acquire()
        try:
            future = self._submit(fn, *args, **kwargs)
        except BaseException:
            self._slots.release()
            raise
        future.add_done_callback(lambda _f: self._slots.release())
        return future

    def _submit(self, fn: Callable, *args, **kwargs) -> Future:
        raise NotImplementedError

    def shutdown(self) -> None:
        pass

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


class SerialExecutor(Executor):
    """Inline execution with a real Future — the debug oracle."""

    name = "serial"

    def __init__(self, workers: int = 1, queue_bound: Optional[int] = None) -> None:
        super().__init__(1, queue_bound)

    def _submit(self, fn: Callable, *args, **kwargs) -> Future:
        future: Future = Future()
        try:
            future.set_result(fn(*args, **kwargs))
        except BaseException as exc:
            future.set_exception(exc)
        return future


class ThreadExecutor(Executor):
    """Thread pool; parallel for GIL-releasing (ctypes C) kernels."""

    name = "thread"

    def __init__(self, workers: int, queue_bound: Optional[int] = None) -> None:
        super().__init__(workers, queue_bound)
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-shard"
        )

    def _submit(self, fn: Callable, *args, **kwargs) -> Future:
        return self._pool.submit(fn, *args, **kwargs)

    def shutdown(self) -> None:
        self._pool.shutdown(wait=True)


class ProcessExecutor(Executor):
    """Spawn-based process pool; tasks and arguments must pickle.

    Workers are handed the parent's kernel-cache directory explicitly
    (via the pool initializer) so a rebuilt kernel lands on the same
    on-disk payload/``.so`` tier the parent populated — the rebuild is
    then a cache read, not a recompile, and concurrent rebuilds
    serialize on the cache's per-key file locks.
    """

    name = "process"

    def __init__(self, workers: int, queue_bound: Optional[int] = None) -> None:
        super().__init__(workers, queue_bound)
        from repro.compiler.cache import default_cache_dir
        from repro.runtime import worker as worker_mod

        ctx_name = resilience.mp_start_method()
        import multiprocessing

        self._pool = ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=multiprocessing.get_context(ctx_name),
            initializer=worker_mod.init_worker,
            initargs=(str(default_cache_dir()), dict(_repro_env())),
        )

    def _submit(self, fn: Callable, *args, **kwargs) -> Future:
        return self._pool.submit(fn, *args, **kwargs)

    def shutdown(self) -> None:
        self._pool.shutdown(wait=True)


class PoolExecutor(Executor):
    """Thread front-end over the shared persistent worker pool.

    The submitted callables (``WorkerPool.run_call`` bound methods from
    :mod:`repro.runtime.api`) block on a worker pipe; a thread per pool
    worker is enough to keep every resident worker busy, and the pipe
    waits release the GIL.  ``shutdown`` tears down only the thread
    front-end — the shared :class:`~repro.runtime.pool.WorkerPool`
    holds the warmed kernels and outlives any one executor.
    """

    name = "pool"

    def __init__(self, workers: int, queue_bound: Optional[int] = None) -> None:
        super().__init__(workers, queue_bound)
        from repro.runtime import pool as pool_mod

        self.pool = pool_mod.get_shared_pool(self.workers)
        self._threads = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-pool"
        )

    def _submit(self, fn: Callable, *args, **kwargs) -> Future:
        return self._threads.submit(fn, *args, **kwargs)

    def shutdown(self) -> None:
        self._threads.shutdown(wait=True)


def _repro_env() -> dict:
    """The ``REPRO_*`` knobs a worker must inherit verbatim.

    ``spawn`` children do inherit ``os.environ``, but only the state at
    ``Popen`` time — a pool worker respawned after a crash could see a
    parent that has since mutated its environment.  Passing an explicit
    snapshot through the initializer pins the configuration the pool
    was created under.
    """
    return {k: v for k, v in os.environ.items() if k.startswith("REPRO_")}


def get_executor(
    name: str, workers: Optional[int] = None, queue_bound: Optional[int] = None
) -> Executor:
    """Factory: executor by name, worker count from ``REPRO_WORKERS``
    when not given."""
    n = resilience.worker_count(workers)
    if name == "serial":
        return SerialExecutor(1, queue_bound)
    if name == "thread":
        return ThreadExecutor(n, queue_bound)
    if name == "process":
        return ProcessExecutor(n, queue_bound)
    if name == "pool":
        return PoolExecutor(n, queue_bound)
    logger.warning(
        "unknown executor %r (expected one of %s); using serial",
        name, list(resilience.KNOWN_EXECUTORS),
    )
    return SerialExecutor(1, queue_bound)


_SHARED: dict = {}
_SHARED_LOCK = threading.Lock()


def get_shared_executor(name: str, workers: Optional[int] = None) -> Executor:
    """A process-wide pool, created on first use and reused after.

    ``run_sharded`` in a loop must not pay pool construction per call —
    a spawn-based process pool costs interpreter startups, and reuse
    also keeps the workers' in-memory kernel memos warm across calls.
    Shared pools are shut down at interpreter exit; callers must not
    ``shutdown()`` them.
    """
    n = resilience.worker_count(workers)
    key = (name, n)
    with _SHARED_LOCK:
        ex = _SHARED.get(key)
        if ex is None:
            ex = get_executor(name, n)
            _SHARED[key] = ex
            register_runtime_shutdown()
        return ex


def discard_shared_executor(ex: Executor) -> None:
    """Evict a broken pool from the shared registry and tear it down.

    A :class:`~concurrent.futures.BrokenExecutor` pool rejects every
    further submit, so leaving it cached would poison all later
    ``run_sharded`` calls on that backend; after eviction the next
    :func:`get_shared_executor` call builds a fresh pool.
    """
    with _SHARED_LOCK:
        for key, cached in list(_SHARED.items()):
            if cached is ex:
                del _SHARED[key]
    try:
        ex.shutdown()
    except Exception:
        pass


def shutdown_shared_executors() -> None:
    """Tear down every shared pool (also registered at exit)."""
    with _SHARED_LOCK:
        for ex in _SHARED.values():
            ex.shutdown()
        _SHARED.clear()


def shutdown_shared_runtime() -> None:
    """Drain the whole shared runtime in dependency order: the worker
    pool first (its workers are reached through executor threads), then
    the executors.  Idempotent — both halves tolerate repeat calls, so
    the ``atexit`` fallback after the early threading hook is a no-op.

    Only the process that created the shared resources may drain them:
    fork children inherit both the registries and the threading-atexit
    registration, but the pools' manager threads do not survive the
    fork, so a ``shutdown(wait=True)`` on an inherited executor would
    block forever on a thread that is not running.
    """
    if _runtime_owner_pid is not None and _runtime_owner_pid != os.getpid():
        return
    try:
        from repro.runtime import pool as pool_mod

        pool_mod.shutdown_shared_pool()
    except Exception:  # pragma: no cover - teardown must never raise
        pass
    shutdown_shared_executors()


_runtime_owner_pid: Optional[int] = None


def register_runtime_shutdown() -> None:
    """Register :func:`shutdown_shared_runtime` to run when the main
    thread finishes — *before* ``concurrent.futures`` reaps its pools —
    so shared workers drain and join instead of being found broken.

    ``threading._register_atexit`` callbacks run in reverse
    registration order; this registration happens at first shared-pool
    creation, i.e. after ``concurrent.futures`` registered its own
    hook at import, so ours runs first.  Registered once per process —
    a fork child that builds its own shared pools registers afresh
    (its inherited registration is disarmed by the owner-pid check).
    """
    global _runtime_owner_pid
    if _runtime_owner_pid == os.getpid():
        return
    _runtime_owner_pid = os.getpid()
    try:
        threading._register_atexit(shutdown_shared_runtime)
    except Exception:
        # interpreter already shutting down (or a Python without the
        # private hook): the atexit fallback below still runs
        pass


def _forget_inherited_runtime() -> None:
    """Drop shared-runtime state inherited across a ``fork``.

    The child must neither reuse nor tear down the parent's pools (the
    parent still owns their processes and manager threads); clearing the
    registries means a child that wants parallelism builds its own.
    """
    global _runtime_owner_pid
    _runtime_owner_pid = None
    _SHARED.clear()
    try:
        from repro.runtime import pool as pool_mod

        pool_mod._shared = None
    except Exception:  # pragma: no cover - import cycles at fork time
        pass


os.register_at_fork(after_in_child=_forget_inherited_runtime)
atexit.register(shutdown_shared_runtime)
