"""Shard planning: pick a split index, balance the ranges.

A split on attribute ``a`` partitions ``a``'s range ``[0, dim_a)`` into
contiguous windows.  The plan is legal when every operand can be
restricted to a window without re-formatting:

- tensor operands that do not mention ``a`` pass through whole;
- tensor operands with ``a`` at their *outermost* level are row-block
  sliced with :meth:`repro.data.tensor.Tensor.slice_outer` (an O(rows)
  rebase over numpy views, no copies of the leaf data);
- an operand with ``a`` at an inner level, or a
  :class:`~repro.compiler.formats.FunctionInput` mentioning ``a``
  (function streams evaluate at absolute indices, slicing rebases
  them), disqualifies ``a``.

The split *kind* decides the merge:

- ``"free"``: ``a`` is the output's outermost attribute — each shard
  produces a window of the result and the merge is concatenation;
- ``"contracted"``: ``a`` does not appear in the output — each shard
  produces a full-shape partial and the merge is elementwise ⊕
  (Theorem 6.1: Σ_a is a ⊕-reduction, so it commutes with
  partitioning ``a``'s range).

An output attribute at an inner position admits neither merge and is
rejected.

Range boundaries are nnz-balanced: each sliced operand contributes its
per-outer-coordinate leaf counts (:meth:`Tensor.outer_weights`); the
planner cuts the cumulative weight into near-equal parts instead of
cutting the coordinate range uniformly, so a power-law row distribution
does not serialize behind one dense shard.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.compiler.analysis.streamprops import (
    SplitCertificate,
    certify_split,
    refusal_reason,
)
from repro.compiler.formats import FunctionInput, TensorInput
from repro.compiler.resilience import logger
from repro.data.tensor import Tensor


@dataclass(frozen=True)
class ShardPlan:
    """A legal split: attribute, kind, and the per-shard windows.

    ``certificate`` is the static legality proof the plan was derived
    from (:func:`repro.compiler.analysis.streamprops.certify_split`);
    the merger re-checks it against the executing semiring before any
    contracted ⊕-merge.  It defaults to None only for backward
    compatibility with hand-constructed plans in tests.
    """

    split_attr: str
    kind: str                       # "free" | "contracted"
    dim: int                        # full range of the split attribute
    ranges: Tuple[Tuple[int, int], ...]   # [lo, hi) per shard, covering [0, dim)
    certificate: Optional[SplitCertificate] = None

    @property
    def shards(self) -> int:
        return len(self.ranges)


def candidate_splits(kernel) -> List[Tuple[str, SplitCertificate]]:
    """All certifiable ``(attr, certificate)`` pairs, free splits first.

    Legality is no longer an ad-hoc local rule: each candidate carries
    the :class:`SplitCertificate` derived by the stream-property
    analysis (strictly monotone outermost levels may be windowed; the
    merge kind and its semiring-law requirements follow from the output
    placement).  Free splits are preferred: shard outputs are windows
    of the result (concatenation merge, shard-sized allocations)
    instead of full-shape partials that must be ⊕-reduced.
    """
    attrs: List[str] = []
    for spec in kernel.input_specs.values():
        for a in spec.attrs:
            if a not in attrs:
                attrs.append(a)
    cands = [
        (a, c) for a in attrs if (c := certify_split(kernel, a)) is not None
    ]
    cands.sort(key=lambda c: 0 if c[1].kind == "free" else 1)
    return cands


@dataclass
class _SplitProbe:
    """The minimal kernel-shaped view :func:`certify_split` inspects.

    The autotuner needs split legality *before* any kernel exists — the
    certificate analysis only reads ``input_specs``, ``output``, and
    ``ops.semiring`` (plus ``name`` for log lines), so a plain probe
    carrying those fields answers the question without a compile.
    """

    input_specs: Dict[str, object]
    output: object
    ops: object
    name: str = "probe"


def probe_splits(
    specs: Mapping[str, object], output, ops, name: str = "tuned"
) -> List[Tuple[str, SplitCertificate]]:
    """Certified split candidates for a *planned* (uncompiled) kernel."""
    probe = _SplitProbe(dict(specs), output, ops, name)
    return candidate_splits(probe)


def _attr_dim(kernel, tensors: Mapping[str, Tensor], attr: str) -> Optional[int]:
    for name, spec in kernel.input_specs.items():
        if isinstance(spec, TensorInput) and attr in spec.attrs:
            t = tensors[name]
            return int(t.dims[spec.attrs.index(attr)])
    return None


def _balanced_ranges(
    weights: np.ndarray, dim: int, shards: int
) -> Tuple[Tuple[int, int], ...]:
    """Cut ``[0, dim)`` into ≤ ``shards`` windows of near-equal weight.

    Classic balanced-cut: cumulative weights, then ``searchsorted`` for
    the k/n quantile boundaries.  Boundaries always fall between outer
    coordinates (a single heavy row is never split), duplicate cuts and
    empty windows are dropped.
    """
    shards = max(1, min(int(shards), dim))
    total = int(weights.sum())
    if total == 0:
        bounds = np.linspace(0, dim, shards + 1).astype(np.int64)
    else:
        cum = np.cumsum(weights)
        targets = (np.arange(1, shards) * total) / shards
        cuts = np.searchsorted(cum, targets, side="left") + 1
        bounds = np.concatenate(([0], cuts, [dim]))
    bounds = np.clip(bounds, 0, dim)
    ranges = [
        (int(lo), int(hi))
        for lo, hi in zip(bounds[:-1], bounds[1:])
        if hi > lo
    ]
    return tuple(ranges)


def plan_shards(
    kernel,
    tensors: Mapping[str, Tensor],
    shards: int,
    split_attr: Optional[str] = None,
) -> Optional[ShardPlan]:
    """Choose a split attribute and nnz-balanced windows.

    Returns None when no attribute qualifies (the caller degrades to a
    single-shard run).  ``split_attr`` forces a specific attribute and
    raises :class:`ValueError` when it is not splittable — an explicit
    request should fail loudly, an automatic one quietly.
    """
    if split_attr is not None:
        cert = certify_split(kernel, split_attr)
        if cert is None:
            raise ValueError(
                f"attribute {split_attr!r} is not splittable for kernel "
                f"{kernel.name!r}: "
                f"{refusal_reason(kernel, split_attr)}"
            )
        cands = [(split_attr, cert)]
    else:
        cands = candidate_splits(kernel)
    for attr, cert in cands:
        dim = _attr_dim(kernel, tensors, attr)
        if dim is None or dim <= 1:
            continue
        weights = np.zeros(dim, dtype=np.int64)
        for name, spec in kernel.input_specs.items():
            if isinstance(spec, TensorInput) and spec.split_kind(attr) == "outer":
                weights += tensors[name].outer_weights()
        ranges = _balanced_ranges(weights, dim, shards)
        plan = ShardPlan(attr, cert.kind, dim, ranges, cert)
        logger.debug(
            "kernel %r: split on %r (%s), %d shard(s) over dim %d",
            kernel.name, attr, cert.kind, plan.shards, dim,
        )
        return plan
    return None


def slice_operands(
    kernel, tensors: Mapping[str, Tensor], plan: ShardPlan, lo: int, hi: int
) -> Dict[str, Tensor]:
    """The operand bindings for the shard covering ``[lo, hi)``."""
    shard: Dict[str, Tensor] = {}
    for name, spec in kernel.input_specs.items():
        if isinstance(spec, FunctionInput):
            continue
        t = tensors[name]
        if spec.split_kind(plan.split_attr) == "outer":
            shard[name] = t.slice_outer(lo, hi)
        else:
            shard[name] = t
    return shard
