"""Process-pool worker side of the sharded runtime.

Everything here must be importable and picklable from a spawn-fresh
interpreter: no closures, no compiled-kernel handles.  A worker
receives a :class:`~repro.compiler.kernel.KernelRecipe` plus concrete
shard tensors, rebuilds the kernel through the ordinary
:class:`~repro.compiler.kernel.KernelBuilder` path — which lands on
the two-tier cache: the worker's in-memory memo after the first task,
the parent's on-disk payload/``.so`` tier before that — and runs the
shard.  Concurrent first-touch rebuilds across workers serialize on
the cache's per-key file locks, so exactly one worker compiles and the
rest read its artifact.

Two worker flavors live here:

* :func:`run_shard_task` — the stateless task of the classic
  ``ProcessPoolExecutor`` backend: recipe + pickled tensors per call.
* :func:`pool_worker_main` — the resident message loop of the
  persistent :class:`~repro.runtime.pool.WorkerPool`: kernels are
  *warmed* once per cache key and kept resident, operands arrive as
  :class:`~repro.runtime.shm.TensorRef` descriptors over shared
  memory, and rlimits are applied once at worker start so the sandbox
  cost is amortized across thousands of calls.
"""

from __future__ import annotations

import os
import time
from typing import Mapping, Optional, Sequence, Tuple

from repro.data.tensor import Tensor


def init_worker(cache_dir: str, env: Mapping[str, str]) -> None:
    """Pool initializer: pin the parent's ``REPRO_*`` configuration.

    The kernel cache directory is the load-bearing knob — without it a
    worker would rebuild into its own default location and every shard
    would recompile from scratch.
    """
    for key, value in env.items():
        os.environ.setdefault(key, value)
    os.environ["REPRO_KERNEL_CACHE_DIR"] = cache_dir


def run_shard_task(
    recipe,
    tensors: Mapping[str, Tensor],
    output_dims: Optional[Sequence[int]],
    capacity: Optional[int],
    auto_grow: bool,
    max_capacity: Optional[int],
) -> Tuple[object, float, int]:
    """Rebuild the kernel from its recipe and run one shard.

    Returns ``(result, seconds, pid)`` — the pid lets the caller's
    per-shard stats show which worker ran what.
    """
    kernel = recipe.build()
    if output_dims is not None:
        kernel = kernel.with_output_dims(output_dims)
    start = time.perf_counter()
    result = kernel._run_single(
        tensors, capacity, auto_grow=auto_grow, max_capacity=max_capacity
    )
    return result, time.perf_counter() - start, os.getpid()


# ----------------------------------------------------------------------
# persistent pool worker: warm once, run many
# ----------------------------------------------------------------------
def _picklable(exc: BaseException) -> BaseException:
    """An exception safe to send over the pipe (degrade to the message
    when the original cannot pickle)."""
    import pickle

    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return RuntimeError(f"{type(exc).__name__}: {exc}")


def pool_worker_main(
    conn,
    cache_dir: str,
    env: Mapping[str, str],
    mem_mb: Optional[int],
) -> None:
    """Resident worker loop of :class:`~repro.runtime.pool.WorkerPool`.

    Strict request/response protocol — every message gets exactly one
    reply (except ``exit``):

    * ``("warm", key, recipe)`` → ``("warmed", key)``: build the kernel
      (a disk-cache read in the common case) and keep it resident under
      its cache key.
    * ``("run", key, recipe?, refs, output_dims, capacity, auto_grow,
      max_capacity, result_name, threshold)`` →
      ``("ok", payload, seconds, pid)``: reconstruct operand tensors as
      shared-memory views, run the resident kernel, and return the
      result inline or packed into the parent-named ``result_name``
      segment.  The optional recipe covers a key the worker has not
      seen (a replacement worker mid-stream); None for warmed keys —
      the "recipe ships once" contract.
    * ``("ping", token)`` → ``("pong", token, pid)``: health check.
    * ``("exit",)``: drain attachments and leave.

    Typed kernel errors reply ``("err", exc, seconds)``; anything that
    escapes the interpreter (segfault, rlimit kill) is decoded by the
    parent from the exit status.  ``RLIMIT_AS`` is applied **once**
    here, not per call — that is the amortization the pool exists for.
    ``RLIMIT_CPU`` is deliberately not set: a resident worker's CPU
    time accumulates across calls, so a per-call budget must come from
    the parent's wall-clock deadline instead.
    """
    try:
        import faulthandler

        faulthandler.disable()  # worker crashes are decoded by the parent
    except Exception:  # pragma: no cover - faulthandler always importable
        pass
    init_worker(cache_dir, env)
    from repro.runtime import shm
    from repro.runtime.supervisor import _apply_rlimits

    _apply_rlimits(mem_mb, None)
    kernels: dict = {}
    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
            kind = msg[0]
            if kind == "exit":
                break
            if kind == "ping":
                conn.send(("pong", msg[1], os.getpid()))
                continue
            if kind == "warm":
                _, key, recipe = msg
                try:
                    kernels[key] = recipe.build()
                    conn.send(("warmed", key))
                except BaseException as exc:  # noqa: BLE001 - forwarded
                    conn.send(("err", _picklable(exc), 0.0))
                continue
            if kind == "run":
                (_, key, recipe, refs, output_dims, capacity, auto_grow,
                 max_capacity, rname, threshold) = msg
                start = time.perf_counter()
                try:
                    kernel = kernels.get(key)
                    if kernel is None:
                        if recipe is None:
                            raise RuntimeError(
                                f"pool worker has no kernel for key "
                                f"{key!r} and no recipe was shipped"
                            )
                        kernel = kernels[key] = recipe.build()
                    if output_dims is not None and (
                        kernel.output is None
                        or tuple(kernel.output.dims) != tuple(output_dims)
                    ):
                        kernel = kernel.with_output_dims(output_dims)
                    tensors = {n: shm.open_ref(r) for n, r in refs.items()}
                    result = kernel._run_single(
                        tensors, capacity, auto_grow=auto_grow,
                        max_capacity=max_capacity,
                    )
                    payload = shm.export_result(result, rname, threshold)
                    conn.send(
                        ("ok", payload, time.perf_counter() - start,
                         os.getpid())
                    )
                except BaseException as exc:  # noqa: BLE001 - forwarded
                    conn.send(
                        ("err", _picklable(exc), time.perf_counter() - start)
                    )
                continue
            conn.send(("err", RuntimeError(f"unknown message {kind!r}"), 0.0))
    finally:
        try:
            from repro.runtime import shm

            shm.close_attachments()
        except Exception:
            pass
        try:
            conn.close()
        except Exception:
            pass
