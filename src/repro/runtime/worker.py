"""Process-pool worker side of the sharded runtime.

Everything here must be importable and picklable from a spawn-fresh
interpreter: no closures, no compiled-kernel handles.  A worker
receives a :class:`~repro.compiler.kernel.KernelRecipe` plus concrete
shard tensors, rebuilds the kernel through the ordinary
:class:`~repro.compiler.kernel.KernelBuilder` path — which lands on
the two-tier cache: the worker's in-memory memo after the first task,
the parent's on-disk payload/``.so`` tier before that — and runs the
shard.  Concurrent first-touch rebuilds across workers serialize on
the cache's per-key file locks, so exactly one worker compiles and the
rest read its artifact.
"""

from __future__ import annotations

import os
import time
from typing import Mapping, Optional, Sequence, Tuple

from repro.data.tensor import Tensor


def init_worker(cache_dir: str, env: Mapping[str, str]) -> None:
    """Pool initializer: pin the parent's ``REPRO_*`` configuration.

    The kernel cache directory is the load-bearing knob — without it a
    worker would rebuild into its own default location and every shard
    would recompile from scratch.
    """
    for key, value in env.items():
        os.environ.setdefault(key, value)
    os.environ["REPRO_KERNEL_CACHE_DIR"] = cache_dir


def run_shard_task(
    recipe,
    tensors: Mapping[str, Tensor],
    output_dims: Optional[Sequence[int]],
    capacity: Optional[int],
    auto_grow: bool,
    max_capacity: Optional[int],
) -> Tuple[object, float, int]:
    """Rebuild the kernel from its recipe and run one shard.

    Returns ``(result, seconds, pid)`` — the pid lets the caller's
    per-shard stats show which worker ran what.
    """
    kernel = recipe.build()
    if output_dims is not None:
        kernel = kernel.with_output_dims(output_dims)
    start = time.perf_counter()
    result = kernel._run_single(
        tensors, capacity, auto_grow=auto_grow, max_capacity=max_capacity
    )
    return result, time.perf_counter() - start, os.getpid()
