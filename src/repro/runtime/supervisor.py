"""Supervised kernel execution: crash containment in a resource-capped child.

The Etch pipeline ultimately ``dlopen``s generated ``.so`` kernels into
the host interpreter via ctypes, so one bad kernel — a segfault from an
out-of-contract write, a runaway skip loop, an allocation blow-up —
takes down or wedges the whole process.  The static half of the defense
is PR 3's capacity lint (``Kernel.needs_guard``); this module is the
runtime half: :func:`run_supervised` executes one kernel invocation in
an isolated child process so that the worst a kernel can do is return a
typed error.

Containment contract:

* the child runs under POSIX rlimits — ``RLIMIT_AS`` from
  ``REPRO_KERNEL_MEM_MB`` caps the address space, ``RLIMIT_CPU``
  (derived from the deadline) backstops a busy loop even if the parent
  is wedged;
* the parent enforces a wall-clock deadline (``REPRO_KERNEL_DEADLINE``,
  default 60 s) and kills the child when it is missed →
  :class:`~repro.errors.KernelTimeoutError`;
* death by signal is decoded from the child's exit status →
  :class:`~repro.errors.KernelCrashError` carrying the signal number
  and name;
* a typed error raised *inside* the child (``CapacityError``,
  ``ShapeError``, ...) crosses the pipe and re-raises in the parent
  exactly as an in-process run would have raised it.

Child start strategy: ``fork`` where available (POSIX) — the child
inherits the already-loaded ctypes handle and runs immediately, no
pickling of kernels and no rebuild.  Platforms without ``fork`` use a
spawned child that rebuilds from the kernel's picklable
:class:`~repro.compiler.kernel.KernelRecipe` through the two-tier disk
cache (the same path as the process-pool workers), so the compiled
artifact is a cache read, never a recompile.

Amortized mode: under ``REPRO_POOL=1`` a recipe-carrying kernel routes
through the persistent :mod:`repro.runtime.pool` instead of forking a
fresh child per call — same typed-error contract, but the sandbox cost
(process start, rlimits, kernel load) is paid once per worker, not per
call.  The routing is opt-in because the semantics differ in one
deliberate way: the fork child inherits the parent's **in-memory**
kernel handle (including any in-process monkeypatching — the
fault-injection suite depends on that), while a pooled worker rebuilds
the genuine kernel from its recipe.  A per-call ``mem_mb`` override
also pins the fork path, since pool workers apply their rlimit once at
spawn.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from typing import Mapping, Optional

from repro.compiler import resilience
from repro.compiler.resilience import logger
from repro.errors import KernelCrashError, KernelTimeoutError

try:  # POSIX-only; Windows children run uncapped (deadline still applies)
    import resource
except ImportError:  # pragma: no cover - non-POSIX platform
    resource = None  # type: ignore[assignment]

#: extra seconds of RLIMIT_CPU on top of the wall deadline — the parent
#: timer fires first in the healthy case; the rlimit is the backstop
_CPU_SLACK = 2.0

#: how long the parent keeps polling the result pipe after child exit
_DRAIN_TIMEOUT = 5.0


def _apply_rlimits(mem_mb: Optional[int], cpu_seconds: Optional[float]) -> None:
    """Cap the child's address space and CPU time.  Failures to set a
    limit are logged, not fatal — supervision still decodes signals and
    enforces the parent-side deadline."""
    if resource is None:  # pragma: no cover - non-POSIX platform
        return
    if mem_mb is not None:
        limit = int(mem_mb) << 20
        try:
            resource.setrlimit(resource.RLIMIT_AS, (limit, limit))
        except (OSError, ValueError) as exc:  # pragma: no cover - exotic env
            logger.warning("could not set RLIMIT_AS=%dMiB (%s)", mem_mb, exc)
    if cpu_seconds is not None:
        soft = max(1, int(cpu_seconds + _CPU_SLACK))
        try:
            resource.setrlimit(resource.RLIMIT_CPU, (soft, soft + 2))
        except (OSError, ValueError) as exc:  # pragma: no cover - exotic env
            logger.warning("could not set RLIMIT_CPU=%ds (%s)", soft, exc)


def _child_entry(
    conn,
    kernel,
    tensors,
    capacity,
    auto_grow,
    max_capacity,
    mem_mb,
    cpu_seconds,
) -> None:
    """Forked-child body: apply rlimits, run, report through the pipe.

    With the ``fork`` start method the arguments are inherited by
    memory copy, not pickled — the compiled ctypes handle travels for
    free.  The report is ``("ok", result)`` or ``("err", exc)``;
    anything that escapes both (a segfault, an rlimit kill) leaves its
    mark in the exit status instead, which the parent decodes.
    """
    try:
        import faulthandler

        # a crash in this child is *expected* containment, reported by
        # the parent's exit-status decoding; an inherited faulthandler
        # (pytest enables one) would spray C tracebacks on shared stderr
        faulthandler.disable()
    except Exception:  # pragma: no cover - faulthandler always importable
        pass
    _apply_rlimits(mem_mb, cpu_seconds)
    # chaos hook: REPRO_FAULT=supervised_child:sigkill models a child
    # OOM-killed before it produced anything — the env reaches a forked
    # child for free, no crash kernel required
    resilience.fault_point("supervised_child")
    try:
        result = kernel._run_single(
            tensors, capacity, auto_grow=auto_grow, max_capacity=max_capacity
        )
        conn.send(("ok", result))
    except BaseException as exc:  # noqa: BLE001 - forwarded, not swallowed
        try:
            conn.send(("err", exc))
        except Exception:
            # unpicklable exception: degrade to the message alone
            conn.send(("err", RuntimeError(f"{type(exc).__name__}: {exc}")))
    finally:
        conn.close()


def _spawn_entry(
    conn,
    recipe,
    env: Mapping[str, str],
    cache_dir: str,
    tensors,
    capacity,
    auto_grow,
    max_capacity,
    mem_mb,
    cpu_seconds,
) -> None:  # pragma: no cover - exercised only on fork-less platforms
    """Spawned-child body: pin the parent's configuration, rebuild the
    kernel from its recipe (a warm-cache read), then run like
    :func:`_child_entry`."""
    from repro.runtime.worker import init_worker

    init_worker(cache_dir, env)
    kernel = recipe.build()
    _child_entry(
        conn, kernel, tensors, capacity, auto_grow, max_capacity,
        mem_mb, cpu_seconds,
    )


def _supervise_context() -> multiprocessing.context.BaseContext:
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def can_supervise(kernel) -> bool:
    """Whether this kernel can run supervised on this platform: always
    under ``fork``; under ``spawn`` only recipe-carrying kernels (a
    ``FunctionInput`` callable cannot cross a spawn boundary)."""
    if "fork" in multiprocessing.get_all_start_methods():
        return True
    return getattr(kernel, "recipe", None) is not None


def _pool_route(kernel, mem_mb) -> bool:
    """Whether this supervised call should be served by the persistent
    pool: ``REPRO_POOL`` on, a recipe to rebuild from, and no per-call
    memory override (pool rlimits are fixed at worker spawn)."""
    return (
        mem_mb is None
        and resilience.pool_enabled()
        and getattr(kernel, "recipe", None) is not None
    )


def run_supervised(
    kernel,
    tensors,
    capacity: Optional[int] = None,
    *,
    auto_grow: bool = False,
    max_capacity: Optional[int] = None,
    deadline: Optional[float] = None,
    mem_mb: Optional[int] = None,
):
    """Run one kernel invocation in a supervised, resource-capped child.

    Returns the child's result (the output tensor or scalar, pickled
    back over a pipe).  Raises:

    * :class:`~repro.errors.KernelTimeoutError` — the wall-clock
      ``deadline`` (default ``REPRO_KERNEL_DEADLINE``) passed and the
      parent killed the child;
    * :class:`~repro.errors.KernelCrashError` — the child died by
      signal (or exited without reporting a result);
    * whatever typed error the kernel itself raised in the child
      (``CapacityError`` with its sizing metadata, ``ShapeError``, ...),
      re-raised in the parent.
    """
    if _pool_route(kernel, mem_mb):
        from repro.runtime import pool as pool_mod

        try:
            return pool_mod.run_pooled(
                kernel, tensors, capacity, auto_grow=auto_grow,
                max_capacity=max_capacity, deadline=deadline,
            )
        except pool_mod.PoolUnavailableError as exc:
            logger.warning(
                "kernel %r: pool route unavailable (%s); falling back to "
                "the fork-per-call supervisor", kernel.name, exc,
            )
    deadline = deadline if deadline is not None else resilience.kernel_deadline()
    mem_mb = mem_mb if mem_mb is not None else resilience.kernel_mem_mb()
    ctx = _supervise_context()

    recv, send = ctx.Pipe(duplex=False)
    if ctx.get_start_method() == "fork":
        proc = ctx.Process(
            target=_child_entry,
            args=(send, kernel, tensors, capacity, auto_grow, max_capacity,
                  mem_mb, deadline),
            daemon=True,
        )
    else:  # pragma: no cover - exercised only on fork-less platforms
        recipe = getattr(kernel, "recipe", None)
        if recipe is None:
            raise KernelCrashError(
                f"kernel {kernel.name!r} cannot run supervised: no fork on "
                "this platform and no picklable rebuild recipe "
                "(function-valued input)"
            )
        from repro.compiler.cache import default_cache_dir

        env = {k: v for k, v in os.environ.items() if k.startswith("REPRO_")}
        proc = ctx.Process(
            target=_spawn_entry,
            args=(send, recipe, env, str(default_cache_dir()), tensors,
                  capacity, auto_grow, max_capacity, mem_mb, deadline),
            daemon=True,
        )
    start = time.monotonic()
    proc.start()
    send.close()  # the child's end lives on in the child
    try:
        payload = _await_result(proc, recv, deadline, kernel.name)
    finally:
        recv.close()
        proc.join(0.1)
        if proc.is_alive():  # pragma: no cover - kill path timing
            proc.kill()
            proc.join()
    status, value = payload
    elapsed = time.monotonic() - start
    if status == "ok":
        logger.debug(
            "kernel %r: supervised run ok in %.1f ms (pid %s)",
            kernel.name, elapsed * 1e3, proc.pid,
        )
        return value
    raise value


def _await_result(proc, recv, deadline: float, name: str):
    """Poll the result pipe up to ``deadline``; decode timeout/crash.

    The pipe is read *before* joining the child: a large result blocks
    the child's ``send`` until the parent drains it, so join-first would
    deadlock exactly on the biggest outputs.
    """
    limit = time.monotonic() + deadline
    while True:
        remaining = limit - time.monotonic()
        if remaining <= 0:
            proc.kill()
            proc.join()
            raise KernelTimeoutError(
                f"supervised kernel {name!r} missed its {deadline:.1f}s "
                f"deadline and was killed",
                deadline=deadline,
            )
        try:
            if recv.poll(min(remaining, 0.05)):
                return recv.recv()
        except (EOFError, OSError):
            break  # child died with the pipe open
        if not proc.is_alive():
            # the child exited; drain any result that raced the exit
            try:
                if recv.poll(0.05):
                    return recv.recv()
            except (EOFError, OSError):
                pass
            break
    proc.join(_DRAIN_TIMEOUT)
    code = proc.exitcode
    if code is not None and code < 0:
        raise KernelCrashError(
            f"supervised kernel {name!r} crashed",
            signal=-code, exitcode=code,
        )
    raise KernelCrashError(
        f"supervised kernel {name!r} exited (status {code}) without "
        f"reporting a result",
        exitcode=code,
    )


__all__ = ["run_supervised", "can_supervise"]
