"""Indexed Streams — a Python reproduction of the PLDI 2023 paper
"Indexed Streams: A Formal Intermediate Representation for Fused
Contraction Programs" (Kovach, Kolichala, Gu, Kjolstad).

The package is organized along the paper's own structure:

====================  ====================================================
module                paper section
====================  ====================================================
``repro.semirings``   §4.3   semirings K
``repro.krelation``   §4.2–4.4  schemas, tuples, K-relations (semantics 𝒯)
``repro.lang``        §4     the contraction language ℒ
``repro.streams``     §5     indexed streams (semantics 𝒮)
``repro.verification`` §6    executable lawfulness/monotonicity/Thm 6.1
``repro.compiler``    §7     the Etch compiler (ℒ → streams → P → C)
``repro.data``        §7.3   level-format tensors, dictionary encoding
``repro.tensor``      §8.1   einsum frontend
``repro.relational``  §8.2   relational algebra frontend
``repro.baselines``   §8     TACO-style kernels, pairwise joins, SQLite
``repro.tpch``        §8.2   TPC-H data generator, Q5, Q9
``repro.workloads``   §8     synthetic workload generators
====================  ====================================================

Quickstart::

    from repro.workloads import sparse_vector
    from repro.tensor import einsum

    x = sparse_vector(1000, 0.01, seed=1)
    y = sparse_vector(1000, 0.01, seed=2)
    z = sparse_vector(1000, 0.01, seed=3)
    dot = einsum("i,i,i->", x, y, z)   # fused three-way product (Fig. 2)
"""

__version__ = "1.0.0"

from repro.errors import (
    BackendUnavailableError,
    CacheCorruptionError,
    CapacityError,
    CompileError,
    ReproError,
    ShapeError,
)
from repro.semirings import BOOL, FLOAT, INT, MAX_PLUS, MIN_PLUS, NAT
from repro.krelation import Attribute, KRelation, Schema
from repro.lang import Expr, Lit, Sum, TypeContext, Var, denote, sum_over
from repro.data import Tensor
from repro.compiler.kernel import KernelBuilder, OutputSpec, compile_kernel
from repro.tensor import einsum

__all__ = [
    "__version__",
    "BOOL", "FLOAT", "INT", "NAT", "MIN_PLUS", "MAX_PLUS",
    "Attribute", "Schema", "KRelation",
    "Expr", "Var", "Lit", "Sum", "sum_over", "TypeContext", "denote",
    "Tensor",
    "KernelBuilder", "OutputSpec", "compile_kernel",
    "einsum",
    "ReproError", "CompileError", "BackendUnavailableError",
    "CacheCorruptionError", "CapacityError", "ShapeError",
]
