"""Semirings (Definition 4.5 of the paper).

A semiring ``(K, +, 0, *, 1)`` supplies the scalar algebra that
K-relations, indexed streams, and generated kernels compute over.  Each
semiring is a small immutable object exposing ``zero``, ``one``,
``add``, and ``mul``; singletons for the common instances are exported
here.

The paper's evaluation uses boolean, floating point, and (min, +)
scalars; we additionally provide the natural-number (bag) semiring,
(max, +), (max, *) (Viterbi), and the provenance-polynomial semiring of
Green et al. [2007], which is the free semiring and therefore useful for
testing algebraic identities.
"""

from repro.semirings.base import Semiring, SemiringElementError
from repro.semirings.instances import (
    BOOL,
    FLOAT,
    INT,
    MAX_PLUS,
    MAX_TIMES,
    MIN_PLUS,
    NAT,
    BoolSemiring,
    FloatSemiring,
    IntSemiring,
    MaxPlusSemiring,
    MaxTimesSemiring,
    MinPlusSemiring,
    NatSemiring,
)
from repro.semirings.provenance import PROVENANCE, Polynomial, ProvenanceSemiring

__all__ = [
    "Semiring",
    "SemiringElementError",
    "BoolSemiring",
    "FloatSemiring",
    "IntSemiring",
    "NatSemiring",
    "MinPlusSemiring",
    "MaxPlusSemiring",
    "MaxTimesSemiring",
    "ProvenanceSemiring",
    "Polynomial",
    "BOOL",
    "FLOAT",
    "INT",
    "NAT",
    "MIN_PLUS",
    "MAX_PLUS",
    "MAX_TIMES",
    "PROVENANCE",
]
