"""Provenance polynomials: the free commutative semiring N[X].

Green et al. [2007] show that polynomials with natural-number
coefficients over a set of indeterminates form the *free* semiring on
those indeterminates: any identity that holds in N[X] holds in every
commutative semiring.  We use this instance in tests — if two
contraction plans agree on provenance polynomials, they agree for every
choice of scalars.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Tuple

from repro.semirings.base import Semiring

# A monomial is a sorted tuple of (variable, exponent) pairs; a
# polynomial maps monomials to positive integer coefficients.
Monomial = Tuple[Tuple[str, int], ...]


class Polynomial:
    """An immutable polynomial in N[X]."""

    __slots__ = ("_terms",)

    def __init__(self, terms: Mapping[Monomial, int] | None = None) -> None:
        cleaned: Dict[Monomial, int] = {}
        for mono, coeff in (terms or {}).items():
            if coeff < 0:
                raise ValueError("provenance coefficients must be natural numbers")
            if coeff:
                cleaned[mono] = coeff
        self._terms = dict(sorted(cleaned.items()))

    @classmethod
    def variable(cls, name: str) -> "Polynomial":
        return cls({((name, 1),): 1})

    @classmethod
    def constant(cls, n: int) -> "Polynomial":
        if n == 0:
            return cls()
        return cls({(): n})

    @property
    def terms(self) -> Dict[Monomial, int]:
        return dict(self._terms)

    def __add__(self, other: "Polynomial") -> "Polynomial":
        out = dict(self._terms)
        for mono, coeff in other._terms.items():
            out[mono] = out.get(mono, 0) + coeff
        return Polynomial(out)

    def __mul__(self, other: "Polynomial") -> "Polynomial":
        out: Dict[Monomial, int] = {}
        for m1, c1 in self._terms.items():
            for m2, c2 in other._terms.items():
                exps: Dict[str, int] = {}
                for var, e in m1:
                    exps[var] = exps.get(var, 0) + e
                for var, e in m2:
                    exps[var] = exps.get(var, 0) + e
                mono = tuple(sorted(exps.items()))
                out[mono] = out.get(mono, 0) + c1 * c2
        return Polynomial(out)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Polynomial):
            return NotImplemented
        return self._terms == other._terms

    def __hash__(self) -> int:
        return hash(tuple(self._terms.items()))

    def __bool__(self) -> bool:
        return bool(self._terms)

    def __repr__(self) -> str:
        if not self._terms:
            return "0"
        parts = []
        for mono, coeff in self._terms.items():
            factors = [str(coeff)] if (coeff != 1 or not mono) else []
            for var, e in mono:
                factors.append(var if e == 1 else f"{var}^{e}")
            parts.append("*".join(factors))
        return " + ".join(parts)


class ProvenanceSemiring(Semiring):
    """N[X], the free commutative semiring (Green et al. 2007)."""

    name = "provenance"
    zero = Polynomial()
    one = Polynomial.constant(1)

    def add(self, x: Polynomial, y: Polynomial) -> Polynomial:
        return x + y

    def mul(self, x: Polynomial, y: Polynomial) -> Polynomial:
        return x * y

    def is_element(self, x: Any) -> bool:
        return isinstance(x, Polynomial)

    def from_int(self, n: int) -> Polynomial:
        return Polynomial.constant(n)


PROVENANCE = ProvenanceSemiring()
