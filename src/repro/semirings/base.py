"""The abstract semiring interface (Definition 4.5)."""

from __future__ import annotations

from typing import Any, Iterable


class SemiringElementError(TypeError):
    """Raised when a value does not belong to a semiring's carrier set."""


class Semiring:
    """A commutative-monoid/monoid pair with distributivity and absorption.

    Subclasses define ``zero``, ``one``, ``add`` and ``mul``.  The base
    class derives sums, products, powers, and an equality test that
    subclasses with approximate carriers (floats) may refine.

    Instances are stateless; the provided singletons should be reused
    rather than re-instantiated.
    """

    name: str = "semiring"

    #: Identity of addition (absorbing for multiplication).
    zero: Any = None
    #: Identity of multiplication.
    one: Any = None

    #: Whether addition is idempotent (x + x = x).  Idempotent semirings
    #: admit extra rewrites (e.g. boolean projection is union).
    idempotent_add: bool = False

    #: Whether addition is commutative.  True for every semiring in the
    #: paper's sense (Definition 4.5 requires a commutative monoid), so
    #: the default is True; the flag exists so the static stream-property
    #: analysis and the shard merger can state — and check — that the
    #: contracted ⊕-merge of Theorem 6.1 relies on it, and so tests can
    #: model a non-commutative ⊕ and watch the planner refuse the split.
    commutative_add: bool = True

    #: Optional numpy ufunc implementing ⊕ elementwise over arrays
    #: (``np.add`` for (+, ·), ``np.minimum`` for (min, +), …).  When
    #: present, the parallel runtime's merger ⊕-reduces shard partials
    #: with one vectorized call; when ``None``, :meth:`elementwise_add`
    #: falls back to a scalar loop through :meth:`add`.
    np_add: Any = None

    def add(self, x: Any, y: Any) -> Any:
        raise NotImplementedError

    def mul(self, x: Any, y: Any) -> Any:
        raise NotImplementedError

    def is_element(self, x: Any) -> bool:
        """Whether ``x`` belongs to the carrier set."""
        raise NotImplementedError

    def check_element(self, x: Any) -> Any:
        if not self.is_element(x):
            raise SemiringElementError(f"{x!r} is not an element of {self.name}")
        return x

    def eq(self, x: Any, y: Any) -> bool:
        """Semantic equality of two carrier elements."""
        return x == y

    def is_zero(self, x: Any) -> bool:
        return self.eq(x, self.zero)

    def sum(self, xs: Iterable[Any]) -> Any:
        acc = self.zero
        for x in xs:
            acc = self.add(acc, x)
        return acc

    def product(self, xs: Iterable[Any]) -> Any:
        acc = self.one
        for x in xs:
            acc = self.mul(acc, x)
        return acc

    def elementwise_add(self, x: Any, y: Any) -> Any:
        """⊕ applied pointwise to two equal-shape numpy arrays.

        This is the merge operation Theorem 6.1 licenses for sharded
        contraction: a contraction is a ⊕-reduction, so partial results
        over an index partition combine with pointwise ⊕.
        """
        if self.np_add is not None:
            return self.np_add(x, y)
        import numpy as np

        flat_x = np.asarray(x).ravel()
        flat_y = np.asarray(y).ravel()
        out = np.array(
            [self.add(a, b) for a, b in zip(flat_x.tolist(), flat_y.tolist())],
            dtype=np.asarray(x).dtype,
        )
        return out.reshape(np.asarray(x).shape)

    def pow(self, x: Any, n: int) -> Any:
        if n < 0:
            raise ValueError("semiring power must be non-negative")
        acc = self.one
        for _ in range(n):
            acc = self.mul(acc, x)
        return acc

    def from_int(self, n: int) -> Any:
        """The canonical image of a natural number (n-fold sum of one)."""
        if n < 0:
            raise ValueError("from_int expects a natural number")
        return self.sum(self.one for _ in range(n))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<semiring {self.name}>"
