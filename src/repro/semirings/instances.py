"""Concrete semiring instances used throughout the reproduction."""

from __future__ import annotations

import math
from typing import Any

import numpy as np

from repro.semirings.base import Semiring


class BoolSemiring(Semiring):
    """Booleans under (or, and): the semiring of ordinary relations."""

    name = "bool"
    zero = False
    one = True
    idempotent_add = True
    np_add = np.logical_or

    def add(self, x: bool, y: bool) -> bool:
        return x or y

    def mul(self, x: bool, y: bool) -> bool:
        return x and y

    def is_element(self, x: Any) -> bool:
        return isinstance(x, bool)


class NatSemiring(Semiring):
    """Natural numbers under (+, *): the semiring of bags/multisets."""

    name = "nat"
    zero = 0
    one = 1
    np_add = np.add

    def add(self, x: int, y: int) -> int:
        return x + y

    def mul(self, x: int, y: int) -> int:
        return x * y

    def is_element(self, x: Any) -> bool:
        return isinstance(x, int) and not isinstance(x, bool) and x >= 0


class IntSemiring(Semiring):
    """Integers under (+, *) (a ring, hence also a semiring)."""

    name = "int"
    zero = 0
    one = 1
    np_add = np.add

    def add(self, x: int, y: int) -> int:
        return x + y

    def mul(self, x: int, y: int) -> int:
        return x * y

    def is_element(self, x: Any) -> bool:
        return isinstance(x, int) and not isinstance(x, bool)


class FloatSemiring(Semiring):
    """Doubles under (+, *), with tolerance-based equality.

    Floating-point addition is not associative, so this is a semiring
    only up to rounding; ``eq`` therefore compares with a relative
    tolerance.  This matches how the paper's evaluation (and TACO)
    treat floating-point results.
    """

    name = "float"
    zero = 0.0
    one = 1.0
    np_add = np.add

    def __init__(self, rel_tol: float = 1e-9, abs_tol: float = 1e-12) -> None:
        self.rel_tol = rel_tol
        self.abs_tol = abs_tol

    def add(self, x: float, y: float) -> float:
        return x + y

    def mul(self, x: float, y: float) -> float:
        return x * y

    def is_element(self, x: Any) -> bool:
        return isinstance(x, (float, int)) and not isinstance(x, bool)

    def eq(self, x: float, y: float) -> bool:
        return math.isclose(x, y, rel_tol=self.rel_tol, abs_tol=self.abs_tol)


class MinPlusSemiring(Semiring):
    """The tropical (min, +) semiring over R ∪ {+inf}.

    Used for shortest-path style aggregations; one of the three scalar
    types exercised by the paper's evaluation.
    """

    name = "min-plus"
    zero = math.inf
    one = 0.0
    idempotent_add = True
    np_add = np.minimum

    def add(self, x: float, y: float) -> float:
        return min(x, y)

    def mul(self, x: float, y: float) -> float:
        return x + y

    def is_element(self, x: Any) -> bool:
        return isinstance(x, (float, int)) and not isinstance(x, bool)


class MaxPlusSemiring(Semiring):
    """The (max, +) semiring over R ∪ {-inf} (longest paths, scheduling)."""

    name = "max-plus"
    zero = -math.inf
    one = 0.0
    idempotent_add = True
    np_add = np.maximum

    def add(self, x: float, y: float) -> float:
        return max(x, y)

    def mul(self, x: float, y: float) -> float:
        return x + y

    def is_element(self, x: Any) -> bool:
        return isinstance(x, (float, int)) and not isinstance(x, bool)


class MaxTimesSemiring(Semiring):
    """The Viterbi semiring ([0, 1], max, *)."""

    name = "max-times"
    zero = 0.0
    one = 1.0
    idempotent_add = True
    np_add = np.maximum

    def add(self, x: float, y: float) -> float:
        return max(x, y)

    def mul(self, x: float, y: float) -> float:
        return x * y

    def is_element(self, x: Any) -> bool:
        return isinstance(x, (float, int)) and not isinstance(x, bool) and 0 <= x <= 1


BOOL = BoolSemiring()
NAT = NatSemiring()
INT = IntSemiring()
FLOAT = FloatSemiring()
MIN_PLUS = MinPlusSemiring()
MAX_PLUS = MaxPlusSemiring()
MAX_TIMES = MaxTimesSemiring()
