"""``python -m repro.lint`` — static stream-property lint over the
repo's known pipelines.

Runs the :mod:`repro.compiler.analysis.streamprops` inference (the
paper's §6 preservation lemmas as transfer rules) over every
contraction pipeline built by ``examples/`` and the TPC-H queries, and
prints one property signature per pipeline plus any findings with
blame naming the offending node.  Exit status is the number of
pipelines with findings (0 = everything statically certified).

The lint is purely static: no tensors are materialized, nothing is
lowered or compiled — each target is the *expression* a pipeline
compiles, its type context, and its semiring.  That is exactly the
information :meth:`KernelBuilder.prepare` verifies at admission, so a
clean lint here means the serving layer will admit the same pipelines
without spending a compile.

``--selftest`` additionally demonstrates the rejection paths the
analysis exists for: a hand-written non-monotone source and a
contraction over a non-idempotent ⊕ both refused with blame naming
the exact node.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.compiler.analysis.streamprops import (
    Blame,
    PropertySignature,
    analyze_expr,
    analyze_stream,
)
from repro.compiler.formats import TensorInput
from repro.compiler.scalars import scalar_ops_for
from repro.krelation.schema import Schema
from repro.lang.ast import Expr, Sum, Var
from repro.lang.typing import TypeContext
from repro.semirings import FLOAT, INT, MIN_PLUS
from repro.semirings.base import Semiring


@dataclass(frozen=True)
class LintTarget:
    """One pipeline: where it comes from, and what to analyze."""

    name: str
    origin: str                 # the script/module that builds it
    semiring: Semiring
    make: Callable[[], Tuple[Expr, TypeContext, Mapping[str, Sequence[str]]]]

    def analyze(self) -> Tuple[PropertySignature, List[Blame]]:
        expr, ctx, operand_attrs = self.make()
        ops = scalar_ops_for(self.semiring)
        specs = {
            name: TensorInput(name, tuple(attrs), ("sparse",) * len(attrs), ops)
            for name, attrs in operand_attrs.items()
        }
        return analyze_expr(expr, ctx, specs, self.semiring)


def _simple(
    attrs: Sequence[str],
    shapes: Mapping[str, Sequence[str]],
    expr: Expr,
) -> Tuple[Expr, TypeContext, Mapping[str, Sequence[str]]]:
    schema = Schema.of(**{a: None for a in attrs})
    ctx = TypeContext(schema, {n: set(a) for n, a in shapes.items()})
    return expr, ctx, shapes


def _tpch_q5() -> Tuple[Expr, TypeContext, Mapping[str, Sequence[str]]]:
    from repro.tpch import q5

    shapes = {
        "orders": ("o", "c"),
        "odate": ("o",),
        "customer": ("c", "n"),
        "nation": ("n", "r"),
        "region_asia": ("r",),
        "supplier": ("n", "s"),
        "lineitem": ("o", "s", "ln"),
    }
    return _simple(q5.ATTR_ORDER, shapes, q5.expression())


def _tpch_q9() -> Tuple[Expr, TypeContext, Mapping[str, Sequence[str]]]:
    from repro.tpch import q9

    shapes = {
        "supplier": ("n", "s"),
        "green": ("p",),
        "ps_one": ("s", "p"),
        "ps_cost": ("s", "p"),
        "line_rev": ("s", "p", "o", "ln"),
        "line_qty": ("s", "p", "o", "ln"),
        "oyear": ("o", "y"),
    }
    return _simple(q9.ATTR_ORDER, shapes, q9.expression())


TARGETS: Tuple[LintTarget, ...] = (
    LintTarget(
        "quickstart_dot3", "examples/quickstart.py", FLOAT,
        lambda: _simple(
            ("i",), {"x": ("i",), "y": ("i",), "z": ("i",)},
            Sum("i", Var("x") * Var("y") * Var("z")),
        ),
    ),
    LintTarget(
        "filtered_spmv", "examples/filtered_spmv.py", FLOAT,
        lambda: _simple(
            ("i", "j"), {"A": ("i", "j"), "x": ("j",), "p": ("j",)},
            Sum("j", Var("A") * Var("x") * Var("p")),
        ),
    ),
    LintTarget(
        "mm_rows", "examples/matmul_orderings.py", FLOAT,
        lambda: _simple(
            ("i", "k", "j"), {"X": ("i", "k"), "Y": ("k", "j")},
            Sum("k", Var("X") * Var("Y")),
        ),
    ),
    LintTarget(
        "mm_inner", "examples/matmul_orderings.py", FLOAT,
        lambda: _simple(
            ("i", "j", "k"), {"X": ("i", "k"), "Yt": ("j", "k")},
            Sum("k", Var("X") * Var("Yt")),
        ),
    ),
    LintTarget(
        "pagerank_step", "examples/pagerank.py", FLOAT,
        lambda: _simple(
            ("i", "j"), {"M": ("i", "j"), "r": ("j",), "keep": ("j",)},
            Sum("j", Var("M") * Var("r") * Var("keep")),
        ),
    ),
    LintTarget(
        "sssp_relax", "examples/semiring_shortest_path.py", MIN_PLUS,
        lambda: _simple(
            ("i", "j"), {"A": ("i", "j"), "d": ("j",)},
            Sum("j", Var("A") * Var("d")),
        ),
    ),
    LintTarget(
        "triangle_count", "examples/triangle_join.py", INT,
        lambda: _simple(
            ("a", "b", "c"),
            {"R": ("a", "b"), "S": ("b", "c"), "T": ("a", "c")},
            Sum("a", Sum("b", Sum("c", Var("R") * Var("S") * Var("T")))),
        ),
    ),
    LintTarget("tpch_q5", "repro.tpch.q5", FLOAT, _tpch_q5),
    LintTarget("tpch_q9", "repro.tpch.q9", FLOAT, _tpch_q9),
)


def run_target(target: LintTarget, verbose: bool = True) -> int:
    sig, findings = target.analyze()
    status = "ok" if not findings else f"{len(findings)} finding(s)"
    if verbose:
        print(f"{target.name:<18} [{target.origin}]  {status}")
        print(f"    {sig.describe()}")
        for b in findings:
            print(f"    FINDING {b}")
    return len(findings)


def selftest(verbose: bool = True) -> int:
    """Prove the rejection paths work: each case *must* produce a
    finding with blame naming the offending node.  Returns the number
    of cases that failed to be rejected."""
    from repro.errors import StreamPropertyError  # noqa: F401 (doc link)
    from repro.streams.combinators import ContractStream
    from repro.streams.sources import SparseStream

    class NonMonotoneSource(SparseStream):
        """Models a source whose index sequence regresses (e.g. an
        unsorted coordinate feed): declared, so the analysis refuses
        it without running the automaton."""

        static_properties = {"lawful": False, "monotone": False, "strict": False}

    class DuplicateIndexSource(SparseStream):
        """Models a monotone source that may emit an index twice (a
        non-deduplicated feed): contraction over it double-counts
        unless ⊕ is idempotent."""

        static_properties = {"lawful": True, "monotone": True, "strict": False}

    failures = 0

    bad = NonMonotoneSource("i", [0, 2, 5], [1.0, 2.0, 3.0], FLOAT)
    _, findings = analyze_stream(bad, FLOAT)
    ok = any(b.node == "NonMonotoneSource" and b.prop == "monotone"
             for b in findings)
    failures += 0 if ok else 1
    if verbose:
        print("selftest: non-monotone source rejected:", "yes" if ok else "NO")
        for b in findings:
            print(f"    FINDING {b}")

    dup = ContractStream(
        DuplicateIndexSource("i", [0, 2, 5], [1.0, 2.0, 3.0], FLOAT)
    )
    _, fl = analyze_stream(dup, FLOAT)
    ok_float = any(b.rule == "semiring-law:idempotent-add" for b in fl)
    _, mp = analyze_stream(
        ContractStream(
            DuplicateIndexSource("i", [0, 2, 5], [1.0, 2.0, 3.0], MIN_PLUS)
        ),
        MIN_PLUS,
    )
    ok_minplus = not mp
    failures += 0 if (ok_float and ok_minplus) else 1
    if verbose:
        print(
            "selftest: Σ over non-idempotent ⊕ rejected:",
            "yes" if ok_float else "NO",
            "| same Σ over min-plus certified:",
            "yes" if ok_minplus else "NO",
        )
        for b in fl:
            print(f"    FINDING {b}")
    return failures


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="statically certify the repo's stream pipelines",
    )
    parser.add_argument("targets", nargs="*",
                        help="target names (default: all)")
    parser.add_argument("--list", action="store_true",
                        help="list known targets and exit")
    parser.add_argument("--selftest", action="store_true",
                        help="also demonstrate the rejection paths")
    args = parser.parse_args(argv)

    by_name: Dict[str, LintTarget] = {t.name: t for t in TARGETS}
    if args.list:
        for t in TARGETS:
            print(f"{t.name:<18} {t.origin}  [{t.semiring.name}]")
        return 0

    chosen: List[LintTarget]
    if args.targets:
        unknown = [n for n in args.targets if n not in by_name]
        if unknown:
            parser.error(f"unknown target(s) {unknown}; see --list")
        chosen = [by_name[n] for n in args.targets]
    else:
        chosen = list(TARGETS)

    errors = 0
    for t in chosen:
        errors += run_target(t)
    print(f"\n{len(chosen)} pipeline(s) linted, "
          f"{errors} finding(s)")

    if args.selftest:
        print()
        failed = selftest()
        if failed:
            print(f"selftest: {failed} rejection case(s) NOT caught")
            errors += failed
        else:
            print("selftest: both rejection paths caught with blame")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
