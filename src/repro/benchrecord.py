"""Where benchmark reports land: tmp scratch vs committed record.

The ``benchmarks/`` suite (and the serve load test) write
``BENCH_*.json`` result files.  Historically they wrote straight to
the repo root, so every local or CI run dirtied the working tree with
machine-specific numbers.  Writers now route through
:func:`report_path`: by default reports go to a per-user scratch
directory; set ``REPRO_BENCH_RECORD=1`` to write to the repo root
when you *intend* to commit fresh numbers.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

from repro.compiler.resilience import _FALSEY

ENV_BENCH_RECORD = "REPRO_BENCH_RECORD"

#: the repository root (this file lives at src/repro/benchrecord.py)
REPO_ROOT = Path(__file__).resolve().parents[2]


def recording_enabled() -> bool:
    """True when ``REPRO_BENCH_RECORD`` is set to a truthy value."""
    raw = os.environ.get(ENV_BENCH_RECORD, "").strip().lower()
    return bool(raw) and raw not in _FALSEY


def report_path(filename: str) -> Path:
    """Destination for a ``BENCH_*.json`` report.

    Repo root under ``REPRO_BENCH_RECORD=1`` (committing a fresh
    record); otherwise a scratch directory under the system tmpdir so
    routine runs never dirty the working tree."""
    if recording_enabled():
        return REPO_ROOT / filename
    scratch = Path(tempfile.gettempdir()) / "repro_bench"
    scratch.mkdir(parents=True, exist_ok=True)
    return scratch / filename


__all__ = ["ENV_BENCH_RECORD", "recording_enabled", "report_path"]
