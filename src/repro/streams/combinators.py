"""Stream composition operators (Section 5.1).

``mul`` implements Definition 5.4 — the multi-way intersection — and
``add`` the min-merge addition; ``contract`` is Σ (Section 5.1.2),
``smap`` the functorial map (Section 5.2), and ``rename`` relabels
attributes.  The top-level functions are *dispatchers* that extend the
binary combinators across nested streams and across the dummy-attribute
mismatches that arise when contracted subexpressions are combined:

* ``mul(x, y)`` with a contracted (``*``) operand distributes the other
  operand into its values — sound by distributivity, ``(Σᵢ vᵢ)·y =
  Σᵢ (vᵢ·y)``;
* ``add(x, y)`` with exactly one contracted operand wraps the other in
  a one-shot contracted stream (:class:`SingletonContract`).

Both rules preserve evaluation (checked by the Theorem 6.1 property
tests in ``tests/verification``).
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Tuple

from repro.semirings.base import Semiring
from repro.streams.base import STAR, Stream, is_stream


class MulStream(Stream):
    """The product stream of Definition 5.4.

    ready requires both operands ready *and* index agreement; index is
    the max of the operand indices, so δ drives both operands toward
    the larger one — the intersection optimization.
    """

    __slots__ = ("x", "y")

    def __init__(self, x: Stream, y: Stream) -> None:
        if x.attr != y.attr:
            raise ValueError(f"cannot multiply levels {x.attr!r} and {y.attr!r}")
        if x.shape != y.shape:
            raise ValueError(f"cannot multiply shapes {x.shape} and {y.shape}")
        super().__init__(x.attr, x.shape, x.semiring)
        self.x = x
        self.y = y

    @property
    def q0(self) -> Tuple[Any, Any]:
        return (self.x.q0, self.y.q0)

    def valid(self, q) -> bool:
        return self.x.valid(q[0]) and self.y.valid(q[1])

    def index(self, q) -> Any:
        ix = self.x.index(q[0])
        iy = self.y.index(q[1])
        return ix if iy <= ix else iy

    def ready(self, q) -> bool:
        return (
            self.x.ready(q[0])
            and self.y.ready(q[1])
            and self.x.index(q[0]) == self.y.index(q[1])
        )

    def value(self, q) -> Any:
        return mul(self.x.value(q[0]), self.y.value(q[1]), self.semiring)

    def skip(self, q, i, r) -> Tuple[Any, Any]:
        qx, qy = q
        if self.x.valid(qx):
            qx = self.x.skip(qx, i, r)
        if self.y.valid(qy):
            qy = self.y.skip(qy, i, r)
        return (qx, qy)


class AddStream(Stream):
    """The sum stream: a sorted merge of its operands.

    index is the *min* of the live operands' indices.  The sum is ready
    only when every live operand *at that index* is itself ready — an
    operand whose index is a lower bound (a not-yet-ready product, say)
    may still produce a value there, so emitting early and skipping past
    would drop it.  When not ready, δ skips to ``(i, 0)``, which lets
    the unready operand advance internally without discarding anything.
    Unlike multiplication, a sum stream remains live while either
    operand is.
    """

    __slots__ = ("x", "y")

    def __init__(self, x: Stream, y: Stream) -> None:
        if x.attr != y.attr:
            raise ValueError(f"cannot add levels {x.attr!r} and {y.attr!r}")
        super().__init__(x.attr, x.shape, x.semiring)
        self.x = x
        self.y = y

    @property
    def q0(self) -> Tuple[Any, Any]:
        return (self.x.q0, self.y.q0)

    def valid(self, q) -> bool:
        return self.x.valid(q[0]) or self.y.valid(q[1])

    def index(self, q) -> Any:
        xv = self.x.valid(q[0])
        yv = self.y.valid(q[1])
        if xv and yv:
            ix = self.x.index(q[0])
            iy = self.y.index(q[1])
            return ix if ix <= iy else iy
        if xv:
            return self.x.index(q[0])
        return self.y.index(q[1])

    def _sides(self, q):
        """Which operands sit at the current (min) index."""
        i = self.index(q)
        at_x = self.x.valid(q[0]) and self.x.index(q[0]) == i
        at_y = self.y.valid(q[1]) and self.y.index(q[1]) == i
        return at_x, at_y

    def ready(self, q) -> bool:
        at_x, at_y = self._sides(q)
        return (
            (at_x or at_y)
            and (not at_x or self.x.ready(q[0]))
            and (not at_y or self.y.ready(q[1]))
        )

    def value(self, q) -> Any:
        at_x, at_y = self._sides(q)
        if not self.ready(q):
            raise RuntimeError("value of a non-ready sum state")
        if at_x and at_y:
            return add(self.x.value(q[0]), self.y.value(q[1]), self.semiring)
        if at_x:
            return self.x.value(q[0])
        return self.y.value(q[1])

    def skip(self, q, i, r) -> Tuple[Any, Any]:
        qx, qy = q
        if self.x.valid(qx):
            qx = self.x.skip(qx, i, r)
        if self.y.valid(qy):
            qy = self.y.skip(qy, i, r)
        return (qx, qy)


class ContractStream(Stream):
    """Σ_a q (Section 5.1.2): the same automaton with its index forgotten."""

    __slots__ = ("inner",)

    def __init__(self, inner: Stream) -> None:
        if inner.attr is STAR:
            raise ValueError("cannot contract an already-contracted level")
        super().__init__(STAR, inner.shape[1:], inner.semiring)
        self.inner = inner

    @property
    def q0(self) -> Any:
        return self.inner.q0

    def valid(self, q) -> bool:
        return self.inner.valid(q)

    def ready(self, q) -> bool:
        return self.inner.ready(q)

    def index(self, q) -> Any:
        return STAR

    def value(self, q) -> Any:
        return self.inner.value(q)

    def skip(self, q, i, r) -> Any:
        # skip(q, (*, r)) = inner.skip(q, (inner.index(q), r))
        if not self.inner.valid(q):
            return q
        return self.inner.skip(q, self.inner.index(q), r)


class SingletonContract(Stream):
    """A contracted stream that emits a single value once.

    Used to align a non-contracted operand with a contracted one when
    adding: ``x + Σq`` becomes ``SingletonContract(x) + Σq``.
    """

    __slots__ = ("_value",)

    def __init__(self, value: Any, semiring: Semiring) -> None:
        shape = value.shape if is_stream(value) else ()
        super().__init__(STAR, shape, semiring)
        self._value = value

    @property
    def q0(self) -> int:
        return 0

    def valid(self, q: int) -> bool:
        return q == 0

    def ready(self, q: int) -> bool:
        return q == 0

    def index(self, q: int) -> Any:
        return STAR

    def value(self, q: int) -> Any:
        return self._value

    def skip(self, q: int, i: Any, r: bool) -> int:
        return 1 if (q == 0 and r) else q


class MapStream(Stream):
    """Functorial map (Section 5.2): compose a function with ``value``."""

    __slots__ = ("inner", "fn")

    def __init__(self, fn: Callable[[Any], Any], inner: Stream, shape: Tuple[str, ...]) -> None:
        super().__init__(inner.attr, shape, inner.semiring)
        self.inner = inner
        self.fn = fn

    @property
    def q0(self) -> Any:
        return self.inner.q0

    def valid(self, q) -> bool:
        return self.inner.valid(q)

    def ready(self, q) -> bool:
        return self.inner.ready(q)

    def index(self, q) -> Any:
        return self.inner.index(q)

    def value(self, q) -> Any:
        return self.fn(self.inner.value(q))

    def skip(self, q, i, r) -> Any:
        return self.inner.skip(q, i, r)


class RenameStream(Stream):
    """name_ρ: relabel the attributes of a stream without changing it."""

    __slots__ = ("inner", "mapping")

    def __init__(self, inner: Stream, mapping: Mapping[str, str]) -> None:
        attr = inner.attr if inner.attr is STAR else mapping.get(inner.attr, inner.attr)
        shape = tuple(mapping.get(a, a) for a in inner.shape)
        if len(set(shape)) != len(shape):
            raise ValueError(f"rename {mapping} is not injective on {inner.shape}")
        super().__init__(attr, shape, inner.semiring)
        self.inner = inner
        self.mapping = dict(mapping)

    @property
    def q0(self) -> Any:
        return self.inner.q0

    def valid(self, q) -> bool:
        return self.inner.valid(q)

    def ready(self, q) -> bool:
        return self.inner.ready(q)

    def index(self, q) -> Any:
        return self.inner.index(q)

    def value(self, q) -> Any:
        v = self.inner.value(q)
        return RenameStream(v, self.mapping) if is_stream(v) else v

    def skip(self, q, i, r) -> Any:
        return self.inner.skip(q, i, r)


# ----------------------------------------------------------------------
# dispatchers over nested streams, dummy levels, and scalars
# ----------------------------------------------------------------------
def mul(x: Any, y: Any, semiring: Semiring) -> Any:
    """Multiply two nested streams / scalars of the same shape."""
    if not is_stream(x) and not is_stream(y):
        return semiring.mul(x, y)
    if is_stream(x) and x.attr is STAR:
        # (Σᵢ vᵢ) · y  =  Σᵢ (vᵢ · y): distribute y into the dummy level
        return MapStream(lambda v: mul(v, y, semiring), x, _mul_shape(x, y))
    if is_stream(y) and y.attr is STAR:
        return MapStream(lambda v: mul(x, v, semiring), y, _mul_shape(y, x))
    if not is_stream(x):
        return MapStream(lambda v: mul(x, v, semiring), y, y.shape)
    if not is_stream(y):
        return MapStream(lambda v: mul(v, y, semiring), x, x.shape)
    return MulStream(x, y)


def _mul_shape(star_side: Stream, other: Any) -> Tuple[str, ...]:
    other_shape = other.shape if is_stream(other) else ()
    # shapes agree after elaboration; keep the star side's (they are equal)
    if star_side.shape != tuple(other_shape):
        raise ValueError(
            f"cannot multiply shapes {star_side.shape} and {tuple(other_shape)}"
        )
    return star_side.shape


def add(x: Any, y: Any, semiring: Semiring) -> Any:
    """Add two nested streams / scalars of the same shape."""
    if not is_stream(x) and not is_stream(y):
        return semiring.add(x, y)
    x_star = is_stream(x) and x.attr is STAR
    y_star = is_stream(y) and y.attr is STAR
    if x_star and not y_star:
        return AddStream(x, SingletonContract(y, semiring))
    if y_star and not x_star:
        return AddStream(SingletonContract(x, semiring), y)
    if not is_stream(x) or not is_stream(y):
        raise ValueError("cannot add a scalar to a non-contracted stream")
    return AddStream(x, y)


def contract(q: Stream) -> ContractStream:
    """Σ on the outermost level."""
    return ContractStream(q)


def smap(fn: Callable[[Any], Any], q: Stream, shape: Tuple[str, ...]) -> MapStream:
    """Functorial map with an explicit result shape."""
    return MapStream(fn, q, shape)


def rename(q: Stream, mapping: Mapping[str, str]) -> Stream:
    return RenameStream(q, mapping)
