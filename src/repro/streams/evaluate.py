"""Stream evaluation ⟦–⟧ (Definition 5.11).

The meaning of a stream is the sum of its indexed values over all
reachable ready states.  Real-attribute levels evaluate to finitely
supported functions, represented as dicts from index to nested value;
contracted (``*``) levels sum their values.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.krelation.relation import KRelation
from repro.krelation.schema import Schema
from repro.semirings.base import Semiring
from repro.streams.base import STAR, Stream, is_stream


def merge_values(semiring: Semiring, a: Any, b: Any) -> Any:
    """Pointwise sum of two evaluated stream values (scalars or dicts)."""
    if isinstance(a, dict) != isinstance(b, dict):
        raise TypeError(f"cannot merge {type(a).__name__} with {type(b).__name__}")
    if not isinstance(a, dict):
        return semiring.add(a, b)
    out = dict(a)
    add = semiring.add
    for key, val in b.items():
        cur = out.get(key)
        if cur is None:
            out[key] = val
        elif isinstance(cur, dict):
            out[key] = merge_values(semiring, cur, val)
        else:
            # scalar-leaf fast path: no recursive call per entry
            out[key] = add(cur, val)
    return out


def _zero_value(shape: Tuple[str, ...], semiring: Semiring) -> Any:
    return semiring.zero if not shape else {}


def evaluate(stream: Any, max_steps: Optional[int] = 10_000_000) -> Any:
    """Evaluate a (nested) stream to a nested dict / scalar.

    * scalar leaf → itself;
    * ``a →s R`` → ``{index: ⟦value⟧, …}`` over reachable ready states;
    * ``* →s R`` → the sum of ⟦value⟧ over reachable ready states.

    ``max_steps`` guards against evaluating infinite streams.
    """
    if not is_stream(stream):
        return stream
    semiring = stream.semiring
    if stream.attr is STAR:
        acc = _zero_value(stream.shape, semiring)
        for q in stream.states(max_steps=max_steps):
            if stream.ready(q):
                acc = merge_values(semiring, acc, evaluate(stream.value(q), max_steps))
        if isinstance(acc, dict):
            # acc is keyed by the first real attribute below the dummy
            acc = _prune_deep(acc, stream.shape[1:], semiring)
        return acc
    out: Dict[Any, Any] = {}
    value_shape = stream.shape[1:]
    for q in stream.states(max_steps=max_steps):
        if stream.ready(q):
            i = stream.index(q)
            v = evaluate(stream.value(q), max_steps)
            out[i] = merge_values(semiring, out[i], v) if i in out else v
    return _prune_deep(out, value_shape, semiring)


def _prune_deep(out: Dict[Any, Any], value_shape: Tuple[str, ...], semiring: Semiring) -> Dict[Any, Any]:
    """Recursively drop zero leaves and empty sub-dicts, so cancellation
    (x + (-x)) yields structurally empty results."""
    if not value_shape:
        return {k: v for k, v in out.items() if not semiring.is_zero(v)}
    pruned = {
        k: _prune_deep(v, value_shape[1:], semiring) for k, v in out.items()
    }
    return {k: v for k, v in pruned.items() if v}


def flatten(value: Any, depth: int) -> Dict[Tuple[Any, ...], Any]:
    """Flatten a nested evaluation result into ``{(i, j, …): scalar}``."""
    if depth == 0:
        return {(): value}
    out: Dict[Tuple[Any, ...], Any] = {}
    for key, sub in value.items():
        for rest, scalar in flatten(sub, depth - 1).items():
            out[(key,) + rest] = scalar
    return out


def stream_to_krelation(stream: Stream, schema: Schema, max_steps: Optional[int] = 10_000_000) -> KRelation:
    """Evaluate a stream and package the result as a K-relation.

    The stream's level order must agree with the schema's global
    attribute ordering (valid streams always do, Definition 5.7).
    """
    value = evaluate(stream, max_steps=max_steps)
    shape = stream.shape
    flat = flatten(value, len(shape)) if shape else {(): value}
    sorted_shape = schema.sort_shape(shape)
    if sorted_shape != tuple(shape):
        perm = [shape.index(a) for a in sorted_shape]
        flat = {tuple(k[p] for p in perm): v for k, v in flat.items()}
    return KRelation(schema, stream.semiring, sorted_shape, flat)
