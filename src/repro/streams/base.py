"""The indexed-stream abstract data type (Definition 5.1).

A :class:`Stream` is immutable; its state is passed explicitly to every
operation, exactly as in the formal model.  ``q0`` is the initial
state.  Contracted streams (Section 5.1.2) are labeled with the dummy
attribute :data:`STAR`, whose only index value is also :data:`STAR`.
"""

from __future__ import annotations

from typing import Any, Iterator, Tuple

from repro.semirings.base import Semiring


class _Star:
    """The dummy attribute * and its single index value (I_* = {*})."""

    __slots__ = ()

    _instance = None

    def __new__(cls) -> "_Star":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "*"

    # * is only ever compared with itself; the total order on I_* is trivial.
    def __lt__(self, other: object) -> bool:
        if isinstance(other, _Star):
            return False
        return NotImplemented

    def __le__(self, other: object) -> bool:
        if isinstance(other, _Star):
            return True
        return NotImplemented


STAR = _Star()


class Stream:
    """An indexed stream ``(σ, q0, index, value, ready, skip)``.

    Subclasses implement the five functions of Definition 5.1 plus
    ``valid`` — the explicit termination test the compiler's syntactic
    streams also carry (Figure 13).  A state where ``valid`` is false is
    terminal: ``skip`` returns it unchanged and ``ready`` is false.

    Attributes
    ----------
    attr:
        The attribute (level label) of this stream, or :data:`STAR` for
        contracted streams.
    shape:
        The ordered tuple of *real* attributes of the whole nested
        stream (Definition 5.7's τ, ignoring dummy levels).
    semiring:
        The scalar semiring of the leaf values.
    """

    __slots__ = ("attr", "shape", "semiring")

    def __init__(self, attr: Any, shape: Tuple[str, ...], semiring: Semiring) -> None:
        self.attr = attr
        self.shape = tuple(shape)
        self.semiring = semiring

    # ------------------------------------------------------------------
    # the stream interface
    # ------------------------------------------------------------------
    @property
    def q0(self) -> Any:
        raise NotImplementedError

    def valid(self, q: Any) -> bool:
        raise NotImplementedError

    def ready(self, q: Any) -> bool:
        raise NotImplementedError

    def index(self, q: Any) -> Any:
        raise NotImplementedError

    def value(self, q: Any) -> Any:
        raise NotImplementedError

    def skip(self, q: Any, i: Any, r: bool) -> Any:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # derived notions
    # ------------------------------------------------------------------
    def next(self, q: Any) -> Any:
        """The immediate successor δ(q) = skip(q, (index(q), ready(q)))
        (Definition 5.3)."""
        if not self.valid(q):
            return q
        return self.skip(q, self.index(q), self.ready(q))

    def states(self, max_steps: int | None = None) -> Iterator[Any]:
        """Iterate the reachable states from q0 until terminal."""
        q = self.q0
        steps = 0
        while self.valid(q):
            yield q
            q = self.next(q)
            steps += 1
            if max_steps is not None and steps > max_steps:
                raise RuntimeError(
                    f"stream did not terminate within {max_steps} steps"
                )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        attrs = ",".join(str(a) for a in self.shape) or "scalar"
        return f"<{type(self).__name__} {self.attr}:[{attrs}]>"


def is_stream(x: Any) -> bool:
    return isinstance(x, Stream)


def reachable_states(stream: Stream, max_steps: int | None = 1_000_000) -> list:
    """All reachable states of a finite stream (Definition 5.10)."""
    return list(stream.states(max_steps=max_steps))
