"""Primitive indexed streams over concrete data (Example 5.2).

``SparseStream`` and ``DenseStream`` are the two canonical level
formats; ``FunctionStream`` represents implicitly defined data (user
functions, predicates, and the expansion operator ⇑, Section 5.1.3);
``from_dict``/``from_krelation`` build nested sparse streams from
dictionary data.
"""

from __future__ import annotations

import bisect
from typing import Any, Callable, Dict, Mapping, Optional, Sequence, Tuple

from repro.semirings.base import Semiring
from repro.streams.base import Stream, is_stream


class SparseStream(Stream):
    """A compressed level: sorted index array + parallel value array.

    ``skip`` may advance by linear scan or by galloping binary search;
    the paper attributes its ``smul`` speedup over TACO to the binary
    search variant (Section 8.1).
    """

    __slots__ = ("inds", "vals", "lo", "hi", "search")

    def __init__(
        self,
        attr: str,
        inds: Sequence[Any],
        vals: Sequence[Any],
        semiring: Semiring,
        value_shape: Tuple[str, ...] = (),
        lo: int = 0,
        hi: Optional[int] = None,
        search: str = "binary",
    ) -> None:
        super().__init__(attr, (attr,) + tuple(value_shape), semiring)
        if len(inds) != len(vals):
            raise ValueError("index and value arrays must have equal length")
        if search not in ("linear", "binary"):
            raise ValueError(f"unknown search strategy {search!r}")
        self.inds = inds
        self.vals = vals
        self.lo = lo
        self.hi = len(inds) if hi is None else hi
        if any(self.inds[k] >= self.inds[k + 1] for k in range(self.lo, self.hi - 1)):
            raise ValueError(f"indices of sparse level {attr!r} must strictly increase")
        self.search = search

    @property
    def q0(self) -> int:
        return self.lo

    def valid(self, q: int) -> bool:
        return q < self.hi

    def ready(self, q: int) -> bool:
        return q < self.hi

    def index(self, q: int) -> Any:
        return self.inds[q]

    def value(self, q: int) -> Any:
        return self.vals[q]

    def skip(self, q: int, i: Any, r: bool) -> int:
        """Least q' >= q with inds[q'] >= i (or > i when r is set)."""
        if q >= self.hi:
            return q
        if self.search == "linear":
            while q < self.hi and (self.inds[q] < i or (r and self.inds[q] == i)):
                q += 1
            return q
        # galloping binary search: double the step until overshoot, then bisect
        if self.inds[q] > i or (self.inds[q] == i and not r):
            return q
        step = 1
        lo = q
        while q + step < self.hi and (
            self.inds[q + step] < i or (r and self.inds[q + step] == i)
        ):
            lo = q + step
            step *= 2
        hi = min(q + step, self.hi)
        if r:
            return bisect.bisect_right(self.inds, i, lo, hi)
        return bisect.bisect_left(self.inds, i, lo, hi)


class DenseStream(Stream):
    """A dense level: one value per element of a finite, sorted domain."""

    __slots__ = ("domain", "vals")

    def __init__(
        self,
        attr: str,
        domain: Sequence[Any],
        vals: Sequence[Any],
        semiring: Semiring,
        value_shape: Tuple[str, ...] = (),
    ) -> None:
        super().__init__(attr, (attr,) + tuple(value_shape), semiring)
        if len(domain) != len(vals):
            raise ValueError("domain and value arrays must have equal length")
        self.domain = tuple(domain)
        if any(self.domain[k] >= self.domain[k + 1] for k in range(len(self.domain) - 1)):
            raise ValueError(f"domain of dense level {attr!r} must strictly increase")
        self.vals = vals

    @property
    def q0(self) -> int:
        return 0

    def valid(self, q: int) -> bool:
        return q < len(self.domain)

    def ready(self, q: int) -> bool:
        return q < len(self.domain)

    def index(self, q: int) -> Any:
        return self.domain[q]

    def value(self, q: int) -> Any:
        return self.vals[q]

    def skip(self, q: int, i: Any, r: bool) -> int:
        if q >= len(self.domain):
            return q
        if r:
            return max(q, bisect.bisect_right(self.domain, i, q))
        return max(q, bisect.bisect_left(self.domain, i, q))


class FunctionStream(Stream):
    """An implicitly represented stream: value computed from the index.

    With a finite ``domain`` this models dense functional data
    (predicates, user-defined functions — Section 7's `Op` streams).
    With ``domain=None`` it is an *infinite* stream over an index set
    with minimal element ``i0`` and successor ``succ`` — exactly the
    side conditions the paper imposes on ⇑ (Section 5.1.3).  Infinite
    streams have infinite support and may only be evaluated after
    multiplication by finite streams.
    """

    __slots__ = ("fn", "domain", "i0", "succ")

    def __init__(
        self,
        attr: str,
        fn: Callable[[Any], Any],
        semiring: Semiring,
        value_shape: Tuple[str, ...] = (),
        domain: Optional[Sequence[Any]] = None,
        i0: Any = 0,
        succ: Callable[[Any], Any] = lambda i: i + 1,
    ) -> None:
        super().__init__(attr, (attr,) + tuple(value_shape), semiring)
        self.fn = fn
        self.domain = tuple(domain) if domain is not None else None
        self.i0 = i0
        self.succ = succ

    @property
    def q0(self) -> Any:
        if self.domain is not None:
            return 0
        return self.i0

    def valid(self, q: Any) -> bool:
        if self.domain is not None:
            return q < len(self.domain)
        return True

    def ready(self, q: Any) -> bool:
        return self.valid(q)

    def index(self, q: Any) -> Any:
        if self.domain is not None:
            return self.domain[q]
        return q

    def value(self, q: Any) -> Any:
        return self.fn(self.index(q))

    def skip(self, q: Any, i: Any, r: bool) -> Any:
        if self.domain is not None:
            if q >= len(self.domain):
                return q
            if r:
                return max(q, bisect.bisect_right(self.domain, i, q))
            return max(q, bisect.bisect_left(self.domain, i, q))
        target = self.succ(i) if r else i
        return target if target > q else q


class SingletonStream(Stream):
    """A stream with exactly one (index, value) entry."""

    __slots__ = ("_index", "_value")

    def __init__(
        self,
        attr: str,
        index: Any,
        value: Any,
        semiring: Semiring,
        value_shape: Tuple[str, ...] = (),
    ) -> None:
        super().__init__(attr, (attr,) + tuple(value_shape), semiring)
        self._index = index
        self._value = value

    @property
    def q0(self) -> int:
        return 0

    def valid(self, q: int) -> bool:
        return q == 0

    def ready(self, q: int) -> bool:
        return q == 0

    def index(self, q: int) -> Any:
        return self._index

    def value(self, q: int) -> Any:
        return self._value

    def skip(self, q: int, i: Any, r: bool) -> int:
        if q != 0:
            return q
        if self._index < i or (r and self._index == i):
            return 1
        return 0


class EmptyStream(Stream):
    """A stream with no entries (the zero K-relation at its shape)."""

    __slots__ = ()

    def __init__(self, attr: str, semiring: Semiring, value_shape: Tuple[str, ...] = ()) -> None:
        super().__init__(attr, (attr,) + tuple(value_shape), semiring)

    @property
    def q0(self) -> int:
        return 0

    def valid(self, q: int) -> bool:
        return False

    def ready(self, q: int) -> bool:
        return False

    def index(self, q: int) -> Any:
        raise RuntimeError("index of an empty stream")

    def value(self, q: int) -> Any:
        raise RuntimeError("value of an empty stream")

    def skip(self, q: int, i: Any, r: bool) -> int:
        return q


def expand_stream(
    attr: str,
    value: Any,
    semiring: Semiring,
    domain: Optional[Sequence[Any]] = None,
    i0: Any = 0,
    succ: Callable[[Any], Any] = lambda i: i + 1,
) -> FunctionStream:
    """The expansion operator ⇑_a v (Section 5.1.3): always ready,
    constant value, iterating across I_a."""
    value_shape = value.shape if is_stream(value) else ()
    return FunctionStream(
        attr,
        lambda _i: value,
        semiring,
        value_shape=value_shape,
        domain=domain,
        i0=i0,
        succ=succ,
    )


# ----------------------------------------------------------------------
# builders
# ----------------------------------------------------------------------
def from_pairs(
    attr: str,
    pairs: Mapping[Any, Any] | Sequence[Tuple[Any, Any]],
    semiring: Semiring,
    value_shape: Tuple[str, ...] = (),
    search: str = "binary",
) -> Stream:
    """A sparse stream from (index, value) pairs (sorted by index)."""
    items = sorted(pairs.items()) if isinstance(pairs, Mapping) else sorted(pairs)
    inds = [i for i, _ in items]
    vals = [v for _, v in items]
    return SparseStream(attr, inds, vals, semiring, value_shape=value_shape, search=search)


def from_dict(
    attrs: Sequence[str],
    data: Mapping[Tuple[Any, ...], Any],
    semiring: Semiring,
    search: str = "binary",
) -> Stream:
    """A nested sparse stream from a flat dict keyed by index tuples.

    ``attrs`` lists the attributes outermost-first; keys must have the
    same arity.  Zero values are dropped.
    """
    attrs = list(attrs)
    if not attrs:
        # a scalar: the sum of all entries (there should be at most one)
        return semiring.sum(data.values())
    if any(len(k) != len(attrs) for k in data):
        raise ValueError(f"keys must have arity {len(attrs)}")
    groups: Dict[Any, Dict[Tuple[Any, ...], Any]] = {}
    for key, val in data.items():
        if semiring.is_zero(val):
            continue
        groups.setdefault(key[0], {})[key[1:]] = val
    inner_shape = tuple(attrs[1:])
    pairs = {
        head: from_dict(attrs[1:], rest, semiring, search=search)
        for head, rest in groups.items()
    }
    return from_pairs(attrs[0], pairs, semiring, value_shape=inner_shape, search=search)


def from_krelation(rel, order: Optional[Sequence[str]] = None, search: str = "binary") -> Stream:
    """A nested sparse stream from a K-relation, levels per the schema
    ordering (or an explicit ``order``)."""
    shape = tuple(order) if order is not None else rel.shape
    if sorted(shape) != sorted(rel.shape):
        raise ValueError(f"order {order!r} is not a permutation of {rel.shape!r}")
    perm = [rel.shape.index(a) for a in shape]
    data = {tuple(k[p] for p in perm): v for k, v in rel.items()}
    return from_dict(shape, data, rel.semiring, search=search)
