"""Materializing streams into fresh sparse data (temporaries).

Evaluating a stream and rebuilding it as nested :class:`SparseStream`
levels corresponds to introducing a temporary (Kjolstad et al. 2019's
workspaces).  It is used by the stream semantics when a rename would
reorder levels against the global attribute ordering — the one case
hierarchical iteration cannot express directly — and by the unfused
baselines.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.streams.base import Stream, is_stream
from repro.streams.evaluate import evaluate, flatten
from repro.streams.sources import from_dict


def materialize(
    stream: Any,
    order: Optional[Sequence[str]] = None,
    max_steps: Optional[int] = 10_000_000,
) -> Any:
    """Evaluate a stream and rebuild it as nested sparse levels.

    ``order`` optionally transposes the result to a new level order (a
    permutation of the stream's shape).  A scalar (fully contracted)
    stream materializes to its scalar value.
    """
    if not is_stream(stream):
        return stream
    value = evaluate(stream, max_steps=max_steps)
    shape = tuple(stream.shape)
    if not shape:
        return value
    flat = flatten(value, len(shape))
    if order is not None:
        order = tuple(order)
        if sorted(order) != sorted(shape):
            raise ValueError(f"order {order} is not a permutation of {shape}")
        perm = [shape.index(a) for a in order]
        flat = {tuple(k[p] for p in perm): v for k, v in flat.items()}
        shape = order
    return from_dict(shape, flat, stream.semiring)
