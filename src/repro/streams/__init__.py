"""Indexed streams: the paper's formal operational model (Section 5).

An indexed stream (Definition 5.1) is a tuple
``(σ, q0, index, value, ready, skip)`` describing stateful in-order
traversal of index/value pairs.  Streams nest — the value of an outer
stream can itself be a stream (Section 5.2) — and compose under the
contraction operators of ℒ: multiplication performs the multi-way
intersection optimization, addition merges, Σ forgets indices, and ⇑
replicates lazily.

This package is the *executable reference model*: it evaluates streams
per Definition 5.11 and is checked against the denotational semantics
(Theorem 6.1) by the property tests in :mod:`repro.verification`.  The
compiler in :mod:`repro.compiler` is a syntactic mirror of these
definitions.
"""

from repro.streams.base import STAR, Stream, is_stream, reachable_states
from repro.streams.sources import (
    DenseStream,
    EmptyStream,
    FunctionStream,
    SingletonStream,
    SparseStream,
    expand_stream,
    from_dict,
    from_krelation,
    from_pairs,
)
from repro.streams.combinators import (
    AddStream,
    ContractStream,
    MapStream,
    MulStream,
    RenameStream,
    SingletonContract,
    add,
    contract,
    mul,
    rename,
    smap,
)
from repro.streams.evaluate import evaluate, stream_to_krelation
from repro.streams.materialize import materialize

__all__ = [
    "STAR",
    "Stream",
    "is_stream",
    "reachable_states",
    "SparseStream",
    "DenseStream",
    "FunctionStream",
    "SingletonStream",
    "EmptyStream",
    "expand_stream",
    "from_dict",
    "from_pairs",
    "from_krelation",
    "MulStream",
    "AddStream",
    "ContractStream",
    "SingletonContract",
    "MapStream",
    "RenameStream",
    "mul",
    "add",
    "contract",
    "smap",
    "rename",
    "evaluate",
    "stream_to_krelation",
    "materialize",
]
