"""Random tensors, matrices, and the worst-case triangle instances."""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.data.tensor import Tensor
from repro.relational.relation import Relation
from repro.semirings.base import Semiring
from repro.semirings.instances import FLOAT, INT


def _unique_coords(rng: np.random.Generator, dims: Sequence[int], nnz: int) -> np.ndarray:
    """``nnz`` distinct coordinate tuples, uniform over the box."""
    total = int(np.prod(dims))
    nnz = min(nnz, total)
    flat = rng.choice(total, size=nnz, replace=False)
    coords = np.empty((nnz, len(dims)), dtype=np.int64)
    for k in range(len(dims) - 1, -1, -1):
        coords[:, k] = flat % dims[k]
        flat //= dims[k]
    return coords


def sparse_vector(
    n: int,
    density: float,
    attr: str = "i",
    fmt: str = "sparse",
    seed: int = 0,
    semiring: Semiring = FLOAT,
) -> Tensor:
    """A random vector with ~``density * n`` nonzeros in [0.5, 1.5)."""
    rng = np.random.default_rng(seed)
    coords = _unique_coords(rng, (n,), max(1, int(density * n)))
    entries = {
        (int(i),): float(rng.random()) + 0.5 for (i,) in coords
    }
    return Tensor.from_entries((attr,), (fmt,), (n,), entries, semiring)


def sparse_matrix(
    n: int,
    m: int,
    density: float,
    attrs: Tuple[str, str] = ("i", "j"),
    formats: Tuple[str, str] = ("dense", "sparse"),
    seed: int = 0,
    semiring: Semiring = FLOAT,
) -> Tensor:
    """A random n×m matrix with ~``density * n * m`` nonzeros."""
    rng = np.random.default_rng(seed)
    coords = _unique_coords(rng, (n, m), max(1, int(density * n * m)))
    entries = {
        (int(i), int(j)): float(rng.random()) + 0.5 for i, j in coords
    }
    return Tensor.from_entries(attrs, formats, (n, m), entries, semiring)


def sparse_tensor3(
    dims: Tuple[int, int, int],
    density: float,
    attrs: Tuple[str, str, str] = ("i", "k", "l"),
    formats: Tuple[str, str, str] = ("sparse", "sparse", "sparse"),
    seed: int = 0,
    semiring: Semiring = FLOAT,
) -> Tensor:
    """A random third-order tensor (CSF by default)."""
    rng = np.random.default_rng(seed)
    nnz = max(1, int(density * int(np.prod(dims))))
    coords = _unique_coords(rng, dims, nnz)
    entries = {
        tuple(int(x) for x in c): float(rng.random()) + 0.5 for c in coords
    }
    return Tensor.from_entries(attrs, formats, dims, entries, semiring)


def dense_vector(n: int, attr: str = "i", seed: int = 0) -> Tensor:
    rng = np.random.default_rng(seed)
    entries = {(i,): float(rng.random()) + 0.5 for i in range(n)}
    return Tensor.from_entries((attr,), ("dense",), (n,), entries, FLOAT)


def dense_matrix(n: int, m: int, attrs: Tuple[str, str] = ("i", "j"), seed: int = 0) -> Tensor:
    rng = np.random.default_rng(seed)
    entries = {
        (i, j): float(rng.random()) + 0.5 for i in range(n) for j in range(m)
    }
    return Tensor.from_entries(attrs, ("dense", "dense"), (n, m), entries, FLOAT)


def triangle_relations(n: int) -> Tuple[Relation, Relation, Relation]:
    """Three copies of ``{0}×[n] ∪ [n]×{0}`` (the paper's footnote 2).

    The triangle query over these has Θ(n) output, a fused multiway
    join runs in Θ(n), and any pairwise plan materializes a Θ(n²)
    intermediate."""
    edges = [(0, b) for b in range(n)] + [(a, 0) for a in range(1, n)]
    R = Relation(("a", "b"), edges)
    S = Relation(("b", "c"), edges)
    T = Relation(("a", "c"), edges)
    return R, S, T


def triangle_tensors(n: int) -> Tuple[Tensor, Tensor, Tensor]:
    """The same instances as boolean-weighted DCSR tensors, with level
    orders matching the attribute order a < b < c (T is stored (a, c))."""
    edges = {(0, b) for b in range(n)} | {(a, 0) for a in range(1, n)}
    entries = {e: 1 for e in edges}

    def pack(attrs):
        return Tensor.from_entries(attrs, ("sparse", "sparse"), (n, n), entries, INT)

    return pack(("a", "b")), pack(("b", "c")), pack(("a", "c"))
