"""Synthetic workload generators for the evaluation (Section 8).

The paper evaluates on synthetic matrices swept over sparsity levels
("they let us sweep over different sparsity percentages to demonstrate
that Etch can generate algorithms with suitable asymptotic
complexity"), the adversarial triangle-query family
``{0}×[n] ∪ [n]×{0}`` of Ngo et al. [2014], and a scaled TPC-H
(:mod:`repro.tpch`).
"""

from repro.workloads.generators import (
    dense_matrix,
    dense_vector,
    sparse_matrix,
    sparse_tensor3,
    sparse_vector,
    triangle_relations,
    triangle_tensors,
)

__all__ = [
    "sparse_vector",
    "sparse_matrix",
    "sparse_tensor3",
    "dense_vector",
    "dense_matrix",
    "triangle_relations",
    "triangle_tensors",
]
