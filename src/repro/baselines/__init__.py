"""Baseline systems the paper compares against (Section 8).

* :mod:`repro.baselines.taco` — hand-written C kernels that replicate
  the TACO compiler's generated code (merge loops, dense workspaces)
  for each Figure 17 expression.  The paper's claim is *relative*
  performance against TACO's strategies, which these kernels embody.
* :mod:`repro.baselines.pairwise` — a classical pairwise-join query
  engine (hash joins, materialized intermediates), the plan family
  SQLite/DuckDB use; on the triangle query it exhibits the Θ(n²)
  intermediate the paper's Figure 20 demonstrates.
* :mod:`repro.baselines.sqlite_bridge` — the real SQLite, via the
  standard library, configured as in Section 8.2 (in-memory, indexed,
  single-threaded, prepared statements).
"""
