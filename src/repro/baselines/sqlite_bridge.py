"""SQLite as a real baseline system (Section 8.2).

Loads relations into an in-memory SQLite database with the same
fairness measures the paper applies: all data in memory, irrelevant
columns deleted (we simply load only the needed ones), indices with the
same column ordering as the Etch plan, and prepared queries executed
repeatedly.
"""

from __future__ import annotations

import sqlite3
from typing import Any, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.relational.relation import Relation


class SqliteDB:
    """An in-memory SQLite database built from :class:`Relation` tables."""

    def __init__(self) -> None:
        self.conn = sqlite3.connect(":memory:")
        self.conn.execute("PRAGMA journal_mode = OFF")
        self.conn.execute("PRAGMA synchronous = OFF")
        self.conn.execute("PRAGMA temp_store = MEMORY")

    def load(self, name: str, rel: Relation) -> None:
        cols = ", ".join(f'"{c}"' for c in rel.columns)
        self.conn.execute(f'CREATE TABLE "{name}" ({cols})')
        placeholders = ", ".join("?" for _ in rel.columns)
        self.conn.executemany(
            f'INSERT INTO "{name}" VALUES ({placeholders})', rel.rows
        )
        self.conn.commit()

    def index(self, table: str, columns: Sequence[str], name: Optional[str] = None) -> None:
        """An index whose column ordering matches the Etch attribute order."""
        name = name or f"idx_{table}_{'_'.join(columns)}"
        cols = ", ".join(f'"{c}"' for c in columns)
        self.conn.execute(f'CREATE INDEX "{name}" ON "{table}" ({cols})')
        self.conn.commit()

    def analyze(self) -> None:
        self.conn.execute("ANALYZE")

    def query(self, sql: str, params: Tuple = ()) -> List[Tuple[Any, ...]]:
        return self.conn.execute(sql, params).fetchall()

    def close(self) -> None:
        self.conn.close()


def run_query(db: SqliteDB, sql: str) -> List[Tuple[Any, ...]]:
    """One prepared execution of a query (sqlite3 caches statements)."""
    return db.query(sql)
