"""A classical pairwise-join query engine (the unfused baseline).

Queries are evaluated two relations at a time with hash joins, fully
materializing every intermediate — the plan family used by traditional
engines.  On cyclic queries like the triangle query this necessarily
materializes a Θ(n²) intermediate (Ngo et al. 2014), which is exactly
the asymptotic separation Figure 20 demonstrates against Etch's fused
multiway join.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping, Sequence, Tuple

from repro.relational.relation import Relation


def hash_join(left: Relation, right: Relation) -> Relation:
    """Natural join on the shared columns, building a hash table on the
    smaller input and materializing the result."""
    shared = [c for c in left.columns if c in right.columns]
    if len(left) > len(right):
        left, right = right, left
    lkeys = [left.columns.index(c) for c in shared]
    rkeys = [right.columns.index(c) for c in shared]
    rextra = [k for k, c in enumerate(right.columns) if c not in shared]

    table: Dict[Tuple[Any, ...], List[Tuple[Any, ...]]] = {}
    for row in left.rows:
        table.setdefault(tuple(row[k] for k in lkeys), []).append(row)

    out_columns = list(left.columns) + [right.columns[k] for k in rextra]
    out_rows: List[Tuple[Any, ...]] = []
    for rrow in right.rows:
        key = tuple(rrow[k] for k in rkeys)
        for lrow in table.get(key, ()):
            out_rows.append(lrow + tuple(rrow[k] for k in rextra))
    return Relation(out_columns, out_rows)


def semijoin(left: Relation, right: Relation) -> Relation:
    """Rows of ``left`` with a join partner in ``right``."""
    shared = [c for c in left.columns if c in right.columns]
    rkeys = [right.columns.index(c) for c in shared]
    lkeys = [left.columns.index(c) for c in shared]
    keys = {tuple(r[k] for k in rkeys) for r in right.rows}
    return Relation(
        left.columns, [r for r in left.rows if tuple(r[k] for k in lkeys) in keys]
    )


def aggregate(
    rel: Relation,
    group_by: Sequence[str],
    measure: Callable[[Dict[str, Any]], float],
) -> Relation:
    """SUM(measure) GROUP BY the listed columns."""
    ks = [rel.columns.index(c) for c in group_by]
    sums: Dict[Tuple[Any, ...], float] = {}
    for row in rel.rows:
        key = tuple(row[k] for k in ks)
        sums[key] = sums.get(key, 0.0) + measure(dict(zip(rel.columns, row)))
    columns = list(group_by) + ["agg"]
    return Relation(columns, [k + (v,) for k, v in sorted(sums.items())])


def join_all(relations: Sequence[Relation]) -> Relation:
    """Left-deep pairwise join of several relations (in the given order)."""
    out = relations[0]
    for rel in relations[1:]:
        out = hash_join(out, rel)
    return out


def triangle_count_pairwise(R: Relation, S: Relation, T: Relation) -> int:
    """Count of Σ_abc R(a,b)·S(b,c)·T(a,c) by a pairwise plan:
    materialize R ⋈ S (the Θ(n²) intermediate), then join with T."""
    rs = hash_join(R, S)           # columns (a, b, c)
    full = hash_join(rs, T)        # join on (a, c)
    return len(full.rows)
