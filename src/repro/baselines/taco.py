"""TACO-style hand-written C kernels (the Section 8.1 baseline).

Each function replicates the loop structure the TACO compiler
[Kjolstad et al. 2017] generates for the corresponding expression:
per-row two-pointer merge loops for co-iteration (TACO skips by
incrementing, not binary search) and dense row workspaces for matmul
assembly [Kjolstad et al. 2019].  The C sources are compiled with the
same gcc pipeline as Etch kernels, so comparisons measure loop
strategy, not toolchain differences.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.compiler.codegen_c import CKernel
from repro.compiler.formats import Param
from repro.compiler.ir import TFLOAT, TINT
from repro.data.tensor import Tensor
from repro.semirings.instances import FLOAT

_PRELUDE = """#include <stdint.h>
#include <stdbool.h>
#include <math.h>
#include <stdlib.h>

static int _cmp_i64(const void* a, const void* b) {
  int64_t x = *(const int64_t*)a, y = *(const int64_t*)b;
  return (x > y) - (x < y);
}
"""


def _kernel(name: str, params, body: str) -> CKernel:
    sig = ", ".join(
        (f"int64_t* {p.name}" if p.ctype == TINT else f"double* {p.name}")
        if p.kind == "array"
        else f"int64_t {p.name}"
        for p in params
    )
    source = f"{_PRELUDE}\nvoid {name}({sig}) {{\n{body}\n}}\n"
    return CKernel(source, name, params)


def _arr(name, t=TINT):
    return Param(name, "array", t)


def _scl(name):
    return Param(name, "scalar", TINT)


# ----------------------------------------------------------------------
# SpMV: y(i) = Σ_j A(i,j) x(j), A in CSR, x/y dense
# ----------------------------------------------------------------------
_spmv_kernel = None


def spmv(A: Tensor, x: np.ndarray) -> np.ndarray:
    global _spmv_kernel
    if _spmv_kernel is None:
        _spmv_kernel = _kernel(
            "taco_spmv",
            [_arr("A_pos"), _arr("A_crd"), _arr("A_vals", TFLOAT),
             _arr("x", TFLOAT), _arr("y", TFLOAT), _scl("n")],
            """
  for (int64_t i = 0; i < n; i++) {
    double t = 0.0;
    for (int64_t p = A_pos[i]; p < A_pos[i+1]; p++)
      t += A_vals[p] * x[A_crd[p]];
    y[i] = t;
  }
""",
        )
    n = A.dims[0]
    y = np.zeros(n, dtype=np.float64)
    _spmv_kernel({
        "A_pos": A.pos[1], "A_crd": A.crd[1],
        "A_vals": np.ascontiguousarray(A.vals, dtype=np.float64),
        "x": np.ascontiguousarray(x, dtype=np.float64), "y": y, "n": n,
    })
    return y


# ----------------------------------------------------------------------
# add: C(i,j) = A(i,j) + B(i,j), all CSR — TACO's two-way merge loop
# ----------------------------------------------------------------------
_add_kernel = None


def add(A: Tensor, B: Tensor) -> Tensor:
    global _add_kernel
    if _add_kernel is None:
        _add_kernel = _kernel(
            "taco_add",
            [_arr("A_pos"), _arr("A_crd"), _arr("A_vals", TFLOAT),
             _arr("B_pos"), _arr("B_crd"), _arr("B_vals", TFLOAT),
             _arr("C_pos"), _arr("C_crd"), _arr("C_vals", TFLOAT),
             _arr("out_size"), _scl("n")],
            """
  int64_t nnz = 0;
  C_pos[0] = 0;
  for (int64_t i = 0; i < n; i++) {
    int64_t pa = A_pos[i], pb = B_pos[i];
    int64_t ea = A_pos[i+1], eb = B_pos[i+1];
    while (pa < ea && pb < eb) {
      int64_t ja = A_crd[pa], jb = B_crd[pb];
      if (ja == jb) {
        C_crd[nnz] = ja; C_vals[nnz++] = A_vals[pa++] + B_vals[pb++];
      } else if (ja < jb) {
        C_crd[nnz] = ja; C_vals[nnz++] = A_vals[pa++];
      } else {
        C_crd[nnz] = jb; C_vals[nnz++] = B_vals[pb++];
      }
    }
    while (pa < ea) { C_crd[nnz] = A_crd[pa]; C_vals[nnz++] = A_vals[pa++]; }
    while (pb < eb) { C_crd[nnz] = B_crd[pb]; C_vals[nnz++] = B_vals[pb++]; }
    C_pos[i+1] = nnz;
  }
  out_size[0] = nnz;
""",
        )
    n = A.dims[0]
    cap = len(A.vals) + len(B.vals)
    C_pos = np.zeros(n + 1, dtype=np.int64)
    C_crd = np.zeros(max(cap, 1), dtype=np.int64)
    C_vals = np.zeros(max(cap, 1), dtype=np.float64)
    size = np.zeros(1, dtype=np.int64)
    _add_kernel({
        "A_pos": A.pos[1], "A_crd": A.crd[1],
        "A_vals": np.ascontiguousarray(A.vals, dtype=np.float64),
        "B_pos": B.pos[1], "B_crd": B.crd[1],
        "B_vals": np.ascontiguousarray(B.vals, dtype=np.float64),
        "C_pos": C_pos, "C_crd": C_crd, "C_vals": C_vals,
        "out_size": size, "n": n,
    })
    nnz = int(size[0])
    return Tensor(A.attrs, ("dense", "sparse"), A.dims,
                  {1: C_pos}, {1: C_crd[:nnz]}, C_vals[:nnz], FLOAT)


# ----------------------------------------------------------------------
# inner: Σ_ij A(i,j) B(i,j), both CSR — per-row two-pointer merge
# ----------------------------------------------------------------------
_inner_kernel = None


def inner(A: Tensor, B: Tensor) -> float:
    global _inner_kernel
    if _inner_kernel is None:
        _inner_kernel = _kernel(
            "taco_inner",
            [_arr("A_pos"), _arr("A_crd"), _arr("A_vals", TFLOAT),
             _arr("B_pos"), _arr("B_crd"), _arr("B_vals", TFLOAT),
             _arr("out", TFLOAT), _scl("n")],
            """
  double acc = 0.0;
  for (int64_t i = 0; i < n; i++) {
    int64_t pa = A_pos[i], pb = B_pos[i];
    while (pa < A_pos[i+1] && pb < B_pos[i+1]) {
      int64_t ja = A_crd[pa], jb = B_crd[pb];
      if (ja == jb) acc += A_vals[pa++] * B_vals[pb++];
      else if (ja < jb) pa++;
      else pb++;
    }
  }
  out[0] = acc;
""",
        )
    out = np.zeros(1, dtype=np.float64)
    _inner_kernel({
        "A_pos": A.pos[1], "A_crd": A.crd[1],
        "A_vals": np.ascontiguousarray(A.vals, dtype=np.float64),
        "B_pos": B.pos[1], "B_crd": B.crd[1],
        "B_vals": np.ascontiguousarray(B.vals, dtype=np.float64),
        "out": out, "n": A.dims[0],
    })
    return float(out[0])


# ----------------------------------------------------------------------
# mmul: C = A·B, all CSR — linear combination of rows with a dense
# workspace per row (the TACO workspaces kernel)
# ----------------------------------------------------------------------
_mmul_kernel = None


def mmul(A: Tensor, B: Tensor) -> Tensor:
    global _mmul_kernel
    if _mmul_kernel is None:
        _mmul_kernel = _kernel(
            "taco_mmul",
            [_arr("A_pos"), _arr("A_crd"), _arr("A_vals", TFLOAT),
             _arr("B_pos"), _arr("B_crd"), _arr("B_vals", TFLOAT),
             _arr("C_pos"), _arr("C_crd"), _arr("C_vals", TFLOAT),
             _arr("w", TFLOAT), _arr("wlist"), _arr("wmask"),
             _arr("out_size"), _scl("n")],
            """
  int64_t nnz = 0;
  C_pos[0] = 0;
  for (int64_t i = 0; i < n; i++) {
    int64_t cnt = 0;
    for (int64_t pa = A_pos[i]; pa < A_pos[i+1]; pa++) {
      int64_t k = A_crd[pa];
      double va = A_vals[pa];
      for (int64_t pb = B_pos[k]; pb < B_pos[k+1]; pb++) {
        int64_t j = B_crd[pb];
        if (!wmask[j]) { wmask[j] = 1; wlist[cnt++] = j; w[j] = 0.0; }
        w[j] += va * B_vals[pb];
      }
    }
    qsort(wlist, cnt, sizeof(int64_t), _cmp_i64);
    for (int64_t t = 0; t < cnt; t++) {
      int64_t j = wlist[t];
      C_crd[nnz] = j; C_vals[nnz++] = w[j]; wmask[j] = 0;
    }
    C_pos[i+1] = nnz;
  }
  out_size[0] = nnz;
""",
        )
    n = A.dims[0]
    m = B.dims[1]
    cap = n * m if n * m < (1 << 24) else (1 << 24)
    env = {
        "A_pos": A.pos[1], "A_crd": A.crd[1],
        "A_vals": np.ascontiguousarray(A.vals, dtype=np.float64),
        "B_pos": B.pos[1], "B_crd": B.crd[1],
        "B_vals": np.ascontiguousarray(B.vals, dtype=np.float64),
        "C_pos": np.zeros(n + 1, dtype=np.int64),
        "C_crd": np.zeros(cap, dtype=np.int64),
        "C_vals": np.zeros(cap, dtype=np.float64),
        "w": np.zeros(m, dtype=np.float64),
        "wlist": np.zeros(m, dtype=np.int64),
        "wmask": np.zeros(m, dtype=np.int64),
        "out_size": np.zeros(1, dtype=np.int64),
        "n": n,
    }
    _mmul_kernel(env)
    nnz = int(env["out_size"][0])
    return Tensor(("i", "k"), ("dense", "sparse"), (n, m),
                  {1: env["C_pos"]}, {1: env["C_crd"][:nnz]},
                  env["C_vals"][:nnz], FLOAT)


# ----------------------------------------------------------------------
# smul: C = A·B, all DCSR — TACO co-iterates A's column list with B's
# row list by a two-pointer (linear) merge; Etch's binary-search skip
# is the asymptotic improvement Section 8.1 reports
# ----------------------------------------------------------------------
_smul_kernel = None


def smul(A: Tensor, B: Tensor) -> Tensor:
    global _smul_kernel
    if _smul_kernel is None:
        _smul_kernel = _kernel(
            "taco_smul",
            [_arr("A_pos0"), _arr("A_crd0"), _arr("A_pos1"), _arr("A_crd1"),
             _arr("A_vals", TFLOAT),
             _arr("B_pos0"), _arr("B_crd0"), _arr("B_pos1"), _arr("B_crd1"),
             _arr("B_vals", TFLOAT),
             _arr("C_crd0"), _arr("C_pos1"), _arr("C_crd1"), _arr("C_vals", TFLOAT),
             _arr("w", TFLOAT), _arr("wlist"), _arr("wmask"),
             _arr("out_size")],
            """
  int64_t n0 = 0, nnz = 0;
  C_pos1[0] = 0;
  int64_t a_rows = A_pos0[1];
  int64_t b_rows = B_pos0[1];
  for (int64_t qa = 0; qa < a_rows; qa++) {
    int64_t i = A_crd0[qa];
    int64_t cnt = 0;
    int64_t pa = A_pos1[qa], ea = A_pos1[qa+1];
    int64_t qb = 0;
    while (pa < ea && qb < b_rows) {
      int64_t k = A_crd1[pa], kb = B_crd0[qb];
      if (k == kb) {
        double va = A_vals[pa];
        for (int64_t pb = B_pos1[qb]; pb < B_pos1[qb+1]; pb++) {
          int64_t j = B_crd1[pb];
          if (!wmask[j]) { wmask[j] = 1; wlist[cnt++] = j; w[j] = 0.0; }
          w[j] += va * B_vals[pb];
        }
        pa++; qb++;
      } else if (k < kb) pa++;
      else qb++;
    }
    if (cnt > 0) {
      qsort(wlist, cnt, sizeof(int64_t), _cmp_i64);
      for (int64_t t = 0; t < cnt; t++) {
        int64_t j = wlist[t];
        C_crd1[nnz] = j; C_vals[nnz++] = w[j]; wmask[j] = 0;
      }
      C_crd0[n0++] = i;
      C_pos1[n0] = nnz;
    }
  }
  out_size[0] = n0;
  out_size[1] = nnz;
""",
        )
    n = A.dims[0]
    m = B.dims[1]
    cap = min(n * m, 1 << 24)
    row_cap = min(n, cap)
    env = {
        "A_pos0": A.pos[0], "A_crd0": A.crd[0], "A_pos1": A.pos[1],
        "A_crd1": A.crd[1],
        "A_vals": np.ascontiguousarray(A.vals, dtype=np.float64),
        "B_pos0": B.pos[0], "B_crd0": B.crd[0], "B_pos1": B.pos[1],
        "B_crd1": B.crd[1],
        "B_vals": np.ascontiguousarray(B.vals, dtype=np.float64),
        "C_crd0": np.zeros(row_cap, dtype=np.int64),
        "C_pos1": np.zeros(row_cap + 1, dtype=np.int64),
        "C_crd1": np.zeros(cap, dtype=np.int64),
        "C_vals": np.zeros(cap, dtype=np.float64),
        "w": np.zeros(m, dtype=np.float64),
        "wlist": np.zeros(m, dtype=np.int64),
        "wmask": np.zeros(m, dtype=np.int64),
        "out_size": np.zeros(2, dtype=np.int64),
    }
    _smul_kernel(env)
    n0 = int(env["out_size"][0])
    nnz = int(env["out_size"][1])
    return Tensor(("i", "k"), ("sparse", "sparse"), (n, m),
                  {0: np.array([0, n0], dtype=np.int64), 1: env["C_pos1"][: n0 + 1]},
                  {0: env["C_crd0"][:n0], 1: env["C_crd1"][:nnz]},
                  env["C_vals"][:nnz], FLOAT)


# ----------------------------------------------------------------------
# MTTKRP: A(i,j) = Σ_kl B(i,k,l) C(k,j) D(l,j), B in CSF, C/D/A dense
# ----------------------------------------------------------------------
_mttkrp_kernel = None


def mttkrp(B: Tensor, C: np.ndarray, D: np.ndarray) -> np.ndarray:
    global _mttkrp_kernel
    if _mttkrp_kernel is None:
        _mttkrp_kernel = _kernel(
            "taco_mttkrp",
            [_arr("B_pos0"), _arr("B_crd0"), _arr("B_pos1"), _arr("B_crd1"),
             _arr("B_pos2"), _arr("B_crd2"), _arr("B_vals", TFLOAT),
             _arr("C", TFLOAT), _arr("D", TFLOAT), _arr("A", TFLOAT),
             _scl("r")],
            """
  for (int64_t q0 = 0; q0 < B_pos0[1]; q0++) {
    int64_t i = B_crd0[q0];
    for (int64_t q1 = B_pos1[q0]; q1 < B_pos1[q0+1]; q1++) {
      int64_t k = B_crd1[q1];
      for (int64_t q2 = B_pos2[q1]; q2 < B_pos2[q1+1]; q2++) {
        int64_t l = B_crd2[q2];
        double v = B_vals[q2];
        for (int64_t j = 0; j < r; j++)
          A[i*r + j] += v * C[k*r + j] * D[l*r + j];
      }
    }
  }
""",
        )
    r = C.shape[1]
    n = B.dims[0]
    A = np.zeros((n, r), dtype=np.float64)
    _mttkrp_kernel({
        "B_pos0": B.pos[0], "B_crd0": B.crd[0],
        "B_pos1": B.pos[1], "B_crd1": B.crd[1],
        "B_pos2": B.pos[2], "B_crd2": B.crd[2],
        "B_vals": np.ascontiguousarray(B.vals, dtype=np.float64),
        "C": np.ascontiguousarray(C, dtype=np.float64),
        "D": np.ascontiguousarray(D, dtype=np.float64),
        "A": A.reshape(-1),
        "r": r,
    })
    return A
