"""Named linear-algebra kernels on level-format tensors.

Thin, well-typed wrappers over :func:`repro.tensor.einsum` for the
kernels the paper's evaluation exercises (SpMV, matmul, inner product)
plus the classic fused kernels the TACO line of work popularized
(SDDMM, residuals).  Each wrapper picks sensible formats and capacity
and caches nothing — kernel caching happens at the C level by source
hash.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.data.tensor import Tensor
from repro.krelation.schema import ShapeError
from repro.semirings.base import Semiring
from repro.semirings.instances import FLOAT
from repro.tensor.einsum import einsum, repack


def _as_vector(x, attr: str, semiring: Semiring = FLOAT) -> Tensor:
    if isinstance(x, Tensor):
        if x.order != 1:
            raise ShapeError(f"expected a vector, got {x!r}")
        if x.attrs != (attr,):
            return Tensor((attr,), x.formats, x.dims, x.pos, x.crd, x.vals, x.semiring)
        return x
    arr = np.asarray(x, dtype=np.float64)
    entries = {(int(i),): float(v) for i, v in enumerate(arr)}
    return Tensor.from_entries((attr,), ("dense",), (len(arr),), entries, semiring)


def _relabel(t: Tensor, attrs: Sequence[str]) -> Tensor:
    if t.order != len(attrs):
        raise ShapeError(f"tensor {t!r} is not rank {len(attrs)}")
    return Tensor(tuple(attrs), t.formats, t.dims, t.pos, t.crd, t.vals, t.semiring)


def spmv(A: Tensor, x, backend: str = "c") -> Tensor:
    """y = A·x for a rank-2 A and a vector (Tensor or array)."""
    A2 = _relabel(A, ("i", "j"))
    xv = _as_vector(x, "j", A.semiring)
    return einsum("ij,j->i", A2, xv, backend=backend, kernel_name="la_spmv")


def matmul(
    A: Tensor,
    B: Tensor,
    output_formats=("dense", "sparse"),
    capacity: Optional[int] = None,
    backend: str = "c",
) -> Tensor:
    """C = A·B by linear combination of rows (the fast §5.4.1 order)."""
    A2 = _relabel(A, ("i", "k"))
    B2 = _relabel(B, ("k", "j"))
    if capacity is None:
        capacity = min(A.dims[0] * B.dims[1], max(1024, 64 * max(A.nnz, 1)))
    return einsum("ik,kj->ij", A2, B2, output_formats=output_formats,
                  order=("i", "k", "j"), capacity=capacity, backend=backend,
                  kernel_name="la_matmul")


def inner(A: Tensor, B: Tensor, backend: str = "c") -> float:
    """Σ_ij A(i,j)·B(i,j)."""
    return einsum("ij,ij->", _relabel(A, ("i", "j")), _relabel(B, ("i", "j")),
                  backend=backend, kernel_name="la_inner")


def sddmm(
    S: Tensor,
    A: Tensor,
    B: Tensor,
    capacity: Optional[int] = None,
    backend: str = "c",
) -> Tensor:
    """Sampled dense-dense matrix multiplication:

        C(i,j) = S(i,j) · Σ_k A(i,k)·B(k,j)

    the fusion showcase of the sparse-compilation literature: the k
    contraction only runs at S's nonzero positions, and with the locate
    optimization A and B are indexed directly — cost O(nnz(S)·K)
    rather than O(N²K).
    """
    S2 = _relabel(S, ("i", "j"))
    A2 = _relabel(A, ("i", "k"))
    # the j loop nests above k, so B must be presented j-major
    Bt = repack(_relabel(B, ("k", "j")), ("j", "k"), B.formats)
    if capacity is None:
        capacity = max(16, 2 * S.nnz)
    return einsum("ij,ik,jk->ij", S2, A2, Bt,
                  output_formats=S.formats,
                  order=("i", "j", "k"),
                  capacity=capacity, backend=backend, kernel_name="la_sddmm")


def mttkrp(B: Tensor, C: Tensor, D: Tensor, backend: str = "c") -> Tensor:
    """A(i,j) = Σ_kl B(i,k,l)·C(k,j)·D(l,j) (dense output)."""
    B3 = _relabel(B, ("i", "k", "l"))
    C2 = _relabel(C, ("k", "j"))
    D2 = _relabel(D, ("l", "j"))
    return einsum("ikl,kj,lj->ij", B3, C2, D2, backend=backend,
                  kernel_name="la_mttkrp")


def frobenius_norm_sq(A: Tensor, backend: str = "c") -> float:
    """‖A‖_F² = Σ_ij A(i,j)²."""
    return inner(A, A, backend=backend)


def transpose(A: Tensor, formats=None) -> Tensor:
    """Aᵀ as a materialized temporary (a repack)."""
    A2 = _relabel(A, ("i", "j"))
    out = repack(A2, ("j", "i"), formats or A.formats)
    return out
