"""Einsum-style entry point for sparse tensor algebra.

The index letters of the spec become the attributes of an ℒ expression
(Figure 5's translation): each operand is a variable, juxtaposition is
broadcast multiplication, and letters absent from the output are
contracted with Σ.  The *order of first appearance* of letters across
the inputs fixes the global attribute ordering — i.e. the loop nest —
unless an explicit ``order`` is given (Section 8.1 shows the ordering
choice changes asymptotics).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple, Union

from repro.compiler.kernel import DEFAULT_OPT_LEVEL, KernelBuilder, OutputSpec
from repro.data.tensor import Tensor
from repro.krelation.schema import Attribute, Schema, ShapeError
from repro.lang.ast import Expr, Var, sum_over
from repro.lang.typing import TypeContext
from repro.semirings.base import Semiring

_SPEC = re.compile(r"^([a-zA-Z]+(?:,[a-zA-Z]+)*)->([a-zA-Z]*)$")


def parse_spec(spec: str) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
    """Parse ``"ij,jk->ik"`` into per-operand index tuples and output."""
    m = _SPEC.match(spec.replace(" ", ""))
    if not m:
        raise ValueError(f"malformed einsum spec {spec!r}")
    operands = tuple(tuple(part) for part in m.group(1).split(","))
    output = tuple(m.group(2))
    seen = {letter for letters in operands for letter in letters}
    for letter in output:
        if letter not in seen:
            raise ValueError(f"output index {letter!r} not among the inputs")
    if len(set(output)) != len(output):
        raise ValueError(f"repeated output index in {spec!r}")
    return operands, output


def einsum_expr(spec: str) -> Tuple[Expr, Tuple[Tuple[str, ...], ...], Tuple[str, ...]]:
    """The ℒ expression for a spec, with operands named t0, t1, …."""
    operands, output = parse_spec(spec)
    seen = set()
    for letters in operands:
        seen.update(letters)
    for letter in output:
        if letter not in seen:
            raise ValueError(f"output index {letter!r} not among the inputs")
    expr: Expr = Var("t0")
    for k in range(1, len(operands)):
        expr = expr * Var(f"t{k}")
    contracted = [a for a in _appearance_order(operands) if a not in output]
    return sum_over(contracted, expr), operands, output


def _appearance_order(operands: Sequence[Sequence[str]]) -> Tuple[str, ...]:
    order = []
    for letters in operands:
        for a in letters:
            if a not in order:
                order.append(a)
    return tuple(order)


@dataclass(frozen=True)
class EinsumPlan:
    """Everything :func:`einsum` decides *before* compiling.

    Splitting planning from building lets a caller — the serving layer
    above all — canonicalize a query, compute the kernel cache key via
    :meth:`~repro.compiler.kernel.KernelBuilder.cache_key`, and make
    admission decisions (coalescing, circuit-breaker rejection) without
    paying for a compile.  ``inputs`` carries the operand tensors
    relabeled to the canonical ``t0, t1, …`` names.
    """

    expr: Expr
    inputs: Dict[str, Tensor]
    output: Optional[OutputSpec]
    attr_order: Tuple[str, ...]
    attr_dims: Dict[str, int]
    name: str
    semiring: Semiring
    backend: str
    search: str
    opt_level: int = DEFAULT_OPT_LEVEL

    def builder(self) -> KernelBuilder:
        ctx = TypeContext(
            Schema(Attribute(a, None) for a in self.attr_order),
            {v: frozenset(t.attrs) for v, t in self.inputs.items()},
        )
        return KernelBuilder(
            ctx, self.semiring, backend=self.backend, search=self.search,
            opt_level=self.opt_level,
        )

    def cache_key(self) -> Optional[str]:
        """The canonical kernel cache key, computed without compiling."""
        return self.builder().cache_key(
            self.expr, self.inputs, self.output,
            name=self.name, attr_dims=self.attr_dims,
        )

    def build(self):
        """Compile (or cache-restore) the kernel for this plan."""
        return self.builder().build(
            self.expr, self.inputs, self.output,
            name=self.name, attr_dims=self.attr_dims,
        )


def plan_einsum(
    spec: str,
    *tensors: Tensor,
    output_formats: Optional[Sequence[str]] = None,
    order: Optional[Sequence[str]] = None,
    semiring: Optional[Semiring] = None,
    backend: str = "c",
    search: str = "linear",
    opt_level: int = DEFAULT_OPT_LEVEL,
    kernel_name: Optional[str] = None,
) -> EinsumPlan:
    """Canonicalize an einsum request into an :class:`EinsumPlan`.

    Performs all of :func:`einsum`'s validation (spec syntax, rank and
    dimension agreement, level-order conformance) but stops short of
    compiling, so errors surface cheaply and the cache key is available
    up front.
    """
    operands, output = parse_spec(spec)
    if len(operands) != len(tensors):
        raise ValueError(f"spec has {len(operands)} operands, got {len(tensors)} tensors")
    attr_order = tuple(order) if order is not None else _appearance_order(operands)

    dims: Dict[str, int] = {}
    for letters, tensor in zip(operands, tensors):
        if len(letters) != tensor.order:
            raise ShapeError(
                f"operand {letters} has rank {len(letters)}, tensor has {tensor.order}"
            )
        for a, d in zip(letters, tensor.dims):
            if dims.setdefault(a, d) != d:
                raise ShapeError(f"inconsistent dimension for index {a!r}")

    schema = Schema(Attribute(a, None) for a in attr_order)
    expr, _, _ = einsum_expr(spec)

    inputs = {}
    for k, (letters, tensor) in enumerate(zip(operands, tensors)):
        want = schema.sort_shape(letters)
        if tuple(letters) != want:
            raise ShapeError(
                f"operand {k} level order {letters} violates the attribute "
                f"ordering {attr_order}; repack() it to {want} first"
            )
        relabeled = Tensor(
            want, tensor.formats, tensor.dims, tensor.pos, tensor.crd,
            tensor.vals, tensor.semiring,
        )
        inputs[f"t{k}"] = relabeled

    if semiring is None:
        semiring = tensors[0].semiring

    out_attrs = schema.sort_shape(output)
    out_spec = None
    if out_attrs:
        if tuple(output) != out_attrs:
            raise ShapeError(
                f"output order {output} must follow the attribute ordering "
                f"{attr_order} (got {out_attrs})"
            )
        formats = tuple(output_formats) if output_formats else ("dense",) * len(out_attrs)
        out_spec = OutputSpec(out_attrs, formats, tuple(dims[a] for a in out_attrs))

    name = kernel_name or ("einsum_" + re.sub(r"[^a-zA-Z0-9]", "_", spec))
    ordered_dims = {a: dims[a] for a in attr_order if a in dims}
    return EinsumPlan(
        expr=expr, inputs=inputs, output=out_spec, attr_order=attr_order,
        attr_dims=ordered_dims, name=name, semiring=semiring,
        backend=backend, search=search, opt_level=opt_level,
    )


def einsum(
    spec: str,
    *tensors: Tensor,
    output_formats: Optional[Sequence[str]] = None,
    order: Optional[Sequence[str]] = None,
    semiring: Optional[Semiring] = None,
    backend: str = "c",
    search: str = "linear",
    capacity: Optional[int] = None,
    kernel_name: Optional[str] = None,
) -> Union[Tensor, float, int, bool]:
    """Evaluate an einsum over level-format tensors with a fused kernel.

    Tensors must present their levels in an order consistent with the
    global attribute ordering (``order`` or first-appearance order);
    use :func:`repack` to transpose beforehand if needed.
    """
    plan = plan_einsum(
        spec, *tensors, output_formats=output_formats, order=order,
        semiring=semiring, backend=backend, search=search,
        kernel_name=kernel_name,
    )
    kernel = plan.build()
    return kernel.run(plan.inputs, capacity=capacity)


def tensor_add(
    x: Tensor,
    y: Tensor,
    output_formats: Optional[Sequence[str]] = None,
    backend: str = "c",
    search: str = "linear",
    capacity: Optional[int] = None,
) -> Tensor:
    """Elementwise sum of two same-shape tensors (fused merge loop)."""
    if x.attrs != y.attrs or x.dims != y.dims:
        raise ShapeError(f"cannot add {x!r} and {y!r}")
    schema = Schema(Attribute(a, None) for a in x.attrs)
    ctx = TypeContext(schema, {"x": frozenset(x.attrs), "y": frozenset(x.attrs)})
    expr = Var("x") + Var("y")
    formats = tuple(output_formats) if output_formats else x.formats
    out = OutputSpec(tuple(x.attrs), formats, x.dims)
    builder = KernelBuilder(ctx, x.semiring, backend=backend, search=search)
    kernel = builder.build(expr, {"x": x, "y": y}, out, name="tensor_add")
    return kernel.run({"x": x, "y": y}, capacity=capacity)


def repack(
    tensor: Tensor,
    attrs: Sequence[str],
    formats: Optional[Sequence[str]] = None,
) -> Tensor:
    """Transpose/reformat a tensor (a materialized temporary)."""
    attrs = tuple(attrs)
    if sorted(attrs) != sorted(tensor.attrs):
        raise ValueError(f"{attrs} is not a permutation of {tensor.attrs}")
    perm = [tensor.attrs.index(a) for a in attrs]
    entries = {
        tuple(key[p] for p in perm): val for key, val in tensor.to_dict().items()
    }
    formats = tuple(formats) if formats is not None else tensor.formats
    dims = tuple(tensor.dims[p] for p in perm)
    return Tensor.from_entries(attrs, formats, dims, entries, tensor.semiring)
