"""Sparse tensor algebra frontend (Figure 5).

Translates einsum-style expressions into the contraction language ℒ
and runs them through the Etch compiler, e.g.::

    C = einsum("ij,jk->ik", A, B, output_formats=("dense", "sparse"))

covers matrix multiplication; ``einsum("ij,ij->", A, B)`` is the matrix
inner product; MTTKRP is ``einsum("ikl,kj,lj->ij", B, C, D)``.
"""

from repro.tensor.einsum import einsum, einsum_expr, repack, tensor_add
from repro.tensor import linalg

__all__ = ["einsum", "einsum_expr", "tensor_add", "repack", "linalg"]
