"""Per-request deadline budgets.

A request enters the server with one wall-clock budget; every stage —
queueing, coalescing, compiling, each retry attempt, the supervised
child itself — spends from the *same* clock.  The budget's remaining
time is what gets handed to ``Kernel.run(deadline=...)``, so a request
that spent half its budget waiting in a batch window gives the kernel
only the other half, and a request whose budget is gone is failed
without dispatching at all.
"""

from __future__ import annotations

import time
from typing import Optional


class Budget:
    """A monotonic countdown started at construction."""

    __slots__ = ("total", "_t0")

    def __init__(self, total: float) -> None:
        self.total = float(total)
        self._t0 = time.monotonic()

    def remaining(self) -> float:
        """Seconds left, clamped at zero."""
        return max(0.0, self.total - (time.monotonic() - self._t0))

    def elapsed(self) -> float:
        return time.monotonic() - self._t0

    @property
    def expired(self) -> bool:
        return self.remaining() <= 0.0


def request_budget(
    deadline_ms: Optional[float], default: float
) -> Budget:
    """The budget for one request: the client's ``deadline_ms`` when
    given (clamped to the server default — a client cannot buy more
    time than the operator configured), else the default."""
    if deadline_ms is None:
        return Budget(default)
    seconds = max(0.0, float(deadline_ms) / 1000.0)
    return Budget(min(seconds, default))


__all__ = ["Budget", "request_budget"]
