"""Query canonicalization: JSON request → prepared, keyed execution.

The crucial property: a prepared einsum query knows its **kernel cache
key before anything is compiled** (via
:meth:`~repro.tensor.einsum.EinsumPlan.cache_key`, which runs the full
front-end validation but stops short of lowering).  Admission control
can therefore reject a query whose kernel the circuit breaker has
quarantined — or coalesce it with an identical in-flight one — at the
price of a hash, not a compile.

Two query kinds:

``einsum``
    ``{"kind": "einsum", "spec": "ij,jk->ik", "operands": [TENSOR,
    ...]}`` with optional ``semiring`` (by name), ``output_formats``,
    ``order``, ``capacity``, and ``deadline_ms``.  A ``TENSOR`` is
    ``{"entries": [[[i, j], v], ...]}`` with optional ``"dims"``
    (defaults to 1 + the max coordinate per level) and ``"formats"``
    (defaults to all-sparse).  Executed on the supervised kernel
    runtime — deadline-killed, crash-isolated, breaker-guarded.

``sql``
    ``{"kind": "sql", "query": "SELECT ...", "tables": {name:
    {"columns": [...], "rows": [[...], ...]}}}``.  Executed by the
    relational reference engine in an executor thread; no kernel is
    built, so no breaker state applies.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.data.tensor import Tensor
from repro.errors import KernelTimeoutError, ReproError
from repro.semirings.instances import (
    BOOL, FLOAT, INT, MAX_PLUS, MAX_TIMES, MIN_PLUS, NAT,
)
from repro.serve.deadline import Budget
from repro.tensor.einsum import EinsumPlan, parse_spec, plan_einsum

SEMIRINGS = {
    s.name: s
    for s in (BOOL, NAT, INT, FLOAT, MIN_PLUS, MAX_PLUS, MAX_TIMES)
}


class QueryError(ReproError, ValueError):
    """A malformed query document — the client's fault (HTTP 400)."""


def _require(body: Mapping[str, Any], key: str, kind: type) -> Any:
    try:
        value = body[key]
    except (KeyError, TypeError):
        raise QueryError(f"missing required field {key!r}") from None
    if not isinstance(value, kind):
        raise QueryError(
            f"field {key!r} must be {kind.__name__}, got "
            f"{type(value).__name__}"
        )
    return value


def _decode_operands(
    operands_json: List[Any], operand_letters: Tuple[Tuple[str, ...], ...]
) -> List[Tensor]:
    """Decode every operand; missing ``dims`` are inferred *jointly* —
    an index letter shared across operands gets one dimension, the hull
    of every coordinate that uses it."""
    decoded = []
    hull: Dict[str, int] = {}
    for pos, (obj, letters) in enumerate(zip(operands_json, operand_letters)):
        if not isinstance(obj, Mapping):
            raise QueryError(f"operand {pos} must be an object")
        raw = _require(obj, "entries", list)
        entries: List[Tuple[Tuple[int, ...], Any]] = []
        for e in raw:
            try:
                coords, value = e
                coords = tuple(int(c) for c in coords)
            except (TypeError, ValueError) as exc:
                raise QueryError(
                    f"operand {pos}: bad entry {e!r} ({exc})"
                ) from None
            if len(coords) != len(letters):
                raise QueryError(
                    f"operand {pos}: entry rank {len(coords)} != spec rank "
                    f"{len(letters)}"
                )
            entries.append((coords, value))
        dims = obj.get("dims")
        if dims is not None and len(dims) != len(letters):
            raise QueryError(
                f"operand {pos}: {len(dims)} dims for rank {len(letters)}"
            )
        for k, a in enumerate(letters):
            seen = 1 + max((c[k] for c, _ in entries), default=0)
            if dims is not None:
                seen = max(seen, int(dims[k]))
            hull[a] = max(hull.get(a, 1), seen)
        decoded.append((pos, obj, letters, entries, dims))

    tensors = []
    for pos, obj, letters, entries, dims in decoded:
        if dims is None:
            dims = [hull[a] for a in letters]
        formats = tuple(obj.get("formats") or ("sparse",) * len(letters))
        try:
            tensors.append(Tensor.from_entries(letters, formats, dims, entries))
        except ValueError as exc:
            raise QueryError(f"operand {pos}: {exc}") from None
    return tensors


def _encode_result(result: Any) -> Dict[str, Any]:
    if isinstance(result, Tensor):
        entries = [
            list(coords) + [_json_value(v)]
            for coords, v in sorted(result.to_dict().items())
        ]
        return {
            "kind": "tensor",
            "attrs": list(result.attrs),
            "dims": list(result.dims),
            "nnz": len(entries),
            "entries": entries,
        }
    return {"kind": "scalar", "value": _json_value(result)}


def _json_value(v: Any) -> Any:
    """numpy scalars → native JSON types."""
    if hasattr(v, "item"):
        return v.item()
    return v


@dataclass
class PreparedQuery:
    """One canonicalized query, ready for admission and execution."""

    kind: str
    #: the kernel build-cache key (None for kernel-less queries) — the
    #: breaker's and the batcher's identity for this query
    kernel_key: Optional[str]
    #: identity for single-flight coalescing: kernel key + operand
    #: content (two requests with this key are the *same computation*)
    coalesce_key: str
    #: per-request deadline override, milliseconds (client-supplied)
    deadline_ms: Optional[float] = None
    plan: Optional[EinsumPlan] = None
    capacity: Optional[int] = None
    sql_text: Optional[str] = None
    sql_tables: Dict[str, Any] = field(default_factory=dict)
    #: autotuner verdict (None when tuning was off / not applicable)
    tune_sig: Optional[str] = None
    tune_decision: Any = None
    #: small per-response summary (decision-cache hit/miss, predicted
    #: cost) — surfaced in the response ``meta``
    tune_meta: Optional[Dict[str, Any]] = None
    #: the full explain() payload, included only for ``explain=true``
    explanation: Optional[Dict[str, Any]] = None
    #: tuner-predicted runtime in seconds (admission may reject a
    #: query predicted to blow its deadline — only when the prediction
    #: rests on a *measured* calibration profile)
    predicted_s: Optional[float] = None
    #: client/admission request for durable (journaled, resumable)
    #: execution; None defers to ``REPRO_DURABLE``.  Memory-aware
    #: admission under ``REPRO_SERVE_DEGRADE=spill`` forces this True
    #: for footprint-over-budget queries instead of rejecting them.
    durable: Optional[bool] = None
    #: cost-model estimate of the materialized result's resident bytes
    #: (None when the model could not size the query)
    footprint_bytes: Optional[float] = None
    #: filled by a durable execution: job_id, resumed_shards, spills —
    #: surfaced in the response ``meta`` and in drain-cancel markers
    job_meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def batch_key(self) -> Optional[str]:
        """Micro-batching identity: queries sharing it run the same
        kernel at the same capacity and may fold into one
        ``Kernel.run_batch`` call."""
        if self.kernel_key is None:
            return None
        return f"{self.kernel_key}:cap={self.capacity}"

    # -- execution (blocking; runs in the server's executor) -----------
    def execute(self, budget: Budget, fault_hook=None) -> Dict[str, Any]:
        """Build (or cache-hit) and run, spending ``budget``."""
        if self.kind == "sql":
            return self._execute_sql()
        kernel = self.build(fault_hook)
        remaining = budget.remaining()
        if remaining <= 0:
            raise KernelTimeoutError(
                "request budget exhausted before dispatch",
                deadline=budget.total,
            )
        d = self.tune_decision
        capacity = self.capacity
        if capacity is None and d is not None and d.capacity_hint:
            capacity = d.capacity_hint
        run_kwargs: Dict[str, Any] = dict(parallel=False)
        if d is not None and d.executor:
            run_kwargs = dict(
                parallel=d.executor, workers=d.shards, shards=d.shards,
            )
        import time as _time

        from repro.compiler import resilience

        t0 = _time.perf_counter()
        durable = (
            self.durable if self.durable is not None
            else resilience.durable_enabled()
        )
        if durable:
            # durable execution goes through the sharded runtime
            # directly: the journal is keyed by the run's deterministic
            # signature, so a client re-POSTing the identical query
            # after a crash resumes the dead worker's job
            result = kernel.run_sharded(
                self.plan.inputs, capacity, auto_grow=True,
                executor=(d.executor if d is not None and d.executor
                          else "serial"),
                workers=d.shards if d is not None and d.executor else None,
                shards=d.shards if d is not None and d.executor else None,
                deadline=remaining, durable=True, job_out=self.job_meta,
            )
        else:
            result = kernel.run(
                self.plan.inputs, capacity=capacity, auto_grow=True,
                supervised=True, deadline=remaining, **run_kwargs,
            )
        if self.tune_sig is not None:
            try:
                from repro.autotune import decision_cache

                decision_cache.record_outcome(
                    self.tune_sig, _time.perf_counter() - t0
                )
            except Exception:  # feedback must never fail a query
                pass
        return _encode_result(result)

    def build(self, fault_hook=None):
        """Compile (or restore) the kernel; the chaos hook sees every
        instance the build cache hands back."""
        kernel = self.plan.build()
        if fault_hook is not None:
            fault_hook(kernel)
        return kernel

    def _execute_sql(self) -> Dict[str, Any]:
        from repro.relational.sql import run

        rows = run(self.sql_text, self.sql_tables)
        return {
            "kind": "rows",
            "rows": [[_json_value(v) for v in r] for r in rows],
            "count": len(rows),
        }


def _estimate_footprint(plan: EinsumPlan) -> Optional[float]:
    """Cost-model estimate of the result's resident bytes.

    Advisory only — the memory-aware admission gate treats None as
    "cannot size, admit normally"; a failing estimator must never 500
    a query."""
    try:
        from repro.autotune.costmodel import (
            OperandStats, footprint_bytes,
        )

        stats = [
            OperandStats.from_tensor(name, t)
            for name, t in plan.inputs.items()
        ]
        out = plan.output
        if out is None:
            return 8.0
        return footprint_bytes(
            plan.attr_order, stats, out.attrs, out.formats, plan.attr_dims,
            search=plan.search,
        )
    except Exception:
        return None


def _tune_plan(spec, tensors, semiring):
    """Consult the autotuner for an open-knob einsum query.

    Returns ``(plan, sig, decision, meta, explanation, predicted_s)``
    or None — tuning is advisory, any failure falls back to the
    untuned plan (and is logged, never raised)."""
    try:
        from repro.autotune import tune_einsum

        result = tune_einsum(spec, *tensors, semiring=semiring)
        plan = result.plan()
        meta = {
            "cache": result.cache,
            "order": list(result.decision.order or ()),
            "search": result.decision.search,
            "executor": result.decision.executor,
            "shards": result.decision.shards,
            "predicted_ms": round(result.predicted_s * 1e3, 3),
        }
        return (plan, result.signature, result.decision, meta,
                result.explain(), result.predicted_s)
    except Exception as exc:
        from repro.compiler.resilience import logger

        logger.warning(
            "autotune failed for query spec %r (%s: %s); serving untuned",
            spec, type(exc).__name__, exc,
        )
        return None


def prepare_request(body: Any, tune: Optional[str] = None) -> PreparedQuery:
    """Parse and canonicalize one ``POST /query`` document.

    ``tune`` is the server's configured autotune mode: under
    ``"auto"``, einsum queries that leave the performance knobs open
    (no explicit ``order`` / ``output_formats``) are planned by
    :mod:`repro.autotune` — the decision cache is consulted here, at
    admission time, so a warm signature costs one lookup.  Explicit
    client knobs always win (the tuner is never consulted for them),
    and any tuner failure falls back to the untuned plan.

    Raises :class:`QueryError` (→ 400) for anything malformed; shape
    and dimension mismatches surface as the front-end's own
    :class:`~repro.krelation.schema.ShapeError` (also → 400).  Because
    canonicalization computes the kernel cache key here, the static
    stream-property lint runs too (``REPRO_STREAM_VERIFY``): an
    unlawful pipeline raises
    :class:`~repro.errors.StreamPropertyError`, which the server maps
    to 400 with the blame diagnostic — a proven-ill-formed query never
    reaches a compiler or a worker.
    """
    if not isinstance(body, Mapping):
        raise QueryError("request body must be a JSON object")
    kind = _require(body, "kind", str)
    deadline_ms = body.get("deadline_ms")
    if deadline_ms is not None and not isinstance(deadline_ms, (int, float)):
        raise QueryError("deadline_ms must be a number")

    if kind == "sql":
        return _prepare_sql(body, deadline_ms)
    if kind != "einsum":
        raise QueryError(f"unknown query kind {kind!r}")

    spec = _require(body, "spec", str)
    operands_json = _require(body, "operands", list)
    try:
        operand_letters, _ = parse_spec(spec)
    except ValueError as exc:
        raise QueryError(str(exc)) from None
    if len(operands_json) != len(operand_letters):
        raise QueryError(
            f"spec has {len(operand_letters)} operands, got "
            f"{len(operands_json)}"
        )
    tensors = _decode_operands(operands_json, operand_letters)

    semiring_name = body.get("semiring", "float")
    semiring = SEMIRINGS.get(semiring_name)
    if semiring is None:
        raise QueryError(
            f"unknown semiring {semiring_name!r}; expected one of "
            f"{sorted(SEMIRINGS)}"
        )
    capacity = body.get("capacity")
    if capacity is not None and not isinstance(capacity, int):
        raise QueryError("capacity must be an integer")
    durable = body.get("durable")
    if durable is not None and not isinstance(durable, bool):
        raise QueryError("durable must be a boolean")

    tuned = None
    knobs_open = (
        body.get("order") is None and body.get("output_formats") is None
    )
    if tune == "auto" and knobs_open:
        tuned = _tune_plan(spec, tensors, semiring)

    if tuned is not None:
        plan, tune_sig, decision, tune_meta, explanation, predicted_s = tuned
    else:
        tune_sig = decision = tune_meta = explanation = predicted_s = None
        try:
            plan = plan_einsum(
                spec, *tensors,
                output_formats=body.get("output_formats"),
                order=body.get("order"),
                semiring=semiring,
            )
        except ValueError as exc:
            raise QueryError(str(exc)) from None
    kernel_key = plan.cache_key()
    return PreparedQuery(
        kind="einsum",
        kernel_key=kernel_key,
        coalesce_key=f"{kernel_key}:{_body_digest(body)}",
        deadline_ms=deadline_ms,
        plan=plan,
        capacity=capacity,
        tune_sig=tune_sig,
        tune_decision=decision,
        tune_meta=tune_meta,
        explanation=explanation,
        predicted_s=predicted_s,
        durable=durable,
        footprint_bytes=_estimate_footprint(plan),
    )


def _prepare_sql(body: Mapping[str, Any], deadline_ms) -> PreparedQuery:
    from repro.relational.relation import Relation
    from repro.relational.sql import SqlError, parse

    text = _require(body, "query", str)
    tables_json = _require(body, "tables", Mapping)
    try:
        parse(text)  # syntax errors surface at admission, not dispatch
    except SqlError as exc:
        raise QueryError(str(exc)) from None
    tables: Dict[str, Relation] = {}
    for name, t in tables_json.items():
        if not isinstance(t, Mapping):
            raise QueryError(f"table {name!r} must be an object")
        try:
            tables[name] = Relation(
                _require(t, "columns", list),
                [tuple(r) for r in _require(t, "rows", list)],
            )
        except ValueError as exc:
            raise QueryError(f"table {name!r}: {exc}") from None
    return PreparedQuery(
        kind="sql",
        kernel_key=None,
        coalesce_key=f"sql:{_body_digest(body)}",
        deadline_ms=deadline_ms,
        sql_text=text,
        sql_tables=tables,
    )


def _body_digest(body: Mapping[str, Any]) -> str:
    """Content identity of a request: the canonical JSON of everything
    except the deadline and the ``explain`` flag (two clients asking
    the same question with different patience — or different curiosity
    about the plan — are still asking the same question; each coalesced
    caller gets the explain data of its *own* prepared query)."""
    stripped = {
        k: v for k, v in body.items() if k not in ("deadline_ms", "explain")
    }
    blob = json.dumps(stripped, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:32]


__all__ = [
    "PreparedQuery",
    "QueryError",
    "prepare_request",
    "SEMIRINGS",
]
