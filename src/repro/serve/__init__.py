"""Contraction-as-a-service: a fault-tolerant async query server.

``repro.serve`` turns the compiled-kernel library into a long-running
HTTP/JSON service: clients POST einsum or SQL queries, the server
canonicalizes them into the kernel build-cache key, executes on the
supervised runtime (the PR 6 worker pool under ``REPRO_POOL=1``), and
wraps the whole path in a resilience stack —

* per-request **deadline budgets** propagated down to the supervised
  child's wall-clock kill (:mod:`repro.serve.deadline`),
* **admission control** and load shedding: a token-bucket rate limit,
  an in-flight cap, and circuit-breaker rejection *before* any compile
  happens (:mod:`repro.serve.admission`),
* **bounded retry** with exponential backoff + jitter for transient
  failures only (:mod:`repro.serve.retrying`),
* **single-flight coalescing** of identical in-flight queries and
  micro-batching of compatible ones (:mod:`repro.serve.coalesce`),
* a **graceful lifecycle**: ``/healthz`` / ``/readyz``, SIGTERM drain,
  and chunked streaming so a slow client never holds a worker
  (:mod:`repro.serve.lifecycle`, :mod:`repro.serve.stream`).

Run it with ``python -m repro.serve``; every knob is a strict
``REPRO_SERVE_*`` environment variable (see
:class:`repro.serve.config.ServeConfig`).
"""

from repro.serve.config import ServeConfig
from repro.serve.app import ContractionServer

__all__ = ["ServeConfig", "ContractionServer"]
