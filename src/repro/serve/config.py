"""Server configuration: the ``REPRO_SERVE_*`` environment family.

Unlike the library-level ``REPRO_*`` knobs (which warn and fall back
to defaults — a bad value must not take down a library call), the
serve family is **always strict**: every variable is parsed once, at
startup, and an unparsable value raises a typed
:class:`~repro.errors.ConfigError` naming the variable.  A server that
boots is a server whose configuration was read the way the operator
wrote it.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.compiler.resilience import env_flag, env_float, env_int, tune_mode
from repro.errors import ConfigError

ENV_HOST = "REPRO_SERVE_HOST"
ENV_PORT = "REPRO_SERVE_PORT"
ENV_DEADLINE = "REPRO_SERVE_DEADLINE"
ENV_MAX_INFLIGHT = "REPRO_SERVE_MAX_INFLIGHT"
ENV_QPS = "REPRO_SERVE_QPS"
ENV_BURST = "REPRO_SERVE_BURST"
ENV_RETRIES = "REPRO_SERVE_RETRIES"
ENV_RETRY_BASE = "REPRO_SERVE_RETRY_BASE"
ENV_BATCH_WINDOW = "REPRO_SERVE_BATCH_WINDOW"
ENV_BATCH_MAX = "REPRO_SERVE_BATCH_MAX"
ENV_DRAIN = "REPRO_SERVE_DRAIN"
ENV_WRITE_TIMEOUT = "REPRO_SERVE_WRITE_TIMEOUT"
ENV_DEGRADE = "REPRO_SERVE_DEGRADE"
ENV_WORKERS = "REPRO_SERVE_WORKERS"
ENV_MAX_BODY = "REPRO_SERVE_MAX_BODY"
ENV_STREAM_THRESHOLD = "REPRO_SERVE_STREAM_THRESHOLD"

#: degraded-admission policies: ``reject`` sheds the request with
#: 503 + Retry-After (the honest answer under quarantine or memory
#: pressure); ``fallback`` admits it and lets ``Kernel.run`` serve the
#: pure-Python twin; ``spill`` admits footprint-over-budget queries but
#: forces durable execution, so partials spill to the job journal and
#: the merge streams — slower, disk-backed answers instead of 503s
#: (open-breaker queries are still rejected under ``spill``: spilling
#: does not make a crashing kernel safe)
DEGRADE_MODES = ("reject", "fallback", "spill")


@dataclass
class ServeConfig:
    """Everything the server reads from the environment, parsed once.

    ``fault_hook`` is programmatic-only (no environment spelling): the
    chaos tests install a callable that sabotages freshly built
    kernels, exercising the crash/timeout paths end to end.
    """

    host: str = "127.0.0.1"
    port: int = 8774
    #: default per-request wall-clock budget, seconds; a request may
    #: ask for less via ``deadline_ms`` but never for more
    deadline: float = 30.0
    #: concurrent admitted requests before 429
    max_inflight: int = 32
    #: sustained admission rate, requests/second (0 = unlimited)
    qps: float = 0.0
    #: token-bucket burst size (0 = derive as max(1, 2·qps))
    burst: int = 0
    #: extra attempts granted to *retryable* failures
    retries: int = 2
    #: base backoff between attempts, seconds (full jitter applied)
    retry_base: float = 0.05
    #: micro-batch gathering window, seconds (0 = batching off)
    batch_window: float = 0.0
    #: max queries folded into one ``Kernel.run_batch``
    batch_max: int = 16
    #: SIGTERM drain budget: finish in-flight work within this many
    #: seconds, then cancel with partial-result markers
    drain: float = 10.0
    #: per-chunk client write budget; a slower client is disconnected
    write_timeout: float = 5.0
    #: open-breaker admission policy (see :data:`DEGRADE_MODES`)
    degrade: str = "reject"
    #: executor threads for blocking kernel work
    workers: int = 8
    #: request body cap, bytes
    max_body: int = 8 * 1024 * 1024
    #: results with more entries than this stream as chunked NDJSON
    stream_threshold: int = 4096
    #: adaptive planning for open-knob einsum queries ("auto" | "off");
    #: the *server* defaults to on — a service should run as fast as
    #: the machine allows — while library builds default to off.
    #: ``REPRO_TUNE`` overrides.
    tune: str = "auto"
    #: chaos seam: called with every freshly built kernel (tests only)
    fault_hook: Optional[Callable] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.degrade not in DEGRADE_MODES:
            raise ConfigError(
                ENV_DEGRADE, str(self.degrade),
                f"expected one of {DEGRADE_MODES}",
            )
        if self.tune not in ("off", "auto"):
            raise ConfigError(
                "REPRO_TUNE", str(self.tune), "expected 'off' or 'auto'",
            )
        if self.burst <= 0:
            self.burst = max(1, int(2 * self.qps))

    @classmethod
    def from_env(cls) -> "ServeConfig":
        """Read the full ``REPRO_SERVE_*`` family, strictly.

        Any unparsable value raises :class:`~repro.errors.ConfigError`
        immediately — the server refuses to boot on a typo rather than
        running with a silently ignored knob.
        """
        d = cls()
        degrade = os.environ.get(ENV_DEGRADE, d.degrade).strip().lower()
        return cls(
            host=os.environ.get(ENV_HOST, d.host),
            port=env_int(ENV_PORT, d.port, minimum=0, strict=True),
            deadline=env_float(
                ENV_DEADLINE, d.deadline, minimum=0.001, strict=True),
            max_inflight=env_int(
                ENV_MAX_INFLIGHT, d.max_inflight, minimum=1, strict=True),
            qps=env_float(ENV_QPS, d.qps, minimum=0.0, strict=True),
            burst=env_int(ENV_BURST, d.burst, minimum=0, strict=True),
            retries=env_int(ENV_RETRIES, d.retries, minimum=0, strict=True),
            retry_base=env_float(
                ENV_RETRY_BASE, d.retry_base, minimum=0.0, strict=True),
            batch_window=env_float(
                ENV_BATCH_WINDOW, d.batch_window, minimum=0.0, strict=True),
            batch_max=env_int(
                ENV_BATCH_MAX, d.batch_max, minimum=1, strict=True),
            drain=env_float(ENV_DRAIN, d.drain, minimum=0.0, strict=True),
            write_timeout=env_float(
                ENV_WRITE_TIMEOUT, d.write_timeout, minimum=0.1, strict=True),
            degrade=degrade,
            workers=env_int(ENV_WORKERS, d.workers, minimum=1, strict=True),
            max_body=env_int(
                ENV_MAX_BODY, d.max_body, minimum=1024, strict=True),
            stream_threshold=env_int(
                ENV_STREAM_THRESHOLD, d.stream_threshold, minimum=1,
                strict=True),
            tune=tune_mode() or d.tune,
        )


__all__ = ["ServeConfig", "DEGRADE_MODES"] + [
    n for n in dir() if n.startswith("ENV_")
]
