"""Admission control: decide *cheaply*, before any expensive work.

Order of checks, each with an honest ``Retry-After``:

1. lifecycle — a draining server admits nothing (503);
2. in-flight cap — backpressure on concurrency (429);
3. token bucket — backpressure on sustained rate (429);
4. circuit breaker — a query whose kernel is quarantined is rejected
   (503) with the breaker's own re-probe ETA, *before compiling
   anything*: the prepared query carries its kernel cache key, and the
   breaker is keyed by exactly that key.

Under ``REPRO_SERVE_DEGRADE=fallback`` check 4 is skipped: the query
is admitted and ``Kernel.run`` transparently serves the pure-Python
twin — slower, memory-safe answers instead of 503s.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Optional

from repro.serve.config import ServeConfig
from repro.serve.query import PreparedQuery


@dataclass(frozen=True)
class Rejection:
    """A shed request: HTTP status, reason tag, and Retry-After."""

    status: int
    reason: str
    retry_after: float


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/s, ``burst`` capacity.

    ``try_acquire`` never blocks — load shedding answers *now*; the
    returned hint is how long until a token would have been available.
    A rate of 0 disables the limiter.
    """

    def __init__(self, rate: float, burst: int) -> None:
        self.rate = float(rate)
        self.burst = max(1, int(burst))
        self._tokens = float(self.burst)
        self._stamp = time.monotonic()
        self._lock = threading.Lock()

    def try_acquire(self) -> Optional[float]:
        """None when admitted; else seconds until the next token."""
        if self.rate <= 0:
            return None
        with self._lock:
            now = time.monotonic()
            self._tokens = min(
                float(self.burst),
                self._tokens + (now - self._stamp) * self.rate,
            )
            self._stamp = now
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return None
            return (1.0 - self._tokens) / self.rate


class AdmissionController:
    """The per-request gate; owns the bucket, consults the breaker."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.bucket = TokenBucket(config.qps, config.burst)

    def admit(
        self, prepared: PreparedQuery, inflight: int
    ) -> Optional[Rejection]:
        """None to admit, else the :class:`Rejection` to serve."""
        cfg = self.config
        if inflight >= cfg.max_inflight:
            # in-flight work clears at roughly deadline/inflight pace;
            # a quarter-deadline hint spreads the retries out
            return Rejection(
                429, "overloaded: in-flight cap reached",
                max(0.1, cfg.deadline / 4.0),
            )
        wait = self.bucket.try_acquire()
        if wait is not None:
            return Rejection(429, "rate limited", max(0.05, wait))
        if (
            prepared.kernel_key is not None
            and cfg.degrade == "reject"
        ):
            from repro.runtime.breaker import breaker

            if breaker.is_open(prepared.kernel_key):
                eta = breaker.retry_after(prepared.kernel_key) or 0.0
                return Rejection(
                    503,
                    "kernel quarantined by circuit breaker",
                    max(0.5, eta),
                )
        return None


__all__ = ["AdmissionController", "Rejection", "TokenBucket"]
