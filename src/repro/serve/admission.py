"""Admission control: decide *cheaply*, before any expensive work.

Order of checks, each with an honest ``Retry-After``:

1. lifecycle — a draining server admits nothing (503);
2. in-flight cap — backpressure on concurrency (429);
3. token bucket — backpressure on sustained rate (429);
4. cost prediction — a query the autotuner predicts to run far past
   its own deadline is rejected (429) up front instead of being
   admitted, executed, and killed at the deadline anyway.  Applied
   only when the prediction rests on a *measured* calibration profile
   (unmeasured default constants are not evidence to shed load on)
   and only beyond a generous 3× margin;
5. memory governor — under ``REPRO_MEM_BUDGET_MB``, a query whose
   cost-model result footprint exceeds the budget is rejected (503)
   with a one-deadline Retry-After, or — under
   ``REPRO_SERVE_DEGRADE=spill`` — admitted with durable execution
   forced, so its partials spill to the job journal instead of RAM;
6. circuit breaker — a query whose kernel is quarantined is rejected
   (503) with the breaker's own re-probe ETA, *before compiling
   anything*: the prepared query carries its kernel cache key, and the
   breaker is keyed by exactly that key.

Under ``REPRO_SERVE_DEGRADE=fallback`` check 4 is skipped: the query
is admitted and ``Kernel.run`` transparently serves the pure-Python
twin — slower, memory-safe answers instead of 503s.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Optional

from repro.serve.config import ServeConfig
from repro.serve.query import PreparedQuery


@dataclass(frozen=True)
class Rejection:
    """A shed request: HTTP status, reason tag, and Retry-After."""

    status: int
    reason: str
    retry_after: float


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/s, ``burst`` capacity.

    ``try_acquire`` never blocks — load shedding answers *now*; the
    returned hint is how long until a token would have been available.
    A rate of 0 disables the limiter.
    """

    def __init__(self, rate: float, burst: int) -> None:
        self.rate = float(rate)
        self.burst = max(1, int(burst))
        self._tokens = float(self.burst)
        self._stamp = time.monotonic()
        self._lock = threading.Lock()

    def try_acquire(self) -> Optional[float]:
        """None when admitted; else seconds until the next token."""
        if self.rate <= 0:
            return None
        with self._lock:
            now = time.monotonic()
            self._tokens = min(
                float(self.burst),
                self._tokens + (now - self._stamp) * self.rate,
            )
            self._stamp = now
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return None
            return (1.0 - self._tokens) / self.rate


class AdmissionController:
    """The per-request gate; owns the bucket, consults the breaker."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.bucket = TokenBucket(config.qps, config.burst)

    def admit(
        self, prepared: PreparedQuery, inflight: int
    ) -> Optional[Rejection]:
        """None to admit, else the :class:`Rejection` to serve."""
        cfg = self.config
        if inflight >= cfg.max_inflight:
            # in-flight work clears at roughly deadline/inflight pace;
            # a quarter-deadline hint spreads the retries out
            return Rejection(
                429, "overloaded: in-flight cap reached",
                max(0.1, cfg.deadline / 4.0),
            )
        wait = self.bucket.try_acquire()
        if wait is not None:
            return Rejection(429, "rate limited", max(0.05, wait))
        rejection = self._reject_hopeless(prepared)
        if rejection is not None:
            return rejection
        rejection = self._govern_memory(prepared)
        if rejection is not None:
            return rejection
        if (
            prepared.kernel_key is not None
            and cfg.degrade in ("reject", "spill")
        ):
            from repro.runtime.breaker import breaker

            if breaker.is_open(prepared.kernel_key):
                eta = breaker.retry_after(prepared.kernel_key) or 0.0
                return Rejection(
                    503,
                    "kernel quarantined by circuit breaker",
                    max(0.5, eta),
                )
        return None

    #: reject only when predicted runtime exceeds this multiple of the
    #: effective deadline — the model ranks plans well but its absolute
    #: seconds deserve a wide error bar
    PREDICTION_MARGIN = 3.0

    def _govern_memory(
        self, prepared: PreparedQuery
    ) -> Optional[Rejection]:
        """Memory-aware admission under ``REPRO_MEM_BUDGET_MB``.

        A query whose cost-model footprint exceeds the budget is shed
        with 503 (the honest Retry-After is one deadline: memory frees
        as in-flight work completes) — unless the operator chose
        ``REPRO_SERVE_DEGRADE=spill``, in which case the query is
        admitted but *forced durable*: its partials spill to the job
        journal and the merge streams, keeping residency bounded.  No
        budget, or no footprint estimate, admits normally.
        """
        from repro.compiler import resilience

        budget_mb = resilience.mem_budget_mb()
        if budget_mb is None or prepared.footprint_bytes is None:
            return None
        if prepared.footprint_bytes <= budget_mb * 1024 * 1024:
            return None
        if self.config.degrade == "spill":
            prepared.durable = True
            return None
        return Rejection(
            503,
            f"predicted result footprint "
            f"{prepared.footprint_bytes / 1048576.0:.1f}MiB exceeds the "
            f"{budget_mb:.0f}MiB memory budget",
            max(1.0, self.config.deadline),
        )

    def _reject_hopeless(
        self, prepared: PreparedQuery
    ) -> Optional[Rejection]:
        """Shed a query whose *tuned best plan* still cannot finish.

        Requires a measured calibration profile: the tuner stamps
        ``predicted_s`` from real per-unit throughput only then, and
        guessing at load shedding is worse than not shedding."""
        predicted = prepared.predicted_s
        if predicted is None or predicted <= 0:
            return None
        try:
            from repro.autotune import get_profile

            if not get_profile().measured:
                return None
        except Exception:
            return None
        deadline = self.config.deadline
        if prepared.deadline_ms is not None:
            deadline = min(deadline, prepared.deadline_ms / 1e3)
        if predicted > deadline * self.PREDICTION_MARGIN:
            return Rejection(
                429,
                f"predicted runtime {predicted:.1f}s exceeds the "
                f"{deadline:.1f}s deadline",
                max(1.0, deadline),
            )
        return None


__all__ = ["AdmissionController", "Rejection", "TokenBucket"]
