"""Minimal HTTP/1.1 plumbing over asyncio streams — stdlib only.

Request parsing, fixed responses, and chunked NDJSON result streaming.
The streaming path is where robustness lives: every chunk write is
drained under a per-chunk timeout (``REPRO_SERVE_WRITE_TIMEOUT``), so
a client that stops reading mid-result costs the server one small
buffer and a closed socket — never a parked worker thread.  Large
tensor results stream as NDJSON frames (a header line, entry pages, a
terminal ``{"done": true}`` line); a stream cut short by drain or
client slowness carries an explicit partial-result marker as its last
line whenever the socket still accepts it.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, AsyncIterator, Dict, List, Mapping, Optional, Tuple

REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout",
    413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: entries per NDJSON frame when streaming a tensor result
PAGE = 1024


class HttpError(Exception):
    """A malformed or oversized request (maps straight to a status)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class SlowClientError(Exception):
    """The peer stopped reading; the connection was abandoned."""


async def read_request(
    reader: asyncio.StreamReader, max_body: int, timeout: float
) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
    """Parse one request; None on a cleanly closed idle connection."""
    try:
        line = await asyncio.wait_for(reader.readline(), timeout=timeout)
    except asyncio.TimeoutError:
        return None
    if not line:
        return None
    try:
        method, target, _version = line.decode("latin-1").split()
    except ValueError:
        raise HttpError(400, "malformed request line") from None
    headers: Dict[str, str] = {}
    while True:
        line = await asyncio.wait_for(reader.readline(), timeout=timeout)
        if line in (b"\r\n", b"\n", b""):
            break
        try:
            name, _, value = line.decode("latin-1").partition(":")
        except UnicodeDecodeError:
            raise HttpError(400, "malformed header") from None
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or 0)
    if length > max_body:
        raise HttpError(413, f"body exceeds {max_body} bytes")
    body = b""
    if length:
        body = await asyncio.wait_for(
            reader.readexactly(length), timeout=timeout)
    return method.upper(), target, headers, body


def _head(
    status: int, headers: Mapping[str, Any], length: Optional[int]
) -> bytes:
    lines = [f"HTTP/1.1 {status} {REASONS.get(status, 'Unknown')}"]
    for name, value in headers.items():
        lines.append(f"{name}: {value}")
    if length is not None:
        lines.append(f"Content-Length: {length}")
    lines.append("\r\n")
    return "\r\n".join(lines).encode("latin-1")


async def send_json(
    writer: asyncio.StreamWriter,
    status: int,
    payload: Mapping[str, Any],
    *,
    retry_after: Optional[float] = None,
    close: bool = False,
) -> None:
    """One fixed JSON response (Content-Length framing)."""
    body = (json.dumps(payload) + "\n").encode()
    headers: Dict[str, Any] = {"Content-Type": "application/json"}
    if retry_after is not None:
        # integral seconds, rounded up — 0 would invite an instant retry
        headers["Retry-After"] = max(1, int(retry_after + 0.999))
    if close:
        headers["Connection"] = "close"
    writer.write(_head(status, headers, len(body)) + body)
    await writer.drain()


async def stream_result(
    writer: asyncio.StreamWriter,
    result: Dict[str, Any],
    meta: Dict[str, Any],
    write_timeout: float,
) -> None:
    """Stream a large tensor result as chunked NDJSON frames.

    Frame sequence: a header object (everything but the entries), then
    pages of ``{"entries": [...]}``, then ``{"done": true, ...meta}``.
    Each frame is one HTTP chunk, drained under ``write_timeout``.
    """
    headers = {
        "Content-Type": "application/x-ndjson",
        "Transfer-Encoding": "chunked",
        "Connection": "close",
    }
    writer.write(_head(200, headers, None))
    entries: List[Any] = result.get("entries", [])
    head = {k: v for k, v in result.items() if k != "entries"}
    head["streaming"] = True
    try:
        await _chunk(writer, head, write_timeout)
        for lo in range(0, len(entries), PAGE):
            await _chunk(
                writer, {"entries": entries[lo:lo + PAGE]}, write_timeout)
        await _chunk(writer, {"done": True, **meta}, write_timeout)
        writer.write(b"0\r\n\r\n")
        await asyncio.wait_for(writer.drain(), timeout=write_timeout)
    except (asyncio.TimeoutError, ConnectionError, OSError) as exc:
        raise SlowClientError(str(exc)) from exc


async def send_partial_marker(
    writer: asyncio.StreamWriter, reason: str, write_timeout: float
) -> None:
    """Best-effort terminal frame for a stream cut short: the client
    sees ``{"partial": true}`` instead of a bare FIN."""
    try:
        await _chunk(
            writer, {"partial": True, "done": False, "error": reason},
            write_timeout,
        )
        writer.write(b"0\r\n\r\n")
        await asyncio.wait_for(writer.drain(), timeout=write_timeout)
    except (asyncio.TimeoutError, ConnectionError, OSError):
        pass


async def _chunk(
    writer: asyncio.StreamWriter, obj: Mapping[str, Any], timeout: float
) -> None:
    data = (json.dumps(obj) + "\n").encode()
    writer.write(f"{len(data):x}\r\n".encode() + data + b"\r\n")
    await asyncio.wait_for(writer.drain(), timeout=timeout)


__all__ = [
    "HttpError",
    "SlowClientError",
    "read_request",
    "send_json",
    "stream_result",
    "send_partial_marker",
    "PAGE",
]
