"""``python -m repro.serve`` — boot the contraction server.

Configuration comes from the ``REPRO_SERVE_*`` environment (strictly
parsed; a typo refuses to boot) with ``--host``/``--port`` overrides
for convenience.  Prints ``REPRO_SERVE_READY host:port`` once the
socket is listening, runs until SIGTERM/SIGINT, drains, and exits 0 on
a clean drain, 1 on a forced one.
"""

from __future__ import annotations

import argparse
import asyncio
import sys

from repro.errors import ConfigError
from repro.serve.app import serve_forever
from repro.serve.config import ServeConfig


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.serve")
    parser.add_argument("--host", default=None)
    parser.add_argument("--port", type=int, default=None)
    args = parser.parse_args(argv)
    try:
        config = ServeConfig.from_env()
    except ConfigError as exc:
        print(f"repro.serve: {exc}", file=sys.stderr)
        return 2
    if args.host is not None:
        config.host = args.host
    if args.port is not None:
        config.port = args.port
    clean = asyncio.run(serve_forever(config))
    return 0 if clean else 1


if __name__ == "__main__":
    sys.exit(main())
