"""Server lifecycle: readiness, in-flight accounting, graceful drain.

The state machine is deliberately small::

    STARTING ──listening──► READY ──SIGTERM/stop()──► DRAINING ──► STOPPED

``/readyz`` answers 200 only in READY; a load balancer stops routing
the moment draining begins.  Draining admits nothing new, lets
in-flight requests finish up to the drain deadline, then cancels the
stragglers (their connections receive a partial-result marker, not a
silent hangup).  Teardown then reclaims every runtime resource — the
executor, the worker pool, and its shared-memory segments — so a
drained server leaves no processes and no ``/dev/shm`` litter behind.
"""

from __future__ import annotations

import asyncio
import time
from typing import Dict

from repro.compiler.resilience import logger

STARTING, READY, DRAINING, STOPPED = (
    "starting", "ready", "draining", "stopped",
)


class Lifecycle:
    """Shared state between the accept loop, handlers, and signals."""

    def __init__(self) -> None:
        self.state = STARTING
        self.started_at = time.monotonic()
        self.inflight = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self.counters: Dict[str, int] = {
            "requests": 0,
            "admitted": 0,
            "rejected": 0,
            "completed": 0,
            "failed": 0,
            "timed_out": 0,
            "cancelled": 0,
        }

    # -- state ---------------------------------------------------------
    @property
    def ready(self) -> bool:
        return self.state == READY

    @property
    def draining(self) -> bool:
        return self.state in (DRAINING, STOPPED)

    def mark_ready(self) -> None:
        self.state = READY

    # -- in-flight accounting -----------------------------------------
    def request_started(self) -> None:
        self.inflight += 1
        self._idle.clear()

    def request_finished(self) -> None:
        self.inflight -= 1
        if self.inflight <= 0:
            self._idle.set()

    def bump(self, counter: str) -> None:
        self.counters[counter] = self.counters.get(counter, 0) + 1

    # -- drain ---------------------------------------------------------
    async def drain(self, deadline: float) -> bool:
        """Stop admitting, wait for in-flight work up to ``deadline``
        seconds.  Returns True when everything finished in time; False
        when stragglers had to be abandoned to cancellation."""
        self.state = DRAINING
        logger.warning(
            "serve: draining — %d request(s) in flight, budget %.1fs",
            self.inflight, deadline,
        )
        try:
            await asyncio.wait_for(self._idle.wait(), timeout=deadline)
            clean = True
        except asyncio.TimeoutError:
            clean = False
            logger.warning(
                "serve: drain deadline elapsed with %d request(s) still "
                "in flight; cancelling", self.inflight,
            )
        self.state = STOPPED
        return clean


__all__ = ["Lifecycle", "STARTING", "READY", "DRAINING", "STOPPED"]
