"""Bounded retry with exponential backoff + jitter — transient only.

The retry loop consults the error taxonomy's
:func:`~repro.errors.is_retryable` classification instead of
pattern-matching exception types: a deterministic failure (shape
mismatch, source-level :class:`~repro.errors.CompileError`, capacity
exhaustion) is *never* replayed — the same inputs produce the same
failure, and a replay only burns the caller's deadline budget.

Two extra bounds on top of the classification:

* a :class:`~repro.errors.KernelCrashError` is granted exactly **one**
  replay regardless of the configured retry count — a crash may be
  environmental (memory pressure, a poisoned pool slot already
  replaced), but a kernel that crashes twice is deterministic in all
  but name and belongs to the circuit breaker;
* every sleep is checked against the request budget — when the next
  backoff would outlive the deadline, the last error surfaces now
  instead of after a pointless wait.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, TypeVar

from repro.compiler.resilience import logger
from repro.errors import KernelCrashError, is_retryable
from repro.serve.deadline import Budget

T = TypeVar("T")

#: backoff ceiling between attempts, seconds
MAX_DELAY = 2.0


@dataclass(frozen=True)
class RetryPolicy:
    """``retries`` extra attempts, exponential base delay, full jitter."""

    retries: int = 2
    base: float = 0.05

    def delay(self, attempt: int, rng: random.Random) -> float:
        """Full-jitter backoff for the given 0-based failed attempt:
        uniform in ``[0, base · 2^attempt]``, capped at
        :data:`MAX_DELAY`."""
        ceiling = min(MAX_DELAY, self.base * (2.0 ** attempt))
        return rng.uniform(0.0, ceiling)


def run_with_retry(
    fn: Callable[[], T],
    *,
    budget: Budget,
    policy: RetryPolicy,
    rng: random.Random,
    what: str = "request",
) -> T:
    """Call ``fn`` until it succeeds, retries are exhausted, the error
    is deterministic, or the budget cannot afford another attempt.

    Runs synchronously (inside an executor thread); the sleeps are real
    ``time.sleep`` calls charged to the request's own budget.
    """
    crashes = 0
    for attempt in range(policy.retries + 1):
        try:
            return fn()
        except Exception as exc:
            if not is_retryable(exc):
                raise
            if isinstance(exc, KernelCrashError):
                crashes += 1
                if crashes > 1:
                    # the one replay on a fresh worker already happened;
                    # a second crash is deterministic in all but name
                    raise
            if attempt >= policy.retries:
                raise
            delay = policy.delay(attempt, rng)
            if budget.remaining() <= delay:
                raise
            logger.warning(
                "%s: attempt %d failed (%s: %s); retrying in %.0f ms",
                what, attempt + 1, type(exc).__name__, exc, delay * 1e3,
            )
            time.sleep(delay)
    raise AssertionError("unreachable")  # pragma: no cover


__all__ = ["RetryPolicy", "run_with_retry", "MAX_DELAY"]
