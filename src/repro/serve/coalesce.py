"""Single-flight coalescing and micro-batching of compatible queries.

Two collapsing layers between admission and execution:

* :class:`SingleFlight` — *identical* queries (same kernel **and** same
  operand content, per ``PreparedQuery.coalesce_key``) share one
  execution: the first arrival computes, everyone else awaits its
  future.  A thundering herd of the same contraction costs one compile
  and one run.
* :class:`Batcher` — *compatible* queries (same kernel, same capacity,
  different operands, per ``batch_key``) arriving within the batch
  window fold into a single ``Kernel.run_batch`` call: one build-cache
  hit and one executor round for N requests.  Batched items rely on
  ``run_batch``'s own per-item failover rather than the server retry
  loop — a deliberate trade: the batch shares one dispatch, so one
  item's deterministic failure must not replay its neighbors.
"""

from __future__ import annotations

import asyncio
from typing import Any, Awaitable, Callable, Dict, List, Optional, Tuple

from repro.compiler.resilience import logger
from repro.serve.deadline import Budget
from repro.serve.query import PreparedQuery, _encode_result


class SingleFlight:
    """Coalesce concurrent identical calls onto one in-flight future."""

    def __init__(self) -> None:
        self._inflight: Dict[str, asyncio.Future] = {}
        self.coalesced = 0

    async def run(
        self, key: str, thunk: Callable[[], Awaitable[Any]]
    ) -> Tuple[Any, bool]:
        """Returns ``(result, led)``; ``led`` is False for followers
        that rode an already-in-flight execution."""
        existing = self._inflight.get(key)
        if existing is not None:
            self.coalesced += 1
            return await asyncio.shield(existing), False
        fut: asyncio.Future = asyncio.get_running_loop().create_future()
        self._inflight[key] = fut
        try:
            result = await thunk()
        except BaseException as exc:
            if not fut.done():
                fut.set_exception(exc)
                fut.exception()  # mark retrieved; followers re-raise it
            raise
        else:
            if not fut.done():
                fut.set_result(result)
            return result, True
        finally:
            self._inflight.pop(key, None)


class _Group:
    """One forming batch: items joined before the window closed."""

    __slots__ = ("items", "timer", "flushed")

    def __init__(self) -> None:
        self.items: List[Tuple[PreparedQuery, Budget, asyncio.Future]] = []
        self.timer: Optional[asyncio.TimerHandle] = None
        self.flushed = False


class Batcher:
    """Fold compatible queries into ``Kernel.run_batch`` dispatches."""

    def __init__(
        self,
        window: float,
        max_items: int,
        run_in_executor: Callable[..., Awaitable[Any]],
        fault_hook=None,
    ) -> None:
        self.window = window
        self.max_items = max(1, max_items)
        self._run_in_executor = run_in_executor
        self._fault_hook = fault_hook
        self._groups: Dict[str, _Group] = {}
        self.batches = 0
        self.batched_items = 0

    async def submit(self, prepared: PreparedQuery, budget: Budget) -> Any:
        """Join (or open) the batch for this query's key; resolves to
        this item's encoded result."""
        key = prepared.batch_key
        assert key is not None
        loop = asyncio.get_running_loop()
        fut: asyncio.Future = loop.create_future()
        group = self._groups.get(key)
        if group is None or group.flushed:
            group = _Group()
            self._groups[key] = group
            group.timer = loop.call_later(
                self.window, self._flush_soon, key, group
            )
        group.items.append((prepared, budget, fut))
        if len(group.items) >= self.max_items:
            self._flush_soon(key, group)
        return await fut

    def _flush_soon(self, key: str, group: _Group) -> None:
        if group.flushed:
            return
        group.flushed = True
        if group.timer is not None:
            group.timer.cancel()
        if self._groups.get(key) is group:
            del self._groups[key]
        asyncio.get_running_loop().create_task(self._flush(group))

    async def _flush(self, group: _Group) -> None:
        items = group.items
        self.batches += 1
        self.batched_items += len(items)
        try:
            results = await self._run_in_executor(self._execute, items)
        except BaseException as exc:
            for _, _, fut in items:
                if not fut.done():
                    fut.set_exception(exc)
                    fut.exception()
            return
        for (_, _, fut), result in zip(items, results):
            if not fut.done():
                fut.set_result(result)

    def _execute(self, items) -> List[Any]:
        """Blocking batch dispatch (executor thread)."""
        leader, _, _ = items[0]
        kernel = leader.build(self._fault_hook)
        # the batch can only run as long as its most impatient member
        deadline = min(b.remaining() for _, b, _ in items)
        runs = [p.plan.inputs for p, _, _ in items]
        if len(items) > 1:
            logger.info(
                "serve: batched %d compatible queries for kernel %r",
                len(items), kernel.name,
            )
        outs = kernel.run_batch(
            runs, capacity=leader.capacity, auto_grow=True,
            deadline=max(0.001, deadline),
        )
        return [_encode_result(out) for out in outs]


__all__ = ["SingleFlight", "Batcher"]
