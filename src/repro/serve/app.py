"""The asyncio HTTP server: admission → coalesce → execute → respond.

One event loop owns admission, coalescing, and all socket I/O; the
blocking work (query canonicalization, kernel builds, supervised runs)
happens on a bounded thread-pool executor, and the supervised child
processes under it enforce the real deadlines.  The request path::

    POST /query
      │ parse JSON, canonicalize (executor)        → 400 on bad input
      │ admission: drain / in-flight / rate / breaker
      │                                            → 429/503 + Retry-After
      │ single-flight coalesce (identical queries share one run)
      │ micro-batch window (compatible queries share one dispatch)
      │ retry loop: transient errors only, budget-charged backoff
      │ Kernel.run(..., deadline=budget.remaining())
      ▼
    200 JSON · 200 chunked NDJSON stream · 504 deadline · 500 typed error

Error mapping is taxonomy-driven: client mistakes are 400s, shed load
is 429/503 with an honest ``Retry-After``, a missed deadline is 504,
and everything else surfaces as a typed 500 naming the error class.
"""

from __future__ import annotations

import asyncio
import json
import random
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, Optional, Set

from repro.compiler.resilience import logger
from repro.errors import (
    KernelTimeoutError,
    ReproError,
    ShapeError,
    StreamPropertyError,
)
from repro.serve.admission import AdmissionController
from repro.serve.coalesce import Batcher, SingleFlight
from repro.serve.config import ServeConfig
from repro.serve.deadline import request_budget
from repro.serve.lifecycle import Lifecycle
from repro.serve.query import QueryError, prepare_request
from repro.serve.retrying import RetryPolicy, run_with_retry
from repro.serve.stream import (
    HttpError,
    SlowClientError,
    read_request,
    send_json,
    send_partial_marker,
    stream_result,
)

def _validation_body(exc: BaseException) -> Dict[str, Any]:
    """The 400 response body for a request-validation failure.

    A :class:`StreamPropertyError` carries blame records naming the
    offending AST node; its :meth:`diagnostic` *is* the body.  Other
    validation errors keep the plain ``{error, type}`` shape.
    """
    if isinstance(exc, StreamPropertyError):
        return exc.diagnostic()
    return {"error": str(exc), "type": type(exc).__name__}


#: idle keep-alive read budget per request, seconds
IDLE_TIMEOUT = 30.0
#: extra slack the event loop grants past the request budget before it
#: abandons the executor future (the supervised kill should fire first)
DEADLINE_GRACE = 1.0


class ContractionServer:
    """One serving instance: sockets, executor, and resilience state."""

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config if config is not None else ServeConfig.from_env()
        self.lifecycle = Lifecycle()
        self.admission = AdmissionController(self.config)
        self.single_flight = SingleFlight()
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.workers, thread_name_prefix="serve",
        )
        self.batcher: Optional[Batcher] = None
        if self.config.batch_window > 0:
            self.batcher = Batcher(
                self.config.batch_window, self.config.batch_max,
                self._in_executor, fault_hook=self.config.fault_hook,
            )
        self._policy = RetryPolicy(self.config.retries, self.config.retry_base)
        self._rng = random.Random()
        self._server: Optional[asyncio.AbstractServer] = None
        self._query_tasks: Set[asyncio.Task] = set()
        self._latencies: deque = deque(maxlen=8192)
        self.port: Optional[int] = None

    async def _in_executor(self, fn, *args):
        return await asyncio.get_running_loop().run_in_executor(
            self._executor, fn, *args)

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> None:
        try:
            # reclaim journals of jobs abandoned past their TTL; a crash
            # here must never stop the server from booting
            from repro.runtime.jobs import gc_jobs

            swept = gc_jobs()
            if swept:
                logger.warning(
                    "serve: swept %d stale job journal(s)", len(swept))
        except Exception as exc:
            logger.warning("serve: job-journal sweep failed (%s)", exc)
        self._server = await asyncio.start_server(
            self._client, self.config.host, self.config.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self.lifecycle.mark_ready()
        logger.warning(
            "serve: listening on %s:%d (deadline=%.1fs, max_inflight=%d, "
            "qps=%s, degrade=%s)",
            self.config.host, self.port, self.config.deadline,
            self.config.max_inflight,
            self.config.qps or "unlimited", self.config.degrade,
        )

    async def stop(self) -> bool:
        """Graceful shutdown: stop admitting, drain, cancel stragglers,
        reclaim every runtime resource.  True on a clean drain."""
        if self._server is not None:
            self._server.close()
        clean = await self.lifecycle.drain(self.config.drain)
        if not clean:
            for task in list(self._query_tasks):
                task.cancel()
            await asyncio.gather(*self._query_tasks, return_exceptions=True)
        if self._server is not None:
            await self._server.wait_closed()
        self._executor.shutdown(wait=True, cancel_futures=True)
        from repro.runtime import pool as pool_mod
        from repro.runtime.executor import shutdown_shared_executors

        pool_mod.shutdown_shared_pool()
        shutdown_shared_executors()
        logger.warning("serve: stopped (%s drain)",
                       "clean" if clean else "forced")
        return clean

    # -- connection loop ----------------------------------------------
    async def _client(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                request = await read_request(
                    reader, self.config.max_body, IDLE_TIMEOUT)
                if request is None:
                    break
                keep_alive = await self._dispatch(writer, *request)
                if not keep_alive:
                    break
        except HttpError as exc:
            try:
                await send_json(
                    writer, exc.status, {"error": str(exc)}, close=True)
            except (ConnectionError, OSError):
                pass
        except (SlowClientError, ConnectionError,
                asyncio.IncompleteReadError, asyncio.TimeoutError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(self, writer, method: str, target: str,
                        headers: Dict[str, str], body: bytes) -> bool:
        target = target.split("?", 1)[0]
        if method == "GET":
            if target == "/healthz":
                await send_json(writer, 200, {"ok": True})
                return True
            if target == "/readyz":
                if self.lifecycle.ready:
                    await send_json(writer, 200, {"ready": True})
                    return True
                await send_json(
                    writer, 503,
                    {"ready": False, "state": self.lifecycle.state},
                    retry_after=1.0, close=True,
                )
                return False
            if target == "/stats":
                await send_json(writer, 200, self._stats())
                return True
            await send_json(writer, 404, {"error": f"no route {target}"})
            return True
        if method != "POST" or target != "/query":
            await send_json(
                writer, 405, {"error": f"{method} {target} unsupported"})
            return True
        return await self._query(writer, body)

    # -- the query path ------------------------------------------------
    async def _query(self, writer, body: bytes) -> bool:
        self.lifecycle.bump("requests")
        if self.lifecycle.draining:
            self.lifecycle.bump("rejected")
            await send_json(
                writer, 503, {"error": "server is draining"},
                retry_after=self.config.drain, close=True,
            )
            return False
        try:
            doc = json.loads(body.decode() or "null")
        except (ValueError, UnicodeDecodeError) as exc:
            await send_json(writer, 400, {"error": f"bad JSON: {exc}"})
            return True
        try:
            prepared = await self._in_executor(
                prepare_request, doc, self.config.tune)
        except (QueryError, ShapeError, StreamPropertyError, ValueError) as exc:
            await send_json(writer, 400, _validation_body(exc))
            return True

        rejection = self.admission.admit(prepared, self.lifecycle.inflight)
        if rejection is not None:
            self.lifecycle.bump("rejected")
            await send_json(
                writer, rejection.status, {"error": rejection.reason},
                retry_after=rejection.retry_after,
            )
            return True

        self.lifecycle.bump("admitted")
        budget = request_budget(prepared.deadline_ms, self.config.deadline)
        self.lifecycle.request_started()
        task = asyncio.current_task()
        self._query_tasks.add(task)
        t0 = time.monotonic()
        try:
            result, led = await self.single_flight.run(
                prepared.coalesce_key,
                lambda: self._execute(prepared, budget),
            )
        except asyncio.CancelledError:
            # drain-deadline cancellation: tell the client explicitly.
            # A durable query's journal survives the cancel, so the
            # marker carries the job_id the client can resume under.
            self.lifecycle.bump("cancelled")
            await send_partial_marker_or_json(
                writer, "cancelled during server drain",
                self.config.write_timeout,
                extra=self._job_fields(prepared),
            )
            return False
        except (KernelTimeoutError, asyncio.TimeoutError):
            self.lifecycle.bump("timed_out")
            await send_json(
                writer, 504,
                {"error": "deadline exceeded", "budget_s": budget.total},
                retry_after=self.config.deadline,
            )
            return True
        except (QueryError, ShapeError, StreamPropertyError) as exc:
            # validation failures that only surface once the kernel is
            # actually built (workspace shape checks, deferred property
            # verdicts) are still the *request's* fault — a 400 with the
            # diagnostic, never a generic 500
            self.lifecycle.bump("failed")
            await send_json(writer, 400, _validation_body(exc))
            return True
        except ReproError as exc:
            self.lifecycle.bump("failed")
            await send_json(
                writer, 500,
                {"error": str(exc), "type": type(exc).__name__},
            )
            return True
        finally:
            self._query_tasks.discard(task)
            self.lifecycle.request_finished()

        elapsed = time.monotonic() - t0
        self._latencies.append(elapsed)
        self.lifecycle.bump("completed")
        meta = {
            "elapsed_ms": round(elapsed * 1e3, 3),
            "coalesced": not led,
            "kernel_key": prepared.kernel_key,
        }
        if prepared.tune_meta is not None:
            meta["tune"] = prepared.tune_meta
        meta.update(self._job_fields(prepared))
        if isinstance(doc, dict) and doc.get("explain"):
            meta["explain"] = prepared.explanation
        if len(result.get("entries", ())) > self.config.stream_threshold:
            try:
                await stream_result(
                    writer, result, meta, self.config.write_timeout)
            except SlowClientError:
                logger.warning(
                    "serve: client too slow mid-stream; connection dropped")
                raise
            return False
        await send_json(writer, 200, {"result": result, "meta": meta})
        return True

    @staticmethod
    def _job_fields(prepared) -> Dict[str, Any]:
        """Durable-job identity for response meta and drain markers."""
        job = getattr(prepared, "job_meta", None) or {}
        fields: Dict[str, Any] = {}
        if job.get("job_id"):
            fields["job_id"] = job["job_id"]
            fields["resumed_shards"] = job.get("resumed_shards", 0)
            fields["spills"] = job.get("spills", 0)
        return fields

    async def _execute(self, prepared, budget) -> Dict[str, Any]:
        """Dispatch one admitted, coalesce-leading query."""
        if self.batcher is not None and prepared.batch_key is not None:
            coro = self.batcher.submit(prepared, budget)
        else:
            coro = self._in_executor(self._execute_sync, prepared, budget)
        return await asyncio.wait_for(
            coro, timeout=budget.remaining() + DEADLINE_GRACE)

    def _execute_sync(self, prepared, budget) -> Dict[str, Any]:
        """Blocking execution with the bounded retry loop (executor)."""
        return run_with_retry(
            lambda: prepared.execute(budget, self.config.fault_hook),
            budget=budget, policy=self._policy, rng=self._rng,
            what=f"query {prepared.coalesce_key[:16]}",
        )

    # -- observability -------------------------------------------------
    def _stats(self) -> Dict[str, Any]:
        from repro.runtime.breaker import breaker

        lat = sorted(self._latencies)

        def pct(p: float) -> Optional[float]:
            if not lat:
                return None
            return round(lat[min(len(lat) - 1, int(p * len(lat)))] * 1e3, 3)

        return {
            "state": self.lifecycle.state,
            "uptime_s": round(
                time.monotonic() - self.lifecycle.started_at, 3),
            "inflight": self.lifecycle.inflight,
            "counters": dict(self.lifecycle.counters),
            "coalesced": self.single_flight.coalesced,
            "batches": self.batcher.batches if self.batcher else 0,
            "batched_items":
                self.batcher.batched_items if self.batcher else 0,
            "latency_ms": {"p50": pct(0.50), "p90": pct(0.90),
                           "p99": pct(0.99)},
            "breaker": breaker.snapshot(),
        }


async def send_partial_marker_or_json(
    writer, reason: str, write_timeout: float,
    extra: Optional[Dict[str, Any]] = None,
) -> None:
    """Drain-cancellation notice: a JSON 503 with a partial marker (the
    response had not started streaming, so a full status line is still
    possible).  ``extra`` fields (e.g. a durable ``job_id`` the client
    can resume under) are merged into the body."""
    body: Dict[str, Any] = {"error": reason, "partial": True}
    if extra:
        body.update(extra)
    try:
        await send_json(writer, 503, body, retry_after=2.0, close=True)
    except (ConnectionError, OSError, asyncio.TimeoutError):
        await send_partial_marker(writer, reason, write_timeout)


async def serve_forever(config: Optional[ServeConfig] = None) -> bool:
    """Run until SIGTERM/SIGINT, then drain gracefully."""
    import signal

    server = ContractionServer(config)
    await server.start()
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    for sig in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(sig, stop.set)
    # machine-readable readiness line for process supervisors and CI
    print(f"REPRO_SERVE_READY {server.config.host}:{server.port}",
          flush=True)
    await stop.wait()
    return await server.stop()


__all__ = ["ContractionServer", "serve_forever"]
