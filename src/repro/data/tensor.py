"""Level-format tensor storage.

The construction algorithm is the standard one: sort the coordinates
lexicographically in level order, then derive each level's pos/crd
arrays by run detection — fully vectorized with numpy.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.semirings.base import Semiring
from repro.semirings.instances import FLOAT

_FORMATS = ("dense", "sparse")


class Tensor:
    """An n-dimensional tensor stored by per-level formats.

    Attributes
    ----------
    attrs:
        Attribute name per level, outermost first — the tensor's level
        order must match the global attribute ordering used by a kernel.
    formats:
        ``"dense"`` or ``"sparse"`` per level.
    dims:
        Dimension per level (needed by dense levels; informative for
        sparse ones).
    pos, crd:
        Per sparse level ``k``: ``pos[k]`` (int64, one entry per parent
        slot + 1) and ``crd[k]`` (int64).
    vals:
        The value array (one entry per leaf slot).
    """

    def __init__(
        self,
        attrs: Sequence[str],
        formats: Sequence[str],
        dims: Sequence[int],
        pos: Mapping[int, np.ndarray],
        crd: Mapping[int, np.ndarray],
        vals: np.ndarray,
        semiring: Semiring = FLOAT,
    ) -> None:
        if not (len(attrs) == len(formats) == len(dims)):
            raise ValueError("attrs, formats and dims must have equal length")
        for fmt in formats:
            if fmt not in _FORMATS:
                raise ValueError(f"unknown level format {fmt!r}")
        self.attrs = tuple(attrs)
        self.formats = tuple(formats)
        self.dims = tuple(int(d) for d in dims)
        self.pos = {k: np.asarray(p, dtype=np.int64) for k, p in pos.items()}
        self.crd = {k: np.asarray(c, dtype=np.int64) for k, c in crd.items()}
        self.vals = np.asarray(vals)
        self.semiring = semiring

    # ------------------------------------------------------------------
    @property
    def order(self) -> int:
        return len(self.attrs)

    @property
    def nnz(self) -> int:
        """Number of stored leaf slots (dense levels count zeros)."""
        return int(self.vals.shape[0])

    # ------------------------------------------------------------------
    @classmethod
    def from_entries(
        cls,
        attrs: Sequence[str],
        formats: Sequence[str],
        dims: Sequence[int],
        entries: Mapping[Tuple[int, ...], Any] | Iterable[Tuple[Tuple[int, ...], Any]],
        semiring: Semiring = FLOAT,
        dtype: Optional[np.dtype] = None,
    ) -> "Tensor":
        """Build a tensor from ``{(i, j, …): value}`` entries.

        Duplicate coordinates are summed (with ordinary ``+``; use
        distinct coordinates for exotic semirings).  Coordinates must
        lie within ``dims``.
        """
        items = list(entries.items() if isinstance(entries, Mapping) else entries)
        rank = len(attrs)
        if dtype is None:
            dtype = _dtype_for(semiring)
        if not items:
            return cls._empty(attrs, formats, dims, semiring, dtype)
        coords = np.array([k for k, _ in items], dtype=np.int64).reshape(len(items), rank)
        values = np.array([v for _, v in items], dtype=dtype)
        for k in range(rank):
            if coords[:, k].min() < 0 or coords[:, k].max() >= dims[k]:
                raise ValueError(f"coordinate out of range at level {k}")
        # sort lexicographically in level order (outermost = primary key)
        order = np.lexsort(tuple(coords[:, k] for k in reversed(range(rank))))
        coords = coords[order]
        values = values[order]

        pos: Dict[int, np.ndarray] = {}
        crd: Dict[int, np.ndarray] = {}
        slots = np.zeros(len(items), dtype=np.int64)
        parent_count = 1
        for k in range(rank):
            ck = coords[:, k]
            if formats[k] == "dense":
                slots = slots * dims[k] + ck
                parent_count *= dims[k]
            else:
                new_run = np.ones(len(items), dtype=bool)
                new_run[1:] = (slots[1:] != slots[:-1]) | (ck[1:] != ck[:-1])
                crd[k] = ck[new_run]
                counts = np.bincount(slots[new_run], minlength=parent_count)
                pos[k] = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)
                slots = np.cumsum(new_run) - 1
                parent_count = len(crd[k])
        from repro.semirings.instances import FloatSemiring, IntSemiring, NatSemiring

        plain_add = isinstance(semiring, (FloatSemiring, IntSemiring, NatSemiring))
        if plain_add:
            vals = np.zeros(parent_count, dtype=dtype)
            np.add.at(vals, slots, values)
        else:
            vals = np.full(parent_count, semiring.zero, dtype=dtype)
            _acc_generic(vals, slots, values, semiring)
        return cls(attrs, formats, dims, pos, crd, vals, semiring)

    @classmethod
    def _empty(cls, attrs, formats, dims, semiring, dtype) -> "Tensor":
        pos: Dict[int, np.ndarray] = {}
        crd: Dict[int, np.ndarray] = {}
        parent_count = 1
        for k, fmt in enumerate(formats):
            if fmt == "dense":
                parent_count *= dims[k]
            else:
                crd[k] = np.zeros(0, dtype=np.int64)
                pos[k] = np.zeros(parent_count + 1, dtype=np.int64)
                parent_count = 0
        fill = semiring.zero if semiring.zero != 0 else 0
        vals = np.full(parent_count, fill, dtype=dtype)
        return cls(attrs, formats, dims, pos, crd, vals, semiring)

    # ------------------------------------------------------------------
    # shard slicing (the parallel runtime's operand partitioner)
    # ------------------------------------------------------------------
    def slice_outer(self, lo: int, hi: int) -> "Tensor":
        """Restrict the outermost level to coordinates ``[lo, hi)``.

        Returns a tensor of the same attrs/formats whose outer dimension
        is ``hi - lo`` and whose outer coordinates are rebased to the
        local window (``i`` becomes ``i - lo``).  All leaf values and
        inner coordinate arrays are numpy *slices* of this tensor's
        arrays; only the outer ``crd`` and the first sparse ``pos``
        below the cut need an O(rows) rebase.  This is the row-block
        partitioning the shard planner feeds to per-shard kernel runs.
        """
        lo, hi = int(lo), int(hi)
        if not (0 <= lo <= hi <= self.dims[0]):
            raise ValueError(
                f"slice [{lo}, {hi}) out of range for outer dimension "
                f"{self.dims[0]}"
            )
        dims = (hi - lo,) + self.dims[1:]
        pos: Dict[int, np.ndarray] = {}
        crd: Dict[int, np.ndarray] = {}
        if self.formats[0] == "dense":
            s_lo, s_hi = lo, hi
        else:
            c0 = self.crd[0]
            a = int(np.searchsorted(c0, lo, side="left"))
            b = int(np.searchsorted(c0, hi, side="left"))
            crd[0] = c0[a:b] - lo
            pos[0] = np.array([0, b - a], dtype=np.int64)
            s_lo, s_hi = a, b
        for k in range(1, self.order):
            if self.formats[k] == "dense":
                s_lo *= self.dims[k]
                s_hi *= self.dims[k]
            else:
                pk = self.pos[k]
                base = int(pk[s_lo])
                pos[k] = pk[s_lo : s_hi + 1] - base
                s_lo, s_hi = base, int(pk[s_hi])
                crd[k] = self.crd[k][s_lo:s_hi]
        vals = self.vals[s_lo:s_hi]
        return Tensor(self.attrs, self.formats, dims, pos, crd, vals, self.semiring)

    def outer_weights(self) -> np.ndarray:
        """Leaf-slot count per outer *coordinate* (length ``dims[0]``).

        For CSR-style storage this is the classic per-row nnz histogram
        (``np.diff(pos[1])``); deeper level stacks chain each level's
        ``pos`` (or multiply dense dims) down to the leaves.  The shard
        planner balances these weights across shards.
        """
        d0 = self.dims[0]
        n0 = d0 if self.formats[0] == "dense" else len(self.crd[0])
        bounds = np.arange(n0 + 1, dtype=np.int64)
        for k in range(1, self.order):
            if self.formats[k] == "dense":
                bounds = bounds * self.dims[k]
            else:
                bounds = self.pos[k][bounds]
        counts = np.diff(bounds)
        if self.formats[0] == "dense":
            return counts.astype(np.int64)
        weights = np.zeros(d0, dtype=np.int64)
        weights[self.crd[0]] = counts
        return weights

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[Tuple[int, ...], Any]:
        """All stored (coordinate, value) pairs with nonzero value."""
        out: Dict[Tuple[int, ...], Any] = {}

        def walk(level: int, slot: int, prefix: Tuple[int, ...]) -> None:
            if level == self.order:
                v = self.vals[slot]
                if not self.semiring.is_zero(v.item() if hasattr(v, "item") else v):
                    out[prefix] = v.item() if hasattr(v, "item") else v
                return
            if self.formats[level] == "dense":
                for i in range(self.dims[level]):
                    walk(level + 1, slot * self.dims[level] + i, prefix + (i,))
            else:
                p = self.pos[level]
                c = self.crd[level]
                for q in range(p[slot], p[slot + 1]):
                    walk(level + 1, int(q), prefix + (int(c[q]),))

        walk(0, 0, ())
        return out

    def __repr__(self) -> str:
        fmts = ",".join(f"{a}:{f}" for a, f in zip(self.attrs, self.formats))
        return f"Tensor[{fmts}](dims={self.dims}, slots={self.nnz})"


def _acc_generic(vals, slots, values, semiring) -> None:
    for slot, v in zip(slots.tolist(), values.tolist()):
        vals[slot] = semiring.add(vals[slot], v)


def _dtype_for(semiring: Semiring):
    from repro.compiler.scalars import scalar_ops_for

    ops = scalar_ops_for(semiring)
    return {"int": np.int64, "float": np.float64, "bool": np.bool_}[ops.type]
