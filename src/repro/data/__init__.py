"""Concrete sparse/dense tensor storage (Section 7.3, Chou et al. formats).

A :class:`Tensor` stores an n-dimensional K-relation as a stack of
*levels*, each either ``dense`` (implicit coordinates, offset
arithmetic) or ``sparse`` (compressed: pos/crd arrays).  The familiar
formats arise as combinations:

* vector: ``("dense",)`` or ``("sparse",)``
* CSR matrix: ``("dense", "sparse")``
* DCSR matrix: ``("sparse", "sparse")``
* CSF 3-tensor: ``("sparse", "sparse", "sparse")``

:class:`Dictionary` provides order-preserving dictionary encoding so
attributes with string (or other) index sets can be compiled to integer
loops, as production systems do.
"""

from repro.data.tensor import Tensor
from repro.data.dictionary import Dictionary
from repro.data.convert import (
    tensor_from_dense,
    tensor_from_krelation,
    tensor_to_krelation,
)

__all__ = [
    "Tensor",
    "Dictionary",
    "tensor_from_dense",
    "tensor_from_krelation",
    "tensor_to_krelation",
]
