"""Order-preserving dictionary encoding.

The compiler's loops iterate integer indices; attributes whose index
sets are strings (or any ordered values) are dictionary-encoded first,
exactly as columnar databases do.  Encoding is *order-preserving* —
codes compare like the values they encode — so the encoded streams
remain valid indexed streams over a totally ordered index set.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Sequence


class Dictionary:
    """A frozen, sorted value ↔ code bijection."""

    def __init__(self, values: Iterable[Any]) -> None:
        self._values: List[Any] = sorted(set(values))
        self._codes: Dict[Any, int] = {v: k for k, v in enumerate(self._values)}

    def __len__(self) -> int:
        return len(self._values)

    def encode(self, value: Any) -> int:
        try:
            return self._codes[value]
        except KeyError:
            raise KeyError(f"value {value!r} not in dictionary") from None

    def decode(self, code: int) -> Any:
        return self._values[code]

    def encode_many(self, values: Sequence[Any]) -> List[int]:
        return [self.encode(v) for v in values]

    def decode_many(self, codes: Sequence[int]) -> List[Any]:
        return [self._values[c] for c in codes]

    def __contains__(self, value: Any) -> bool:
        return value in self._codes

    def lower_bound(self, value: Any) -> int:
        """The first code whose value is >= ``value`` (for range filters)."""
        return bisect_left(self._values, value)

    @property
    def values(self) -> List[Any]:
        return list(self._values)

    def __repr__(self) -> str:
        return f"Dictionary({len(self)} values)"
