"""Conversions between tensors, K-relations, and dense nested lists."""

from __future__ import annotations

from typing import Any, Optional, Sequence

import numpy as np

from repro.data.tensor import Tensor
from repro.krelation.relation import KRelation
from repro.krelation.schema import Schema
from repro.semirings.base import Semiring


def tensor_from_krelation(
    rel: KRelation,
    formats: Sequence[str],
    dims: Sequence[int],
    order: Optional[Sequence[str]] = None,
) -> Tensor:
    """Pack a K-relation (with integer index values) into a tensor."""
    attrs = tuple(order) if order is not None else rel.shape
    if sorted(attrs) != sorted(rel.shape):
        raise ValueError(f"order {order!r} is not a permutation of {rel.shape!r}")
    perm = [rel.shape.index(a) for a in attrs]
    entries = {tuple(k[p] for p in perm): v for k, v in rel.items()}
    return Tensor.from_entries(attrs, formats, dims, entries, semiring=rel.semiring)


def tensor_to_krelation(tensor: Tensor, schema: Schema) -> KRelation:
    """Unpack a tensor into a K-relation over ``schema``."""
    data = tensor.to_dict()
    shape = schema.sort_shape(tensor.attrs)
    if shape != tensor.attrs:
        perm = [tensor.attrs.index(a) for a in shape]
        data = {tuple(k[p] for p in perm): v for k, v in data.items()}
    return KRelation(schema, tensor.semiring, shape, data)


def tensor_from_dense(
    attrs: Sequence[str],
    formats: Sequence[str],
    array: np.ndarray,
    semiring: Semiring,
) -> Tensor:
    """Pack a dense numpy array, dropping zeros for sparse levels."""
    array = np.asarray(array)
    if array.ndim != len(attrs):
        raise ValueError(f"array rank {array.ndim} != {len(attrs)} attrs")
    entries = {}
    for idx in np.argwhere(array != semiring.zero):
        key = tuple(int(i) for i in idx)
        entries[key] = array[tuple(idx)].item()
    return Tensor.from_entries(attrs, formats, array.shape, entries, semiring=semiring)
