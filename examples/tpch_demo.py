#!/usr/bin/env python3
"""TPC-H Q5 and Q9 through the Etch pipeline (Section 8.2, Figure 19).

Generates a scaled TPC-H instance, compiles both queries to fused C
kernels, validates the results against SQLite and the pairwise-join
engine, and prints per-system timings.
"""

import argparse
import time

from repro.tpch import generate, q5, q9


def timed(fn, reps: int = 5) -> float:
    fn()  # warm up
    t0 = time.perf_counter()
    for _ in range(reps):
        fn()
    return (time.perf_counter() - t0) / reps


def check(a, b, what: str) -> None:
    keys = set(a) | set(b)
    assert all(abs(a.get(k, 0.0) - b.get(k, 0.0)) < 1e-3 for k in keys), what
    print(f"  {what}: results agree ({len(keys)} groups)")


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--sf", type=float, default=0.01, help="scale factor")
    args = parser.parse_args()

    print(f"generating TPC-H data at SF={args.sf} …")
    data = generate(args.sf, seed=42)
    print({name: len(rel) for name, rel in data.tables.items()})

    for label, module in (("Q5", q5), ("Q9", q9)):
        print(f"\n=== TPC-H {label} ===")
        kernel, tensors = module.prepare_etch(data)
        etch_result = module.run_etch(kernel, tensors, data)
        db = module.load_sqlite(data)
        sqlite_result = module.run_sqlite(db)
        pairwise_result = module.run_pairwise(data)
        check(etch_result, sqlite_result, f"{label} etch vs sqlite")
        check(etch_result, pairwise_result, f"{label} etch vs pairwise")

        t_etch = timed(lambda: kernel.run(tensors))
        t_sqlite = timed(lambda: module.run_sqlite(db))
        t_pair = timed(lambda: module.run_pairwise(data), reps=1)
        print(f"  etch (fused C kernel) : {t_etch * 1e3:8.2f} ms")
        print(f"  sqlite                : {t_sqlite * 1e3:8.2f} ms "
              f"({t_sqlite / t_etch:.1f}x slower)")
        print(f"  pairwise joins (py)   : {t_pair * 1e3:8.2f} ms "
              f"({t_pair / t_etch:.1f}x slower)")


if __name__ == "__main__":
    main()
