#!/usr/bin/env python3
"""Quickstart: the paper's running example (Figure 2).

Computes the fused three-way sparse dot product Σ_i x_i·y_i·z_i three
ways — the denotational semantics (ground truth), the runtime indexed
stream model, and the compiled C kernel — and prints the generated C
code, which has the same shape as the paper's Figure 2 output: one
while loop co-iterating all three vectors with max-index skips.
"""

from repro.krelation import Schema
from repro.lang import Sum, TypeContext, Var, denote
from repro.lang.stream_semantics import interpret
from repro.streams import evaluate, from_krelation
from repro.compiler.kernel import compile_kernel
from repro.data import tensor_to_krelation
from repro.workloads import sparse_vector


def main() -> None:
    n = 10_000
    x = sparse_vector(n, 0.1, seed=1)
    y = sparse_vector(n, 0.1, seed=2)
    z = sparse_vector(n, 0.1, seed=3)

    # Σ_i x*y*z in the contraction language ℒ
    schema = Schema.of(i=None)
    ctx = TypeContext(schema, {"x": {"i"}, "y": {"i"}, "z": {"i"}})
    expr = Sum("i", Var("x") * Var("y") * Var("z"))

    # 1. denotational semantics 𝒯 (Figure 4c) — the ground truth
    bindings = {
        name: tensor_to_krelation(t, schema)
        for name, t in (("x", x), ("y", y), ("z", z))
    }
    truth = denote(expr, ctx, bindings).total()

    # 2. the runtime indexed-stream model 𝒮 (Section 5)
    streams = {
        name: from_krelation(tensor_to_krelation(t, schema))
        for name, t in (("x", x), ("y", y), ("z", z))
    }
    via_streams = evaluate(interpret(expr, ctx, streams))

    # 3. the Etch compiler (Section 7): ℒ → stream IR → C → gcc -O3
    kernel = compile_kernel(expr, ctx, {"x": x, "y": y, "z": z}, name="dot3")
    via_compiler = kernel.run({"x": x, "y": y, "z": z})

    print(f"denotational semantics : {truth:.6f}")
    print(f"indexed streams        : {via_streams:.6f}")
    print(f"compiled C kernel      : {via_compiler:.6f}")
    assert abs(truth - via_streams) < 1e-9 * max(1.0, abs(truth))
    assert abs(truth - via_compiler) < 1e-9 * max(1.0, abs(truth))
    print("\nall three semantics agree (Theorem 6.1 in action)\n")

    print("generated C (compare with the paper's Figure 2):")
    print("-" * 60)
    print(kernel.source)


if __name__ == "__main__":
    main()
