#!/usr/bin/env python3
"""PageRank with a relational filter — the paper's §8.3 motivation.

Section 8.3 motivates fused tensor/relational algebra with "a PageRank
computation where we want to leave out pages with a low score".  This
example runs power iteration where each round's SpMV is fused with a
selection dropping pages below a score threshold:

    r'(i) = (1-d)/n + d · Σ_j M(i,j) · r(j) · keep(j)

The kernel is compiled once; only the rank vector and the filter data
change between rounds.
"""

import argparse

import numpy as np

from repro.compiler.kernel import OutputSpec, compile_kernel
from repro.data import Tensor
from repro.krelation import Schema
from repro.lang import Sum, TypeContext, Var
from repro.semirings import FLOAT
from repro.workloads import sparse_matrix


def build_link_matrix(n: int, density: float, seed: int) -> Tensor:
    """A column-stochastic link matrix M(i,j) = 1/outdeg(j) for j→i."""
    raw = sparse_matrix(n, n, density, attrs=("i", "j"),
                        formats=("dense", "sparse"), seed=seed)
    outdeg = {}
    for (_i, j), _v in raw.to_dict().items():
        outdeg[j] = outdeg.get(j, 0) + 1
    entries = {
        (i, j): 1.0 / outdeg[j] for (i, j), _v in raw.to_dict().items()
    }
    return Tensor.from_entries(("i", "j"), ("dense", "sparse"), (n, n),
                               entries, FLOAT)


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--n", type=int, default=5000)
    parser.add_argument("--density", type=float, default=0.002)
    parser.add_argument("--damping", type=float, default=0.85)
    parser.add_argument("--threshold", type=float, default=0.0,
                        help="drop pages whose rank falls below this")
    parser.add_argument("--rounds", type=int, default=30)
    args = parser.parse_args()
    n, d = args.n, args.damping

    M = build_link_matrix(n, args.density, seed=1)

    schema = Schema.of(i=None, j=None)
    ctx = TypeContext(schema, {"M": {"i", "j"}, "r": {"j"}, "keep": {"j"}})
    expr = Sum("j", Var("M") * Var("r") * Var("keep"))
    out = OutputSpec(("i",), ("dense",), (n,))
    kernel = compile_kernel(expr, ctx, {
        "M": M,
        "r": Tensor.from_entries(("j",), ("dense",), (n,), {}, FLOAT),
        "keep": Tensor.from_entries(("j",), ("sparse",), (n,), {(0,): 1.0}, FLOAT),
    }, out, search="binary", name="pagerank_step")

    rank = np.full(n, 1.0 / n)
    for round_no in range(args.rounds):
        keep_idx = np.nonzero(rank >= args.threshold)[0]
        keep = Tensor.from_entries(
            ("j",), ("sparse",), (n,), {(int(j),): 1.0 for j in keep_idx}, FLOAT
        )
        r_t = Tensor.from_entries(
            ("j",), ("dense",), (n,),
            {(j,): float(rank[j]) for j in range(n)}, FLOAT,
        )
        contrib = kernel.run({"M": M, "r": r_t, "keep": keep})
        new = (1.0 - d) / n + d * contrib.vals
        delta = float(np.abs(new - rank).sum())
        rank = new
        if delta < 1e-10:
            print(f"converged after {round_no + 1} rounds (L1 delta {delta:.2e})")
            break

    top = np.argsort(rank)[::-1][:5]
    print(f"kept {len(keep_idx)}/{n} pages in the last round")
    print("top pages:", [(int(p), round(float(rank[p]), 6)) for p in top])
    assert np.isfinite(rank).all() and rank.sum() <= 1.0 + 1e-6


if __name__ == "__main__":
    main()
