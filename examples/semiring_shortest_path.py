#!/usr/bin/env python3
"""Swapping the semiring: single-source shortest paths over (min, +).

Contraction expressions are parameterized by the scalar semiring
(Section 7.3: "our evaluation makes use of boolean, floating point,
and (min, +) scalars").  Over the tropical semiring, the matrix-vector
product d' = Σ_j A(i,j)·d(j) is one round of Bellman–Ford relaxation;
iterating to a fixed point yields shortest path distances.  The same
compiled kernel is reused every round — only the data changes.
"""

import math

import numpy as np

from repro.krelation import Schema
from repro.lang import Sum, TypeContext, Var
from repro.compiler.kernel import compile_kernel, OutputSpec
from repro.semirings import MIN_PLUS
from repro.data import Tensor


def main() -> None:
    # a small weighted digraph: edge (u, v) with weight w
    edges = {
        (0, 1): 7.0, (0, 2): 9.0, (0, 5): 14.0,
        (1, 2): 10.0, (1, 3): 15.0,
        (2, 3): 11.0, (2, 5): 2.0,
        (3, 4): 6.0,
        (5, 4): 9.0,
    }
    n = 6
    # transpose: to relax d(i) = min_j (w(j→i) + d(j)) we need the
    # in-edges of i, i.e. the matrix indexed (dst, src); the diagonal
    # keeps already-settled distances (min-plus 'one' = 0 on i=j)
    entries = {(v, u): w for (u, v), w in edges.items()}
    for v in range(n):
        entries[(v, v)] = 0.0
    A = Tensor.from_entries(("i", "j"), ("dense", "sparse"), (n, n),
                            entries, MIN_PLUS)

    schema = Schema.of(i=None, j=None)
    ctx = TypeContext(schema, {"A": {"i", "j"}, "d": {"j"}})
    expr = Sum("j", Var("A") * Var("d"))
    out = OutputSpec(("i",), ("dense",), (n,))

    # distances start at 0 for the source, +inf elsewhere
    dist = np.full(n, math.inf)
    dist[0] = 0.0

    def pack(d: np.ndarray) -> Tensor:
        entries = {(j,): float(d[j]) for j in range(n) if math.isfinite(d[j])}
        return Tensor.from_entries(("j",), ("sparse",), (n,), entries, MIN_PLUS)

    kernel = compile_kernel(
        expr, ctx, {"A": A, "d": pack(dist)}, out,
        semiring=MIN_PLUS, name="sssp_relax",
    )

    for round_no in range(n):
        result = kernel.run({"A": A, "d": pack(dist)})
        new = result.vals.copy()
        new = np.minimum(new, dist)
        if np.array_equal(new, dist):
            print(f"converged after {round_no} rounds")
            break
        dist = new

    expected = [0.0, 7.0, 9.0, 20.0, 20.0, 11.0]
    print("node  distance")
    for v in range(n):
        print(f"{v:>4}  {dist[v]:>8.1f}")
    assert np.allclose(dist, expected), (dist, expected)
    print("matches Dijkstra on the textbook graph ✓")


if __name__ == "__main__":
    main()
