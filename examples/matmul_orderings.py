#!/usr/bin/env python3
"""Attribute ordering changes asymptotics (Sections 5.4.1 and 8.1).

Sparse matrix multiplication C = X·Y compiled under two attribute
orderings:

* **inner product** — loops i, j, k: for every output coordinate,
  intersect a row of X with a row of Yᵀ; O(n²k) stream transitions.
* **linear combination of rows** — loops i, k, j: for every nonzero
  X(i,k), merge row k of Y into row i of the output; O(nk²).

The paper measures a 40× gap on a 10 000×10 000 matrix with 200 000
nonzeros (9.77 s vs 0.24 s); this script reproduces the experiment
(scaled down by default; pass --full for the paper's sizes).
"""

import argparse
import time

from repro.tensor import einsum, repack
from repro.workloads import sparse_matrix


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--n", type=int, default=2000, help="matrix dimension")
    parser.add_argument("--nnz-per-row", type=int, default=20)
    parser.add_argument("--full", action="store_true",
                        help="use the paper's 10000x10000 / 200k nonzeros")
    args = parser.parse_args()
    n = 10_000 if args.full else args.n
    density = args.nnz_per_row / n

    X = sparse_matrix(n, n, density, attrs=("i", "k"),
                      formats=("sparse", "sparse"), seed=1)
    Y = sparse_matrix(n, n, density, attrs=("k", "j"),
                      formats=("sparse", "sparse"), seed=2)
    Yt = repack(Y, ("j", "k"))   # transposed layout for the inner-product order
    capacity = max(16, 8 * X.nnz * args.nnz_per_row)

    # linear combination of rows: loops i, k, j
    t0 = time.perf_counter()
    rows = einsum("ik,kj->ij", X, Y,
                  output_formats=("sparse", "sparse"),
                  order=("i", "k", "j"),
                  capacity=capacity, kernel_name="mm_rows")
    t_rows = time.perf_counter() - t0

    # inner product: loops i, j, k — every candidate (i, j) is visited,
    # so the output may contain explicit zeros and needs n² capacity
    t0 = time.perf_counter()
    inner = einsum("ik,jk->ij", X, Yt,
                   output_formats=("sparse", "sparse"),
                   order=("i", "j", "k"),
                   capacity=n * n + 16, kernel_name="mm_inner")
    t_inner = time.perf_counter() - t0

    same = inner.to_dict() == rows.to_dict() or all(
        abs(inner.to_dict().get(key, 0.0) - v) < 1e-6
        for key, v in rows.to_dict().items()
    )
    assert same, "the two algorithms must agree"
    print(f"n = {n}, nnz = {X.nnz}, output nnz = {rows.nnz}")
    print(f"inner product            : {t_inner:8.3f} s")
    print(f"linear combination (rows): {t_rows:8.3f} s")
    print(f"speedup                  : {t_inner / max(t_rows, 1e-9):8.1f}x "
          f"(paper reports ~40x at full scale)")


if __name__ == "__main__":
    main()
