#!/usr/bin/env python3
"""The triangle query and worst-case optimal joins (Section 5.4.2, Figure 20).

Counts Σ_{a,b,c} R(a,b)·S(b,c)·T(a,c) on the adversarial instances
R = S = T = {0}×[n] ∪ [n]×{0}.  The fused indexed-stream kernel solves
one attribute at a time (the GenericJoin structure) and runs in Θ(n);
any pairwise plan materializes the Θ(n²) intermediate R ⋈ S.  The
script sweeps n and prints both runtimes — watch the pairwise column
grow quadratically while the fused column stays linear.
"""

import argparse
import time

from repro.krelation import Schema
from repro.lang import Sum, TypeContext, Var
from repro.compiler.kernel import compile_kernel
from repro.semirings import INT
from repro.baselines.pairwise import triangle_count_pairwise
from repro.baselines.sqlite_bridge import SqliteDB
from repro.workloads import triangle_relations, triangle_tensors

TRIANGLE_SQL = """
SELECT COUNT(*)
FROM R, S, T
WHERE R.b = S.b AND S.c = T.c AND T.a = R.a
"""


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--sizes", type=int, nargs="+",
                        default=[500, 1000, 2000, 4000, 8000])
    args = parser.parse_args()

    schema = Schema.of(a=None, b=None, c=None)
    ctx = TypeContext(schema, {"R": {"a", "b"}, "S": {"b", "c"}, "T": {"a", "c"}})
    expr = Sum("a", Sum("b", Sum("c", Var("R") * Var("S") * Var("T"))))

    print(f"{'n':>7} {'fused (ms)':>12} {'pairwise (ms)':>14} {'sqlite (ms)':>12} {'count':>8}")
    kernel = None
    for n in args.sizes:
        Rt, St, Tt = triangle_tensors(n)
        if kernel is None:
            kernel = compile_kernel(
                expr, ctx, {"R": Rt, "S": St, "T": Tt},
                semiring=INT, name="triangle",
            )
        tensors = {"R": Rt, "S": St, "T": Tt}
        t0 = time.perf_counter()
        count = kernel.run(tensors)
        t_fused = time.perf_counter() - t0

        R, S, T = triangle_relations(n)
        t0 = time.perf_counter()
        count_pw = triangle_count_pairwise(
            R, S.rename({"b": "b"}), T
        )
        t_pair = time.perf_counter() - t0
        assert count == count_pw, (count, count_pw)

        db = SqliteDB()
        db.load("R", R)
        db.load("S", S)
        db.load("T", T)
        db.index("R", ("a", "b"))
        db.index("S", ("b", "c"))
        db.index("T", ("a", "c"))
        t0 = time.perf_counter()
        (count_sql,), = db.query(TRIANGLE_SQL)
        t_sql = time.perf_counter() - t0
        db.close()
        assert count == count_sql

        print(f"{n:>7} {t_fused*1e3:>12.2f} {t_pair*1e3:>14.2f} "
              f"{t_sql*1e3:>12.2f} {count:>8}")


if __name__ == "__main__":
    main()
