#!/usr/bin/env python3
"""Fused tensor and relational algebra: filtered SpMV (Section 8.3, Figure 21).

Computes y(i) = Σ_j A(i,j) · x(j) · p(j), where p is a relational
selection on the vector entries (the paper motivates this with a
PageRank that drops low-score pages).  Because everything fuses, rows
whose entries are entirely filtered out are skipped in the outer loop
and the runtime goes to zero as the filter selectivity approaches 100%.
"""

import argparse
import time

from repro.krelation import Schema
from repro.lang import Sum, TypeContext, Var
from repro.compiler.kernel import compile_kernel, OutputSpec
from repro.semirings import FLOAT
from repro.data import Tensor
from repro.workloads import dense_vector, sparse_matrix

import numpy as np


def predicate_tensor(n: int, selectivity: float, seed: int = 7) -> Tensor:
    """A boolean-valued stream keeping a (1 - selectivity) fraction of
    the coordinates — the relational filter, encoded as data."""
    rng = np.random.default_rng(seed)
    keep = rng.random(n) >= selectivity
    entries = {(int(j),): 1.0 for j in np.nonzero(keep)[0]}
    return Tensor.from_entries(("j",), ("sparse",), (n,), entries, FLOAT)


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--n", type=int, default=20_000)
    parser.add_argument("--density", type=float, default=0.01)
    args = parser.parse_args()
    n = args.n

    A = sparse_matrix(n, n, args.density, attrs=("i", "j"),
                      formats=("dense", "sparse"), seed=1)
    x = dense_vector(n, attr="j", seed=2)

    schema = Schema.of(i=None, j=None)
    ctx = TypeContext(schema, {"A": {"i", "j"}, "x": {"j"}, "p": {"j"}})
    expr = Sum("j", Var("A") * Var("x") * Var("p"))
    out = OutputSpec(("i",), ("dense",), (n,))

    kernel = None
    print(f"{'selectivity':>12} {'time (ms)':>10} {'kept entries':>13}")
    for selectivity in (0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0):
        p = predicate_tensor(n, selectivity)
        tensors = {"A": A, "x": x, "p": p}
        if kernel is None:
            kernel = compile_kernel(expr, ctx, tensors, out, search="binary",
                                    name="filtered_spmv")
        t0 = time.perf_counter()
        for _ in range(5):
            kernel.run(tensors)
        elapsed = (time.perf_counter() - t0) / 5
        print(f"{selectivity:>12.2f} {elapsed*1e3:>10.3f} {p.nnz:>13}")
    print("\nruntime decreases toward zero as selectivity -> 100% (Fig. 21)")


if __name__ == "__main__":
    main()
