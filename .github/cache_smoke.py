"""CI smoke test: build one SpMV kernel and report cache counters.

Run twice in separate processes with ``REPRO_KERNEL_CACHE_DIR`` shared:
the first (``CACHE_STAGE=cold``) must miss, the second
(``CACHE_STAGE=warm``) must be served entirely from the disk tier.
"""

import os

from repro.compiler.cache import kernel_cache
from repro.compiler.kernel import OutputSpec, compile_kernel
from repro.krelation import Schema
from repro.lang import Sum, TypeContext, Var
from repro.workloads import dense_vector, sparse_matrix

n = 64
A = sparse_matrix(n, n, 0.1, attrs=("i", "j"), seed=1)
x = dense_vector(n, attr="j", seed=2)
ctx = TypeContext(Schema.of(i=None, j=None), {"A": {"i", "j"}, "x": {"j"}})
kernel = compile_kernel(
    Sum("j", Var("A") * Var("x")), ctx, {"A": A, "x": x},
    OutputSpec(("i",), ("dense",), (n,)), backend="python",
)
result = kernel.run({"A": A, "x": x})

stage = os.environ.get("CACHE_STAGE", "cold")
if stage == "warm":
    assert kernel_cache.stats.disk_hits == 1, kernel_cache.stats
    assert kernel_cache.stats.misses == 0, kernel_cache.stats
else:
    assert kernel_cache.stats.misses == 1, kernel_cache.stats
print(f"{stage}: {kernel_cache.stats}")
