"""Named kernels (repro.tensor.linalg) vs numpy ground truth."""

import numpy as np
import pytest

from repro.data import Tensor
from repro.semirings import FLOAT
from repro.tensor import linalg
from repro.workloads import dense_matrix, dense_vector, sparse_matrix, sparse_tensor3

N = 20


def to_dense(t, dims):
    out = np.zeros(dims)
    for key, v in t.to_dict().items():
        out[key] = v
    return out


@pytest.fixture(scope="module")
def A():
    return sparse_matrix(N, N, 0.25, attrs=("i", "j"), seed=1)


def test_spmv_with_tensor_vector(A):
    x = dense_vector(N, attr="j", seed=2)
    y = linalg.spmv(A, x)
    assert np.allclose(to_dense(y, (N,)), to_dense(A, (N, N)) @ to_dense(x, (N,)))


def test_spmv_with_numpy_vector(A):
    x = np.random.default_rng(3).random(N)
    y = linalg.spmv(A, x)
    assert np.allclose(to_dense(y, (N,)), to_dense(A, (N, N)) @ x)


def test_spmv_rank_check():
    m = sparse_matrix(N, N, 0.1, seed=4)
    from repro.krelation import ShapeError

    with pytest.raises(ShapeError):
        linalg.spmv(m, m)


def test_matmul(A):
    B = sparse_matrix(N, N, 0.25, attrs=("k", "j"), seed=5)
    C = linalg.matmul(A, B)
    assert np.allclose(to_dense(C, (N, N)),
                       to_dense(A, (N, N)) @ to_dense(B, (N, N)))


def test_inner_and_frobenius(A):
    B = sparse_matrix(N, N, 0.25, attrs=("i", "j"), seed=6)
    got = linalg.inner(A, B)
    want = float((to_dense(A, (N, N)) * to_dense(B, (N, N))).sum())
    assert got == pytest.approx(want)
    assert linalg.frobenius_norm_sq(A) == pytest.approx(
        float((to_dense(A, (N, N)) ** 2).sum())
    )


def test_sddmm(A):
    Ad = dense_matrix(N, N, attrs=("i", "k"), seed=7)
    Bd = dense_matrix(N, N, attrs=("k", "j"), seed=8)
    C = linalg.sddmm(A, Ad, Bd)
    S = to_dense(A, (N, N))
    want = S * (to_dense(Ad, (N, N)) @ to_dense(Bd, (N, N)))
    assert np.allclose(to_dense(C, (N, N)), want)
    # output inherits the sample's sparsity pattern (up to exact zeros)
    assert set(C.to_dict()) <= set(A.to_dict())


def test_sddmm_cost_scales_with_sample(A):
    """The fused kernel never visits (i,j) outside S's support — check
    by counting output candidates, which equal nnz(S)."""
    Ad = dense_matrix(N, 4, attrs=("i", "k"), seed=9)
    Bd = dense_matrix(4, N, attrs=("k", "j"), seed=10)
    C = linalg.sddmm(A, Ad, Bd, capacity=2 * A.nnz)
    assert C.nnz <= A.nnz


def test_mttkrp():
    n = 10
    B = sparse_tensor3((n, n, n), 0.05, attrs=("i", "k", "l"), seed=11)
    C = dense_matrix(n, n, attrs=("k", "j"), seed=12)
    D = dense_matrix(n, n, attrs=("l", "j"), seed=13)
    got = linalg.mttkrp(B, C, D)
    want = np.einsum("ikl,kj,lj->ij", to_dense(B, (n, n, n)),
                     to_dense(C, (n, n)), to_dense(D, (n, n)))
    assert np.allclose(to_dense(got, (n, n)), want)


def test_transpose(A):
    T = linalg.transpose(A)
    assert to_dense(T, (N, N)).T == pytest.approx(to_dense(A, (N, N)))
