"""The einsum frontend (Figure 5's tensor-algebra translation)."""

import numpy as np
import pytest

from repro.data import Tensor
from repro.krelation import ShapeError
from repro.semirings import FLOAT, INT
from repro.tensor import einsum, repack, tensor_add
from repro.tensor.einsum import einsum_expr, parse_spec
from repro.workloads import dense_matrix, dense_vector, sparse_matrix, sparse_tensor3, sparse_vector

N = 20


def to_dense(t, dims):
    out = np.zeros(dims)
    for key, v in t.to_dict().items():
        out[key] = v
    return out


def test_parse_spec():
    ops, out = parse_spec("ij,jk->ik")
    assert ops == (("i", "j"), ("j", "k"))
    assert out == ("i", "k")
    assert parse_spec("i,i->") == ((("i",), ("i",)), ())
    with pytest.raises(ValueError):
        parse_spec("ij->ij->k")
    with pytest.raises(ValueError):
        parse_spec("")
    with pytest.raises(ValueError):
        parse_spec("ij,jk->iq")  # q not among inputs


def test_einsum_expr_contracts_non_output():
    expr, operands, output = einsum_expr("ij,jk->ik")
    assert "Σ_j" in repr(expr)
    assert "t0" in repr(expr) and "t1" in repr(expr)


def test_matmul_against_numpy():
    A = sparse_matrix(N, N, 0.2, attrs=("i", "j"), seed=1)
    B = sparse_matrix(N, N, 0.2, attrs=("j", "k"), seed=2)
    C = einsum("ij,jk->ik", A, B, output_formats=("dense", "sparse"),
               capacity=N * N)
    got = to_dense(C, (N, N))
    want = to_dense(A, (N, N)) @ to_dense(B, (N, N))
    assert np.allclose(got, want)


def test_spmv_against_numpy():
    A = sparse_matrix(N, N, 0.3, attrs=("i", "j"), seed=3)
    x = dense_vector(N, attr="j", seed=4)
    y = einsum("ij,j->i", A, x)
    assert np.allclose(to_dense(y, (N,)),
                       to_dense(A, (N, N)) @ to_dense(x, (N,)))


def test_inner_product_scalar():
    A = sparse_matrix(N, N, 0.3, attrs=("i", "j"), seed=5)
    B = sparse_matrix(N, N, 0.3, attrs=("i", "j"), seed=6)
    got = einsum("ij,ij->", A, B)
    want = float((to_dense(A, (N, N)) * to_dense(B, (N, N))).sum())
    assert got == pytest.approx(want)


def test_mttkrp_against_numpy():
    n = 10
    B = sparse_tensor3((n, n, n), 0.05, attrs=("i", "k", "l"), seed=7)
    C = dense_matrix(n, n, attrs=("k", "j"), seed=8)
    D = dense_matrix(n, n, attrs=("l", "j"), seed=9)
    A = einsum("ikl,kj,lj->ij", B, C, D)
    Bd = to_dense(B, (n, n, n))
    want = np.einsum("ikl,kj,lj->ij", Bd, to_dense(C, (n, n)), to_dense(D, (n, n)))
    assert np.allclose(to_dense(A, (n, n)), want)


def test_custom_order_changes_loops_not_result():
    A = sparse_matrix(N, N, 0.2, attrs=("i", "k"),
                      formats=("sparse", "sparse"), seed=10)
    B = repack(sparse_matrix(N, N, 0.2, attrs=("k", "j"), seed=11), ("j", "k"),
               ("sparse", "sparse"))
    got = einsum("ik,jk->ij", A, B, order=("i", "j", "k"),
                 output_formats=("dense", "dense"))
    want = to_dense(A, (N, N)) @ to_dense(B, (N, N)).T
    assert np.allclose(to_dense(got, (N, N)), want)


def test_operand_count_mismatch():
    A = sparse_matrix(N, N, 0.2, seed=12)
    with pytest.raises(ValueError):
        einsum("ij,jk->ik", A)


def test_rank_mismatch():
    A = sparse_matrix(N, N, 0.2, seed=13)
    with pytest.raises(ShapeError):
        einsum("ijk,jk->i", A, A)


def test_dim_mismatch():
    A = sparse_matrix(N, N, 0.2, attrs=("i", "j"), seed=14)
    B = sparse_matrix(N + 1, N, 0.2, attrs=("j", "k"), seed=15)
    with pytest.raises(ShapeError):
        einsum("ij,jk->ik", A, B)


def test_level_order_violation_reported():
    A = sparse_matrix(N, N, 0.2, attrs=("i", "j"), seed=16)
    with pytest.raises(ShapeError):
        # order puts j before i but the tensor is stored (i, j)
        einsum("ij->j", A, order=("j", "i"))


def test_semiring_mismatch_inference():
    A = sparse_matrix(N, N, 0.2, seed=17, semiring=INT)
    B = sparse_matrix(N, N, 0.2, attrs=("j", "k"), seed=18, semiring=INT)
    C = einsum("ij,jk->ik", A, B, output_formats=("dense", "dense"))
    assert C.semiring is INT or C.semiring.name == "int"


def test_tensor_add_merges():
    x = sparse_vector(N, 0.3, seed=19)
    y = sparse_vector(N, 0.3, seed=20)
    s = tensor_add(x, y, capacity=2 * N)
    want = {}
    for d in (x.to_dict(), y.to_dict()):
        for key, v in d.items():
            want[key] = want.get(key, 0.0) + v
    assert s.to_dict() == pytest.approx(want)


def test_tensor_add_shape_mismatch():
    x = sparse_vector(N, 0.3, seed=21)
    y = sparse_vector(N + 1, 0.3, seed=22)
    with pytest.raises(ShapeError):
        tensor_add(x, y)


def test_repack_permutes_and_reformats():
    A = sparse_matrix(N, N, 0.2, attrs=("i", "j"), seed=23)
    T = repack(A, ("j", "i"), ("sparse", "sparse"))
    assert T.attrs == ("j", "i")
    assert T.formats == ("sparse", "sparse")
    assert T.to_dict() == {(j, i): v for (i, j), v in A.to_dict().items()}
    with pytest.raises(ValueError):
        repack(A, ("i", "k"))
