"""AST construction and operator sugar (Figure 4a)."""

from repro.lang import (
    Add, BroadcastAdd, BroadcastMul, Expand, Lit, Mul, Rename, Sum, Var,
    sum_over,
)


def test_operator_sugar_builds_broadcast_nodes():
    x, y = Var("x"), Var("y")
    assert isinstance(x * y, BroadcastMul)
    assert isinstance(x + y, BroadcastAdd)


def test_scalar_operands_become_literals():
    e = Var("x") * 2
    assert isinstance(e.right, Lit) and e.right.value == 2
    e2 = 3 + Var("x")
    assert isinstance(e2.left, Lit) and e2.left.value == 3


def test_sum_method_and_sum_over():
    e = Var("x").sum("a", "b")
    assert isinstance(e, Sum) and e.attr == "a"
    assert isinstance(e.body, Sum) and e.body.attr == "b"
    assert isinstance(e.body.body, Var)
    e2 = sum_over((), Var("x"))
    assert isinstance(e2, Var)


def test_rename_method():
    e = Var("x").rename(a="b")
    assert isinstance(e, Rename)
    assert e.mapping == {"a": "b"}


def test_children():
    x, y = Var("x"), Var("y")
    assert (x * y).children() == (x, y)
    assert (x + y).children() == (x, y)
    assert Sum("a", x).children() == (x,)
    assert Expand("a", x).children() == (x,)
    assert Rename({"a": "b"}, x).children() == (x,)
    assert x.children() == ()
    assert Lit(1).children() == ()
    assert Mul(x, y).children() == (x, y)
    assert Add(x, y).children() == (x, y)


def test_repr_is_readable():
    e = Sum("b", Var("x") * Var("y"))
    text = repr(e)
    assert "Σ_b" in text and "x" in text and "y" in text
    assert "⇑_a" in repr(Expand("a", Var("x")))
    assert "name[" in repr(Rename({"a": "b"}, Var("x")))
