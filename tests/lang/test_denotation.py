"""Denotational semantics ⟦–⟧ᵀ (Figure 4c) against hand computations."""

import pytest

from repro.krelation import KRelation, Schema, ShapeError
from repro.lang import Lit, Rename, Sum, TypeContext, Var, denote
from repro.semirings import BOOL, INT


@pytest.fixture
def setting():
    schema = Schema.of(a=range(3), b=range(3), c=range(3))
    ctx = TypeContext(schema, {"x": {"a", "b"}, "y": {"b", "c"}, "v": {"a"}})
    x = KRelation(schema, INT, ("a", "b"), {(0, 1): 2, (1, 2): 3, (2, 0): 4})
    y = KRelation(schema, INT, ("b", "c"), {(1, 0): 5, (2, 2): 7, (0, 1): 1})
    v = KRelation(schema, INT, ("a",), {(0,): 1, (2,): 2})
    return schema, ctx, {"x": x, "y": y, "v": v}


def test_var(setting):
    schema, ctx, b = setting
    assert denote(Var("x"), ctx, b).equal(b["x"])


def test_matrix_product(setting):
    schema, ctx, b = setting
    got = denote(Sum("b", Var("x") * Var("y")), ctx, b)
    # (0,1)*[1->(0,5)] = (0,0):10 ; (1,2)*[2->(2,7)] = (1,2):21 ;
    # (2,0)*[0->(1,1)] = (2,1):4
    assert got.support == {(0, 0): 10, (1, 2): 21, (2, 1): 4}


def test_elementwise_and_scalar(setting):
    schema, ctx, b = setting
    got = denote(Var("v") * Lit(10), ctx, b)
    assert got.support == {(0,): 10, (2,): 20}


def test_add_broadcast(setting):
    schema, ctx, b = setting
    got = denote(Var("v") + Var("v"), ctx, b)
    assert got.support == {(0,): 2, (2,): 4}


def test_full_contraction(setting):
    schema, ctx, b = setting
    got = denote(Var("x").sum("a", "b"), ctx, b)
    assert got.support == {(): 9}
    assert got.total() == 9


def test_rename(setting):
    schema, ctx, b = setting
    got = denote(Rename({"a": "c"}, Var("v")), ctx, b)
    assert got.shape == ("c",)
    assert got.support == {(0,): 1, (2,): 2}


def test_mixed_contracted_add(setting):
    """(Σ_b x) + v requires aligning a contracted and a plain operand."""
    schema, ctx, b = setting
    got = denote(Sum("b", Var("x")) + Var("v"), ctx, b)
    assert got.support == {(0,): 3, (1,): 3, (2,): 6}


def test_binding_shape_mismatch(setting):
    schema, ctx, b = setting
    bad = dict(b)
    bad["v"] = b["x"]
    with pytest.raises(ShapeError):
        denote(Var("v"), ctx, bad)


def test_no_variables_fails(setting):
    schema, ctx, b = setting
    with pytest.raises(ShapeError):
        denote(Lit(3), ctx, b)


def test_literal_converted_via_from_int():
    schema = Schema.of(a=range(2))
    ctx = TypeContext(schema, {"r": {"a"}})
    r = KRelation(schema, BOOL, ("a",), {(0,): True})
    got = denote(Var("r") * Lit(1), ctx, {"r": r})
    assert got.support == {(0,): True}


def test_relational_selection_bool(setting):
    """Selection as multiplication by a predicate (Figure 6)."""
    schema = Schema.of(a=range(3))
    ctx = TypeContext(schema, {"r": {"a"}, "p": {"a"}})
    r = KRelation(schema, BOOL, ("a",), {(0,): True, (1,): True})
    p = KRelation(schema, BOOL, ("a",), {(1,): True, (2,): True})
    got = denote(Var("r") * Var("p"), ctx, {"r": r, "p": p})
    assert got.support == {(1,): True}
