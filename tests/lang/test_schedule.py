"""Attribute-ordering heuristics (Section 7.3)."""

import pytest

from repro.krelation import ShapeError
from repro.lang.schedule import (
    OrderConflictError,
    consistent_order,
    primary_keys_first,
    validate_order,
)


def test_consistent_order_respects_all_inputs():
    order = consistent_order([("i", "j"), ("j", "k"), ("i", "k")])
    validate_order(order, [("i", "j"), ("j", "k"), ("i", "k")])
    assert order == ("i", "j", "k")


def test_consistent_order_detects_cycles():
    with pytest.raises(OrderConflictError):
        consistent_order([("i", "j"), ("j", "i")])


def test_consistent_order_priority_breaks_ties():
    # i and k are both available first; priority pulls k ahead
    order = consistent_order([("i", "j"), ("k", "j")], priority={"k": -1})
    assert order.index("k") < order.index("i")


def test_consistent_order_single_and_empty():
    assert consistent_order([("a",)]) == ("a",)
    assert consistent_order([]) == ()


def test_primary_keys_first_tpch_like():
    """Q5-like shape: orders(o,c), customer(c,n), lineitem(o,s,ln),
    supplier(n,s): primary keys o, c, n, s pulled early."""
    relations = {
        "orders": ("o", "c"),
        "customer": ("c", "n"),
        "lineitem": ("o", "s", "ln"),
        "supplier": ("n", "s"),
    }
    order = primary_keys_first(relations, output=("n",))
    validate_order(order, relations.values())
    # o is a primary key with no predecessors: it must lead
    assert order[0] == "o"
    # ln is no one's key and constrained after s: it trails
    assert order[-1] == "ln"


def test_primary_keys_first_output_priority():
    relations = {"r": ("a",), "s": ("b",), "t": ("c",)}
    order = primary_keys_first(relations, output=("b",))
    # all three unconstrained; a/b/c all primaries; ties lexicographic
    assert set(order) == {"a", "b", "c"}


def test_validate_order_rejects_non_subsequence():
    with pytest.raises(ShapeError):
        validate_order(("i", "j"), [("j", "i")])
    with pytest.raises(ShapeError):
        validate_order(("i",), [("i", "j")])
    validate_order(("i", "j", "k"), [("i", "k"), ("j",), ()])


def test_matmul_orders_both_valid():
    """Both classic matmul orders are consistent; the choice is the
    §5.4.1 asymptotic decision, not a validity question."""
    rows = consistent_order([("i", "k"), ("k", "j")])
    validate_order(rows, [("i", "k"), ("k", "j")])
    inner = consistent_order([("i", "k"), ("j", "k")], priority={"j": -1})
    validate_order(inner, [("i", "k"), ("j", "k")])
