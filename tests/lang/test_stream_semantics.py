"""The stream semantics ⟦–⟧ˢ (Figure 9) agrees with ⟦–⟧ᵀ.

Each case interprets an expression as nested indexed streams, evaluates
them (Definition 5.11), and compares with the denotational result —
instances of the paper's commuting diagram (Figure 3).
"""

import pytest

from repro.krelation import KRelation, Schema, ShapeError
from repro.lang import Expand, Lit, Rename, Sum, TypeContext, Var, denote
from repro.lang.stream_semantics import interpret, schema_insert
from repro.semirings import BOOL, INT, MIN_PLUS
from repro.streams import evaluate, from_krelation, stream_to_krelation


def both_ways(expr, ctx, krels):
    truth = denote(expr, ctx, krels)
    streams = {name: from_krelation(rel) for name, rel in krels.items()}
    stream = interpret(expr, ctx, streams)
    got = stream_to_krelation(stream, ctx.schema)
    assert got.equal(truth), (
        f"{expr!r}\n got {sorted(got.support.items())}"
        f"\nwant {sorted(truth.support.items())}"
    )
    return got


@pytest.fixture
def setting():
    schema = Schema.of(a=range(4), b=range(4), c=range(4))
    ctx = TypeContext(
        schema,
        {"x": {"a", "b"}, "y": {"b", "c"}, "z": {"a", "b"}, "v": {"a"}, "w": {"c"}},
    )
    krels = {
        "x": KRelation(schema, INT, ("a", "b"),
                       {(0, 1): 2, (1, 2): 3, (2, 0): 4, (3, 3): 1}),
        "y": KRelation(schema, INT, ("b", "c"),
                       {(1, 0): 5, (2, 2): 7, (0, 1): 1, (3, 3): 2}),
        "z": KRelation(schema, INT, ("a", "b"), {(0, 1): -2, (2, 2): 6}),
        "v": KRelation(schema, INT, ("a",), {(0,): 1, (2,): 2}),
        "w": KRelation(schema, INT, ("c",), {(1,): 3}),
    }
    return ctx, krels


def test_variable(setting):
    both_ways(Var("x"), *setting)


def test_elementwise_product(setting):
    both_ways(Var("x") * Var("z"), *setting)


def test_elementwise_sum(setting):
    both_ways(Var("x") + Var("z"), *setting)


def test_sum_cancellation(setting):
    both_ways(Var("x") + Var("z") + Var("z"), *setting)


def test_matrix_multiply(setting):
    both_ways(Sum("b", Var("x") * Var("y")), *setting)


def test_full_contraction(setting):
    ctx, krels = setting
    got = both_ways(Var("x").sum("a", "b"), ctx, krels)
    assert got.total() == 10


def test_outer_product(setting):
    both_ways(Var("v") * Var("w"), *setting)


def test_expansion_explicit(setting):
    both_ways(Expand("c", Var("v")), *setting)


def test_expand_then_contract(setting):
    both_ways(Sum("c", Expand("c", Var("v"))), *setting)


def test_scalar_literal_product(setting):
    both_ways(Var("x") * Lit(3), *setting)


def test_mixed_dummy_addition(setting):
    """(Σ_b x) + v: one operand has a dummy level, the other does not."""
    both_ways(Sum("b", Var("x")) + Var("v"), *setting)


def test_mixed_dummy_multiplication(setting):
    both_ways(Sum("b", Var("x")) * Var("v"), *setting)


def test_dummy_both_sides_add(setting):
    both_ways(Sum("b", Var("x")) + Sum("b", Var("z")), *setting)


def test_dummy_both_sides_mul(setting):
    both_ways(Sum("b", Var("x")) * Sum("b", Var("z")), *setting)


def test_triple_product_then_sum(setting):
    both_ways(Sum("b", Var("x") * Var("z") * Var("x")), *setting)


def test_rename_in_order(setting):
    both_ways(Rename({"b": "c"}, Var("x")), *setting)


def test_rename_out_of_order_materializes(setting):
    """Renaming a to c turns shape (a,b) into (b,c): levels must be
    transposed, which the semantics realizes with a temporary."""
    both_ways(Rename({"a": "c"}, Var("x")), *setting)


def test_composition_after_rename(setting):
    ctx, krels = setting
    expr = Sum("b", Rename({"a": "b", "b": "c"}, Var("x")) * Var("x"))
    both_ways(expr, ctx, krels)


def test_semiring_min_plus():
    schema = Schema.of(a=range(3), b=range(3))
    ctx = TypeContext(schema, {"x": {"a", "b"}, "y": {"b"}})
    x = KRelation(schema, MIN_PLUS, ("a", "b"), {(0, 0): 1.0, (0, 1): 5.0, (1, 1): 2.0})
    y = KRelation(schema, MIN_PLUS, ("b",), {(0,): 3.0, (1,): 1.0})
    both_ways(Sum("b", Var("x") * Var("y")), ctx, {"x": x, "y": y})


def test_boolean_join():
    schema = Schema.of(a=range(3), b=range(3), c=range(3))
    ctx = TypeContext(schema, {"r": {"a", "b"}, "s": {"b", "c"}})
    r = KRelation(schema, BOOL, ("a", "b"), {(0, 1): True, (1, 2): True})
    s = KRelation(schema, BOOL, ("b", "c"), {(1, 2): True, (2, 0): True})
    got = both_ways(Sum("b", Var("r") * Var("s")), ctx, {"r": r, "s": s})
    assert got.support == {(0, 2): True, (1, 0): True}


def test_binding_with_wrong_level_order_is_transposed(setting):
    ctx, krels = setting
    # build x with levels (b, a): interpret must repack it
    flipped = {(b, a): v for (a, b), v in krels["x"].support.items()}
    xs = from_krelation(
        KRelation(ctx.schema.reorder(("b", "a", "c")), INT, ("b", "a"), flipped)
    )
    streams = {"x": xs}
    got = stream_to_krelation(interpret(Var("x"), ctx, streams), ctx.schema)
    assert got.equal(krels["x"])


def test_schema_insert():
    schema = Schema.of(a=None, b=None, c=None)
    assert schema_insert(("a", "c"), "b", schema) == ("a", "b", "c")
    assert schema_insert((), "b", schema) == ("b",)
    assert schema_insert(("a", "b"), "c", schema) == ("a", "b", "c")
