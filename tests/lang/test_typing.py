"""The shape type system (Figure 4b) and broadcast elaboration."""

import pytest

from repro.krelation import Schema, ShapeError
from repro.lang import (
    Add, Expand, Lit, Mul, Rename, Sum, TypeContext, Var,
    elaborate, shape_of,
)


@pytest.fixture
def ctx():
    schema = Schema.of(a=None, b=None, c=None)
    return TypeContext(schema, {"x": {"a", "b"}, "y": {"b", "c"}, "s": set()})


def test_var_shape(ctx):
    assert shape_of(Var("x"), ctx) == {"a", "b"}
    with pytest.raises(ShapeError):
        shape_of(Var("unbound"), ctx)


def test_lit_shape(ctx):
    assert shape_of(Lit(3), ctx) == frozenset()


def test_core_add_mul_require_equal_shapes(ctx):
    with pytest.raises(ShapeError):
        shape_of(Mul(Var("x"), Var("y")), ctx)
    with pytest.raises(ShapeError):
        shape_of(Add(Var("x"), Var("y")), ctx)
    assert shape_of(Mul(Var("x"), Var("x")), ctx) == {"a", "b"}


def test_broadcast_shapes_are_union(ctx):
    assert shape_of(Var("x") * Var("y"), ctx) == {"a", "b", "c"}
    assert shape_of(Var("x") + Var("y"), ctx) == {"a", "b", "c"}


def test_sum_rule(ctx):
    assert shape_of(Sum("a", Var("x")), ctx) == {"b"}
    with pytest.raises(ShapeError):
        shape_of(Sum("c", Var("x")), ctx)


def test_expand_rule(ctx):
    assert shape_of(Expand("c", Var("x")), ctx) == {"a", "b", "c"}
    with pytest.raises(ShapeError):
        shape_of(Expand("a", Var("x")), ctx)
    with pytest.raises(ShapeError):
        shape_of(Expand("zzz", Var("x")), ctx)


def test_rename_rule(ctx):
    assert shape_of(Rename({"a": "c"}, Var("x")), ctx) == {"b", "c"}
    with pytest.raises(ShapeError):
        shape_of(Rename({"a": "b"}, Var("x")), ctx)  # not injective
    with pytest.raises(ShapeError):
        shape_of(Rename({"c": "a"}, Var("x")), ctx)  # source absent


def test_matrix_multiply_example(ctx):
    """Example 4.1: Σ_b(⇑_c x · ⇑_a y) has shape {a, c}."""
    e = Sum("b", Mul(Expand("c", Var("x")), Expand("a", Var("y"))))
    assert shape_of(e, ctx) == {"a", "c"}


def test_elaborate_inserts_expansions(ctx):
    e = elaborate(Var("x") * Var("y"), ctx)
    assert isinstance(e, Mul)
    # x : {a,b} gains c; y : {b,c} gains a
    assert isinstance(e.left, Expand) and e.left.attr == "c"
    assert isinstance(e.right, Expand) and e.right.attr == "a"
    assert shape_of(e, ctx) == {"a", "b", "c"}


def test_elaborate_preserves_shape(ctx):
    for expr in (
        Var("x") * Var("y"),
        Var("x") + Var("y"),
        Sum("b", Var("x") * Var("y")),
        Sum("b", Var("x")) + Var("y").sum("b", "c"),
        Var("s") * Var("x"),
    ):
        assert shape_of(elaborate(expr, ctx), ctx) == shape_of(expr, ctx)


def test_elaborate_is_idempotent_on_core(ctx):
    core = elaborate(Sum("b", Var("x") * Var("y")), ctx)
    again = elaborate(core, ctx)
    assert repr(core) == repr(again)


def test_context_validates_attributes():
    schema = Schema.of(a=None)
    with pytest.raises(ShapeError):
        TypeContext(schema, {"x": {"zzz"}})
