"""Materialization (temporaries) preserves evaluation."""

import pytest

from repro.semirings import INT
from repro.streams import (
    contract,
    evaluate,
    from_dict,
    materialize,
    mul,
)


def test_materialize_scalar_passthrough():
    assert materialize(5) == 5


def test_materialize_contracted_stream_gives_scalar():
    s = contract(from_dict(("a",), {(0,): 2, (5,): 3}, INT))
    assert materialize(s) == 5


def test_materialize_preserves_value():
    s = from_dict(("a", "b"), {(0, 1): 2, (3, 2): 7}, INT)
    m = materialize(s)
    assert evaluate(m) == evaluate(s)
    assert m.shape == s.shape


def test_materialize_transposes():
    s = from_dict(("a", "b"), {(0, 1): 2, (3, 2): 7}, INT)
    t = materialize(s, order=("b", "a"))
    assert t.shape == ("b", "a")
    assert evaluate(t) == {1: {0: 2}, 2: {3: 7}}


def test_materialize_bad_order():
    s = from_dict(("a", "b"), {(0, 1): 2}, INT)
    with pytest.raises(ValueError):
        materialize(s, order=("a", "c"))


def test_materialize_composite_stream():
    x = from_dict(("a", "b"), {(0, 1): 2, (1, 0): 3}, INT)
    y = from_dict(("a", "b"), {(0, 1): 10, (1, 0): 1}, INT)
    fused = mul(x, y, INT)
    assert evaluate(materialize(fused)) == evaluate(fused)
