"""Primitive indexed streams (Example 5.2)."""

import pytest

from repro.semirings import FLOAT, INT
from repro.streams import (
    DenseStream,
    EmptyStream,
    FunctionStream,
    SingletonStream,
    SparseStream,
    evaluate,
    expand_stream,
    from_dict,
    from_pairs,
    reachable_states,
)


def test_sparse_stream_eval():
    s = SparseStream("i", [1, 4, 7], [10, 20, 30], INT)
    assert evaluate(s) == {1: 10, 4: 20, 7: 30}
    assert s.shape == ("i",)


def test_sparse_requires_sorted_indices():
    with pytest.raises(ValueError):
        SparseStream("i", [4, 1], [1, 2], INT)
    with pytest.raises(ValueError):
        SparseStream("i", [1, 1], [1, 2], INT)
    with pytest.raises(ValueError):
        SparseStream("i", [1, 2], [1], INT)


@pytest.mark.parametrize("search", ["linear", "binary"])
def test_sparse_skip_semantics(search):
    """skip(q, i, r) lands on the least state with index >= i (> i if r)."""
    s = SparseStream("i", [1, 4, 7, 9], [1, 1, 1, 1], INT, search=search)
    assert s.skip(0, 4, False) == 1
    assert s.skip(0, 4, True) == 2
    assert s.skip(0, 5, False) == 2
    assert s.skip(0, 0, False) == 0
    assert s.skip(0, 100, False) == 4   # past the end
    assert s.skip(2, 1, False) == 2     # never goes backwards
    assert s.skip(4, 1, True) == 4      # terminal state is absorbing


def test_sparse_invalid_search():
    with pytest.raises(ValueError):
        SparseStream("i", [1], [1], INT, search="magic")


def test_dense_stream():
    s = DenseStream("i", [0, 1, 2], [5, 6, 7], INT)
    assert evaluate(s) == {0: 5, 1: 6, 2: 7}
    assert s.skip(0, 2, False) == 2
    assert s.skip(0, 2, True) == 3
    with pytest.raises(ValueError):
        DenseStream("i", [1, 0], [1, 2], INT)


def test_dense_with_noninteger_domain():
    s = DenseStream("i", [3, 10, 20], ["a", "b", "c"], INT)
    assert evaluate(s) == {3: "a", 10: "b", 20: "c"}
    assert s.skip(0, 10, False) == 1
    assert s.skip(0, 11, False) == 2


def test_function_stream_finite():
    s = FunctionStream("i", lambda i: i * i, INT, domain=[0, 2, 5])
    # 0² = 0 is a semiring zero and is pruned from the evaluation
    assert evaluate(s) == {2: 4, 5: 25}


def test_function_stream_infinite_skip():
    s = FunctionStream("i", lambda i: i + 100, INT)
    q = s.q0
    assert s.valid(q) and s.ready(q)
    q = s.skip(q, 7, False)
    assert s.index(q) == 7 and s.value(q) == 107
    q = s.skip(q, 7, True)
    assert s.index(q) == 8
    q = s.skip(q, 3, True)   # monotone: never goes backwards
    assert s.index(q) == 8


def test_expand_stream_is_constant():
    s = expand_stream("i", 42, INT, domain=[0, 1, 2])
    assert evaluate(s) == {0: 42, 1: 42, 2: 42}


def test_singleton_stream():
    s = SingletonStream("i", 5, 99, INT)
    assert evaluate(s) == {5: 99}
    assert s.skip(0, 5, False) == 0
    assert s.skip(0, 5, True) == 1
    assert s.skip(0, 6, False) == 1


def test_empty_stream():
    s = EmptyStream("i", INT)
    assert evaluate(s) == {}
    assert not s.valid(s.q0)
    assert reachable_states(s) == []
    with pytest.raises(RuntimeError):
        s.index(s.q0)


def test_from_pairs_sorts():
    s = from_pairs("i", [(5, 50), (1, 10)], INT)
    assert evaluate(s) == {1: 10, 5: 50}
    s2 = from_pairs("i", {7: 70, 2: 20}, INT)
    assert evaluate(s2) == {2: 20, 7: 70}


def test_from_dict_nested():
    data = {(0, 1): 2, (0, 2): 3, (2, 0): 4}
    s = from_dict(("a", "b"), data, INT)
    assert s.shape == ("a", "b")
    assert evaluate(s) == {0: {1: 2, 2: 3}, 2: {0: 4}}


def test_from_dict_drops_zeros():
    s = from_dict(("a",), {(0,): 0, (1,): 5}, INT)
    assert evaluate(s) == {1: 5}


def test_from_dict_scalar_case():
    assert from_dict((), {(): 7}, INT) == 7


def test_from_dict_arity_check():
    with pytest.raises(ValueError):
        from_dict(("a", "b"), {(0,): 1}, INT)


def test_reachable_states_terminates():
    s = SparseStream("i", [1, 2, 3], [1, 1, 1], INT)
    assert len(reachable_states(s)) == 3


def test_nonterminating_guard():
    s = FunctionStream("i", lambda i: 1, INT)  # infinite
    with pytest.raises(RuntimeError):
        evaluate(s, max_steps=100)
