"""Stream evaluation ⟦–⟧ (Definition 5.11) and conversions."""

import pytest

from repro.krelation import KRelation, Schema
from repro.semirings import FLOAT, INT
from repro.streams import evaluate, from_dict, from_krelation, stream_to_krelation
from repro.streams.evaluate import flatten, merge_values


def test_evaluate_scalar_leaf():
    assert evaluate(7) == 7


def test_merge_values_scalars():
    assert merge_values(INT, 2, 3) == 5


def test_merge_values_nested():
    a = {0: {1: 2}}
    b = {0: {1: 3, 2: 4}, 5: {0: 1}}
    assert merge_values(INT, a, b) == {0: {1: 5, 2: 4}, 5: {0: 1}}


def test_merge_values_type_mismatch():
    with pytest.raises(TypeError):
        merge_values(INT, {0: 1}, 3)


def test_flatten():
    nested = {0: {1: 2, 2: 3}, 4: {0: 1}}
    assert flatten(nested, 2) == {(0, 1): 2, (0, 2): 3, (4, 0): 1}
    assert flatten(7, 0) == {(): 7}


def test_prunes_zero_leaves():
    s = from_dict(("a",), {(0,): 5}, INT)
    neg = from_dict(("a",), {(0,): -5}, INT)
    from repro.streams import add

    assert evaluate(add(s, neg, INT)) == {}


def test_stream_to_krelation_roundtrip():
    schema = Schema.of(a=range(5), b=range(5))
    rel = KRelation(schema, INT, ("a", "b"), {(0, 1): 2, (3, 4): 7})
    back = stream_to_krelation(from_krelation(rel), schema)
    assert back.equal(rel)


def test_stream_to_krelation_scalar():
    schema = Schema.of(a=range(5))
    rel = KRelation(schema, INT, ("a",), {(0,): 2, (3,): 7})
    from repro.streams import contract

    out = stream_to_krelation(contract(from_krelation(rel)), schema)
    assert out.shape == ()
    assert out.total() == 9


def test_from_krelation_with_custom_order():
    schema = Schema.of(a=range(3), b=range(3))
    rel = KRelation(schema, INT, ("a", "b"), {(0, 1): 5, (2, 0): 1})
    s = from_krelation(rel, order=("b", "a"))
    assert s.shape == ("b", "a")
    assert evaluate(s) == {0: {2: 1}, 1: {0: 5}}
    with pytest.raises(ValueError):
        from_krelation(rel, order=("a", "c"))
