"""Stream combinators (Section 5.1) on hand-crafted inputs."""

import pytest

from repro.semirings import FLOAT, INT
from repro.streams import (
    STAR,
    AddStream,
    ContractStream,
    MapStream,
    MulStream,
    SingletonContract,
    add,
    contract,
    evaluate,
    expand_stream,
    from_dict,
    from_pairs,
    mul,
    rename,
    smap,
)


def vec(d):
    return from_pairs("i", d, INT)


def test_mul_intersects():
    x = vec({1: 2, 4: 3, 7: 5})
    y = vec({4: 10, 7: 1, 9: 9})
    assert evaluate(mul(x, y, INT)) == {4: 30, 7: 5}


def test_mul_empty_intersection():
    x = vec({1: 2})
    y = vec({2: 3})
    assert evaluate(mul(x, y, INT)) == {}


def test_mul_requires_matching_levels():
    x = vec({1: 2})
    y = from_pairs("j", {1: 2}, INT)
    with pytest.raises(ValueError):
        MulStream(x, y)


def test_mul_scalars():
    assert mul(3, 4, INT) == 12


def test_mul_scalar_with_stream():
    x = vec({1: 2, 3: 4})
    assert evaluate(mul(10, x, INT)) == {1: 20, 3: 40}
    assert evaluate(mul(x, 10, INT)) == {1: 20, 3: 40}


def test_add_merges():
    x = vec({1: 2, 4: 3})
    y = vec({4: 10, 9: 9})
    assert evaluate(add(x, y, INT)) == {1: 2, 4: 13, 9: 9}


def test_add_cancellation_pruned():
    x = vec({4: 3})
    y = vec({4: -3})
    assert evaluate(add(x, y, INT)) == {}


def test_add_one_empty_side():
    x = vec({})
    y = vec({2: 5})
    assert evaluate(add(x, y, INT)) == {2: 5}
    assert evaluate(add(y, x, INT)) == {2: 5}


def test_add_scalars():
    assert add(3, 4, INT) == 7


def test_add_scalar_and_stream_rejected():
    with pytest.raises(ValueError):
        add(3, vec({1: 1}), INT)


def test_contract_sums_level():
    x = vec({1: 2, 4: 3, 9: 10})
    c = contract(x)
    assert c.attr is STAR
    assert evaluate(c) == 15


def test_contract_nested():
    m = from_dict(("a", "b"), {(0, 0): 1, (0, 1): 2, (3, 1): 4}, INT)
    c = contract(m)
    assert evaluate(c) == {0: 1, 1: 6}  # summed over a, keyed by b


def test_contract_twice_rejected():
    with pytest.raises(ValueError):
        contract(contract(vec({1: 1})))


def test_mul_star_distributes():
    """(Σ_a m) · y = Σ_a (m · ⇑y): the dummy-level dispatch rule.

    m has shape (a, b); after Σ_a its stream type is * →s b →s K, and
    multiplying by the b-vector y distributes y into the dummy level.
    """
    m = from_dict(("a", "b"), {(0, 7): 2, (3, 7): 3, (3, 8): 1}, INT)
    x = contract(m)                   # shape ("b",), type * ->s b ->s K
    y = from_pairs("b", {7: 10}, INT)
    got = evaluate(mul(x, y, INT))
    assert got == {7: 50}


def test_mul_two_stars():
    x = contract(vec({1: 2, 4: 3}))   # 5
    y = contract(vec({2: 10, 3: 1}))  # 11
    assert evaluate(mul(x, y, INT)) == 55


def test_add_star_with_plain_value():
    x = contract(vec({1: 2, 4: 3}))   # 5
    assert evaluate(add(x, 7, INT)) == 12
    assert evaluate(add(7, x, INT)) == 12


def test_add_two_stars_unequal_lengths():
    x = contract(vec({1: 2, 4: 3, 5: 1}))  # 6
    y = contract(vec({9: 10}))             # 10
    assert evaluate(add(x, y, INT)) == 16


def test_singleton_contract():
    s = SingletonContract(42, INT)
    assert evaluate(s) == 42
    assert s.attr is STAR
    # skip with r=0 stays, r=1 finishes
    assert s.skip(0, STAR, False) == 0
    assert s.skip(0, STAR, True) == 1


def test_map_stream():
    x = vec({1: 2, 4: 3})
    doubled = smap(lambda v: v * 2, x, x.shape)
    assert evaluate(doubled) == {1: 4, 4: 6}


def test_rename_relabels_deeply():
    m = from_dict(("a", "b"), {(0, 1): 5}, INT)
    r = rename(m, {"a": "x", "b": "y"})
    assert r.shape == ("x", "y")
    assert r.attr == "x"
    assert evaluate(r) == {0: {1: 5}}


def test_rename_not_injective():
    m = from_dict(("a", "b"), {(0, 1): 5}, INT)
    with pytest.raises(ValueError):
        rename(m, {"a": "b"})


def test_nested_mul_matches_matrix_intersection():
    x = from_dict(("a", "b"), {(0, 1): 2, (1, 2): 3}, INT)
    y = from_dict(("a", "b"), {(0, 1): 10, (1, 0): 1}, INT)
    assert evaluate(mul(x, y, INT)) == {0: {1: 20}}


def test_nested_add_merges_rows():
    x = from_dict(("a", "b"), {(0, 1): 2}, INT)
    y = from_dict(("a", "b"), {(0, 2): 3, (1, 0): 4}, INT)
    assert evaluate(add(x, y, INT)) == {0: {1: 2, 2: 3}, 1: {0: 4}}


def test_expand_mul_performs_broadcast():
    v = vec({1: 2})
    e = expand_stream("j", v, INT)  # j level above an i-vector? no: value is v
    w = from_pairs("j", {0: 10, 5: 1}, INT)
    # e : j ->s (i ->s K); multiply at the j level with ⇑ of nothing —
    # instead check e against a finite j stream elementwise
    prod = mul(e, smap(lambda s: v, w, ("j",) + v.shape), INT)
    got = evaluate(prod)
    assert got == {0: {1: 4}, 5: {1: 4}}


def test_addstream_terminal_state():
    x = vec({1: 1})
    y = vec({2: 2})
    s = AddStream(x, y)
    assert not s.valid((1, 1))
    # skip at a terminal state is absorbing
    assert s.skip((1, 1), 5, True) == (1, 1)


def test_addstream_interleaves_in_order():
    x = vec({1: 10, 5: 50})
    y = vec({3: 30})
    s = AddStream(x, y)
    indices = [s.index(q) for q in s.states()]
    assert indices == [1, 3, 5]
