"""Soundness of the static stream-property analysis against the dynamic
checkers of Section 6 (PR 8).

Direction of soundness: a static *positive* verdict must never
contradict the dynamic checker (static "monotone" ⇒ the sampled
automaton passes ``check_monotone``, and so on).  The converse is not
required — the static pass is conservative and may reject (or decline
to certify) a stream the dynamic probe happens to pass.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.analysis.streamprops import analyze_stream, infer_stream
from repro.streams.combinators import (
    AddStream,
    ContractStream,
    MulStream,
)
from repro.streams.sources import SparseStream, from_dict
from repro.verification.checkers import (
    check_lawful,
    check_monotone,
    check_strictly_monotone,
)

from ..strategies import EXACT_SEMIRINGS, sparse_data

MAX_STEPS = 2_000


@st.composite
def stream_case(draw):
    """A small stream graph over an exactly-representable semiring."""
    name = draw(st.sampled_from(sorted(EXACT_SEMIRINGS)))
    semiring, _ = EXACT_SEMIRINGS[name]
    kind = draw(st.sampled_from(
        ("source", "mul", "add", "contract", "nested")
    ))
    if kind == "nested":
        data = draw(sparse_data(("i", "j"), max_index=6,
                                semiring=semiring, max_entries=6))
        return semiring, from_dict(("i", "j"), data, semiring)
    a = from_dict(
        ("i",),
        draw(sparse_data(("i",), max_index=6, semiring=semiring,
                         max_entries=6)),
        semiring,
    )
    if kind == "source":
        return semiring, a
    b = from_dict(
        ("i",),
        draw(sparse_data(("i",), max_index=6, semiring=semiring,
                         max_entries=6)),
        semiring,
    )
    if kind == "mul":
        return semiring, MulStream(a, b)
    if kind == "add":
        return semiring, AddStream(a, b)
    return semiring, ContractStream(a)


@settings(max_examples=60, deadline=None)
@given(stream_case())
def test_static_positive_implies_dynamic_positive(case):
    semiring, stream = case
    sig, findings = analyze_stream(stream, semiring)
    if findings:
        return  # rejected statically: nothing to contradict
    if sig.monotone:
        assert check_monotone(stream, max_steps=MAX_STEPS)
    if sig.strict:
        assert check_strictly_monotone(stream, max_steps=MAX_STEPS)
    if sig.lawful:
        assert check_lawful(stream, max_steps=MAX_STEPS)


@settings(max_examples=40, deadline=None)
@given(stream_case())
def test_clean_verdict_means_no_obligations_outstanding(case):
    """analyze_stream resolves obligations against the stream's own
    semiring: a clean verdict means every ⊕-law dependence is
    discharged, so re-resolving finds nothing new."""
    semiring, stream = case
    sig, findings = analyze_stream(stream, semiring)
    if findings:
        return
    from repro.compiler.analysis.streamprops import resolve

    assert resolve(sig, semiring) == []


@settings(max_examples=30, deadline=None)
@given(sparse_data(("i",), max_index=6, max_entries=6))
def test_declared_nonmonotone_matches_dynamic_witness(data):
    """A source that *actually* regresses its indices: the static pass
    refuses it by declaration, and the dynamic checker agrees whenever
    there are at least two entries to compare."""
    if len(data) < 2:
        return
    from repro.semirings import INT

    inds = sorted(i for (i,) in data)
    vals = [data[(i,)] for i in inds]

    class Backwards(SparseStream):
        static_properties = {
            "lawful": False, "monotone": False, "strict": False,
        }

        def index(self, q):  # regress: emit indices in reverse
            return self.inds[self.hi - 1 - (q - self.lo)]

    s = Backwards("i", inds, vals, INT)
    sig, findings = analyze_stream(s, INT)
    assert findings  # static: refused
    assert not sig.monotone
    # dynamic: the reversed index sequence is caught by the probe
    assert not check_monotone(s, max_steps=MAX_STEPS)


@settings(max_examples=30, deadline=None)
@given(sparse_data(("i",), max_index=6, max_entries=6))
def test_conservative_rejection_is_one_sided(data):
    """Static non-certification (e.g. of a hand-rolled subclass with no
    declaration) never claims a property: every flag in the signature
    is False, so there is no positive verdict to contradict."""
    from repro.semirings import INT

    inds = sorted(i for (i,) in data)
    vals = [data[(i,)] for i in inds]

    class Opaque(SparseStream):
        """Behaves exactly like SparseStream but is unknown to the
        analysis (no declaration)."""

    s = Opaque("i", inds, vals, INT)
    sig = infer_stream(s)
    assert not (sig.lawful or sig.monotone or sig.strict)
    assert sig.blames and sig.blames[0].rule == "unknown-source"
    # the dynamic checker of course passes — conservatism, not a clash
    assert check_monotone(s, max_steps=MAX_STEPS)
