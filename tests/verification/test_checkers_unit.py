"""The checkers themselves: they accept lawful streams and reject
deliberately broken ones."""

from typing import Any

from repro.semirings import INT
from repro.streams import SparseStream, from_dict, from_pairs
from repro.streams.base import Stream
from repro.verification import (
    check_lawful,
    check_monotone,
    check_strictly_monotone,
)


class BrokenSkipStream(Stream):
    """A sparse stream whose skip jumps one element too far: monotone,
    but unlawful (it discards values at indices >= the target)."""

    def __init__(self) -> None:
        super().__init__("i", ("i",), INT)
        self.inds = [1, 4, 7]
        self.vals = [10, 20, 30]

    @property
    def q0(self):
        return 0

    def valid(self, q):
        return q < 3

    def ready(self, q):
        return q < 3

    def index(self, q):
        return self.inds[q]

    def value(self, q):
        return self.vals[q]

    def skip(self, q, i, r):
        while q < 3 and (self.inds[q] < i or (r and self.inds[q] == i)):
            q += 1
        # bug: overshoot by one
        return min(q + 1, 3) if q < 3 else q


class NonMonotoneStream(Stream):
    """skip can move backwards."""

    def __init__(self) -> None:
        super().__init__("i", ("i",), INT)

    @property
    def q0(self):
        return 0

    def valid(self, q):
        return q < 3

    def ready(self, q):
        return q < 3

    def index(self, q):
        return [5, 2, 8][q]  # not monotone along the trajectory either

    def value(self, q):
        return 1

    def skip(self, q, i, r):
        return q + 1 if r else q


class RepeatingIndexStream(Stream):
    """Monotone but not strictly monotone: emits index 3 twice."""

    def __init__(self) -> None:
        super().__init__("i", ("i",), INT)

    @property
    def q0(self):
        return 0

    def valid(self, q):
        return q < 2

    def ready(self, q):
        return q < 2

    def index(self, q):
        return 3

    def value(self, q):
        return 1

    def skip(self, q, i, r):
        if not self.valid(q):
            return q
        if 3 < i or (r and 3 == i and q == 1):
            return 2
        if r and 3 == i:
            return q + 1
        return q


def test_sparse_sources_pass_all_checks():
    for search in ("linear", "binary"):
        s = SparseStream("i", [1, 4, 7], [10, 20, 30], INT, search=search)
        assert check_monotone(s)
        assert check_strictly_monotone(s)
        assert check_lawful(s)


def test_nested_sources_pass():
    s = from_dict(("a", "b"), {(0, 1): 2, (0, 3): 1, (2, 0): 4}, INT)
    assert check_monotone(s)
    assert check_strictly_monotone(s)
    assert check_lawful(s)


def test_broken_skip_detected_as_unlawful():
    s = BrokenSkipStream()
    assert not check_lawful(s)


def test_non_monotone_detected():
    assert not check_monotone(NonMonotoneStream())
    assert not check_strictly_monotone(NonMonotoneStream())


def test_repeating_index_is_monotone_but_not_strict():
    s = RepeatingIndexStream()
    assert check_monotone(s)
    assert not check_strictly_monotone(s)


def test_scalars_trivially_pass():
    assert check_monotone(5)
    assert check_strictly_monotone(5)
    assert check_lawful(5)
