"""Theorem 6.1, property-tested: ⟦–⟧ : 𝒮 → 𝒯 is a homomorphism, and
the combinators preserve lawfulness and (strict) monotonicity.

This is the executable counterpart of the paper's Lean development: the
same statements, checked on thousands of generated streams instead of
proved once and for all.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.semirings import BOOL, INT, MIN_PLUS
from repro.streams import (
    add,
    contract,
    evaluate,
    from_dict,
    from_pairs,
    mul,
)
from repro.verification import (
    check_homomorphism_add,
    check_homomorphism_contract,
    check_homomorphism_mul,
    check_lawful,
    check_monotone,
    check_strictly_monotone,
)
from tests.strategies import sparse_data

VALUES = st.integers(min_value=-9, max_value=9).filter(bool)
VEC = st.dictionaries(st.integers(min_value=0, max_value=12), VALUES, max_size=8)


def vec(d, sr=INT):
    return from_pairs("i", d, sr)


def mat(d, sr=INT):
    return from_dict(("a", "b"), d, sr)


# ----------------------------------------------------------------------
# homomorphism laws (Theorem 6.1)
# ----------------------------------------------------------------------
@given(VEC, VEC)
def test_mul_homomorphism_vectors(d1, d2):
    assert check_homomorphism_mul(vec(d1), vec(d2))


@given(VEC, VEC)
def test_add_homomorphism_vectors(d1, d2):
    assert check_homomorphism_add(vec(d1), vec(d2))


@given(VEC)
def test_contract_homomorphism_vectors(d):
    assert check_homomorphism_contract(vec(d))


@given(sparse_data(("a", "b")), sparse_data(("a", "b")))
def test_mul_homomorphism_matrices(d1, d2):
    assert check_homomorphism_mul(mat(d1), mat(d2))


@given(sparse_data(("a", "b")), sparse_data(("a", "b")))
def test_add_homomorphism_matrices(d1, d2):
    assert check_homomorphism_add(mat(d1), mat(d2))


@given(sparse_data(("a", "b")))
def test_contract_homomorphism_matrices(d):
    assert check_homomorphism_contract(mat(d))


@given(sparse_data(("a", "b"), max_entries=6), sparse_data(("a", "b"), max_entries=6))
def test_homomorphism_composes(d1, d2):
    """⟦Σ (x·y)⟧ computed on streams equals the pointwise computation —
    a composed instance like Figure 10's examples."""
    x, y = mat(d1), mat(d2)
    fused = evaluate(contract(mul(x, y, INT)))
    expected = {}
    for key in set(d1) & set(d2):
        a, b = key
        expected[b] = expected.get(b, 0) + d1[key] * d2[key]
    expected = {k: v for k, v in expected.items() if v}
    assert fused == expected


@given(VEC, VEC)
def test_mul_commutes_with_evaluation_min_plus(d1, d2):
    """The theorem is semiring-generic; spot-check a non-numeric one."""
    x = vec({k: float(v) for k, v in d1.items()}, MIN_PLUS)
    y = vec({k: float(v) for k, v in d2.items()}, MIN_PLUS)
    assert check_homomorphism_mul(x, y)


# ----------------------------------------------------------------------
# closure of the well-formedness conditions (Sections 6.1–6.2)
# ----------------------------------------------------------------------
@given(VEC, VEC)
@settings(deadline=None, max_examples=25)
def test_mul_preserves_strict_monotonicity(d1, d2):
    s = mul(vec(d1), vec(d2), INT)
    assert check_monotone(s)
    assert check_strictly_monotone(s)


@given(VEC, VEC)
@settings(deadline=None, max_examples=25)
def test_add_preserves_strict_monotonicity(d1, d2):
    s = add(vec(d1), vec(d2), INT)
    assert check_monotone(s)
    assert check_strictly_monotone(s)


@given(VEC, VEC)
@settings(deadline=None, max_examples=15)
def test_mul_is_lawful(d1, d2):
    assert check_lawful(mul(vec(d1), vec(d2), INT))


@given(VEC, VEC)
@settings(deadline=None, max_examples=15)
def test_add_is_lawful(d1, d2):
    assert check_lawful(add(vec(d1), vec(d2), INT))


@given(VEC)
@settings(deadline=None, max_examples=25)
def test_sources_are_lawful(d):
    assert check_lawful(vec(d))


@given(sparse_data(("a", "b"), max_entries=6))
@settings(deadline=None, max_examples=15)
def test_nested_streams_strictly_monotone(d):
    assert check_strictly_monotone(mat(d))


@given(VEC, VEC, VEC)
@settings(deadline=None, max_examples=20)
def test_three_way_product_equals_pairwise(d1, d2, d3):
    """x·y·z (fused, Figure 2) = (x·y)·z = x·(y·z)."""
    x, y, z = vec(d1), vec(d2), vec(d3)
    left = evaluate(mul(mul(x, y, INT), z, INT))
    right = evaluate(mul(x, mul(y, z, INT), INT))
    assert left == right


@given(VEC, VEC, VEC)
@settings(deadline=None, max_examples=20)
def test_distributivity_of_streams(d1, d2, d3):
    """⟦x·(y+z)⟧ = ⟦x·y + x·z⟧."""
    x, y, z = vec(d1), vec(d2), vec(d3)
    lhs = evaluate(mul(x, add(y, z, INT), INT))
    rhs = evaluate(add(mul(x, y, INT), mul(x, z, INT), INT))
    assert lhs == rhs
