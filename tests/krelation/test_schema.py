"""Schemas and attributes (Definition 4.2)."""

import pytest

from repro.krelation import Attribute, Schema, ShapeError


def test_attribute_basics():
    a = Attribute("i", range(5))
    assert a.finite
    assert a.cardinality == 5
    assert a.domain == (0, 1, 2, 3, 4)
    b = Attribute("j")
    assert not b.finite
    with pytest.raises(ShapeError):
        _ = b.cardinality


def test_attribute_validation():
    with pytest.raises(ValueError):
        Attribute("")
    with pytest.raises(ValueError):
        Attribute("*")
    with pytest.raises(ValueError):
        Attribute("i", [3, 1, 2])  # must be strictly increasing
    with pytest.raises(ValueError):
        Attribute("i", [1, 1, 2])  # duplicates


def test_attribute_eq_hash():
    assert Attribute("i", range(3)) == Attribute("i", range(3))
    assert Attribute("i", range(3)) != Attribute("i", range(4))
    assert len({Attribute("i", range(3)), Attribute("i", range(3))}) == 1


def test_schema_order_and_position():
    s = Schema.of(b=range(2), a=range(2), c=None)
    assert s.order == ("b", "a", "c")       # declaration order, not sorted
    assert s.position("a") == 1
    assert "c" in s
    assert len(s) == 3
    assert list(s) == ["b", "a", "c"]


def test_schema_duplicate_names():
    with pytest.raises(ValueError):
        Schema([Attribute("a"), Attribute("a")])


def test_schema_domain():
    s = Schema.of(a=range(3), b=None)
    assert s.domain("a") == (0, 1, 2)
    with pytest.raises(ShapeError):
        s.domain("b")
    with pytest.raises(ShapeError):
        s.domain("zzz")


def test_sort_shape():
    s = Schema.of(a=None, b=None, c=None)
    assert s.sort_shape({"c", "a"}) == ("a", "c")
    assert s.sort_shape(["b"]) == ("b",)
    with pytest.raises(ShapeError):
        s.sort_shape(["a", "a"])
    with pytest.raises(ShapeError):
        s.sort_shape(["q"])


def test_reorder():
    s = Schema.of(a=None, b=None)
    r = s.reorder(["b", "a"])
    assert r.order == ("b", "a")
    assert r.sort_shape({"a", "b"}) == ("b", "a")
    with pytest.raises(ValueError):
        s.reorder(["a"])
    with pytest.raises(ValueError):
        s.reorder(["a", "c"])


def test_check_shape():
    s = Schema.of(a=None, b=None)
    assert s.check_shape(["a"]) == frozenset({"a"})
    with pytest.raises(ShapeError):
        s.check_shape(["nope"])
