"""K-relations and their operations (Definitions 4.6–4.7)."""

import pytest

from repro.krelation import KRelation, Schema, ShapeError
from repro.semirings import BOOL, FLOAT, INT, NAT


@pytest.fixture
def schema():
    return Schema.of(a=range(3), b=range(3), c=range(3))


def rel(schema, shape, data, sr=INT):
    return KRelation(schema, sr, shape, data)


def test_construction_drops_zeros(schema):
    r = rel(schema, ("a",), {(0,): 1, (1,): 0, (2,): 3})
    assert r.support == {(0,): 1, (2,): 3}
    assert len(r) == 2
    assert bool(r)
    assert not bool(KRelation.zero(schema, INT, ("a",)))


def test_call_and_missing(schema):
    r = rel(schema, ("a", "b"), {(0, 1): 5})
    assert r({"a": 0, "b": 1}) == 5
    assert r({"a": 1, "b": 1}) == 0
    with pytest.raises(ShapeError):
        r({"a": 0})


def test_arity_check(schema):
    with pytest.raises(ShapeError):
        rel(schema, ("a", "b"), {(0,): 1})


def test_scalar(schema):
    s = KRelation.scalar(schema, INT, 7)
    assert s.shape == ()
    assert s({}) == 7
    assert KRelation.scalar(schema, INT, 0).support == {}


def test_from_tuples_bag_semantics(schema):
    rows = [{"a": 0}, {"a": 0}, {"a": 1}]
    bag = KRelation.from_tuples(schema, NAT, ("a",), rows)
    assert bag.support == {(0,): 2, (1,): 1}
    s = KRelation.from_tuples(schema, BOOL, ("a",), rows)
    assert s.support == {(0,): True, (1,): True}


def test_add(schema):
    x = rel(schema, ("a",), {(0,): 1, (1,): 2})
    y = rel(schema, ("a",), {(1,): -2, (2,): 3})
    z = x.add(y)
    assert z.support == {(0,): 1, (2,): 3}  # (1,) cancels exactly


def test_mul_intersects(schema):
    x = rel(schema, ("a",), {(0,): 2, (1,): 3})
    y = rel(schema, ("a",), {(1,): 5, (2,): 7})
    assert x.mul(y).support == {(1,): 15}


def test_pointwise_shape_mismatch(schema):
    x = rel(schema, ("a",), {(0,): 1})
    y = rel(schema, ("b",), {(0,): 1})
    with pytest.raises(ShapeError):
        x.add(y)
    with pytest.raises(ShapeError):
        x.mul(y)


def test_contract(schema):
    x = rel(schema, ("a", "b"), {(0, 0): 1, (0, 1): 2, (1, 0): 3})
    c = x.contract("b")
    assert c.shape == ("a",)
    assert c.support == {(0,): 3, (1,): 3}
    with pytest.raises(ShapeError):
        x.contract("c")


def test_contract_cancellation(schema):
    x = rel(schema, ("a", "b"), {(0, 0): 1, (0, 1): -1})
    assert x.contract("b").support == {}


def test_expand(schema):
    x = rel(schema, ("a",), {(1,): 5})
    e = x.expand("b")
    assert e.shape == ("a", "b")
    assert e.support == {(1, 0): 5, (1, 1): 5, (1, 2): 5}
    with pytest.raises(ShapeError):
        x.expand("a")


def test_expand_then_contract_scales(schema):
    x = rel(schema, ("a",), {(1,): 5})
    back = x.expand("b").contract("b")
    assert back.support == {(1,): 15}  # |I_b| = 3 copies


def test_rename(schema):
    x = rel(schema, ("a",), {(1,): 5})
    y = x.rename({"a": "c"})
    assert y.shape == ("c",)
    assert y.support == {(1,): 5}


def test_rename_not_injective(schema):
    x = rel(schema, ("a", "b"), {(0, 1): 1})
    with pytest.raises(ShapeError):
        x.rename({"a": "b"})


def test_partial(schema):
    x = rel(schema, ("a", "b"), {(0, 1): 5, (1, 1): 7})
    p = x.partial("a", 0)
    assert p.shape == ("b",)
    assert p.support == {(1,): 5}
    with pytest.raises(ShapeError):
        x.partial("c", 0)


def test_join_is_natural_join(schema):
    x = rel(schema, ("a", "b"), {(0, 1): 2, (1, 2): 3})
    y = rel(schema, ("b", "c"), {(1, 0): 5, (2, 2): 7})
    j = x.join(y)
    assert j.shape == ("a", "b", "c")
    assert j.support == {(0, 1, 0): 10, (1, 2, 2): 21}


def test_join_no_shared_attrs_is_product(schema):
    x = rel(schema, ("a",), {(0,): 2})
    y = rel(schema, ("b",), {(1,): 3})
    assert x.join(y).support == {(0, 1): 6}


def test_join_matches_expand_mul(schema):
    x = rel(schema, ("a", "b"), {(0, 1): 2, (1, 2): 3})
    y = rel(schema, ("b", "c"), {(1, 0): 5, (1, 2): 1})
    via_join = x.join(y)
    via_expand = x.expand("c").mul(y.expand("a"))
    assert via_join.equal(via_expand)


def test_total(schema):
    x = rel(schema, ("a", "b"), {(0, 1): 2, (1, 2): 3})
    assert x.total() == 5


def test_to_dense(schema):
    x = rel(schema, ("a",), {(1,): 5})
    assert x.to_dense() == [0, 5, 0]
    m = rel(schema, ("a", "b"), {(0, 2): 1})
    dense = m.to_dense()
    assert dense[0][2] == 1 and dense[1][1] == 0


def test_reorder_like():
    s1 = Schema.of(a=range(2), b=range(2))
    s2 = s1.reorder(["b", "a"])
    x = KRelation(s1, INT, ("a", "b"), {(0, 1): 5})
    y = KRelation(s2, INT, ("a", "b"), {})
    moved = x.reorder_like(y)
    assert moved.shape == ("b", "a")
    assert moved.support == {(1, 0): 5}


def test_equal_uses_semiring_eq(schema):
    x = rel(schema, ("a",), {(0,): 0.1 + 0.2}, sr=FLOAT)
    y = rel(schema, ("a",), {(0,): 0.3}, sr=FLOAT)
    assert x.equal(y)


def test_repr_truncates(schema):
    x = rel(schema, ("a", "b"), {(i, j): 1 for i in range(3) for j in range(3)})
    assert "total" in repr(x)
