"""Property tests: K-relation algebra laws, checked on the free
semiring N[X] where possible so they transfer to every semiring."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.krelation import KRelation, Schema
from repro.semirings import INT, NAT, PROVENANCE
from repro.semirings.provenance import Polynomial
from tests.strategies import sparse_data

SCHEMA = Schema.of(a=range(8), b=range(8), c=range(8))


def krel(shape, data, sr=INT):
    return KRelation(SCHEMA, sr, shape, data)


@given(sparse_data(("a", "b")), sparse_data(("a", "b")))
def test_add_commutative(d1, d2):
    x, y = krel(("a", "b"), d1), krel(("a", "b"), d2)
    assert x.add(y).equal(y.add(x))


@given(sparse_data(("a", "b")), sparse_data(("a", "b")), sparse_data(("a", "b")))
def test_add_associative(d1, d2, d3):
    x, y, z = (krel(("a", "b"), d) for d in (d1, d2, d3))
    assert x.add(y).add(z).equal(x.add(y.add(z)))


@given(sparse_data(("a", "b")), sparse_data(("a", "b")), sparse_data(("a", "b")))
def test_mul_distributes_over_add(d1, d2, d3):
    x, y, z = (krel(("a", "b"), d) for d in (d1, d2, d3))
    assert x.mul(y.add(z)).equal(x.mul(y).add(x.mul(z)))


@given(sparse_data(("a", "b")), sparse_data(("b", "c")))
def test_join_contract_is_matrix_product(d1, d2):
    """Σ_b (x ⋈ y) computed two ways: via join, and by explicit sums."""
    x = krel(("a", "b"), d1)
    y = krel(("b", "c"), d2)
    got = x.join(y).contract("b")
    expected = {}
    for (a, b), v in d1.items():
        for (b2, c), w in d2.items():
            if b == b2:
                expected[(a, c)] = expected.get((a, c), 0) + v * w
    want = krel(("a", "c"), {k: v for k, v in expected.items() if v != 0})
    assert got.equal(want)


@given(sparse_data(("a", "b")), sparse_data(("b", "c")), sparse_data(("a", "c")))
def test_join_associative(d1, d2, d3):
    x = krel(("a", "b"), d1)
    y = krel(("b", "c"), d2)
    z = krel(("a", "c"), d3)
    assert x.join(y).join(z).equal(x.join(y.join(z)))


@given(sparse_data(("a", "b")))
def test_contract_order_irrelevant(d):
    x = krel(("a", "b"), d)
    assert x.contract("a").contract("b").equal(x.contract("b").contract("a"))


@given(sparse_data(("a",)))
def test_expand_contract_roundtrip_scales_by_domain(d):
    x = krel(("a",), d)
    n = len(SCHEMA.domain("b"))
    scaled = krel(("a",), {k: v * n for k, v in d.items()})
    assert x.expand("b").contract("b").equal(scaled)


@given(sparse_data(("a", "b")))
def test_rename_roundtrip(d):
    x = krel(("a", "b"), d)
    assert x.rename({"a": "c"}).rename({"c": "a"}).equal(x)


@given(sparse_data(("a", "b"), max_entries=6))
def test_partial_application_recovers_relation(d):
    """Summing partial applications over the domain equals contraction
    (the semantics of Σ in Figure 4c)."""
    x = krel(("a", "b"), d)
    total = KRelation.zero(SCHEMA, INT, ("b",))
    for i in SCHEMA.domain("a"):
        total = total.add(x.partial("a", i))
    assert total.equal(x.contract("a"))


@given(sparse_data(("a", "b"), max_entries=5), sparse_data(("a", "b"), max_entries=5))
def test_laws_transfer_to_provenance(d1, d2):
    """Run the same data through N[X]: every identity that holds there
    holds in all semirings (Green et al.)."""
    x = KRelation(
        SCHEMA, PROVENANCE, ("a", "b"),
        {k: Polynomial.constant(abs(v)) for k, v in d1.items() if v},
    )
    y = KRelation(
        SCHEMA, PROVENANCE, ("a", "b"),
        {k: Polynomial.constant(abs(v)) for k, v in d2.items() if v},
    )
    assert x.mul(y).equal(y.mul(x))
    assert x.add(y).equal(y.add(x))
