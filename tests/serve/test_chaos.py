"""Chaos: crashing kernels behind the full serving stack.

The fault hook sabotages the native kernel handle of every *einsum*
kernel the server builds for the poisoned spec, so supervised children
genuinely segfault.  The expected ladder:

request 1: crash → one replay on the retry loop → crash → 500
request 2: crash → breaker trips at the threshold → the in-flight
           retry transparently serves the pure-Python fallback → 200
request 3+: rejected at admission — 503 + Retry-After, no compile,
           no fork (the breaker gate fires on the cache key alone)
"""

from __future__ import annotations

import time

from tests.faults.crash_kernels import SegfaultKernel
from tests.serve.harness import einsum_query

POISON_SPEC = "ij,jk->ik"
HEALTHY_SPEC = "i,i->"


def _poison_hook(kernel):
    if kernel.name.startswith("einsum_ij_jk") and not isinstance(
            kernel._kernel, SegfaultKernel):
        kernel._kernel = SegfaultKernel()


def test_crash_ladder_to_breaker_rejection(make_server, monkeypatch):
    monkeypatch.setenv("REPRO_BREAKER_THRESHOLD", "3")
    server = make_server(
        fault_hook=_poison_hook, deadline=10.0, retries=2, qps=0.0,
    )

    # request 1: crash + one replay = two crashes, then a typed 500
    first = server.query(einsum_query(POISON_SPEC), timeout=30)
    assert first.status == 500
    assert first.json["type"] == "KernelCrashError"

    # request 2: third crash trips the breaker mid-retry; the replay
    # lands on an open breaker and serves the Python fallback
    second = server.query(einsum_query(POISON_SPEC), timeout=30)
    assert second.status == 200
    assert second.json["result"]["kind"] == "tensor"

    # request 3: shed at admission with the breaker's own ETA
    t0 = time.monotonic()
    third = server.query(einsum_query(POISON_SPEC), timeout=10)
    shed_ms = (time.monotonic() - t0) * 1e3
    assert third.status == 503
    assert third.retry_after is not None and third.retry_after >= 1
    assert "breaker" in third.json["error"]
    # rejection happens pre-compile/pre-fork: it must be near-instant
    assert shed_ms < 500

    # a different kernel is unaffected by the quarantined one
    healthy = server.query(einsum_query(HEALTHY_SPEC), timeout=30)
    assert healthy.status == 200

    stats = server.request("GET", "/stats").json
    assert any(rec["open"] for rec in stats["breaker"].values())


def test_degrade_fallback_serves_python_twin(make_server, monkeypatch):
    """REPRO_SERVE_DEGRADE=fallback admits quarantined kernels and lets
    Kernel.run serve the memory-safe twin instead of shedding."""
    monkeypatch.setenv("REPRO_BREAKER_THRESHOLD", "1")
    server = make_server(
        fault_hook=_poison_hook, degrade="fallback", retries=1,
    )
    first = server.query(einsum_query(POISON_SPEC), timeout=30)
    assert first.status == 200      # crash trips breaker; replay → fallback
    follow = server.query(einsum_query(POISON_SPEC), timeout=30)
    assert follow.status == 200
    stats = server.request("GET", "/stats").json
    assert stats["counters"]["rejected"] == 0


def test_crashes_do_not_leak_processes_or_shm(make_server, monkeypatch):
    import multiprocessing
    from pathlib import Path

    def shm_litter():
        shm = Path("/dev/shm")
        if not shm.exists():
            return set()
        return {p.name for p in shm.glob("repro_*")}

    before = shm_litter()
    monkeypatch.setenv("REPRO_BREAKER_THRESHOLD", "2")
    server = make_server(fault_hook=_poison_hook, retries=1)
    for _ in range(3):
        server.query(einsum_query(POISON_SPEC), timeout=30)
    clean = server.stop()
    assert clean is True
    deadline = time.monotonic() + 10
    while multiprocessing.active_children() and time.monotonic() < deadline:
        time.sleep(0.05)
    assert multiprocessing.active_children() == []
    assert shm_litter() <= before
