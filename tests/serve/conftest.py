"""Fixtures for the serving suite.

Same isolation discipline as the runtime/fault suites — per-test kernel
cache, fresh breaker state, pool teardown — plus a server factory that
guarantees every booted server is drained before the test ends.
"""

from __future__ import annotations

import pytest

from repro.compiler import cache as cache_mod
from repro.compiler import codegen_c
from repro.compiler import kernel as kernel_mod
from repro.compiler import resilience
from repro.compiler.cache import KernelCache
from repro.runtime import breaker as breaker_mod

from tests.serve.harness import ServerHarness


@pytest.fixture(autouse=True)
def isolated_build_state(tmp_path, monkeypatch):
    cache_dir = tmp_path / "kcache"
    monkeypatch.setenv(cache_mod.ENV_CACHE_DIR, str(cache_dir))
    monkeypatch.setattr(codegen_c, "_CACHE", {})
    kc = KernelCache(cache_dir=cache_dir)
    monkeypatch.setattr(kernel_mod, "kernel_cache", kc)
    resilience.reset_probe_cache()
    breaker_mod.breaker.reset()
    yield
    breaker_mod.breaker.reset()
    resilience.reset_probe_cache()
    from repro.runtime import pool as pool_mod

    pool_mod.shutdown_shared_pool()


@pytest.fixture
def make_server():
    """Factory: boot a ServerHarness, always drained at teardown."""
    from repro.serve.config import ServeConfig

    harnesses = []

    def boot(**overrides) -> ServerHarness:
        overrides.setdefault("port", 0)
        overrides.setdefault("deadline", 15.0)
        harness = ServerHarness(ServeConfig(**overrides)).start()
        harnesses.append(harness)
        return harness

    yield boot
    for harness in harnesses:
        if harness.server is not None and harness._thread.is_alive():
            try:
                harness.stop()
            except Exception:
                pass
