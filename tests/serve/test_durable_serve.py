"""Durable jobs behind the serving stack: job ids, memory-aware
admission, and resume across a server restart.

The in-process harness shares the test's environment, so
``REPRO_FAULT`` genuinely interrupts the server's own sharded run and
``REPRO_JOB_DIR`` is the journal both "server generations" see —
killing server A mid-job and re-POSTing the identical query at server
B exercises the real resume path end to end.
"""

from __future__ import annotations

import pytest

from repro.compiler import resilience

from tests.serve.harness import einsum_query

#: a spec big enough that the planner actually shards it
SPEC = "ij,jk->ik"
N = 8


@pytest.fixture(autouse=True)
def durable_env(tmp_path, monkeypatch):
    """Deterministic sharding + isolated journal root for every test."""
    monkeypatch.setenv("REPRO_WORKERS", "4")
    monkeypatch.setenv("REPRO_JOB_DIR", str(tmp_path / "jobs"))
    resilience.reset_fault_counters()
    yield
    resilience.reset_fault_counters()


def _jobs(tmp_path):
    root = tmp_path / "jobs"
    return sorted(root.glob("job_*")) if root.exists() else []


def test_durable_query_reports_job_id(make_server):
    server = make_server(tune="off")
    resp = server.query(einsum_query(SPEC, n=N, durable=True), timeout=60)
    assert resp.status == 200
    meta = resp.json["meta"]
    assert meta["job_id"].startswith("job_")
    assert meta["resumed_shards"] == 0
    assert meta["spills"] == 0


def test_non_durable_query_has_no_job_id(make_server):
    server = make_server(tune="off")
    resp = server.query(einsum_query(SPEC, n=N), timeout=60)
    assert resp.status == 200
    assert "job_id" not in resp.json["meta"]


def test_bad_durable_flag_is_a_400(make_server):
    server = make_server(tune="off")
    resp = server.query(einsum_query(SPEC, n=N, durable="yes"), timeout=30)
    assert resp.status == 400
    assert "durable" in resp.json["error"]


def test_resume_across_server_restart(tmp_path, make_server, monkeypatch):
    doc = einsum_query(SPEC, n=N, durable=True)

    # generation A dies mid-job: the injected fault fires after the
    # first shard partial is journaled and surfaces as a typed 500
    server_a = make_server(tune="off", retries=0)
    monkeypatch.setenv(resilience.ENV_FAULT, "shard:raise")
    resilience.reset_fault_counters()
    crashed = server_a.query(doc, timeout=60)
    assert crashed.status == 500
    assert crashed.json["type"] == "InjectedFault"
    assert _jobs(tmp_path), "the dead job must leave its journal behind"
    monkeypatch.delenv(resilience.ENV_FAULT)
    resilience.reset_fault_counters()
    assert server_a.stop() is True

    # generation B adopts the journal on the identical query
    server_b = make_server(tune="off")
    resumed = server_b.query(doc, timeout=60)
    assert resumed.status == 200
    meta = resumed.json["meta"]
    assert meta["resumed_shards"] >= 1
    assert not _jobs(tmp_path), "journal discarded after the merge"

    # and the resumed result equals a fresh, uninterrupted run's
    fresh = server_b.query(doc, timeout=60)
    assert fresh.status == 200
    assert fresh.json["result"] == resumed.json["result"]


# ----------------------------------------------------------------------
# memory-aware admission
# ----------------------------------------------------------------------
def test_footprint_over_budget_is_shed_with_503(make_server, monkeypatch):
    monkeypatch.setenv(resilience.ENV_MEM_BUDGET_MB, "0.000001")
    server = make_server(tune="off")
    resp = server.query(einsum_query(SPEC, n=N), timeout=30)
    assert resp.status == 503
    assert "memory budget" in resp.json["error"]
    assert resp.retry_after is not None and resp.retry_after >= 1.0


def test_degrade_spill_admits_over_budget_as_durable(
        make_server, monkeypatch):
    monkeypatch.setenv(resilience.ENV_MEM_BUDGET_MB, "0.000001")
    server = make_server(tune="off", degrade="spill")
    resp = server.query(einsum_query(SPEC, n=N), timeout=60)
    assert resp.status == 200
    meta = resp.json["meta"]
    assert meta["job_id"].startswith("job_")   # durable was forced
    assert meta["spills"] >= 1                 # and the governor spilled


def test_under_budget_queries_admit_normally(make_server, monkeypatch):
    monkeypatch.setenv(resilience.ENV_MEM_BUDGET_MB, "4096")
    server = make_server(tune="off")
    resp = server.query(einsum_query(SPEC, n=N), timeout=60)
    assert resp.status == 200
    assert "job_id" not in resp.json["meta"]
