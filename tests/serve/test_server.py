"""End-to-end server behavior over real sockets."""

from __future__ import annotations

import json
import socket
import threading
import time

import pytest

from tests.serve.harness import einsum_query, http_request


def test_health_ready_stats(make_server):
    server = make_server()
    assert server.request("GET", "/healthz").json == {"ok": True}
    assert server.request("GET", "/readyz").json == {"ready": True}
    stats = server.request("GET", "/stats").json
    assert stats["state"] == "ready"
    assert stats["inflight"] == 0
    assert server.request("GET", "/nope").status == 404
    assert server.request("PUT", "/query").status == 405


def test_einsum_query_roundtrip(make_server):
    server = make_server()
    resp = server.query(einsum_query())
    assert resp.status == 200
    body = resp.json
    assert body["result"]["kind"] == "tensor"
    assert body["result"]["attrs"] == ["i", "k"]
    assert body["meta"]["kernel_key"]
    # the second identical query hits the build cache: same key, faster
    again = server.query(einsum_query())
    assert again.json["result"] == body["result"]


def test_sql_query_roundtrip(make_server):
    server = make_server()
    resp = server.query({
        "kind": "sql",
        "query": "SELECT a FROM t WHERE b > 1",
        "tables": {"t": {"columns": ["a", "b"], "rows": [[1, 2], [3, 0]]}},
    })
    assert resp.status == 200
    assert resp.json["result"]["rows"] == [[1]]


def test_bad_requests_are_400(make_server):
    server = make_server()
    assert server.query({"kind": "einsum"}).status == 400
    assert server.query({"kind": "wat"}).status == 400
    bad_shape = einsum_query()
    bad_shape["operands"][0]["dims"] = [2, 2]
    bad_shape["operands"][1]["dims"] = [9, 9]
    assert server.query(bad_shape).status == 400
    raw = http_request(server.port, "POST", "/query", timeout=10)
    assert raw.status == 400      # empty body is not JSON


def test_rate_limit_sheds_with_retry_after(make_server):
    server = make_server(qps=0.5, burst=1)
    first = server.query(einsum_query())
    assert first.status == 200
    shed = server.query(einsum_query())
    assert shed.status == 429
    assert shed.retry_after is not None and shed.retry_after >= 1


def test_identical_concurrent_queries_coalesce(make_server):
    server = make_server()
    server.query(einsum_query(seed=9))        # warm the build cache
    results = []

    def fire():
        results.append(server.query(einsum_query(seed=9), timeout=30))

    threads = [threading.Thread(target=fire) for _ in range(6)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert all(r.status == 200 for r in results)
    payloads = {json.dumps(r.json["result"], sort_keys=True) for r in results}
    assert len(payloads) == 1
    stats = server.request("GET", "/stats").json
    assert stats["coalesced"] >= 1
    assert any(r.json["meta"]["coalesced"] for r in results)


def test_compatible_queries_batch(make_server):
    server = make_server(batch_window=0.15, batch_max=8)
    server.query(einsum_query(seed=0))        # warm build outside the window
    results = {}

    def fire(seed):
        results[seed] = server.query(einsum_query(seed=seed), timeout=30)

    threads = [threading.Thread(target=fire, args=(s,)) for s in (11, 12, 13)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert all(r.status == 200 for r in results.values())
    stats = server.request("GET", "/stats").json
    assert stats["batches"] >= 1
    assert stats["batched_items"] >= 3
    # batched answers must equal the unbatched oracle, item by item
    for seed, resp in results.items():
        oracle = server.query(einsum_query(seed=seed))
        assert oracle.json["result"] == resp.json["result"]


def test_deadline_budget_times_out_spinning_kernel(make_server):
    from tests.faults.crash_kernels import SpinKernel

    def sabotage(kernel):
        if not isinstance(kernel._kernel, SpinKernel):
            kernel._kernel = SpinKernel()

    server = make_server(fault_hook=sabotage, deadline=8.0, retries=0)
    t0 = time.monotonic()
    resp = server.query(einsum_query(deadline_ms=900), timeout=30)
    elapsed = time.monotonic() - t0
    assert resp.status == 504
    assert resp.retry_after is not None
    assert elapsed < 6.0      # killed by the budget, not the 8s default
    stats = server.request("GET", "/stats").json
    assert stats["counters"]["timed_out"] == 1


def test_large_result_streams_chunked(make_server):
    server = make_server(stream_threshold=50)
    n = 12     # 12×12 dense product → 144 entries > 50
    doc = {
        "kind": "einsum", "spec": "ij,jk->ik",
        "operands": [
            {"entries": [[[i, j], 1.0] for i in range(n) for j in range(n)],
             "dims": [n, n]},
            {"entries": [[[i, j], 1.0] for i in range(n) for j in range(n)],
             "dims": [n, n]},
        ],
    }
    resp = server.query(doc, timeout=60)
    assert resp.status == 200
    assert resp.headers.get("transfer-encoding") == "chunked"
    assert resp.frames[0]["streaming"] is True
    assert resp.frames[0]["nnz"] == n * n
    assert resp.frames[-1]["done"] is True
    entries = [e for f in resp.frames for e in f.get("entries", [])]
    assert len(entries) == n * n
    assert all(e[2] == float(n) for e in entries)


def test_draining_server_rejects_then_finishes(make_server):
    server = make_server()
    server.query(einsum_query())      # warm
    server.server.lifecycle.state = "draining"
    resp = server.query(einsum_query())
    assert resp.status == 503
    assert resp.headers.get("connection") == "close"
    server.server.lifecycle.state = "ready"
    assert server.query(einsum_query()).status == 200


def test_graceful_stop_waits_for_inflight(make_server):
    server = make_server(drain=10.0)
    server.query(einsum_query())      # warm the kernel
    statuses = []

    def slow_query():
        statuses.append(server.query(einsum_query(seed=5), timeout=30).status)

    t = threading.Thread(target=slow_query)
    t.start()
    time.sleep(0.05)                  # let it get admitted
    clean = server.stop()
    t.join(timeout=20)
    assert clean is True
    assert statuses == [200]


def test_slow_client_does_not_park_the_server(make_server):
    """A client that stops reading mid-stream is cut off within the
    write timeout, and the server keeps answering others."""
    server = make_server(stream_threshold=10, write_timeout=0.5)
    n = 60    # big enough to overflow every socket buffer in the path
    doc = {
        "kind": "einsum", "spec": "ij,jk->ik",
        "operands": [
            {"entries": [[[i, j], 1.0] for i in range(n) for j in range(n)],
             "dims": [n, n]},
            {"entries": [[[i, j], 1.0] for i in range(n) for j in range(n)],
             "dims": [n, n]},
        ],
    }
    payload = json.dumps(doc).encode()
    s = socket.create_connection(("127.0.0.1", server.port), timeout=10)
    s.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 2048)
    head = (f"POST /query HTTP/1.1\r\nHost: t\r\n"
            f"Content-Length: {len(payload)}\r\n\r\n")
    s.sendall(head.encode() + payload)
    s.recv(512)               # read a little, then stall
    time.sleep(2.0)           # well past write_timeout
    healthy = server.request("GET", "/healthz", timeout=5)
    assert healthy.status == 200
    quick = server.query(einsum_query(), timeout=30)
    assert quick.status == 200
    s.close()
