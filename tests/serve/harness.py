"""Test harness: run the server on a background event loop, speak
plain-socket HTTP/1.1 at it from the test thread.

No external HTTP client library exists in this environment, so the
client half is a deliberately small hand parser — Content-Length and
chunked framing only, which is exactly what the server emits.
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.serve.app import ContractionServer
from repro.serve.config import ServeConfig


@dataclass
class Response:
    status: int
    headers: Dict[str, str]
    body: bytes
    #: NDJSON frames when the response streamed (chunked), else []
    frames: List[Any] = field(default_factory=list)

    @property
    def json(self) -> Any:
        return json.loads(self.body.decode())

    @property
    def retry_after(self) -> Optional[float]:
        value = self.headers.get("retry-after")
        return None if value is None else float(value)


def _read_response(f) -> Response:
    status_line = f.readline()
    if not status_line:
        raise ConnectionError("server closed before responding")
    status = int(status_line.split()[1])
    headers: Dict[str, str] = {}
    while True:
        line = f.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode().partition(":")
        headers[name.strip().lower()] = value.strip()
    if headers.get("transfer-encoding") == "chunked":
        body = b""
        while True:
            size_line = f.readline().strip()
            size = int(size_line, 16)
            if size == 0:
                f.readline()
                break
            body += f.read(size)
            f.readline()
        frames = [json.loads(ln) for ln in body.splitlines() if ln.strip()]
        return Response(status, headers, body, frames)
    length = int(headers.get("content-length", "0") or 0)
    body = f.read(length) if length else b""
    return Response(status, headers, body)


def http_request(
    port: int,
    method: str,
    target: str,
    body: Any = None,
    timeout: float = 30.0,
) -> Response:
    payload = b"" if body is None else json.dumps(body).encode()
    with socket.create_connection(("127.0.0.1", port), timeout=timeout) as s:
        head = (
            f"{method} {target} HTTP/1.1\r\nHost: t\r\n"
            f"Content-Length: {len(payload)}\r\nConnection: close\r\n\r\n"
        )
        s.sendall(head.encode() + payload)
        with s.makefile("rb") as f:
            return _read_response(f)


class ServerHarness:
    """A live server on its own thread + loop; stop() drains it."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.server: Optional[ContractionServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._failure: Optional[BaseException] = None

    def start(self) -> "ServerHarness":
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=20):
            raise RuntimeError(f"server failed to start: {self._failure}")
        if self._failure is not None:
            raise RuntimeError(str(self._failure))
        return self

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        try:
            self.server = ContractionServer(self.config)
            self._loop.run_until_complete(self.server.start())
        except BaseException as exc:  # surfaced to start()
            self._failure = exc
            self._ready.set()
            return
        self._ready.set()
        self._loop.run_forever()
        # drain any cleanup scheduled by stop() before closing
        pending = asyncio.all_tasks(self._loop)
        if pending:
            self._loop.run_until_complete(
                asyncio.gather(*pending, return_exceptions=True))
        self._loop.close()

    @property
    def port(self) -> int:
        return self.server.port

    def stop(self, timeout: float = 60.0) -> bool:
        """Graceful drain from the test thread; True on a clean drain."""
        fut = asyncio.run_coroutine_threadsafe(self.server.stop(), self._loop)
        clean = fut.result(timeout=timeout)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=20)
        return clean

    def request(self, method: str, target: str, body: Any = None,
                timeout: float = 30.0) -> Response:
        return http_request(self.port, method, target, body, timeout)

    def query(self, body: Any, timeout: float = 30.0) -> Response:
        return self.request("POST", "/query", body, timeout)


def einsum_query(
    spec: str = "ij,jk->ik",
    *,
    n: int = 4,
    seed: int = 0,
    deadline_ms: Optional[float] = None,
    **extra: Any,
) -> Dict[str, Any]:
    """A small deterministic einsum request document."""
    import random

    rng = random.Random(seed)
    operands = []
    for letters in spec.split("->")[0].split(","):
        entries = [
            [[rng.randrange(n) for _ in letters], round(rng.uniform(1, 9), 3)]
            for _ in range(n)
        ]
        operands.append({"entries": entries, "dims": [n] * len(letters)})
    doc: Dict[str, Any] = {"kind": "einsum", "spec": spec,
                           "operands": operands}
    if deadline_ms is not None:
        doc["deadline_ms"] = deadline_ms
    doc.update(extra)
    return doc
