"""Pre-execution validation failures are the client's fault: 400 with a
typed body, never a generic 500 (PR 8 regression).

Two windows exist for a request to be proven ill-formed:

* at admission — ``prepare_request`` canonicalizes and computes the
  kernel key, which runs shape checking and the static stream-property
  lint; and
* after admission but before any result exists — some shape contracts
  (e.g. the workspace requirement for an out-of-order sparse output)
  only trigger when the kernel is actually built.

Both must surface as 400.  The second was the regression: a deferred
:class:`ShapeError` fell through to the generic ``ReproError`` → 500
branch even though retrying the request can never succeed.
"""

from __future__ import annotations

import json

from tests.serve.harness import einsum_query


def _body(resp) -> dict:
    return json.loads(resp.body.decode())


class TestPostAdmissionValidation:
    def test_deferred_shape_error_is_400(self, make_server):
        """'ab,ac->bc' with a ('sparse','sparse') output passes
        admission (shapes agree) but the builder's workspace check
        raises ShapeError at compile time — the client must see 400
        with the typed error, not a 500."""
        harness = make_server()
        doc = einsum_query("ab,ac->bc", output_formats=["sparse", "sparse"])
        resp = harness.query(doc)
        assert resp.status == 400, resp.body
        body = _body(resp)
        assert body["type"] == "ShapeError"
        assert "sparse" in body["error"]

    def test_deferred_shape_error_counts_as_failed_not_crash(self, make_server):
        harness = make_server()
        doc = einsum_query("ab,ac->bc", output_formats=["sparse", "sparse"])
        harness.query(doc)
        stats = _body(harness.request("GET", "/stats"))
        counters = stats.get("counters", stats)
        assert counters.get("failed", 0) >= 1


class TestAdmissionPropertyLint:
    def test_well_formed_query_unaffected(self, make_server):
        harness = make_server()
        resp = harness.query(einsum_query())
        assert resp.status == 200, resp.body

    def test_stream_property_diagnostic_shape(self):
        """The machine-readable diagnostic the server returns for a
        StreamPropertyError: error text, type, and one blame record
        per finding with the offending node named."""
        from repro.errors import StreamPropertyError
        from repro.compiler.analysis.streamprops import Blame

        exc = StreamPropertyError(
            "verification failed",
            kernel="q",
            findings=[
                Blame(node="Σ_i", path="expr/Σ_i", rule="sum-bounded",
                      prop="terminating", detail="unbounded level"),
            ],
        )
        diag = exc.diagnostic()
        assert diag["type"] == "StreamPropertyError"
        assert diag["kernel"] == "q"
        assert diag["findings"] == [{
            "node": "Σ_i",
            "path": "expr/Σ_i",
            "rule": "sum-bounded",
            "property": "terminating",
            "detail": "unbounded level",
        }]

    def test_server_maps_stream_property_error_to_400(self, make_server, monkeypatch):
        """Force the admission path to raise StreamPropertyError and
        check the full diagnostic body comes back on a 400."""
        import repro.serve.app as app_mod
        from repro.compiler.analysis.streamprops import Blame
        from repro.errors import StreamPropertyError

        def reject(doc, *args, **kwargs):
            raise StreamPropertyError(
                "pipeline not lawful",
                kernel="evil",
                findings=[
                    Blame(node="Σ_i", path="expr/Σ_i", rule="sum-bounded",
                          prop="terminating", detail="diverges"),
                ],
            )

        monkeypatch.setattr(app_mod, "prepare_request", reject)
        harness = make_server()
        resp = harness.query(einsum_query())
        assert resp.status == 400, resp.body
        body = _body(resp)
        assert body["type"] == "StreamPropertyError"
        assert body["findings"][0]["node"] == "Σ_i"
        assert body["findings"][0]["rule"] == "sum-bounded"
