"""``explain=true`` on ``POST /query``: the response meta carries the
autotuner's verdict — and the full explain payload only when asked.
"""

from __future__ import annotations

import pytest

from repro.autotune import reset_profile_cache
from repro.autotune.decisions import decision_cache
from repro.compiler import resilience

from tests.serve.harness import einsum_query


@pytest.fixture(autouse=True)
def isolated_tune_state(tmp_path, monkeypatch):
    monkeypatch.setenv(resilience.ENV_TUNE_CACHE_DIR, str(tmp_path / "tcache"))
    monkeypatch.delenv(resilience.ENV_TUNE_CALIBRATE, raising=False)
    reset_profile_cache()
    decision_cache.clear_memo()
    yield
    reset_profile_cache()
    decision_cache.clear_memo()


def test_explain_surfaces_the_tuned_plan(make_server):
    server = make_server()          # ServeConfig defaults: tune="auto"
    resp = server.query(einsum_query(explain=True), timeout=60)
    assert resp.status == 200
    meta = resp.json["meta"]

    # the one-line tune summary rides on every tuned response
    tune = meta["tune"]
    assert tune["cache"] in ("miss", "stale")
    assert tune["search"] in ("linear", "binary")
    assert isinstance(tune["predicted_ms"], (int, float))

    # the full payload only under explain=true
    explain = meta["explain"]
    assert explain["signature"] == tune_signature(explain)
    assert explain["considered"] > 1
    assert explain["candidates"], "explain must rank the rejected plans"
    assert explain["decision"]["search"] == tune["search"]


def tune_signature(explain):
    sig = explain["signature"]
    assert isinstance(sig, str) and len(sig) == 64
    return sig


def test_warm_signature_is_a_cache_hit(make_server):
    server = make_server()
    first = server.query(einsum_query(explain=True), timeout=60)
    assert first.status == 200
    # a later request with the same workload shape reuses the decision
    # (distinct request document — the explain flag and deadline are
    # not part of the workload signature)
    again = server.query(einsum_query(explain=True, deadline_ms=9000),
                         timeout=60)
    assert again.status == 200
    assert again.json["meta"]["tune"]["cache"] == "hit"
    assert (again.json["meta"]["explain"]["signature"]
            == first.json["meta"]["explain"]["signature"])


def test_no_explain_flag_means_no_explain_payload(make_server):
    server = make_server()
    resp = server.query(einsum_query(), timeout=60)
    assert resp.status == 200
    meta = resp.json["meta"]
    assert "tune" in meta            # the cheap summary is always there
    assert "explain" not in meta     # the full payload is opt-in


def test_tune_off_server_serves_untuned(make_server):
    server = make_server(tune="off")
    resp = server.query(einsum_query(explain=True), timeout=60)
    assert resp.status == 200
    meta = resp.json["meta"]
    assert "tune" not in meta
    assert meta.get("explain") is None


def test_explicit_client_knobs_win_over_the_tuner(make_server):
    server = make_server()
    doc = einsum_query(explain=True)
    doc["order"] = ["i", "j", "k"]
    resp = server.query(doc, timeout=60)
    assert resp.status == 200
    # the tuner is never consulted for a pinned plan
    assert "tune" not in resp.json["meta"]


def test_explain_results_match_unexplained_results(make_server):
    server = make_server()
    plain = server.query(einsum_query(), timeout=60)
    explained = server.query(einsum_query(explain=True), timeout=60)
    assert plain.status == explained.status == 200
    assert explained.json["result"] == plain.json["result"]
