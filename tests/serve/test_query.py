"""Query canonicalization: keys before compiles, typed client errors."""

from __future__ import annotations

import pytest

from repro.serve.query import QueryError, prepare_request
from tests.serve.harness import einsum_query


def test_einsum_kernel_key_matches_build():
    """The admission-time key equals the key of the kernel actually
    built — the property the breaker gate stands on."""
    prepared = prepare_request(einsum_query())
    assert prepared.kernel_key is not None
    kernel = prepared.build()
    assert kernel.cache_key == prepared.kernel_key


def test_identical_bodies_coalesce_different_operands_do_not():
    a = prepare_request(einsum_query(seed=1))
    b = prepare_request(einsum_query(seed=1))
    c = prepare_request(einsum_query(seed=2))
    assert a.coalesce_key == b.coalesce_key
    assert a.coalesce_key != c.coalesce_key
    # same kernel, different operands: batch-compatible, not identical
    assert a.batch_key == c.batch_key


def test_deadline_does_not_change_identity():
    a = prepare_request(einsum_query(seed=3))
    b = prepare_request(einsum_query(seed=3, deadline_ms=250))
    assert a.coalesce_key == b.coalesce_key
    assert b.deadline_ms == 250


def test_dims_default_to_coordinate_hull():
    doc = einsum_query()
    for operand in doc["operands"]:
        del operand["dims"]
    prepared = prepare_request(doc)
    assert prepared.kernel_key is not None


@pytest.mark.parametrize("mutate, fragment", [
    (lambda d: d.pop("spec"), "spec"),
    (lambda d: d.update(spec="ij,,->i"), "malformed"),
    (lambda d: d.update(kind="prolog"), "unknown query kind"),
    (lambda d: d.update(semiring="imaginary"), "unknown semiring"),
    (lambda d: d.update(operands=[]), "operands"),
    (lambda d: d.update(capacity="lots"), "capacity"),
    (lambda d: d.update(deadline_ms="soon"), "deadline_ms"),
    (lambda d: d["operands"][0]["entries"].append([[1], 2.0]), "rank"),
])
def test_malformed_einsum_raises_query_error(mutate, fragment):
    doc = einsum_query()
    mutate(doc)
    with pytest.raises((QueryError, ValueError)) as info:
        prepare_request(doc)
    assert fragment.lower() in str(info.value).lower()


def test_sql_prepare_and_execute():
    from repro.serve.deadline import Budget

    doc = {
        "kind": "sql",
        "query": "SELECT a FROM t WHERE b > 1",
        "tables": {"t": {"columns": ["a", "b"], "rows": [[1, 2], [3, 0]]}},
    }
    prepared = prepare_request(doc)
    assert prepared.kernel_key is None       # no kernel → no breaker gate
    assert prepared.batch_key is None
    out = prepared.execute(Budget(5.0))
    assert out == {"kind": "rows", "rows": [[1]], "count": 1}


def test_sql_syntax_error_at_admission():
    doc = {"kind": "sql", "query": "SELEC nope", "tables": {}}
    with pytest.raises(QueryError):
        prepare_request(doc)


def test_semiring_changes_kernel_key():
    a = prepare_request(einsum_query())
    b = prepare_request(einsum_query(semiring="min-plus"))
    assert a.kernel_key != b.kernel_key
