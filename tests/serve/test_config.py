"""REPRO_SERVE_* strict parsing + the library env helpers (S2)."""

from __future__ import annotations

import logging

import pytest

from repro.compiler import resilience
from repro.errors import ConfigError
from repro.serve import config as config_mod
from repro.serve.config import ServeConfig


def test_defaults_without_env(monkeypatch):
    for name in dir(config_mod):
        if name.startswith("ENV_"):
            monkeypatch.delenv(getattr(config_mod, name), raising=False)
    cfg = ServeConfig.from_env()
    assert cfg.port == 8774
    assert cfg.deadline == 30.0
    assert cfg.degrade == "reject"
    assert cfg.burst >= 1


@pytest.mark.parametrize("var, value", [
    (config_mod.ENV_PORT, "not-a-port"),
    (config_mod.ENV_DEADLINE, "soon"),
    (config_mod.ENV_DEADLINE, "-3"),
    (config_mod.ENV_MAX_INFLIGHT, "0"),
    (config_mod.ENV_QPS, "fast"),
    (config_mod.ENV_RETRIES, "-1"),
    (config_mod.ENV_WORKERS, "many"),
])
def test_bad_serve_env_refuses_boot(monkeypatch, var, value):
    """The serve family is always strict: a typo names itself and
    raises before any socket is opened."""
    monkeypatch.setenv(var, value)
    with pytest.raises(ConfigError) as info:
        ServeConfig.from_env()
    assert info.value.variable == var
    assert value in str(info.value)


def test_bad_degrade_mode(monkeypatch):
    monkeypatch.setenv(config_mod.ENV_DEGRADE, "explode")
    with pytest.raises(ConfigError) as info:
        ServeConfig.from_env()
    assert "explode" in str(info.value)


def test_library_env_warns_by_default(monkeypatch, caplog):
    """Library-level knobs keep the warn-and-default policy."""
    monkeypatch.delenv(resilience.ENV_STRICT_ENV, raising=False)
    monkeypatch.setenv(resilience.ENV_BREAKER_THRESHOLD, "lots")
    with caplog.at_level(logging.WARNING, logger="repro"):
        assert (resilience.breaker_threshold()
                == resilience.DEFAULT_BREAKER_THRESHOLD)
    assert any(resilience.ENV_BREAKER_THRESHOLD in r.message
               for r in caplog.records)


def test_library_env_strict_mode_raises(monkeypatch):
    """REPRO_STRICT_ENV=1 upgrades the same typo to a ConfigError."""
    monkeypatch.setenv(resilience.ENV_STRICT_ENV, "1")
    monkeypatch.setenv(resilience.ENV_BREAKER_THRESHOLD, "lots")
    with pytest.raises(ConfigError) as info:
        resilience.breaker_threshold()
    assert info.value.variable == resilience.ENV_BREAKER_THRESHOLD


def test_env_helpers_minimum(monkeypatch):
    monkeypatch.setenv("X_TEST_KNOB", "3")
    assert resilience.env_int("X_TEST_KNOB", 9, minimum=1) == 3
    monkeypatch.setenv("X_TEST_KNOB", "0")
    assert resilience.env_int("X_TEST_KNOB", 9, minimum=1) == 9  # warned
    with pytest.raises(ConfigError):
        resilience.env_int("X_TEST_KNOB", 9, minimum=1, strict=True)
    monkeypatch.setenv("X_TEST_KNOB", "")
    assert resilience.env_int("X_TEST_KNOB", 7, minimum=1) == 7


def test_env_flag(monkeypatch):
    monkeypatch.delenv("X_TEST_FLAG", raising=False)
    assert resilience.env_flag("X_TEST_FLAG", True) is True
    for falsey in ("0", "off", "NO", "False"):
        monkeypatch.setenv("X_TEST_FLAG", falsey)
        assert resilience.env_flag("X_TEST_FLAG", True) is False
    monkeypatch.setenv("X_TEST_FLAG", "1")
    assert resilience.env_flag("X_TEST_FLAG", False) is True
