"""The retry loop's taxonomy discipline and the admission gate."""

from __future__ import annotations

import random

import pytest

from repro.errors import (
    CapacityError,
    CompileError,
    KernelCrashError,
    ShapeError,
)
from repro.serve.admission import AdmissionController, TokenBucket
from repro.serve.config import ServeConfig
from repro.serve.deadline import Budget, request_budget
from repro.serve.query import prepare_request
from repro.serve.retrying import RetryPolicy, run_with_retry
from tests.serve.harness import einsum_query

RNG = random.Random(7)
FAST = RetryPolicy(retries=3, base=0.001)


def _counting(failures):
    calls = {"n": 0}

    def fn():
        calls["n"] += 1
        if calls["n"] <= len(failures):
            raise failures[calls["n"] - 1]
        return "ok"

    return fn, calls


def test_transient_compile_error_is_retried():
    transient = CompileError("cc died", returncode=-9)
    fn, calls = _counting([transient, transient])
    assert run_with_retry(fn, budget=Budget(5), policy=FAST, rng=RNG) == "ok"
    assert calls["n"] == 3


@pytest.mark.parametrize("error", [
    ShapeError("rank mismatch"),
    CapacityError("overflow", needed=10, capacity=2),
    CompileError("bad source", returncode=1),   # deterministic variant
])
def test_deterministic_errors_never_replay(error):
    fn, calls = _counting([error] * 5)
    with pytest.raises(type(error)):
        run_with_retry(fn, budget=Budget(5), policy=FAST, rng=RNG)
    assert calls["n"] == 1


def test_crash_gets_exactly_one_replay():
    crash = KernelCrashError("boom", signal=11)
    fn, calls = _counting([crash] * 5)
    with pytest.raises(KernelCrashError):
        run_with_retry(fn, budget=Budget(5), policy=FAST, rng=RNG)
    assert calls["n"] == 2      # original + one replay, never more


def test_exhausted_budget_stops_retrying():
    transient = CompileError("cc died", timeout=True)
    fn, calls = _counting([transient] * 5)
    with pytest.raises(CompileError):
        run_with_retry(
            fn, budget=Budget(0.0), policy=RetryPolicy(retries=5, base=0.05),
            rng=RNG,
        )
    assert calls["n"] == 1


def test_request_budget_is_clamped_to_server_deadline():
    assert request_budget(None, 10.0).total == 10.0
    assert request_budget(2000, 10.0).total == pytest.approx(2.0)
    assert request_budget(60_000, 10.0).total == 10.0


def test_token_bucket_sheds_and_recovers():
    bucket = TokenBucket(rate=1000.0, burst=3)
    assert [bucket.try_acquire() for _ in range(3)] == [None] * 3
    wait = bucket.try_acquire()
    assert wait is not None and 0 < wait <= 0.01
    import time

    time.sleep(wait + 0.005)
    assert bucket.try_acquire() is None


def test_admission_inflight_cap():
    ctl = AdmissionController(ServeConfig(max_inflight=2, deadline=8.0))
    prepared = prepare_request(einsum_query())
    assert ctl.admit(prepared, inflight=1) is None
    rejection = ctl.admit(prepared, inflight=2)
    assert rejection.status == 429
    assert rejection.retry_after == pytest.approx(2.0)


def test_admission_rejects_open_breaker_before_compile(monkeypatch):
    from repro.runtime import breaker as breaker_mod

    prepared = prepare_request(einsum_query())
    threshold_failures = 3
    monkeypatch.setenv("REPRO_BREAKER_THRESHOLD", str(threshold_failures))
    for _ in range(threshold_failures):
        breaker_mod.breaker.record_failure(prepared.kernel_key)
    assert breaker_mod.breaker.is_open(prepared.kernel_key)

    ctl = AdmissionController(ServeConfig(degrade="reject"))
    rejection = ctl.admit(prepared, inflight=0)
    assert rejection is not None
    assert rejection.status == 503
    assert rejection.retry_after > 0
    # the honest hint tracks the breaker's own re-probe ETA
    eta = breaker_mod.breaker.retry_after(prepared.kernel_key)
    assert rejection.retry_after == pytest.approx(max(0.5, eta), rel=0.2)

    fallback = AdmissionController(ServeConfig(degrade="fallback"))
    assert fallback.admit(prepared, inflight=0) is None
